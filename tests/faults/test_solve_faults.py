"""End-to-end crash recovery through :func:`solve_apsp`.

The acceptance bar of the fault-injection subsystem: a plan that
SIGKILLs a process worker mid-sweep must still produce the exact APSP
distances, in bounded time, with the recovery visible in the
``faults.*`` counters.

Exactness notes.  The repo's correctness bar for real backends is
:func:`tests.conftest.assert_same_apsp` — identical reachability, equal
distances to float tolerance.  Bit-level equality is a *determinism*
property, not a correctness one: which finished rows a sweep merges
depends on timing, and a merge computes the same shortest distance
along a different floating-point summation order (ulp-level wiggle).
The deterministic backends (serial, sim) replay a given fault plan
bit-identically run over run, and that IS asserted.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import solve_apsp
from repro.exceptions import AlgorithmError, BackendError
from repro.faults import CORRUPT_PIPE, KILL, RAISE, STALL, FaultPlan, FaultSpec
from repro.graphs.generators import attach_random_weights, erdos_renyi
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import fork_available
from tests.conftest import assert_same_apsp

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

N = 48
THREADS = 2
KILL_PLAN = FaultPlan.single(KILL, worker=1, after_claims=2)
#: one kill per worker: guaranteed to fire under any claim interleaving
KILL_ALL = FaultPlan.from_dict(
    {
        "faults": [
            dict(kind=KILL, worker=w, after_claims=1)
            for w in range(THREADS)
        ]
    }
)


@pytest.fixture(scope="module")
def graph():
    g = erdos_renyi(N, 0.15, seed=11, name="er-faults")
    return attach_random_weights(g, seed=11)


@pytest.fixture(scope="module")
def golden(graph):
    return solve_apsp(graph, algorithm="parapsp", num_threads=1).dist


@needs_fork
class TestProcessAcceptance:
    def test_sigkill_mid_sweep_recovers_exact(self, graph, golden):
        registry = MetricsRegistry()
        with use_registry(registry):
            result = solve_apsp(
                graph,
                algorithm="parapsp",
                num_threads=THREADS,
                backend="process",
                fault_plan=KILL_ALL,
                on_worker_death="retry",
            )
        assert_same_apsp(result.dist, golden)
        counters = registry.snapshot()["counters"]
        assert counters["faults.worker_deaths"] >= 1
        assert counters["faults.recovered_indices"] >= 1
        assert counters["faults.retry_rounds"] >= 1
        assert multiprocessing.active_children() == []

    def test_batched_process_recovers_exact(self, graph, golden):
        result = solve_apsp(
            graph,
            algorithm="parapsp",
            num_threads=THREADS,
            backend="process",
            block_size=8,
            fault_plan=KILL_ALL,
            on_worker_death="retry",
        )
        assert_same_apsp(result.dist, golden)

    def test_raise_policy_surfaces_backend_error(self, graph):
        with pytest.raises(BackendError, match="retry"):
            solve_apsp(
                graph,
                algorithm="parapsp",
                num_threads=THREADS,
                backend="process",
                fault_plan=KILL_ALL,
                on_worker_death="raise",
            )
        assert multiprocessing.active_children() == []


class TestThreadsAcceptance:
    def test_kill_recovers_exact(self, graph, golden):
        result = solve_apsp(
            graph,
            algorithm="parapsp",
            num_threads=THREADS,
            backend="threads",
            fault_plan=KILL_ALL,
            on_worker_death="retry",
        )
        assert_same_apsp(result.dist, golden)


class TestSimAcceptance:
    def test_kill_keeps_distances_exact(self, graph, golden):
        registry = MetricsRegistry()
        with use_registry(registry):
            result = solve_apsp(
                graph,
                algorithm="parapsp",
                num_threads=4,
                backend="sim",
                fault_plan=KILL_PLAN,
                trace=True,
            )
        assert_same_apsp(result.dist, golden)
        counters = registry.snapshot()["counters"]
        assert counters["faults.sim.deaths"] == 1
        events = result.sim_dijkstra.events
        assert any(e.kind == "fault" for e in events)
        assert any(e.label == "recovery" for e in events)

    def test_faulted_sim_is_bit_deterministic(self, graph):
        runs = [
            solve_apsp(
                graph,
                algorithm="parapsp",
                num_threads=4,
                backend="sim",
                fault_plan=KILL_PLAN,
            )
            for _ in range(2)
        ]
        assert runs[0].phase_times.dijkstra == runs[1].phase_times.dijkstra
        assert np.array_equal(runs[0].dist, runs[1].dist)


class TestSerialDeterminism:
    def test_faulted_serial_is_bit_deterministic(self, graph):
        runs = [
            solve_apsp(
                graph,
                algorithm="parapsp",
                num_threads=4,
                backend="serial",
                fault_plan=KILL_PLAN,
                on_worker_death="retry",
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].dist, runs[1].dist)


class TestValidation:
    def test_chunk_zero_rejected(self, graph):
        with pytest.raises(AlgorithmError, match="chunk"):
            solve_apsp(graph, num_threads=2, chunk=0)

    def test_negative_chunk_rejected(self, graph):
        with pytest.raises(AlgorithmError, match="chunk"):
            solve_apsp(graph, num_threads=2, chunk=-3)

    def test_bad_policy_rejected(self, graph):
        with pytest.raises(AlgorithmError, match="on_worker_death"):
            solve_apsp(graph, num_threads=2, on_worker_death="shrug")


def _single_fault_plans(num_workers, n):
    kill_like = st.builds(
        FaultSpec,
        kind=st.sampled_from([KILL, CORRUPT_PIPE]),
        worker=st.integers(-1, num_workers - 1),
        after_claims=st.integers(1, 5),
    )
    stall = st.builds(
        FaultSpec,
        kind=st.just(STALL),
        worker=st.integers(-1, num_workers - 1),
        after_claims=st.integers(1, 5),
        seconds=st.just(0.0),
    )
    raise_ = st.builds(
        FaultSpec,
        kind=st.just(RAISE),
        worker=st.integers(-1, num_workers - 1),
        iteration=st.integers(0, n - 1),
    )
    spec = st.one_of(kill_like, stall, raise_)
    return st.builds(
        lambda s, seed: FaultPlan(faults=(s,), seed=seed),
        spec,
        st.integers(0, 2**16),
    )


class TestSingleFaultProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        plan=_single_fault_plans(4, N),
        schedule=st.sampled_from(["dynamic", "block", "static-cyclic"]),
    )
    def test_any_single_fault_leaves_distances_exact(
        self, graph, golden, plan, schedule
    ):
        result = solve_apsp(
            graph,
            algorithm="parapsp",
            num_threads=4,
            backend="serial",
            schedule=schedule,
            fault_plan=plan,
            on_worker_death="retry",
        )
        assert_same_apsp(result.dist, golden)
