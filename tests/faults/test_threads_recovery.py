"""Fault injection and recovery in the threads backend.

A "kill" here is a silent worker-thread death: the thread stops
claiming work without reporting.  The backend must notice, re-execute
exactly the lost iterations, and leave every index executed once.
"""

import numpy as np
import pytest

from repro.exceptions import BackendError
from repro.faults import KILL, RAISE, STALL, FaultPlan
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import parallel_for
from repro.types import Schedule


def _plan_for_all(kind, num_workers, **kwargs):
    # one spec per worker: on a single-core host one thread can drain
    # the whole dynamic counter alone, so only a plan covering every
    # thread is guaranteed to fire under the dynamic schedule
    return FaultPlan.from_dict(
        {
            "faults": [
                dict(kind=kind, worker=w, **kwargs)
                for w in range(num_workers)
            ]
        }
    )


KILL_ALL = _plan_for_all(KILL, 3, after_claims=1)


def _run(n, num_threads, schedule, plan, policy="retry"):
    hits = np.zeros(n, dtype=np.int64)

    def body(i, _thread):
        hits[i] += 1

    parallel_for(
        n,
        body,
        num_threads=num_threads,
        schedule=schedule,
        backend="threads",
        fault_plan=plan,
        on_worker_death=policy,
    )
    return hits


class TestKillRecovery:
    @pytest.mark.parametrize(
        "schedule",
        [Schedule.BLOCK, Schedule.STATIC_CYCLIC, Schedule.DYNAMIC],
    )
    def test_every_index_executed_exactly_once(self, schedule):
        plan = (
            KILL_ALL
            if schedule is Schedule.DYNAMIC
            else FaultPlan.single(KILL, worker=1, after_claims=1)
        )
        hits = _run(24, 3, schedule, plan)
        assert hits.tolist() == [1] * 24

    def test_all_threads_dead_still_covers_unclaimed_work(self):
        # every thread dies on its first claim: most of the dynamic
        # counter is never claimed, and recovery must drain it anyway
        hits = _run(24, 3, Schedule.DYNAMIC, KILL_ALL)
        assert hits.tolist() == [1] * 24

    def test_raise_policy_surfaces_backend_error(self):
        with pytest.raises(BackendError, match="retry"):
            _run(24, 3, Schedule.DYNAMIC, KILL_ALL, policy="raise")

    def test_seeded_worker_choice_is_deterministic(self):
        plan = FaultPlan.single(KILL, worker=-1, after_claims=1)
        first = _run(24, 3, Schedule.DYNAMIC, plan)
        second = _run(24, 3, Schedule.DYNAMIC, plan)
        assert first.tolist() == second.tolist() == [1] * 24

    def test_recovery_counters_emitted(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            _run(24, 3, Schedule.DYNAMIC, KILL_ALL)
        counters = registry.snapshot()["counters"]
        assert counters["faults.worker_deaths"] >= 1
        assert counters["faults.recovered_indices"] >= 1


class TestOtherFaultKinds:
    def test_injected_raise_recovers(self):
        plan = _plan_for_all(RAISE, 2, iteration=5)
        hits = _run(16, 2, Schedule.DYNAMIC, plan)
        assert hits.tolist() == [1] * 16

    def test_stall_delays_but_completes(self):
        plan = FaultPlan.single(STALL, worker=0, seconds=0.01)
        hits = _run(8, 2, Schedule.DYNAMIC, plan)
        assert hits.tolist() == [1] * 8

    def test_real_error_always_raises(self):
        # application errors propagate as-is (the historical contract);
        # only worker *deaths* go through the recovery policy
        def body(i, _thread):
            if i == 3:
                raise ValueError("genuine bug")

        with pytest.raises(ValueError, match="genuine bug"):
            parallel_for(
                8,
                body,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                backend="threads",
                on_worker_death="retry",
            )
