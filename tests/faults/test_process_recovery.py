"""Crash recovery in the fork-based process backend.

The hangs this PR fixes lived here: a SIGKILLed worker used to leave
the parent blocked forever in ``conn.recv()``.  Every test in this file
therefore doubles as a no-hang test — if recovery regresses, the suite
times out instead of passing.
"""

import multiprocessing
import os

import pytest

from repro.exceptions import BackendError
from repro.faults import CORRUPT_PIPE, KILL, RAISE, STALL, FaultPlan
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import fork_available
from repro.parallel.backends.process import run_parallel_map
from repro.types import Schedule

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _plan_for_all(kind, num_workers, **kwargs):
    """One spec per worker: fires no matter which worker claims first.

    On a single-core host one worker can drain the whole dynamic
    counter before the others ever claim, so plans targeting a specific
    worker are only deterministic on static schedules.
    """
    return FaultPlan.from_dict(
        {
            "faults": [
                dict(kind=kind, worker=w, **kwargs)
                for w in range(num_workers)
            ]
        }
    )


KILL_ALL = _plan_for_all(KILL, 2, after_claims=1)


def _square(i):
    return i * i


def _expected(n):
    return [i * i for i in range(n)]


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux
        return set()


@needs_fork
class TestKillRecovery:
    @pytest.mark.parametrize(
        "schedule",
        [Schedule.BLOCK, Schedule.STATIC_CYCLIC, Schedule.DYNAMIC],
    )
    def test_sigkill_retry_matches_serial(self, schedule):
        got = run_parallel_map(
            16,
            _square,
            num_threads=2,
            schedule=schedule,
            fault_plan=KILL_ALL
            if schedule is Schedule.DYNAMIC
            else FaultPlan.single(KILL, worker=1, after_claims=1),
            on_worker_death="retry",
        )
        assert got == _expected(16)

    def test_sigkill_raise_policy_surfaces_backend_error(self):
        with pytest.raises(BackendError, match="retry"):
            run_parallel_map(
                16,
                _square,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                fault_plan=KILL_ALL,
                on_worker_death="raise",
            )

    def test_no_zombie_processes_left(self):
        run_parallel_map(
            16,
            _square,
            num_threads=2,
            schedule=Schedule.DYNAMIC,
            fault_plan=KILL_ALL,
            on_worker_death="retry",
        )
        assert multiprocessing.active_children() == []

    def test_recovery_counters_emitted(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            run_parallel_map(
                16,
                _square,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                fault_plan=KILL_ALL,
                on_worker_death="retry",
            )
        counters = registry.snapshot()["counters"]
        assert counters["faults.worker_deaths"] >= 1
        assert counters["faults.recovered_indices"] >= 1
        assert counters["faults.retry_rounds"] >= 1
        paths = [rec["path"] for rec in registry.snapshot()["spans"]]
        assert any(p.endswith("faults.recovery") for p in paths)

    def test_kill_every_worker_exhausts_retries(self):
        # round-scoped kills for both workers across every retry round:
        # recovery is bounded, not an infinite respawn loop
        specs = [
            dict(kind=KILL, worker=w, after_claims=1, round=r)
            for w in (0, 1)
            for r in range(8)
        ]
        plan = FaultPlan.from_dict({"faults": specs})
        with pytest.raises(BackendError, match="retr"):
            run_parallel_map(
                8,
                _square,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                fault_plan=plan,
                on_worker_death="retry",
                max_retries=2,
            )
        assert multiprocessing.active_children() == []


@needs_fork
class TestOtherFaultKinds:
    def test_corrupt_pipe_retry_matches_serial(self):
        got = run_parallel_map(
            12,
            _square,
            num_threads=2,
            schedule=Schedule.DYNAMIC,
            fault_plan=_plan_for_all(CORRUPT_PIPE, 2, after_claims=1),
            on_worker_death="retry",
        )
        assert got == _expected(12)

    def test_corrupt_pipe_raise_policy(self):
        with pytest.raises(BackendError):
            run_parallel_map(
                12,
                _square,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                fault_plan=_plan_for_all(CORRUPT_PIPE, 2, after_claims=1),
                on_worker_death="raise",
            )

    def test_injected_raise_recovers(self):
        # iteration 3 runs on exactly one worker, whichever claims it
        got = run_parallel_map(
            12,
            _square,
            num_threads=2,
            schedule=Schedule.DYNAMIC,
            fault_plan=_plan_for_all(RAISE, 2, iteration=3),
            on_worker_death="retry",
        )
        assert got == _expected(12)

    def test_short_stall_just_delays(self):
        got = run_parallel_map(
            8,
            _square,
            num_threads=2,
            schedule=Schedule.DYNAMIC,
            fault_plan=FaultPlan.single(STALL, worker=0, seconds=0.05),
        )
        assert got == _expected(8)

    def test_real_error_always_raises_even_under_retry(self):
        def boom(i):
            if i == 3:
                raise ValueError("genuine bug")
            return i

        with pytest.raises(BackendError, match="genuine bug"):
            run_parallel_map(
                8,
                boom,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                on_worker_death="retry",
            )


@needs_fork
class TestTimeout:
    def test_stalled_worker_times_out_and_retries(self):
        got = run_parallel_map(
            8,
            _square,
            num_threads=2,
            schedule=Schedule.DYNAMIC,
            fault_plan=_plan_for_all(STALL, 2, seconds=60.0),
            timeout=1.0,
            on_worker_death="retry",
        )
        assert got == _expected(8)
        assert multiprocessing.active_children() == []

    def test_stalled_worker_times_out_and_raises(self):
        with pytest.raises(BackendError):
            run_parallel_map(
                8,
                _square,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                fault_plan=_plan_for_all(STALL, 2, seconds=60.0),
                timeout=1.0,
                on_worker_death="raise",
            )
        assert multiprocessing.active_children() == []

    def test_bad_timeout_rejected(self):
        with pytest.raises(BackendError, match="timeout"):
            run_parallel_map(4, _square, num_threads=2, timeout=0.0)


@needs_fork
class TestHygiene:
    def test_repeated_faulted_runs_leak_nothing(self):
        before = _shm_entries()
        for _ in range(3):
            run_parallel_map(
                16,
                _square,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                fault_plan=KILL_ALL,
                on_worker_death="retry",
            )
        assert multiprocessing.active_children() == []
        assert _shm_entries() - before == set()

    def test_bad_policy_rejected(self):
        with pytest.raises(BackendError, match="on_worker_death"):
            run_parallel_map(
                4, _square, num_threads=2, on_worker_death="ignore"
            )

    def test_bad_max_retries_rejected(self):
        with pytest.raises(BackendError, match="max_retries"):
            run_parallel_map(4, _square, num_threads=2, max_retries=-1)
