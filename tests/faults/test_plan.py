"""FaultPlan / FaultSpec: validation, parsing, binding, round scoping."""

import json

import pytest

from repro.exceptions import FaultPlanError
from repro.faults import (
    CORRUPT_PIPE,
    FAULT_KINDS,
    KILL,
    RAISE,
    STALL,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)


class TestFaultSpec:
    def test_defaults_valid(self):
        FaultSpec(kind=KILL).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="meteor").validate()

    def test_every_declared_kind_constructible(self):
        for kind in FAULT_KINDS:
            spec = FaultSpec(
                kind=kind, iteration=0 if kind == RAISE else None
            )
            spec.validate()

    def test_raise_needs_iteration(self):
        with pytest.raises(FaultPlanError, match="iteration"):
            FaultSpec(kind=RAISE).validate()

    def test_after_claims_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="after_claims"):
            FaultSpec(kind=KILL, after_claims=0).validate()

    def test_negative_stall_rejected(self):
        with pytest.raises(FaultPlanError, match="seconds"):
            FaultSpec(kind=STALL, seconds=-1.0).validate()

    def test_worker_below_minus_one_rejected(self):
        with pytest.raises(FaultPlanError, match="worker"):
            FaultSpec(kind=KILL, worker=-2).validate()

    def test_dict_round_trip(self):
        for spec in (
            FaultSpec(kind=KILL, worker=3, after_claims=2),
            FaultSpec(kind=RAISE, worker=1, iteration=7),
            FaultSpec(kind=STALL, worker=0, seconds=0.25, round=1),
            FaultSpec(kind=CORRUPT_PIPE, worker=2),
        ):
            assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="unknown fault spec"):
            FaultSpec.from_dict({"kind": KILL, "severity": 11})


class TestFaultPlan:
    def test_single(self):
        plan = FaultPlan.single(KILL, worker=1, after_claims=2)
        assert len(plan) == 1
        assert plan.faults[0].worker == 1

    def test_bind_drops_out_of_range_workers(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind=KILL, worker=7),
                FaultSpec(kind=KILL, worker=0),
            )
        )
        bound = plan.bind(2)
        assert [s.worker for s in bound.faults] == [0]

    def test_bind_resolves_seeded_workers_deterministically(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind=KILL, worker=-1),), seed=42
        )
        first = plan.bind(8)
        second = plan.bind(8)
        assert first.faults[0].worker == second.faults[0].worker
        assert 0 <= first.faults[0].worker < 8

    def test_bind_rejects_bad_worker_count(self):
        with pytest.raises(FaultPlanError, match="num_workers"):
            FaultPlan().bind(0)

    def test_for_worker_scopes_rounds(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind=KILL, worker=1, round=0),
                FaultSpec(kind=KILL, worker=1, round=1),
                FaultSpec(kind=KILL, worker=0, round=0),
            )
        )
        assert len(plan.for_worker(1, round=0)) == 1
        assert len(plan.for_worker(1, round=1)) == 1
        assert plan.for_worker(1, round=2) == ()

    def test_plan_dict_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind=KILL, worker=1, after_claims=2),
                FaultSpec(kind=RAISE, worker=0, iteration=3),
            ),
            seed=9,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestParse:
    def test_dsl_single(self):
        plan = parse_fault_plan("kill:worker=1,after=2")
        assert plan.faults == (
            FaultSpec(kind=KILL, worker=1, after_claims=2),
        )

    def test_dsl_multiple_specs(self):
        plan = parse_fault_plan(
            "kill:worker=1,after=2;stall:worker=0,for=0.1"
        )
        assert [s.kind for s in plan.faults] == [KILL, STALL]
        assert plan.faults[1].seconds == pytest.approx(0.1)

    def test_dsl_raise_with_iteration_and_round(self):
        plan = parse_fault_plan("raise:worker=2,iteration=5,round=1")
        spec = plan.faults[0]
        assert (spec.kind, spec.iteration, spec.round) == (RAISE, 5, 1)

    def test_dsl_bad_field_rejected(self):
        with pytest.raises(FaultPlanError, match="bad fault field"):
            parse_fault_plan("kill:when=later")

    def test_json_string(self):
        text = json.dumps(
            {"seed": 3, "faults": [{"kind": "kill", "worker": 1}]}
        )
        plan = parse_fault_plan(text)
        assert plan.seed == 3
        assert plan.faults[0].worker == 1

    def test_json_bare_list(self):
        plan = parse_fault_plan('[{"kind": "kill"}]', seed=7)
        assert plan.seed == 7
        assert plan.faults[0].kind == KILL

    def test_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps({"faults": [{"kind": "stall", "seconds": 0.2}]})
        )
        plan = parse_fault_plan(str(path))
        assert plan.faults[0].seconds == pytest.approx(0.2)

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError, match="bad fault plan JSON"):
            parse_fault_plan("{not json")

    def test_empty_rejected(self):
        with pytest.raises(FaultPlanError, match="empty"):
            parse_fault_plan("   ")
