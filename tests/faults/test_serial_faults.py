"""Virtual fault injection in the serial backend.

Serial runs model ``num_threads`` virtual workers, so fault plans stay
meaningful (and debuggable breakpoint-style) without real concurrency.
"""

import numpy as np
import pytest

from repro.exceptions import BackendError
from repro.faults import KILL, RAISE, STALL, FaultPlan
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import parallel_for
from repro.types import Schedule


def _run(n, num_threads, schedule, plan, policy="retry"):
    hits = np.zeros(n, dtype=np.int64)

    def body(i, _thread):
        hits[i] += 1

    parallel_for(
        n,
        body,
        num_threads=num_threads,
        schedule=schedule,
        backend="serial",
        fault_plan=plan,
        on_worker_death=policy,
    )
    return hits


class TestSerialFaults:
    @pytest.mark.parametrize(
        "schedule",
        [Schedule.BLOCK, Schedule.STATIC_CYCLIC, Schedule.DYNAMIC],
    )
    def test_kill_recovers_every_index_once(self, schedule):
        plan = FaultPlan.single(KILL, worker=1, after_claims=1)
        hits = _run(20, 4, schedule, plan)
        assert hits.tolist() == [1] * 20

    def test_kill_raise_policy(self):
        plan = FaultPlan.single(KILL, worker=1, after_claims=1)
        with pytest.raises(BackendError, match="retry"):
            _run(20, 4, Schedule.DYNAMIC, plan, policy="raise")

    def test_all_virtual_workers_dead_still_recovers_or_raises(self):
        # killing every virtual worker leaves the remaining iterations
        # lost; retry policy must still complete them inline
        plan = FaultPlan(
            faults=tuple(
                FaultPlan.single(KILL, worker=w, after_claims=1).faults[0]
                for w in range(4)
            )
        )
        hits = _run(20, 4, Schedule.DYNAMIC, plan)
        assert hits.tolist() == [1] * 20

    def test_injected_raise_recovers(self):
        plan = FaultPlan.single(RAISE, worker=0, iteration=2)
        hits = _run(12, 3, Schedule.DYNAMIC, plan)
        assert hits.tolist() == [1] * 12

    def test_stall_is_consumed(self):
        plan = FaultPlan.single(STALL, worker=0, seconds=0.0)
        hits = _run(8, 2, Schedule.DYNAMIC, plan)
        assert hits.tolist() == [1] * 8

    def test_counters_emitted(self):
        registry = MetricsRegistry()
        plan = FaultPlan.single(KILL, worker=1, after_claims=1)
        with use_registry(registry):
            _run(20, 4, Schedule.DYNAMIC, plan)
        counters = registry.snapshot()["counters"]
        assert counters["faults.worker_deaths"] == 1
        assert counters["faults.recovered_indices"] >= 1

    def test_plan_free_path_untouched(self):
        # no plan → the historical behaviour, bit for bit
        got = parallel_for(
            10,
            lambda i, t: None,
            num_threads=2,
            schedule=Schedule.DYNAMIC,
            backend="serial",
        )
        assert sorted(i for lst in got for i in lst) == list(range(10))
