"""SharedArray lifecycle: no /dev/shm residue, ever.

The seed leaked the backing segment whenever ``np.ndarray(...)`` raised
after a successful ``SharedMemory`` allocation — the name was lost and
the segment stayed until reboot.  These are the regression tests.
"""

import os

import numpy as np
import pytest

from repro.exceptions import BackendError
from repro.parallel import SharedArray


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux
        return set()


class TestAllocationFailure:
    def test_bad_dtype_leaves_no_segment(self):
        before = _shm_entries()
        with pytest.raises(BackendError):
            SharedArray((4, 4), dtype="not-a-dtype")
        assert _shm_entries() - before == set()

    def test_object_dtype_rejected_before_allocation(self):
        before = _shm_entries()
        with pytest.raises(BackendError, match="object"):
            SharedArray((4,), dtype=object)
        assert _shm_entries() - before == set()

    def test_view_failure_after_allocation_leaves_no_segment(
        self, monkeypatch
    ):
        # the seed's leak: SharedMemory allocated, then np.ndarray raises
        # and the unnamed segment survived until reboot
        def exploding_view(*args, **kwargs):
            raise MemoryError("simulated ndarray failure")

        monkeypatch.setattr(np, "ndarray", exploding_view)
        before = _shm_entries()
        with pytest.raises(MemoryError, match="simulated"):
            SharedArray((4, 4))
        assert _shm_entries() - before == set()

    def test_negative_shape_leaves_no_segment(self):
        before = _shm_entries()
        with pytest.raises(BackendError):
            SharedArray((-3, 2))
        assert _shm_entries() - before == set()


class TestNormalLifecycle:
    def test_context_manager_cleans_up(self):
        before = _shm_entries()
        with SharedArray.allocate((16,), np.float64) as arr:
            arr.array[:] = 1.0
        assert _shm_entries() - before == set()

    def test_unreferenced_array_is_finalized(self):
        before = _shm_entries()
        arr = SharedArray((8,))
        del arr
        import gc

        gc.collect()
        assert _shm_entries() - before == set()

    def test_double_close_is_idempotent(self):
        arr = SharedArray((2, 2))
        arr.close()
        arr.close()
