"""Virtual-time fault replay in the simulator.

A killed simulated thread leaves the rotation; its claimed iterations
re-enter the queue and run on survivors as ``recovery``-labelled
events.  All of it is deterministic — same plan, same virtual timeline.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.faults import KILL, STALL, FaultPlan, FaultSpec
from repro.simx import MachineSpec, simulate_parallel_for

BARE = MachineSpec(
    name="bare",
    num_cores=16,
    fork_join_overhead=0.0,
    dispatch_overhead=0.0,
    memory_bandwidth_factor=0.0,
    cache_boost_factor=0.0,
)

KILL_PLAN = FaultPlan.single(KILL, worker=1, after_claims=2)


class TestSimKill:
    def test_all_iterations_still_execute(self):
        out = simulate_parallel_for(
            30,
            np.ones(30),
            BARE,
            num_threads=4,
            schedule="dynamic",
            fault_plan=KILL_PLAN,
        )
        assert sorted(out.issue_order.tolist()) == list(range(30))

    def test_dead_thread_runs_nothing_after_death(self):
        out = simulate_parallel_for(
            30,
            np.ones(30),
            BARE,
            num_threads=4,
            schedule="dynamic",
            fault_plan=FaultPlan.single(KILL, worker=1, after_claims=1),
        )
        # worker 1 claimed once (one chunk) before dying
        assert (out.thread_of == 1).sum() <= 1

    def test_makespan_no_better_than_fault_free(self):
        clean = simulate_parallel_for(
            30, np.ones(30), BARE, num_threads=4, schedule="dynamic"
        )
        faulted = simulate_parallel_for(
            30,
            np.ones(30),
            BARE,
            num_threads=4,
            schedule="dynamic",
            fault_plan=KILL_PLAN,
        )
        assert faulted.result.makespan >= clean.result.makespan

    def test_deterministic_replay(self):
        runs = [
            simulate_parallel_for(
                25,
                np.arange(25, dtype=float) + 1.0,
                BARE,
                num_threads=4,
                schedule="dynamic",
                fault_plan=KILL_PLAN,
            )
            for _ in range(2)
        ]
        assert runs[0].result.makespan == runs[1].result.makespan
        assert runs[0].thread_of.tolist() == runs[1].thread_of.tolist()

    def test_all_threads_killed_raises(self):
        plan = FaultPlan(
            faults=tuple(
                FaultSpec(kind=KILL, worker=w, after_claims=1)
                for w in range(4)
            )
        )
        with pytest.raises(SimulationError, match="killed every"):
            simulate_parallel_for(
                40,
                np.ones(40),
                BARE,
                num_threads=4,
                schedule="dynamic",
                fault_plan=plan,
            )

    @pytest.mark.parametrize("schedule", ["block", "static-cyclic"])
    def test_static_schedules_recover_too(self, schedule):
        out = simulate_parallel_for(
            24,
            np.ones(24),
            BARE,
            num_threads=4,
            schedule=schedule,
            fault_plan=FaultPlan.single(KILL, worker=2, after_claims=1),
        )
        assert sorted(out.issue_order.tolist()) == list(range(24))


class TestSimTraceEvents:
    def _traced(self, plan):
        return simulate_parallel_for(
            20,
            np.ones(20),
            BARE,
            num_threads=4,
            schedule="dynamic",
            fault_plan=plan,
            trace=True,
        )

    def test_death_emits_fault_event(self):
        out = self._traced(KILL_PLAN)
        faults = [e for e in out.result.events if e.kind == "fault"]
        assert any("death" in e.label for e in faults)

    def test_recovery_iterations_are_labelled(self):
        out = self._traced(FaultPlan.single(KILL, worker=1, after_claims=1))
        recovered = [
            e
            for e in out.result.events
            if e.kind == "iter" and e.label == "recovery"
        ]
        assert recovered, "lost iterations must resurface as recovery events"

    def test_stall_emits_fault_event(self):
        out = self._traced(
            FaultPlan.single(STALL, worker=0, seconds=3.0)
        )
        stalls = [
            e
            for e in out.result.events
            if e.kind == "fault" and e.label == "stall"
        ]
        assert len(stalls) == 1
        assert stalls[0].duration == pytest.approx(3.0)

    def test_fault_free_trace_has_no_fault_events(self):
        out = simulate_parallel_for(
            20,
            np.ones(20),
            BARE,
            num_threads=4,
            schedule="dynamic",
            trace=True,
        )
        assert not [e for e in out.result.events if e.kind == "fault"]


class TestSimCounters:
    def test_fault_counters(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            simulate_parallel_for(
                30,
                np.ones(30),
                BARE,
                num_threads=4,
                schedule="dynamic",
                fault_plan=KILL_PLAN,
            )
        counters = registry.snapshot()["counters"]
        assert counters["faults.sim.deaths"] == 1
        assert counters["faults.sim.requeued_iterations"] >= 1
