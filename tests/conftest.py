"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    attach_random_weights,
    barabasi_albert,
    erdos_renyi,
    from_edges,
    load_dataset,
    path,
    powerlaw_configuration,
    star,
)


@pytest.fixture(scope="session")
def toy_graph():
    """5 vertices, weighted, one detour that pays off."""
    return from_edges(
        [(0, 1, 1.0), (1, 2, 2.0), (0, 3, 4.0), (3, 2, 1.0), (2, 4, 3.0)],
        num_vertices=5,
    )


@pytest.fixture(scope="session")
def small_ba():
    """Small connected scale-free graph, unit weights."""
    return barabasi_albert(120, 3, seed=7)


@pytest.fixture(scope="session")
def small_weighted():
    """Small connected scale-free graph, random positive weights."""
    return attach_random_weights(barabasi_albert(100, 3, seed=9), seed=10)


@pytest.fixture(scope="session")
def directed_weighted():
    """Directed ER graph with weights and unreachable pairs."""
    return attach_random_weights(
        erdos_renyi(80, 0.05, seed=21, directed=True), seed=22
    )


@pytest.fixture(scope="session")
def powerlaw_graph():
    """Power-law graph with a real hub spectrum (ordering tests)."""
    return powerlaw_configuration(
        600,
        2.3,
        min_degree=2,
        max_degree=200,
        planted_hubs=(1.0, 0.5, 0.25),
        seed=33,
    )


@pytest.fixture(scope="session")
def star_graph():
    return star(12)


@pytest.fixture(scope="session")
def path_graph():
    return path(10)


@pytest.fixture(scope="session")
def wordnet_tiny():
    return load_dataset("WordNet", scale=200)


@pytest.fixture(scope="session")
def reference():
    """scipy reference APSP solver (lazily imported)."""
    from repro.baselines import reference_apsp

    return reference_apsp


def assert_same_apsp(dist: np.ndarray, ref: np.ndarray) -> None:
    """Distances equal with matching inf patterns."""
    assert dist.shape == ref.shape
    ours_inf = ~np.isfinite(dist)
    ref_inf = ~np.isfinite(ref)
    assert np.array_equal(ours_inf, ref_inf)
    finite = ~ref_inf
    assert np.allclose(dist[finite], ref[finite])
