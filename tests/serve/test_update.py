"""Incremental edge updates: COW generations, byte identity, drills."""

from __future__ import annotations

import shutil
import tempfile
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.config import UpdateConfig
from repro.core.runner import solve_apsp
from repro.exceptions import StoreCorruptionError, StoreError
from repro.graphs import attach_random_weights, barabasi_albert
from repro.serve import (
    DistStore,
    QueryEngine,
    apply_edge_updates,
    apply_updates_to_graph,
    parse_edge_updates,
    solve_to_store,
)
from repro.serve.update import EdgeUpdate, _edge_weights


def _crcs(store):
    """Byte-identity fingerprint: per-shard + landmark checksums + ids.

    Checksums cover the encoded bytes and shard sizes are fixed by the
    manifest, so equal crcs means the served payloads are byte-equal
    regardless of the (generation-suffixed) file names underneath.
    """
    return (
        tuple(entry["crc32"] for entry in store.manifest["shards"]),
        store.manifest["landmarks"]["crc32"],
        tuple(store.manifest["landmarks"]["ids"]),
    )


@pytest.fixture()
def built(small_weighted, tmp_path):
    store = solve_to_store(
        small_weighted, tmp_path / "store", shard_rows=16, num_landmarks=4
    )
    return store, small_weighted


class TestBatchParsing:
    def test_dsl_round_trip(self):
        got = parse_edge_updates("set=1,2,5.0; del=3,4 ;set=9,7,0.25")
        assert got == [
            EdgeUpdate(1, 2, 5.0),
            EdgeUpdate(3, 4, None),
            EdgeUpdate(9, 7, 0.25),
        ]
        assert got[2].key == (7, 9)

    @pytest.mark.parametrize(
        "text",
        [
            "frob=1,2",          # unknown op
            "set=1,2",           # set needs a weight
            "del=1,2,3",         # del takes exactly two vertices
            "set=a,b,1.0",       # non-integer vertices
            "del=1",             # too few fields
            "set",               # no '=' at all
        ],
    )
    def test_dsl_rejects_malformed(self, text):
        with pytest.raises(StoreError, match="edge update"):
            parse_edge_updates(text)

    @pytest.mark.parametrize(
        "build",
        [
            lambda: EdgeUpdate(3, 3, 1.0),           # self loop
            lambda: EdgeUpdate(-1, 2, 1.0),          # negative vertex
            lambda: EdgeUpdate(1, 2, 0.0),           # non-positive weight
            lambda: EdgeUpdate(1, 2, -4.0),
            lambda: EdgeUpdate(1, 2, float("inf")),
            lambda: EdgeUpdate(1, 2, float("nan")),
            lambda: EdgeUpdate(True, 2, 1.0),        # bool is not an int
        ],
    )
    def test_update_field_validation(self, build):
        with pytest.raises(StoreError):
            build()


class TestGraphMutation:
    def test_insert_delete_reweight(self, small_weighted):
        edges = _edge_weights(small_weighted)
        (e_del, _), (e_rw, _) = sorted(edges.items())[:2]
        non_edge = next(
            (u, v)
            for u in range(small_weighted.num_vertices)
            for v in range(u + 1, small_weighted.num_vertices)
            if (u, v) not in edges
        )
        batch = [
            EdgeUpdate(*e_del),
            EdgeUpdate(*e_rw, weight=3.25),
            EdgeUpdate(*non_edge, weight=1.5),
        ]
        mutated = apply_updates_to_graph(small_weighted, batch)
        new_edges = _edge_weights(mutated)
        assert e_del not in new_edges
        assert new_edges[e_rw] == 3.25
        assert new_edges[non_edge] == 1.5
        assert len(new_edges) == len(edges)  # -1 +1
        # the input graph is untouched
        assert _edge_weights(small_weighted) == edges

    def test_rejects_deleting_absent_edge(self, small_weighted):
        edges = _edge_weights(small_weighted)
        non_edge = next(
            (u, v)
            for u in range(small_weighted.num_vertices)
            for v in range(u + 1, small_weighted.num_vertices)
            if (u, v) not in edges
        )
        with pytest.raises(StoreError, match="absent"):
            apply_updates_to_graph(small_weighted, [EdgeUpdate(*non_edge)])

    def test_rejects_duplicate_keys_and_out_of_range(self, small_weighted):
        with pytest.raises(StoreError, match="twice"):
            apply_updates_to_graph(
                small_weighted,
                [EdgeUpdate(1, 2, 1.0), EdgeUpdate(2, 1, 2.0)],
            )
        with pytest.raises(StoreError, match="out of range"):
            apply_updates_to_graph(
                small_weighted, [EdgeUpdate(1, 10_000, 1.0)]
            )

    def test_rejects_directed_graph(self):
        from repro.graphs import from_edges

        directed = from_edges(
            [(0, 1, 1.0), (1, 2, 1.0)], num_vertices=3, directed=True
        )
        with pytest.raises(StoreError, match="undirected"):
            apply_updates_to_graph(directed, [EdgeUpdate(0, 2, 1.0)])


class TestGenerations:
    def test_update_is_byte_identical_to_fresh_build(self, built, tmp_path):
        store, graph = built
        edges = _edge_weights(graph)
        (u, v), w = sorted(edges.items())[0]
        batch = [EdgeUpdate(u, v, w / 2.0)]  # decrease: provably dirty
        result = apply_edge_updates(store, graph, batch)

        assert result.generation == 1
        assert result.store.generation == 1
        assert result.dirty_shards  # a halved edge weight must dirty rows
        mutated = apply_updates_to_graph(graph, batch)
        fresh = solve_to_store(
            mutated, tmp_path / "fresh", shard_rows=16, num_landmarks=4
        )
        assert _crcs(result.store) == _crcs(fresh)
        result.store.verify()
        ref = solve_apsp(mutated, use_flags=False).dist
        assert np.array_equal(result.store.load_shard(0), ref[:16])

    def test_cow_files_coexist_and_generation_increments(self, built):
        store, graph = built
        edges = _edge_weights(graph)
        (u, v), w = sorted(edges.items())[0]

        r1 = apply_edge_updates(store, graph, [EdgeUpdate(u, v, w / 2.0)])
        g1_files = sorted(p.name for p in r1.store.path.glob("*.g0001.bin"))
        assert g1_files  # dirty shards written beside the old generation
        # old generation files survive (no prune by default) so live
        # readers holding the old manifest keep working
        assert (r1.store.path / "shard_00000.bin").exists()
        old = DistStore.open(store.path)
        assert old.generation == 1  # the manifest swap is the publish

        graph1 = apply_updates_to_graph(graph, [EdgeUpdate(u, v, w / 2.0)])
        r2 = apply_edge_updates(r1.store, graph1, [EdgeUpdate(u, v)])
        assert r2.generation == 2
        assert sorted(p.name for p in r2.store.path.glob("*.g0002.bin"))

    def test_noop_reweight_is_free(self, built):
        store, graph = built
        (u, v), w = sorted(_edge_weights(graph).items())[0]
        before = _crcs(store)
        result = apply_edge_updates(store, graph, [EdgeUpdate(u, v, w)])
        assert result.generation == 1
        assert result.dirty_shards == ()
        assert result.endpoints == ()
        assert result.cost_rows == 0
        assert _crcs(result.store) == before

    def test_prune_removes_superseded_files(self, built):
        store, graph = built
        (u, v), w = sorted(_edge_weights(graph).items())[0]
        result = apply_edge_updates(
            store,
            graph,
            [EdgeUpdate(u, v, w / 2.0)],
            config=UpdateConfig(prune=True),
        )
        assert result.pruned_files
        for name in result.pruned_files:
            assert not (result.store.path / name).exists()
        result.store.verify()

    def test_prescreen_off_is_byte_equivalent(self, built, tmp_path):
        store, graph = built
        (u, v), w = sorted(_edge_weights(graph).items())[0]
        batch = [EdgeUpdate(u, v, w / 2.0)]
        with_screen = apply_edge_updates(store, graph, batch)

        other = solve_to_store(
            graph, tmp_path / "other", shard_rows=16, num_landmarks=4
        )
        without = apply_edge_updates(
            other, graph, batch, config=UpdateConfig(prescreen=False)
        )
        assert without.dirty_shards == with_screen.dirty_shards
        assert without.certified_clean_shards == 0
        assert _crcs(without.store) == _crcs(with_screen.store)

    def test_result_to_dict_is_json_plain(self, built):
        import json

        store, graph = built
        (u, v), w = sorted(_edge_weights(graph).items())[0]
        result = apply_edge_updates(store, graph, [EdgeUpdate(u, v, w / 2)])
        payload = result.to_dict()
        json.dumps(payload)
        assert payload["generation"] == 1
        assert payload["cost_rows"] == result.cost_rows
        assert 0.0 <= payload["cost_ratio"] <= 2.0


class TestGuards:
    def test_wrong_graph_rejected_before_any_write(self, built):
        store, graph = built
        imposter = attach_random_weights(
            barabasi_albert(graph.num_vertices, 3, seed=9), seed=99
        )
        before = _crcs(store)
        (u, v), w = sorted(_edge_weights(imposter).items())[0]
        with pytest.raises(StoreError, match="graph"):
            apply_edge_updates(store, imposter, [EdgeUpdate(u, v, w / 2)])
        survivor = DistStore.open(store.path)
        assert survivor.generation == 0
        assert _crcs(survivor) == before

    def test_wrong_vertex_count_rejected(self, built):
        store, _ = built
        small = attach_random_weights(barabasi_albert(10, 2, seed=1), seed=2)
        with pytest.raises(StoreError, match="vertices"):
            apply_edge_updates(store, small, [EdgeUpdate(0, 5, 1.0)])

    def test_config_must_be_update_config(self, built):
        store, graph = built
        with pytest.raises(StoreError, match="UpdateConfig"):
            apply_edge_updates(
                store, graph, [EdgeUpdate(0, 1, 1.0)], config={"prune": True}
            )

    def test_verify_before_catches_rotten_store(self, built):
        store, graph = built
        (u, v), w = sorted(_edge_weights(graph).items())[0]
        shard_file = store.path / store.manifest["shards"][1]["file"]
        raw = bytearray(shard_file.read_bytes())
        raw[0] ^= 0xFF
        shard_file.write_bytes(bytes(raw))
        with pytest.raises(StoreCorruptionError):
            apply_edge_updates(store, graph, [EdgeUpdate(u, v, w / 2)])


class TestInFlightCorruptionDrill:
    def test_damaged_pending_file_aborts_with_old_generation(self, built):
        store, graph = built
        (u, v), w = sorted(_edge_weights(graph).items())[0]
        before = _crcs(store)

        def damage_pending(old_store, new_manifest):
            pending = sorted(old_store.path.glob("*.g0001.bin"))
            assert pending  # the hook runs after the new files land
            raw = bytearray(pending[0].read_bytes())
            raw[0] ^= 0xFF
            pending[0].write_bytes(bytes(raw))

        with pytest.raises(StoreCorruptionError):
            apply_edge_updates(
                store,
                graph,
                [EdgeUpdate(u, v, w / 2.0)],
                pre_swap_hook=damage_pending,
            )
        survivor = DistStore.open(store.path)
        assert survivor.generation == 0
        assert _crcs(survivor) == before
        survivor.verify()
        # the aborted generation leaves no orphans behind
        assert not list(survivor.path.glob("*.g0001.bin"))


class TestEngineGenerations:
    def test_refresh_swaps_answers_atomically(self, built):
        store, graph = built
        engine = QueryEngine(store, cache_shards=2)
        (u, v), w = sorted(_edge_weights(graph).items())[0]
        old_answer = engine.dist(u, v)

        batch = [EdgeUpdate(u, v, 0.01)]
        apply_edge_updates(store, graph, batch)
        # pre-refresh the engine still serves its old snapshot — a
        # half-adopted store would be a torn read
        assert engine.dist(u, v) == old_answer
        assert engine.refresh() == 1
        # weights are >= 0.5, so the direct 0.01 edge IS the shortest path
        assert engine.dist(u, v) == 0.01
        mutated = apply_updates_to_graph(graph, batch)
        ref = solve_apsp(mutated, use_flags=False).dist
        assert np.array_equal(engine.dist_from(u), ref[u])

    def test_threaded_readers_never_mix_generations(self, built):
        store, graph = built
        engine = QueryEngine(store, cache_shards=2)
        (u, v), _ = sorted(_edge_weights(graph).items())[0]
        old_answer = engine.dist(u, v)
        new_answer = 0.01

        stop = threading.Event()
        observed = [[] for _ in range(4)]

        def reader(bucket):
            while not stop.is_set():
                bucket.append(engine.dist(u, v))

        threads = [
            threading.Thread(target=reader, args=(b,)) for b in observed
        ]
        for t in threads:
            t.start()
        try:
            apply_edge_updates(store, graph, [EdgeUpdate(u, v, new_answer)])
            engine.refresh()
        finally:
            stop.set()
            for t in threads:
                t.join()

        seen = {val for bucket in observed for val in bucket}
        # every answer comes wholly from one generation — a value from
        # neither reference would mean a reader straddled the swap
        assert seen <= {old_answer, new_answer}
        assert engine.dist(u, v) == new_answer


@pytest.fixture(scope="module")
def base_stores(small_weighted, tmp_path_factory):
    """One pre-built gen-0 store per codec, copied fresh per example."""
    root = tmp_path_factory.mktemp("update-bases")
    paths = {}
    for codec in ("raw", "f4", "u16q"):
        paths[codec] = root / codec
        solve_to_store(
            small_weighted,
            paths[codec],
            shard_rows=16,
            num_landmarks=4,
            codec=codec,
        )
    return paths


@st.composite
def update_batches(draw, edges, n):
    """1-3 distinct-key mutations: delete, reweight, or insert."""
    keys = sorted(edges)
    batch = {}
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(["delete", "reweight", "insert"]))
        if kind == "insert":
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            key = (min(u, v), max(u, v))
            assume(u != v and key not in edges)
        else:
            key = keys[draw(st.integers(min_value=0, max_value=len(keys) - 1))]
        assume(key not in batch)
        if kind == "delete":
            batch[key] = EdgeUpdate(*key)
        else:
            w = draw(
                st.floats(
                    min_value=0.05,
                    max_value=40.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            batch[key] = EdgeUpdate(*key, weight=w)
    return list(batch.values())


class TestByteIdentityProperty:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data(), codec=st.sampled_from(["raw", "f4", "u16q"]))
    def test_update_equals_fresh_build(
        self, data, codec, base_stores, small_weighted
    ):
        batch = data.draw(
            update_batches(
                _edge_weights(small_weighted), small_weighted.num_vertices
            )
        )
        with tempfile.TemporaryDirectory() as tmp:
            live = f"{tmp}/live"
            shutil.copytree(base_stores[codec], live)
            store = DistStore.open(live)
            result = apply_edge_updates(store, small_weighted, batch)
            assert result.generation == 1
            result.store.verify()

            mutated = apply_updates_to_graph(small_weighted, batch)
            fresh = solve_to_store(
                mutated,
                f"{tmp}/fresh",
                shard_rows=16,
                num_landmarks=4,
                codec=codec,
            )
            assert _crcs(result.store) == _crcs(fresh)
