"""QueryEngine: cache accounting, batching, coalescing, degraded path."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.runner import solve_apsp
from repro.exceptions import ServeError
from repro.serve import QueryEngine, solve_to_store
from repro.types import INF


@pytest.fixture()
def served(small_weighted, tmp_path):
    store = solve_to_store(
        small_weighted, tmp_path / "store", shard_rows=16, num_landmarks=4
    )
    ref = solve_apsp(small_weighted, use_flags=False).dist
    return store, ref


class TestQueries:
    def test_point_and_row_exact(self, served):
        store, ref = served
        engine = QueryEngine(store, cache_shards=2)
        assert engine.dist(3, 77) == ref[3, 77]
        assert np.array_equal(engine.dist_from(50), ref[50])

    def test_top_k_matches_numpy(self, served):
        store, ref = served
        engine = QueryEngine(store)
        for u in (0, 17, 99):
            row = ref[u].copy()
            row[u] = INF
            expect = sorted(
                (v for v in range(store.n) if row[v] < INF),
                key=lambda v: (row[v], v),
            )[:5]
            got = engine.top_k(u, 5)
            assert [v for v, _ in got] == expect
            assert all(d == ref[u, v] for v, d in got)

    def test_top_k_larger_than_component(self, served):
        store, ref = served
        engine = QueryEngine(store)
        got = engine.top_k(0, store.n * 2)
        reachable = int((ref[0] < INF).sum()) - 1
        assert len(got) == reachable

    def test_batch_matches_individual(self, served):
        store, ref = served
        engine = QueryEngine(store, cache_shards=3)
        pairs = [(1, 2), (1, 99), (33, 4), (90, 8), (65, 66), (17, 17 + 1)]
        got = engine.dist_batch(pairs)
        assert np.array_equal(
            got, ref[[p[0] for p in pairs], [p[1] for p in pairs]]
        )
        # 6 queries over 5 distinct source shards -> 5 gathers
        assert engine.stats["batch_queries"] == len(pairs)
        assert engine.stats["batch_gathers"] == 5

    def test_empty_batch(self, served):
        store, _ = served
        assert len(QueryEngine(store).dist_batch([])) == 0

    def test_validation(self, served):
        store, _ = served
        engine = QueryEngine(store)
        with pytest.raises(ServeError):
            engine.dist(-1, 0)
        with pytest.raises(ServeError):
            engine.dist(0, store.n)
        with pytest.raises(ServeError):
            engine.top_k(0, 0)
        with pytest.raises(ServeError):
            engine.dist(True, 0)
        with pytest.raises(ServeError):
            QueryEngine(store, cache_shards=0)


class TestCache:
    def test_hit_miss_eviction_accounting(self, served):
        store, _ = served
        engine = QueryEngine(store, cache_shards=2)
        engine.dist(0, 1)    # shard 0: miss
        engine.dist(1, 1)    # shard 0: hit
        engine.dist(17, 1)   # shard 1: miss
        engine.dist(33, 1)   # shard 2: miss, evicts shard 0
        engine.dist(2, 1)    # shard 0: miss again
        stats = engine.stats
        assert stats["misses"] == 4
        assert stats["hits"] == 1
        assert stats["evictions"] == 2
        assert stats["shard_loads"] == 4
        assert engine.hit_rate() == pytest.approx(1 / 5)

    def test_lru_order(self, served):
        store, _ = served
        engine = QueryEngine(store, cache_shards=2)
        engine.dist(0, 1)    # shard 0
        engine.dist(17, 1)   # shard 1
        engine.dist(1, 1)    # touch shard 0 -> shard 1 is now LRU
        engine.dist(33, 1)   # shard 2 evicts shard 1
        assert set(engine.cached_shards()) == {0, 2}

    def test_coalescing_single_flight(self, served, monkeypatch):
        store, ref = served
        engine = QueryEngine(store, cache_shards=2)
        release = threading.Event()
        real_load = store.load_shard
        loads = []

        def slow_load(index, **kwargs):
            loads.append(index)
            release.wait(timeout=5)
            return real_load(index, **kwargs)

        monkeypatch.setattr(store, "load_shard", slow_load)
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(engine.dist, 3, v) for v in range(8)
            ]
            # give every worker time to reach the cache before the
            # leader's load completes
            while engine.stats["coalesced"] + len(loads) < 8:
                if all(f.done() for f in futures):
                    break
            release.set()
            results = [f.result() for f in futures]
        assert results == [ref[3, v] for v in range(8)]
        # one disk load served all 8 concurrent same-shard queries
        assert loads == [0]
        assert engine.stats["shard_loads"] == 1
        assert engine.stats["coalesced"] >= 1

    def test_failed_load_does_not_hang_waiters(self, served, monkeypatch):
        store, _ = served
        engine = QueryEngine(store, cache_shards=2)
        calls = []
        real_load = store.load_shard

        def flaky_load(index, **kwargs):
            calls.append(index)
            if len(calls) == 1:
                raise OSError("disk went away")
            return real_load(index, **kwargs)

        monkeypatch.setattr(store, "load_shard", flaky_load)
        with pytest.raises(OSError):
            engine.dist(0, 1)
        # next query elects a new leader and succeeds
        assert engine.dist(0, 1) == store.row(0)[1]


class TestApprox:
    def test_upper_bound_and_flagging(self, served):
        store, ref = served
        engine = QueryEngine(store)
        for u, v in [(0, 50), (3, 77), (90, 12)]:
            bound = engine.dist_approx(u, v)
            assert bound >= ref[u, v] - 1e-12
        assert engine.stats["approx_answers"] == 3

    def test_exact_when_landmark_on_path(self, served):
        store, ref = served
        engine = QueryEngine(store)
        landmark = store.landmark_ids[0]
        # from the landmark itself the bound collapses to d(l,l)+d(l,v)
        assert engine.dist_approx(landmark, 5) == ref[landmark, 5]

    def test_no_landmarks_raises(self, small_weighted, tmp_path):
        store = solve_to_store(
            small_weighted, tmp_path / "bare", shard_rows=16,
            num_landmarks=0,
        )
        with pytest.raises(ServeError, match="landmark"):
            QueryEngine(store).dist_approx(0, 1)
