"""QueryEngine: cache accounting, batching, coalescing, degraded path."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.runner import solve_apsp
from repro.exceptions import ServeError
from repro.serve import QueryEngine, solve_to_store
from repro.types import INF


@pytest.fixture()
def served(small_weighted, tmp_path):
    store = solve_to_store(
        small_weighted, tmp_path / "store", shard_rows=16, num_landmarks=4
    )
    ref = solve_apsp(small_weighted, use_flags=False).dist
    return store, ref


class TestQueries:
    def test_point_and_row_exact(self, served):
        store, ref = served
        engine = QueryEngine(store, cache_shards=2)
        assert engine.dist(3, 77) == ref[3, 77]
        assert np.array_equal(engine.dist_from(50), ref[50])

    def test_top_k_matches_numpy(self, served):
        store, ref = served
        engine = QueryEngine(store)
        for u in (0, 17, 99):
            row = ref[u].copy()
            row[u] = INF
            expect = sorted(
                (v for v in range(store.n) if row[v] < INF),
                key=lambda v: (row[v], v),
            )[:5]
            got = engine.top_k(u, 5)
            assert [v for v, _ in got] == expect
            assert all(d == ref[u, v] for v, d in got)

    def test_top_k_tie_group_straddling_k(self, tmp_path):
        # star: every leaf is at exactly 1.0 from the hub, leaves are
        # at exactly 2.0 from each other — tie groups wider than k.
        # An argpartition-style cutoff keeps an *arbitrary* subset of
        # the boundary tie group; the contract is smallest-id-first.
        from repro.graphs import star

        store = solve_to_store(star(9), tmp_path / "ties", shard_rows=4)
        engine = QueryEngine(store)
        assert engine.top_k(0, 3) == [(1, 1.0), (2, 1.0), (3, 1.0)]
        # from a leaf: one neighbour at 1.0, then a 7-way tie at 2.0
        # straddles every k in 2..7
        for k in (2, 4, 6):
            expect = [(0, 1.0)] + [
                (v, 2.0) for v in range(2, 9) if v != 1
            ][: k - 1]
            assert engine.top_k(1, k) == expect

    def test_top_k_larger_than_component(self, served):
        store, ref = served
        engine = QueryEngine(store)
        got = engine.top_k(0, store.n * 2)
        reachable = int((ref[0] < INF).sum()) - 1
        assert len(got) == reachable

    def test_batch_matches_individual(self, served):
        store, ref = served
        engine = QueryEngine(store, cache_shards=3)
        pairs = [(1, 2), (1, 99), (33, 4), (90, 8), (65, 66), (17, 17 + 1)]
        got = engine.dist_batch(pairs)
        assert np.array_equal(
            got, ref[[p[0] for p in pairs], [p[1] for p in pairs]]
        )
        # 6 queries over 5 distinct source shards -> 5 gathers
        assert engine.stats["batch_queries"] == len(pairs)
        assert engine.stats["batch_gathers"] == 5

    def test_empty_batch(self, served):
        store, _ = served
        assert len(QueryEngine(store).dist_batch([])) == 0

    def test_validation(self, served):
        store, _ = served
        engine = QueryEngine(store)
        with pytest.raises(ServeError):
            engine.dist(-1, 0)
        with pytest.raises(ServeError):
            engine.dist(0, store.n)
        with pytest.raises(ServeError):
            engine.top_k(0, 0)
        with pytest.raises(ServeError):
            engine.dist(True, 0)
        with pytest.raises(ServeError):
            QueryEngine(store, cache_shards=0)


class TestCache:
    def test_hit_miss_eviction_accounting(self, served):
        store, _ = served
        engine = QueryEngine(store, cache_shards=2)
        engine.dist(0, 1)    # shard 0: miss
        engine.dist(1, 1)    # shard 0: hit
        engine.dist(17, 1)   # shard 1: miss
        engine.dist(33, 1)   # shard 2: miss, evicts shard 0
        engine.dist(2, 1)    # shard 0: miss again
        stats = engine.stats
        assert stats["misses"] == 4
        assert stats["hits"] == 1
        assert stats["evictions"] == 2
        assert stats["shard_loads"] == 4
        assert engine.hit_rate() == pytest.approx(1 / 5)

    def test_lru_order(self, served):
        store, _ = served
        engine = QueryEngine(store, cache_shards=2)
        engine.dist(0, 1)    # shard 0
        engine.dist(17, 1)   # shard 1
        engine.dist(1, 1)    # touch shard 0 -> shard 1 is now LRU
        engine.dist(33, 1)   # shard 2 evicts shard 1
        assert set(engine.cached_shards()) == {0, 2}

    def test_coalescing_single_flight(self, served, monkeypatch):
        store, ref = served
        engine = QueryEngine(store, cache_shards=2)
        release = threading.Event()
        real_load = store.load_shard
        loads = []

        def slow_load(index, **kwargs):
            loads.append(index)
            release.wait(timeout=5)
            return real_load(index, **kwargs)

        monkeypatch.setattr(store, "load_shard", slow_load)
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(engine.dist, 3, v) for v in range(8)
            ]
            # give every worker time to reach the cache before the
            # leader's load completes
            while engine.stats["coalesced"] + len(loads) < 8:
                if all(f.done() for f in futures):
                    break
            release.set()
            results = [f.result() for f in futures]
        assert results == [ref[3, v] for v in range(8)]
        # one disk load served all 8 concurrent same-shard queries
        assert loads == [0]
        assert engine.stats["shard_loads"] == 1
        assert engine.stats["coalesced"] >= 1

    def test_failed_load_does_not_hang_waiters(self, served, monkeypatch):
        store, _ = served
        engine = QueryEngine(store, cache_shards=2)
        calls = []
        real_load = store.load_shard

        def flaky_load(index, **kwargs):
            calls.append(index)
            if len(calls) == 1:
                raise OSError("disk went away")
            return real_load(index, **kwargs)

        monkeypatch.setattr(store, "load_shard", flaky_load)
        with pytest.raises(OSError):
            engine.dist(0, 1)
        # next query elects a new leader and succeeds
        assert engine.dist(0, 1) == store.row(0)[1]


class TestBounds:
    def test_bounds_contain_truth_everywhere(self, served):
        store, ref = served
        engine = QueryEngine(store)
        for u in range(0, store.n, 7):
            for v in range(0, store.n, 11):
                lo, hi = engine.dist_bounds(u, v)
                assert lo <= ref[u, v] + 1e-12
                assert hi >= ref[u, v] - 1e-12

    def test_approx_is_counted_bounds(self, served):
        store, ref = served
        engine = QueryEngine(store)
        for u, v in [(0, 50), (3, 77), (90, 12)]:
            lo, hi = engine.dist_approx(u, v)
            assert lo <= ref[u, v] + 1e-12 <= hi + 2e-12
        assert engine.stats["approx"] == 3

    def test_gap_zero_at_landmark_endpoint(self, served):
        store, ref = served
        engine = QueryEngine(store)
        landmark = store.landmark_ids[0]
        # from the landmark itself both bounds collapse to d(l, v)
        lo, hi = engine.dist_bounds(landmark, 5)
        assert lo == hi == ref[landmark, 5]

    def test_bounds_never_load_shards(self, served):
        store, _ = served
        engine = QueryEngine(store)
        for u, v in [(0, 50), (3, 77), (90, 12)]:
            engine.dist_bounds(u, v)
        assert engine.stats["shard_loads"] == 0
        assert engine.stats["bytes_loaded"] == 0

    def test_no_landmarks_raises(self, small_weighted, tmp_path):
        store = solve_to_store(
            small_weighted, tmp_path / "bare", shard_rows=16,
            num_landmarks=0,
        )
        with pytest.raises(ServeError, match="landmark"):
            QueryEngine(store).dist_approx(0, 1)

    def test_concurrent_landmark_init_loads_once(self, served,
                                                 monkeypatch):
        store, _ = served
        engine = QueryEngine(store)
        barrier = threading.Barrier(8)
        real_rows = store.landmark_rows
        calls = []

        def slow_rows(**kwargs):
            calls.append(1)
            return real_rows(**kwargs)

        monkeypatch.setattr(store, "landmark_rows", slow_rows)

        def probe():
            barrier.wait(timeout=5)
            return engine.dist_bounds(3, 77)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [f.result()
                       for f in [pool.submit(probe) for _ in range(8)]]
        assert len(set(results)) == 1
        # the lock-guarded lazy init must read the pinned rows exactly
        # once no matter how many threads race the first call
        assert len(calls) == 1


class TestShortCircuit:
    def test_epsilon_zero_short_circuits_landmark_pairs(self, served):
        store, ref = served
        engine = QueryEngine(store, epsilon=0.0)
        landmark = store.landmark_ids[0]
        value = engine.dist(landmark, 9)
        assert value == ref[landmark, 9]
        assert engine.stats["short_circuits"] == 1
        assert engine.stats["shard_loads"] == 0

    def test_short_circuit_error_within_half_epsilon(self, served):
        store, ref = served
        eps = 1.5
        engine = QueryEngine(store, epsilon=eps)
        for u in range(0, store.n, 13):
            for v in range(0, store.n, 17):
                value = engine.dist(u, v)
                if value == INF and ref[u, v] == INF:
                    continue
                assert abs(value - ref[u, v]) <= eps / 2 + 1e-12

    def test_unreachable_pair_short_circuits_to_inf(
        self, small_weighted, tmp_path
    ):
        from repro.graphs.csr import CSRGraph

        # add an isolated vertex so some pairs are (inf, inf)-bounded
        g = small_weighted
        iso = CSRGraph(
            np.append(g.indptr, g.indptr[-1]),
            g.indices,
            g.weights,
            directed=g.directed,
        )
        store = solve_to_store(
            iso, tmp_path / "iso", shard_rows=16, num_landmarks=4
        )
        engine = QueryEngine(store, epsilon=0.0)
        assert engine.dist(0, iso.num_vertices - 1) == INF
        assert engine.stats["short_circuits"] == 1
        assert engine.stats["shard_loads"] == 0

    def test_no_epsilon_means_no_short_circuit(self, served):
        store, _ = served
        engine = QueryEngine(store)
        landmark = store.landmark_ids[0]
        engine.dist(landmark, 9)
        assert engine.stats["short_circuits"] == 0
        assert engine.stats["shard_loads"] == 1

    def test_engine_inherits_store_epsilon(self, small_weighted,
                                           tmp_path):
        store = solve_to_store(
            small_weighted, tmp_path / "eps", shard_rows=16,
            num_landmarks=4, epsilon=0.0,
        )
        engine = QueryEngine(store)
        assert engine.epsilon == 0.0
        engine.dist(store.landmark_ids[0], 9)
        assert engine.stats["short_circuits"] == 1

    def test_bad_epsilon_rejected(self, served):
        store, _ = served
        for bad in (-1.0, float("inf"), float("nan"), True, "0"):
            with pytest.raises(ServeError, match="epsilon"):
                QueryEngine(store, epsilon=bad)


class TestStatsObsParity:
    """engine.stats and the global obs counters must tell one story."""

    PAIRS = [
        ("hits", "serve.cache.hits"),
        ("misses", "serve.cache.misses"),
        ("coalesced", "serve.cache.coalesced"),
        ("evictions", "serve.cache.evictions"),
        ("short_circuits", "serve.query.short_circuits"),
        ("approx", "serve.query.approx"),
        ("batch_queries", "serve.batch.queries"),
        ("batch_gathers", "serve.batch.gathers"),
    ]

    def test_counters_match_after_mixed_traffic(self, served):
        from repro.obs.metrics import MetricsRegistry, use_registry

        store, _ = served
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = QueryEngine(store, cache_shards=2)
            for u, v in [(0, 50), (3, 77), (90, 12), (0, 51), (17, 3)]:
                engine.dist(u, v)
            engine.dist_batch([(1, 2), (1, 99), (33, 4)])
            engine.dist_approx(0, 99)
            engine.dist_approx(42, 7)
        counters = registry.counters()
        for stat_key, obs_key in self.PAIRS:
            assert engine.stats[stat_key] == counters.get(obs_key, 0), (
                stat_key, obs_key,
            )
