"""Traffic generation and replay: determinism, skew, opt-vs-naive."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.serve import (
    AdmissionPolicy,
    QueryEngine,
    ServeCostModel,
    ServeFrontend,
    TrafficSpec,
    generate_trace,
    replay_threaded,
    replay_virtual,
    solve_to_store,
)


SPEC = TrafficSpec(num_requests=400, rate=2000.0, zipf_s=1.1, seed=13)


class TestTraffic:
    def test_trace_is_deterministic(self):
        assert generate_trace(SPEC, 100) == generate_trace(SPEC, 100)

    def test_trace_shape(self):
        trace = generate_trace(SPEC, 100)
        assert len(trace) == SPEC.num_requests
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= r.u < 100 for r in trace)
        for r in trace:
            if r.kind == "point":
                assert 0 <= r.v < 100 and r.v != r.u
            elif r.kind == "topk":
                assert r.k == SPEC.topk_k
            else:
                assert r.kind == "row"

    def test_zipf_skew_concentrates_mass(self):
        skewed = generate_trace(
            TrafficSpec(num_requests=2000, zipf_s=1.2, seed=1), 200
        )
        uniform = generate_trace(
            TrafficSpec(num_requests=2000, zipf_s=0.0, seed=1), 200
        )

        def top10_share(trace):
            counts = Counter(r.u for r in trace)
            top = sum(c for _, c in counts.most_common(10))
            return top / len(trace)

        assert top10_share(skewed) > 2 * top10_share(uniform)

    def test_class_mix_follows_fractions(self):
        spec = TrafficSpec(
            num_requests=4000, seed=3, row_frac=0.1, topk_frac=0.2
        )
        trace = generate_trace(spec, 100)
        kinds = Counter(r.kind for r in trace)
        assert kinds["row"] / len(trace) == pytest.approx(0.1, abs=0.03)
        assert kinds["topk"] / len(trace) == pytest.approx(0.2, abs=0.03)

    def test_spec_validation(self):
        with pytest.raises(ServeError):
            TrafficSpec(num_requests=0)
        with pytest.raises(ServeError):
            TrafficSpec(rate=0.0)
        with pytest.raises(ServeError):
            TrafficSpec(zipf_s=-1.0)
        with pytest.raises(ServeError):
            TrafficSpec(row_frac=0.8, topk_frac=0.4)
        with pytest.raises(ServeError):
            generate_trace(SPEC, 1)


class TestVirtualReplay:
    def test_replay_is_deterministic(self):
        trace = generate_trace(SPEC, 100)
        a = replay_virtual(trace, n=100, shard_rows=16)
        b = replay_virtual(trace, n=100, shard_rows=16)
        assert a.counters == b.counters
        assert a.latencies == b.latencies

    def test_optimized_beats_naive(self):
        trace = generate_trace(SPEC, 100)
        opt = replay_virtual(trace, n=100, shard_rows=16, optimized=True)
        naive = replay_virtual(trace, n=100, shard_rows=16, optimized=False)
        assert opt.counters["shard_loads"] < naive.counters["shard_loads"]
        assert opt.mean_latency() < naive.mean_latency()
        assert naive.counters["cache_hits"] == 0
        assert naive.counters["batches"] == 0
        assert opt.counters["batches"] >= 1

    def test_outcome_conservation(self):
        trace = generate_trace(SPEC, 100)
        for optimized in (True, False):
            res = replay_virtual(
                trace, n=100, shard_rows=16, optimized=optimized,
                policy=AdmissionPolicy(max_point=4, max_row=1, max_topk=1),
            )
            outcomes = (
                res.counters["admitted"] + res.counters["degraded"]
                + res.counters["shed"]
            )
            assert outcomes == len(trace)
            answered = sum(len(v) for v in res.latencies.values())
            assert answered == (
                res.counters["admitted"] + res.counters["degraded"]
            )

    def test_saturation_degrades_points_and_sheds_heavy(self):
        burst = generate_trace(
            TrafficSpec(num_requests=400, rate=50000.0, seed=13), 100
        )
        res = replay_virtual(
            burst, n=100, shard_rows=16,
            policy=AdmissionPolicy(max_point=4, max_row=1, max_topk=1),
        )
        assert res.counters["degraded"] > 0
        # degraded answers come back at the flat approx cost
        assert min(res.latencies["point"]) == ServeCostModel().approx_cost

    def test_latency_percentiles_monotone(self):
        trace = generate_trace(SPEC, 100)
        res = replay_virtual(trace, n=100, shard_rows=16)
        assert (
            res.percentile_latency(50)
            <= res.percentile_latency(99)
            <= max(res.all_latencies())
        )
        assert res.hit_rate() == res.counters["cache_hits"] / (
            res.counters["cache_hits"] + res.counters["shard_loads"]
        )

    def test_validation(self):
        with pytest.raises(ServeError):
            replay_virtual([], n=0, shard_rows=16)


class TestCodecAwareReplay:
    def test_bytes_loaded_tracks_shard_sizes(self):
        trace = generate_trace(SPEC, 100)
        res = replay_virtual(trace, n=100, shard_rows=16)
        # default sizing: full shards are 16 rows × 100 cols × 8 bytes,
        # the last shard holds the 4 remaining rows
        sizes = [16 * 100 * 8] * 6 + [4 * 100 * 8]
        explicit = replay_virtual(
            trace, n=100, shard_rows=16, shard_nbytes=sizes
        )
        assert res.counters == explicit.counters
        assert res.counters["bytes_loaded"] > 0

    def test_smaller_shards_cut_latency_and_bytes(self):
        trace = generate_trace(SPEC, 100)
        raw = replay_virtual(trace, n=100, shard_rows=16)
        quarter = [
            (min(16, 100 - s * 16) * 100 * 8) // 4 for s in range(7)
        ]
        small = replay_virtual(
            trace, n=100, shard_rows=16, shard_nbytes=quarter
        )
        # same cache behaviour (sizes don't change which shards load),
        # strictly fewer bytes and cheaper loads
        assert small.counters["shard_loads"] == raw.counters["shard_loads"]
        assert small.counters["bytes_loaded"] * 4 \
            == raw.counters["bytes_loaded"]
        assert small.mean_latency() < raw.mean_latency()

    def test_shard_nbytes_count_validated(self):
        trace = generate_trace(SPEC, 100)
        with pytest.raises(ServeError, match="shard_nbytes"):
            replay_virtual(
                trace, n=100, shard_rows=16, shard_nbytes=[100] * 3
            )

    def test_short_circuits_skip_loads(self):
        trace = generate_trace(SPEC, 100)
        plain = replay_virtual(trace, n=100, shard_rows=16)
        sc = [i for i, r in enumerate(trace) if r.kind == "point"][:200]
        fast = replay_virtual(
            trace, n=100, shard_rows=16, short_circuits=sc
        )
        assert fast.counters["short_circuits"] > 0
        assert fast.counters["shard_loads"] < plain.counters["shard_loads"]
        assert fast.counters["bytes_loaded"] < plain.counters["bytes_loaded"]
        # every outcome is still accounted for
        outcomes = (
            fast.counters["admitted"] + fast.counters["degraded"]
            + fast.counters["shed"]
        )
        assert outcomes == len(trace)

    def test_naive_replay_ignores_short_circuits(self):
        trace = generate_trace(SPEC, 100)
        sc = list(range(len(trace)))
        naive = replay_virtual(
            trace, n=100, shard_rows=16, optimized=False,
            short_circuits=sc,
        )
        assert naive.counters["short_circuits"] == 0


class TestThreadedReplay:
    def test_exact_answers_match_ground_truth(self, small_weighted,
                                              tmp_path):
        from repro.core.runner import solve_apsp

        store = solve_to_store(
            small_weighted, tmp_path / "store", shard_rows=16,
            num_landmarks=4,
        )
        engine = QueryEngine(store, cache_shards=3)
        frontend = ServeFrontend(engine)
        trace = generate_trace(SPEC, store.n)
        ref = solve_apsp(small_weighted, use_flags=False).dist
        result, responses = replay_threaded(trace, frontend, num_threads=4)
        assert len(responses) == len(trace)
        for req, resp in zip(trace, responses):
            if resp.status != "ok":
                continue
            if req.kind == "point":
                assert resp.value == ref[req.u, req.v]
            elif req.kind == "row":
                assert np.array_equal(resp.value, ref[req.u])
        outcomes = (
            result.counters["admitted"] + result.counters["degraded"]
            + result.counters["shed"]
        )
        assert outcomes == len(trace)
        assert result.counters["shard_loads"] == engine.stats["shard_loads"]

    def test_validation(self, small_weighted, tmp_path):
        store = solve_to_store(
            small_weighted, tmp_path / "s", shard_rows=16
        )
        frontend = ServeFrontend(QueryEngine(store))
        with pytest.raises(ServeError):
            replay_threaded([], frontend, num_threads=0)
