"""Store corruption: deterministic injection, detection, exact repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runner import solve_apsp
from repro.exceptions import (
    FaultPlanError,
    StoreCorruptionError,
    StoreError,
)
from repro.faults import StoreCorruptionSpec, parse_store_corruption
from repro.serve import solve_to_store


@pytest.fixture()
def built(small_weighted, tmp_path):
    store = solve_to_store(
        small_weighted, tmp_path / "store", shard_rows=16, num_landmarks=3
    )
    return store, small_weighted


class TestSpec:
    def test_deterministic_offsets(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(bytes(1000))
        spec = StoreCorruptionSpec(shard=0, nbytes=5, seed=7)
        offsets_a = spec.apply(path)
        path.write_bytes(bytes(1000))
        offsets_b = spec.apply(path)
        assert offsets_a.tolist() == offsets_b.tolist()
        assert len(offsets_a) == 5

    def test_xor_always_changes_bytes(self, tmp_path):
        path = tmp_path / "blob"
        original = bytes(range(256)) * 4
        path.write_bytes(original)
        offsets = StoreCorruptionSpec(shard=0, nbytes=16, seed=1).apply(path)
        damaged = path.read_bytes()
        for off in offsets:
            assert damaged[off] != original[off]

    def test_dsl_round_trip(self):
        spec = parse_store_corruption("shard=2,nbytes=4,seed=7")
        assert spec == StoreCorruptionSpec(shard=2, nbytes=4, seed=7)
        assert StoreCorruptionSpec.from_dict(spec.to_dict()) == spec

    def test_dsl_and_field_validation(self):
        with pytest.raises(FaultPlanError):
            parse_store_corruption("shard=2,bogus=1")
        with pytest.raises(FaultPlanError):
            parse_store_corruption("shard")
        with pytest.raises(FaultPlanError):
            parse_store_corruption("nbytes=1")  # shard required
        with pytest.raises(FaultPlanError):
            StoreCorruptionSpec(shard=-1)
        with pytest.raises(FaultPlanError):
            StoreCorruptionSpec(shard=0, nbytes=0)


class TestStoreResolution:
    def test_resolve_finds_manifest_path(self, built):
        store, _ = built
        spec = StoreCorruptionSpec(shard=2, nbytes=3, seed=5)
        target = spec.resolve(store)
        assert target == store.path / store.manifest["shards"][2]["file"]

    def test_resolve_rejects_out_of_range_shard(self, built):
        store, _ = built
        spec = StoreCorruptionSpec(shard=store.num_shards, nbytes=1)
        with pytest.raises(FaultPlanError, match="shard"):
            spec.resolve(store)

    def test_apply_to_store_damages_encoded_bytes(self, built):
        store, _ = built
        spec = StoreCorruptionSpec(shard=1, nbytes=4, seed=9)
        before = spec.resolve(store).read_bytes()
        spec.apply_to_store(store)
        assert spec.resolve(store).read_bytes() != before
        with pytest.raises(StoreCorruptionError):
            store.load_shard(1)


class TestDetectionAndRepair:
    def test_load_shard_detects(self, built):
        store, _ = built
        target = store.path / store.manifest["shards"][2]["file"]
        StoreCorruptionSpec(shard=2, nbytes=3, seed=5).apply(target)
        with pytest.raises(StoreCorruptionError) as exc_info:
            store.load_shard(2)
        assert exc_info.value.shards == (2,)
        # unverified load still works (how repair reads around damage)
        store.load_shard(2, verify=False)

    def test_verify_reports_all_damaged_shards(self, built):
        store, _ = built
        for shard in (1, 3):
            StoreCorruptionSpec(shard=shard, nbytes=2, seed=shard).apply(
                store.path / store.manifest["shards"][shard]["file"]
            )
        with pytest.raises(StoreCorruptionError) as exc_info:
            store.verify()
        assert set(exc_info.value.shards) == {1, 3}

    def test_repair_is_byte_exact(self, built):
        store, graph = built
        target = store.path / store.manifest["shards"][2]["file"]
        before = target.read_bytes()
        StoreCorruptionSpec(shard=2, nbytes=6, seed=11).apply(target)
        assert store.repair(graph) == [2]
        assert target.read_bytes() == before
        store.verify()
        ref = solve_apsp(graph, use_flags=False).dist
        assert np.array_equal(store.load_shard(2), ref[32:48])

    def test_repair_clean_store_is_noop(self, built):
        store, graph = built
        assert store.repair(graph) == []

    def test_repair_rejects_wrong_graph(self, built, small_ba):
        store, _ = built
        target = store.path / store.manifest["shards"][0]["file"]
        StoreCorruptionSpec(shard=0, nbytes=2, seed=0).apply(target)
        from repro.graphs import attach_random_weights

        imposter = attach_random_weights(small_ba, seed=99)
        if imposter.num_vertices != store.n:
            with pytest.raises(StoreError):
                store.repair(imposter)
        else:
            with pytest.raises(StoreError, match="graph"):
                store.repair(imposter)

    def test_landmark_corruption_detected_and_repaired(self, built):
        store, graph = built
        lm_path = store.path / store.manifest["landmarks"]["file"]
        before = lm_path.read_bytes()
        StoreCorruptionSpec(shard=0, nbytes=4, seed=2).apply(lm_path)
        with pytest.raises(StoreCorruptionError):
            store.landmark_rows()
        assert store.repair(graph) == ["landmarks"]
        assert lm_path.read_bytes() == before

    def test_landmark_target_dsl_and_dict_round_trip(self):
        spec = parse_store_corruption("target=landmarks,nbytes=2,seed=3")
        assert spec.target == "landmarks"
        assert spec.shard == 0  # auto-filled, unused for this target
        assert spec.to_dict() == {
            "shard": 0, "nbytes": 2, "seed": 3, "target": "landmarks",
        }
        assert StoreCorruptionSpec.from_dict(spec.to_dict()) == spec
        # the default target stays out of the dict for older readers
        assert "target" not in StoreCorruptionSpec(shard=1).to_dict()
        with pytest.raises(FaultPlanError):
            StoreCorruptionSpec(shard=0, target="manifest")

    def test_landmark_target_resolves_and_damages(self, built):
        store, graph = built
        spec = StoreCorruptionSpec(shard=0, nbytes=3, seed=4,
                                   target="landmarks")
        target = spec.resolve(store)
        assert target == store.path / store.manifest["landmarks"]["file"]
        spec.apply_to_store(store)
        with pytest.raises(StoreCorruptionError) as exc_info:
            store.verify()
        assert exc_info.value.shards == ("landmarks",)
        assert store.repair(graph) == ["landmarks"]
        store.verify()

    def test_landmark_target_requires_pinned_landmarks(
        self, small_weighted, tmp_path
    ):
        store = solve_to_store(
            small_weighted, tmp_path / "bare", shard_rows=32,
            num_landmarks=0,
        )
        spec = StoreCorruptionSpec(shard=0, target="landmarks")
        with pytest.raises(FaultPlanError, match="no landmarks"):
            spec.resolve(store)
