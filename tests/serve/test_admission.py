"""Admission control: budgets, degraded/shed outcomes, release semantics."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import ServeError
from repro.serve import (
    AdmissionPolicy,
    QueryEngine,
    QueryResponse,
    ServeFrontend,
    solve_to_store,
)


@pytest.fixture()
def frontend(small_weighted, tmp_path):
    store = solve_to_store(
        small_weighted, tmp_path / "store", shard_rows=16, num_landmarks=4
    )
    engine = QueryEngine(store, cache_shards=3)
    return ServeFrontend(engine, policy=AdmissionPolicy(
        max_point=2, max_row=1, max_topk=1,
    ))


class TestPolicy:
    def test_limits(self):
        policy = AdmissionPolicy(max_point=5, max_row=2, max_topk=3)
        assert policy.limit("point") == 5
        assert policy.limit("row") == 2
        assert policy.limit("topk") == 3

    def test_validation(self):
        with pytest.raises(ServeError, match="max_point"):
            AdmissionPolicy(max_point=0)
        with pytest.raises(ServeError, match="max_row"):
            AdmissionPolicy(max_row=True)

    def test_response_status_validation(self):
        with pytest.raises(ServeError, match="status"):
            QueryResponse(klass="point", value=1.0, status="maybe")


class TestFrontend:
    def test_exact_answers_not_flagged(self, frontend):
        resp = frontend.point(3, 77)
        assert resp.status == "ok" and resp.approx is False
        assert resp.value == frontend.engine.dist(3, 77)
        assert frontend.counts["admitted"] >= 1
        assert frontend.counts["degraded"] == 0

    def test_budget_released_after_each_request(self, frontend):
        for _ in range(10):  # far more sequential requests than max_point
            assert frontend.point(0, 1).status == "ok"
        assert frontend.inflight() == {"point": 0, "row": 0, "topk": 0}
        assert frontend.counts["admitted"] == 10

    def test_point_degrades_under_saturation(self, frontend, monkeypatch):
        release = threading.Event()
        real_dist = frontend.engine.dist

        def slow_dist(u, v):
            release.wait(timeout=5)
            return real_dist(u, v)

        monkeypatch.setattr(frontend.engine, "dist", slow_dist)
        with ThreadPoolExecutor(max_workers=2) as pool:
            blockers = [pool.submit(frontend.point, 0, i) for i in (1, 2)]
            while frontend.inflight()["point"] < 2:
                pass
            # budget full: this call must not block — it degrades
            resp = frontend.point(5, 50)
            release.set()
            for f in blockers:
                assert f.result().status == "ok"
        assert resp.status == "degraded"
        assert resp.approx is True
        assert resp.value >= real_dist(5, 50) - 1e-12
        # a degraded answer carries its certified ALT error bar: the
        # served value is the upper bound, and the truth sits inside
        assert resp.value == resp.hi
        assert resp.lo <= real_dist(5, 50) + 1e-12
        assert real_dist(5, 50) <= resp.hi + 1e-12
        assert frontend.counts["degraded"] == 1

    def test_exact_answers_have_no_error_bar(self, frontend):
        resp = frontend.point(3, 77)
        assert resp.lo is None and resp.hi is None

    def test_row_and_topk_shed_under_saturation(self, frontend, monkeypatch):
        release = threading.Event()
        real_row = frontend.engine.dist_from
        real_topk = frontend.engine.top_k

        def slow_row(u):
            release.wait(timeout=5)
            return real_row(u)

        def slow_topk(u, k):
            release.wait(timeout=5)
            return real_topk(u, k)

        monkeypatch.setattr(frontend.engine, "dist_from", slow_row)
        monkeypatch.setattr(frontend.engine, "top_k", slow_topk)
        with ThreadPoolExecutor(max_workers=2) as pool:
            row_blocker = pool.submit(frontend.row, 0)
            topk_blocker = pool.submit(frontend.topk, 0, 3)
            while (frontend.inflight()["row"] < 1
                   or frontend.inflight()["topk"] < 1):
                pass
            shed_row = frontend.row(1)
            shed_topk = frontend.topk(1, 3)
            release.set()
            assert row_blocker.result().status == "ok"
            assert topk_blocker.result().status == "ok"
        assert shed_row.status == "shed" and shed_row.value is None
        assert shed_topk.status == "shed" and shed_topk.value is None
        assert frontend.counts["shed"] == 2

    def test_budget_released_after_engine_failure(self, frontend,
                                                  monkeypatch):
        def boom(u, v):
            raise RuntimeError("engine fell over")

        monkeypatch.setattr(frontend.engine, "dist", boom)
        for _ in range(5):
            with pytest.raises(RuntimeError):
                frontend.point(0, 1)
        assert frontend.inflight()["point"] == 0
