"""serve bench: artifact validity, determinism, regress gating."""

from __future__ import annotations

import json

import pytest

from repro.obs.artifact import validate_artifact
from repro.obs.regress import compare_artifacts
from repro.serve.bench import run_serve_smoke


@pytest.fixture(scope="module")
def smoke_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("serve-smoke")


@pytest.fixture(scope="module")
def smoke(smoke_dir):
    # the CI smoke configuration (n=128, 16-row shards): big enough
    # that shard loads dominate the batch window, which is what the
    # raw opt-vs-naive latency gate needs; still < a second
    artifact, registry = run_serve_smoke(
        scale=7, edge_factor=8, seed=5, shard_rows=16, cache_shards=3,
        events_out=str(smoke_dir / "events.jsonl"),
        request_trace_out=str(smoke_dir / "request_trace.json"),
    )
    return artifact, registry


class TestServeSmoke:
    def test_artifact_is_valid(self, smoke):
        artifact, _ = smoke
        assert validate_artifact(artifact) == []
        assert artifact["name"] == "serve-smoke"
        serve = artifact["serve"]
        assert serve["serve.opt.shard_loads"] < serve[
            "serve.naive.shard_loads"
        ]
        assert serve["serve.opt.mean_ms"] < serve["serve.naive.mean_ms"]
        assert serve["serve.opt.mean_speedup"] > 1.0
        assert 0.0 < serve["serve.opt.hit_rate"] < 1.0
        assert serve["serve.sat.degraded"] > 0

    def test_registry_captured_store_lifecycle(self, smoke):
        _, registry = smoke
        counters = registry.counters()
        assert counters["serve.store.builds"] == 1
        assert counters["serve.store.corruption_detected"] >= 1
        assert counters["serve.store.shards_repaired"] == 1

    def test_deterministic_across_runs(self, smoke, smoke_dir, tmp_path):
        artifact, _ = smoke
        again, _ = run_serve_smoke(
            scale=7, edge_factor=8, seed=5, shard_rows=16, cache_shards=3,
            events_out=str(tmp_path / "events.jsonl"),
            request_trace_out=str(tmp_path / "request_trace.json"),
        )
        assert again["serve"] == artifact["serve"]
        assert again["counters"] == artifact["counters"]
        assert again["serve_latency_hist"] == artifact["serve_latency_hist"]
        assert again["serve_slo"] == artifact["serve_slo"]
        # the telemetry log and the exported request trace are
        # byte-identical — the CI determinism gate in miniature
        assert (tmp_path / "events.jsonl").read_bytes() \
            == (smoke_dir / "events.jsonl").read_bytes()
        assert (tmp_path / "request_trace.json").read_bytes() \
            == (smoke_dir / "request_trace.json").read_bytes()

    def test_regress_self_compare_passes(self, smoke):
        artifact, _ = smoke
        regressions, _ = compare_artifacts(artifact, artifact)
        assert regressions == []

    def test_regress_catches_serve_regressions(self, smoke):
        artifact, _ = smoke

        def mutated(key, value):
            out = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in artifact.items()}
            out["serve"][key] = value
            return out

        def gated(current):
            regressions, _ = compare_artifacts(artifact, current)
            return regressions

        # hit rate fell beyond tolerance -> regression
        worse_hits = mutated(
            "serve.opt.hit_rate", artifact["serve"]["serve.opt.hit_rate"] - 0.1
        )
        assert gated(worse_hits)
        # latency grew 10x -> regression
        slow = mutated(
            "serve.opt.mean_ms", artifact["serve"]["serve.opt.mean_ms"] * 10
        )
        assert gated(slow)
        # store bytes changed -> exact counter mismatch -> regression
        refp = mutated("serve.store.fingerprint", 1.0)
        assert gated(refp)
        # small hit-rate jitter within atol -> fine
        jitter = mutated(
            "serve.opt.hit_rate",
            artifact["serve"]["serve.opt.hit_rate"] - 0.01,
        )
        assert gated(jitter) == []
        # improvements never regress
        faster = mutated(
            "serve.opt.mean_ms", artifact["serve"]["serve.opt.mean_ms"] / 2
        )
        assert gated(faster) == []

    def test_regress_flags_missing_serve_section(self, smoke):
        artifact, _ = smoke
        stripped = {k: v for k, v in artifact.items() if k != "serve"}
        regressions, _ = compare_artifacts(artifact, stripped)
        assert regressions

    def test_regress_gates_bytes_and_error_bounds(self, smoke):
        artifact, _ = smoke

        def mutated(key, value):
            out = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in artifact.items()}
            out["serve"][key] = value
            return out

        def gated(current):
            regressions, _ = compare_artifacts(artifact, current)
            return regressions

        serve = artifact["serve"]
        # a silently raised certified error bound is a correctness
        # regression — the gate is exact, so any drift fails
        key = "serve.error.certified_max_abs_error"
        raised = mutated(key, serve[key] + 1e-6)
        assert any(key in r for r in gated(raised))
        lowered = mutated(key, serve[key] - 1e-6)
        assert gated(lowered)
        # byte totals gate upward: growth fails, shrink is a win
        for key in ("serve.store.store_bytes", "serve.opt.bytes_loaded"):
            grown = mutated(key, serve[key] * 2)
            assert gated(grown), key
            shrunk = mutated(key, serve[key] / 2)
            assert gated(shrunk) == [], key


class TestCodecSmoke:
    @pytest.mark.parametrize("codec", ["f4", "u16q", "u16qd"])
    def test_compressed_codecs_pass_and_shrink(self, codec):
        artifact, _ = run_serve_smoke(
            scale=5, edge_factor=8, seed=5, shard_rows=8,
            cache_shards=2, codec=codec,
        )
        serve = artifact["serve"]
        assert artifact["params"]["codec"] == codec
        assert serve["serve.store.compression_ratio"] >= 2.0
        assert serve["serve.error.observed_max_abs_error"] \
            <= serve["serve.error.certified_max_abs_error"]
        assert serve["serve.opt.bytes_loaded"] \
            < serve["serve.naive.bytes_loaded"]
        # compressed loads beat the raw-f8 cost reference
        assert serve["serve.opt.raw_speedup"] > 1.0
        assert serve["serve.alt.short_circuits"] > 0
        assert serve["serve.alt.shard_loads"] \
            < serve["serve.opt.shard_loads"]

    def test_alt_replay_cuts_loads_on_raw(self, smoke):
        artifact, _ = smoke
        serve = artifact["serve"]
        assert serve["serve.alt.short_circuits"] > 0
        assert serve["serve.alt.shard_loads"] \
            < serve["serve.opt.shard_loads"]
        assert serve["serve.store.compression_ratio"] == 1.0
        assert serve["serve.error.certified_max_abs_error"] == 0.0


class TestCodecCurve:
    def test_curve_covers_all_codecs(self):
        from repro.serve.bench import CURVE_SCHEMA_VERSION, run_codec_curve
        from repro.serve.codecs import codec_names

        curve = run_codec_curve(
            scale=7, edge_factor=8, seed=5, shard_rows=16, cache_shards=3
        )
        assert curve["schema"] == CURVE_SCHEMA_VERSION
        points = {p["codec"]: p for p in curve["points"]}
        assert set(points) == set(codec_names())
        raw = points["raw"]
        for name, point in points.items():
            assert point["observed_max_abs_error"] \
                <= point["certified_max_abs_error"]
            assert point["p50_ms"] <= point["p99_ms"]
            if name != "raw":
                assert point["store_bytes"] < raw["store_bytes"]
        # the headline claim: u16q halves-of-halves the store
        assert points["u16q"]["store_bytes"] * 4 == raw["store_bytes"]


class TestTelemetrySections:
    def test_hist_section_matches_exact_percentiles(self, smoke):
        # rebuild the same optimised replay (raw codec => the default
        # uniform f8 shard sizes are the store's real sizes) and check
        # every reported quantile against the exact sorted percentile
        from repro.serve.bench import DEFAULT_SERVERS, SMOKE_TRAFFIC
        from repro.serve.replay import replay_virtual
        from repro.serve.traffic import generate_trace

        artifact, _ = smoke
        hist = artifact["serve_latency_hist"]
        rel = hist["serve.opt.hist.rel_error"]
        trace = generate_trace(SMOKE_TRAFFIC, 128)
        opt = replay_virtual(trace, n=128, shard_rows=16, cache_shards=3,
                             num_servers=DEFAULT_SERVERS, optimized=True)
        assert hist["serve.opt.hist.count"] == sum(
            len(v) for v in opt.latencies.values()
        )
        for q in (50, 90, 99):
            exact = opt.percentile_latency(q) * 1e3
            approx = hist[f"serve.opt.hist.p{q}_ms"]
            assert abs(approx - exact) <= rel * exact + 1e-9
        # the headline opt percentiles are the histogram's
        serve = artifact["serve"]
        assert serve["serve.opt.p50_ms"] == hist["serve.opt.hist.p50_ms"]
        assert serve["serve.opt.p99_ms"] == hist["serve.opt.hist.p99_ms"]

    def test_slo_section_shape(self, smoke):
        artifact, _ = smoke
        slo = artifact["serve_slo"]
        assert slo["serve.slo.point.threshold_ms"] == pytest.approx(5.0)
        assert slo["serve.slo.point.objective"] == pytest.approx(0.9)
        assert slo["serve.slo.point.total"] > 0
        assert slo["serve.slo.point.worst_window_burn_rate"] \
            >= slo["serve.slo.point.burn_rate"]

    def test_regress_gates_hist_exactly(self, smoke):
        artifact, _ = smoke

        def gated(current):
            regressions, _ = compare_artifacts(artifact, current)
            return regressions

        def mutated(edit):
            out = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in artifact.items()}
            edit(out["serve_latency_hist"])
            return out

        bucket_key = next(k for k in artifact["serve_latency_hist"]
                          if ".bucket." in k)
        # one count moving is a regression, in either direction
        assert gated(mutated(lambda h: h.update({bucket_key:
                                                 h[bucket_key] + 1})))
        # a bucket disappearing or appearing is a distribution change
        assert gated(mutated(lambda h: h.pop(bucket_key)))
        assert gated(mutated(lambda h: h.update({
            "serve.opt.hist.bucket.999": 1.0})))
        # dropping the whole section is a regression
        stripped = {k: v for k, v in artifact.items()
                    if k != "serve_latency_hist"}
        assert gated(stripped)

    def test_regress_gates_burn_rate_upward_only(self, smoke):
        artifact, _ = smoke

        def mutated(key, value):
            out = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in artifact.items()}
            out["serve_slo"][key] = value
            return out

        def gated(current):
            regressions, _ = compare_artifacts(artifact, current)
            return regressions

        key = "serve.slo.point.burn_rate"
        base = artifact["serve_slo"][key]
        assert gated(mutated(key, base + 0.5))       # burning faster
        assert gated(mutated(key, base * 0.5)) == []  # improvement
        # everything else in the section is exact
        vkey = "serve.slo.point.violations"
        assert gated(mutated(vkey, artifact["serve_slo"][vkey] + 1))

    def test_event_log_passes_monitor_check(self, smoke, smoke_dir):
        from repro.serve.monitor import check_event_log, \
            summarize_event_log

        del smoke  # fixture ordering: the log must exist
        path = str(smoke_dir / "events.jsonl")
        assert check_event_log(path) == []
        summary = summarize_event_log(path)
        assert summary["num_traces"] == 512
        assert summary["kinds"]["answer"] == 512

    def test_request_trace_is_valid_chrome(self, smoke, smoke_dir):
        from repro.trace import validate_chrome

        del smoke
        obj = json.loads((smoke_dir / "request_trace.json").read_text())
        assert validate_chrome(obj) == []
