"""serve bench: artifact validity, determinism, regress gating."""

from __future__ import annotations

import pytest

from repro.obs.artifact import validate_artifact
from repro.obs.regress import compare_artifacts
from repro.serve.bench import run_serve_smoke


@pytest.fixture(scope="module")
def smoke():
    # scale 5 (n=32) keeps this < a second while exercising every stage
    artifact, registry = run_serve_smoke(scale=5, edge_factor=8, seed=5,
                                         shard_rows=8, cache_shards=2)
    return artifact, registry


class TestServeSmoke:
    def test_artifact_is_valid(self, smoke):
        artifact, _ = smoke
        assert validate_artifact(artifact) == []
        assert artifact["name"] == "serve-smoke"
        serve = artifact["serve"]
        assert serve["serve.opt.shard_loads"] < serve[
            "serve.naive.shard_loads"
        ]
        assert serve["serve.opt.mean_ms"] < serve["serve.naive.mean_ms"]
        assert serve["serve.opt.mean_speedup"] > 1.0
        assert 0.0 < serve["serve.opt.hit_rate"] < 1.0
        assert serve["serve.sat.degraded"] > 0

    def test_registry_captured_store_lifecycle(self, smoke):
        _, registry = smoke
        counters = registry.counters()
        assert counters["serve.store.builds"] == 1
        assert counters["serve.store.corruption_detected"] >= 1
        assert counters["serve.store.shards_repaired"] == 1

    def test_deterministic_across_runs(self, smoke):
        artifact, _ = smoke
        again, _ = run_serve_smoke(scale=5, edge_factor=8, seed=5,
                                   shard_rows=8, cache_shards=2)
        assert again["serve"] == artifact["serve"]
        assert again["counters"] == artifact["counters"]

    def test_regress_self_compare_passes(self, smoke):
        artifact, _ = smoke
        regressions, _ = compare_artifacts(artifact, artifact)
        assert regressions == []

    def test_regress_catches_serve_regressions(self, smoke):
        artifact, _ = smoke

        def mutated(key, value):
            out = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in artifact.items()}
            out["serve"][key] = value
            return out

        def gated(current):
            regressions, _ = compare_artifacts(artifact, current)
            return regressions

        # hit rate fell beyond tolerance -> regression
        worse_hits = mutated(
            "serve.opt.hit_rate", artifact["serve"]["serve.opt.hit_rate"] - 0.1
        )
        assert gated(worse_hits)
        # latency grew 10x -> regression
        slow = mutated(
            "serve.opt.mean_ms", artifact["serve"]["serve.opt.mean_ms"] * 10
        )
        assert gated(slow)
        # store bytes changed -> exact counter mismatch -> regression
        refp = mutated("serve.store.fingerprint", 1.0)
        assert gated(refp)
        # small hit-rate jitter within atol -> fine
        jitter = mutated(
            "serve.opt.hit_rate",
            artifact["serve"]["serve.opt.hit_rate"] - 0.01,
        )
        assert gated(jitter) == []
        # improvements never regress
        faster = mutated(
            "serve.opt.mean_ms", artifact["serve"]["serve.opt.mean_ms"] / 2
        )
        assert gated(faster) == []

    def test_regress_flags_missing_serve_section(self, smoke):
        artifact, _ = smoke
        stripped = {k: v for k, v in artifact.items() if k != "serve"}
        regressions, _ = compare_artifacts(artifact, stripped)
        assert regressions
