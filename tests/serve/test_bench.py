"""serve bench: artifact validity, determinism, regress gating."""

from __future__ import annotations

import pytest

from repro.obs.artifact import validate_artifact
from repro.obs.regress import compare_artifacts
from repro.serve.bench import run_serve_smoke


@pytest.fixture(scope="module")
def smoke():
    # the CI smoke configuration (n=128, 16-row shards): big enough
    # that shard loads dominate the batch window, which is what the
    # raw opt-vs-naive latency gate needs; still < a second
    artifact, registry = run_serve_smoke(scale=7, edge_factor=8, seed=5,
                                         shard_rows=16, cache_shards=3)
    return artifact, registry


class TestServeSmoke:
    def test_artifact_is_valid(self, smoke):
        artifact, _ = smoke
        assert validate_artifact(artifact) == []
        assert artifact["name"] == "serve-smoke"
        serve = artifact["serve"]
        assert serve["serve.opt.shard_loads"] < serve[
            "serve.naive.shard_loads"
        ]
        assert serve["serve.opt.mean_ms"] < serve["serve.naive.mean_ms"]
        assert serve["serve.opt.mean_speedup"] > 1.0
        assert 0.0 < serve["serve.opt.hit_rate"] < 1.0
        assert serve["serve.sat.degraded"] > 0

    def test_registry_captured_store_lifecycle(self, smoke):
        _, registry = smoke
        counters = registry.counters()
        assert counters["serve.store.builds"] == 1
        assert counters["serve.store.corruption_detected"] >= 1
        assert counters["serve.store.shards_repaired"] == 1

    def test_deterministic_across_runs(self, smoke):
        artifact, _ = smoke
        again, _ = run_serve_smoke(scale=7, edge_factor=8, seed=5,
                                   shard_rows=16, cache_shards=3)
        assert again["serve"] == artifact["serve"]
        assert again["counters"] == artifact["counters"]

    def test_regress_self_compare_passes(self, smoke):
        artifact, _ = smoke
        regressions, _ = compare_artifacts(artifact, artifact)
        assert regressions == []

    def test_regress_catches_serve_regressions(self, smoke):
        artifact, _ = smoke

        def mutated(key, value):
            out = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in artifact.items()}
            out["serve"][key] = value
            return out

        def gated(current):
            regressions, _ = compare_artifacts(artifact, current)
            return regressions

        # hit rate fell beyond tolerance -> regression
        worse_hits = mutated(
            "serve.opt.hit_rate", artifact["serve"]["serve.opt.hit_rate"] - 0.1
        )
        assert gated(worse_hits)
        # latency grew 10x -> regression
        slow = mutated(
            "serve.opt.mean_ms", artifact["serve"]["serve.opt.mean_ms"] * 10
        )
        assert gated(slow)
        # store bytes changed -> exact counter mismatch -> regression
        refp = mutated("serve.store.fingerprint", 1.0)
        assert gated(refp)
        # small hit-rate jitter within atol -> fine
        jitter = mutated(
            "serve.opt.hit_rate",
            artifact["serve"]["serve.opt.hit_rate"] - 0.01,
        )
        assert gated(jitter) == []
        # improvements never regress
        faster = mutated(
            "serve.opt.mean_ms", artifact["serve"]["serve.opt.mean_ms"] / 2
        )
        assert gated(faster) == []

    def test_regress_flags_missing_serve_section(self, smoke):
        artifact, _ = smoke
        stripped = {k: v for k, v in artifact.items() if k != "serve"}
        regressions, _ = compare_artifacts(artifact, stripped)
        assert regressions

    def test_regress_gates_bytes_and_error_bounds(self, smoke):
        artifact, _ = smoke

        def mutated(key, value):
            out = {k: dict(v) if isinstance(v, dict) else v
                   for k, v in artifact.items()}
            out["serve"][key] = value
            return out

        def gated(current):
            regressions, _ = compare_artifacts(artifact, current)
            return regressions

        serve = artifact["serve"]
        # a silently raised certified error bound is a correctness
        # regression — the gate is exact, so any drift fails
        key = "serve.error.certified_max_abs_error"
        raised = mutated(key, serve[key] + 1e-6)
        assert any(key in r for r in gated(raised))
        lowered = mutated(key, serve[key] - 1e-6)
        assert gated(lowered)
        # byte totals gate upward: growth fails, shrink is a win
        for key in ("serve.store.store_bytes", "serve.opt.bytes_loaded"):
            grown = mutated(key, serve[key] * 2)
            assert gated(grown), key
            shrunk = mutated(key, serve[key] / 2)
            assert gated(shrunk) == [], key


class TestCodecSmoke:
    @pytest.mark.parametrize("codec", ["f4", "u16q", "u16qd"])
    def test_compressed_codecs_pass_and_shrink(self, codec):
        artifact, _ = run_serve_smoke(
            scale=5, edge_factor=8, seed=5, shard_rows=8,
            cache_shards=2, codec=codec,
        )
        serve = artifact["serve"]
        assert artifact["params"]["codec"] == codec
        assert serve["serve.store.compression_ratio"] >= 2.0
        assert serve["serve.error.observed_max_abs_error"] \
            <= serve["serve.error.certified_max_abs_error"]
        assert serve["serve.opt.bytes_loaded"] \
            < serve["serve.naive.bytes_loaded"]
        # compressed loads beat the raw-f8 cost reference
        assert serve["serve.opt.raw_speedup"] > 1.0
        assert serve["serve.alt.short_circuits"] > 0
        assert serve["serve.alt.shard_loads"] \
            < serve["serve.opt.shard_loads"]

    def test_alt_replay_cuts_loads_on_raw(self, smoke):
        artifact, _ = smoke
        serve = artifact["serve"]
        assert serve["serve.alt.short_circuits"] > 0
        assert serve["serve.alt.shard_loads"] \
            < serve["serve.opt.shard_loads"]
        assert serve["serve.store.compression_ratio"] == 1.0
        assert serve["serve.error.certified_max_abs_error"] == 0.0


class TestCodecCurve:
    def test_curve_covers_all_codecs(self):
        from repro.serve.bench import CURVE_SCHEMA_VERSION, run_codec_curve
        from repro.serve.codecs import codec_names

        curve = run_codec_curve(
            scale=7, edge_factor=8, seed=5, shard_rows=16, cache_shards=3
        )
        assert curve["schema"] == CURVE_SCHEMA_VERSION
        points = {p["codec"]: p for p in curve["points"]}
        assert set(points) == set(codec_names())
        raw = points["raw"]
        for name, point in points.items():
            assert point["observed_max_abs_error"] \
                <= point["certified_max_abs_error"]
            assert point["p50_ms"] <= point["p99_ms"]
            if name != "raw":
                assert point["store_bytes"] < raw["store_bytes"]
        # the headline claim: u16q halves-of-halves the store
        assert points["u16q"]["store_bytes"] * 4 == raw["store_bytes"]
