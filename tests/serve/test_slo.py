"""SLO specs, burn rates, and windowed histogram evaluation."""

from __future__ import annotations

import pytest

from repro.exceptions import ServeError
from repro.serve import SLOSpec, evaluate_slo, generate_trace, \
    replay_virtual
from repro.serve.slo import merged_histogram, windowed_histograms
from repro.serve.traffic import TrafficSpec


def _samples(latencies, window=1.0):
    """Spread samples one per window so window math is legible."""
    return [(i * window, lat, f"req-{i:06d}-abcdef00")
            for i, lat in enumerate(latencies)]


class TestSpec:
    def test_defaults_and_budget(self):
        spec = SLOSpec()
        assert spec.budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ServeError):
            SLOSpec(name="")
        with pytest.raises(ServeError):
            SLOSpec(threshold=0.0)
        with pytest.raises(ServeError):
            SLOSpec(objective=1.0)
        with pytest.raises(ServeError):
            SLOSpec(objective=0.0)
        with pytest.raises(ServeError):
            SLOSpec(window=-1.0)


class TestEvaluate:
    def test_empty_stream_is_vacuously_compliant(self):
        report = evaluate_slo(SLOSpec(), [])
        assert report.total == 0
        assert report.compliance == 1.0
        assert report.burn_rate == 0.0
        assert report.healthy

    def test_burn_rate_arithmetic(self):
        # objective 0.9 -> budget 0.1; 2 of 10 violate -> burn 2.0
        spec = SLOSpec(threshold=0.01, objective=0.9, window=1.0)
        lats = [0.001] * 8 + [0.5] * 2
        report = evaluate_slo(spec, _samples(lats, window=0.01))
        assert report.total == 10
        assert report.violations == 2
        assert report.burn_rate == pytest.approx(2.0)
        assert not report.healthy

    def test_all_compliant_burns_nothing(self):
        spec = SLOSpec(threshold=0.1, objective=0.99, window=1.0)
        report = evaluate_slo(spec, _samples([0.001] * 20))
        assert report.violations == 0
        assert report.burn_rate == 0.0
        assert report.healthy

    def test_worst_window_exceeds_overall(self):
        # one hot window of violations among many clean ones
        spec = SLOSpec(threshold=0.01, objective=0.9, window=1.0)
        samples = _samples([0.001] * 9) + [(9.0, 0.5, None)]
        report = evaluate_slo(spec, samples)
        assert report.num_windows == 10
        assert report.worst_window_burn_rate > report.burn_rate

    def test_threshold_measured_to_certificate(self):
        # a sample just over the threshold may land in the threshold's
        # own bucket — count_le semantics — but a sample rel_error away
        # must always violate
        spec = SLOSpec(threshold=0.01, objective=0.9, window=1.0)
        report = evaluate_slo(spec, _samples([0.02]))
        assert report.violations == 1

    def test_to_flat_keys(self):
        spec = SLOSpec(threshold=0.005, objective=0.9, window=0.05)
        flat = evaluate_slo(spec, _samples([0.001, 0.2])).to_flat("s")
        assert flat["s.threshold_ms"] == pytest.approx(5.0)
        assert flat["s.objective"] == 0.9
        assert flat["s.total"] == 2.0
        assert flat["s.violations"] == 1.0
        assert flat["s.burn_rate"] == pytest.approx(5.0)
        assert all(isinstance(v, float) for v in flat.values())

    def test_format_mentions_state(self):
        spec = SLOSpec(threshold=0.01, objective=0.9, window=1.0)
        assert "OK" in evaluate_slo(spec, _samples([0.001])).format()
        assert "BURNING" in evaluate_slo(spec, _samples([0.5])).format()


class TestWindows:
    def test_windows_keyed_by_arrival(self):
        spec = SLOSpec(window=1.0)
        windows = windowed_histograms(
            spec, [(0.1, 0.001, None), (0.9, 0.002, None),
                   (1.1, 0.003, None)],
        )
        assert sorted(windows) == [0, 1]
        assert windows[0].count == 2
        assert windows[1].count == 1

    def test_merged_histogram_matches_total(self):
        spec = SLOSpec(window=1.0)
        samples = _samples([0.001, 0.002, 0.004, 0.008], window=0.5)
        windows = windowed_histograms(spec, samples)
        merged = merged_histogram(windows)
        assert merged.count == 4


class TestReplayIntegration:
    def test_same_scoring_path_for_virtual_replay(self):
        spec = SLOSpec(threshold=0.005, objective=0.9, window=0.05)
        trace = generate_trace(
            TrafficSpec(num_requests=64, rate=2000.0, zipf_s=1.1, seed=3),
            128,
        )
        result = replay_virtual(trace, n=128, shard_rows=16,
                                cache_shards=2, optimized=True)
        report = evaluate_slo(spec, result.slo_samples("point"))
        again = evaluate_slo(spec, result.slo_samples("point"))
        assert report == again  # deterministic, reusable iterator source
        assert report.total == len(result.latencies["point"])
        # compliance agrees with a direct count through the histogram
        hist = result.latency_histogram("point")
        assert report.violations == hist.count - hist.count_le(
            spec.threshold
        )
