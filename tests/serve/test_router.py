"""ShardRouter / RoutedEngine: placement, failover, exactness.

The load-bearing property: routing only decides *which cache warms up*
— every answer must be bitwise-identical to a single-node QueryEngine
over the same store, for any node count, replication factor, ring
seed, node loss, or rebalance pin state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ServeError
from repro.serve import (
    QueryEngine,
    RoutedEngine,
    ShardRouter,
    solve_to_store,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory, small_weighted):
    path = tmp_path_factory.mktemp("routed") / "store"
    return solve_to_store(small_weighted, path, shard_rows=8,
                          num_landmarks=4)


@pytest.fixture(scope="module")
def single(store):
    """The single-node reference engine (big cache: pure truth)."""
    return QueryEngine(store, cache_shards=32)


class TestShardRouter:
    def test_same_seed_same_ring(self):
        a = ShardRouter(4, replication=2, hash_seed=7)
        b = ShardRouter(4, replication=2, hash_seed=7)
        for shard in range(64):
            assert a.preference(shard) == b.preference(shard)

    def test_different_seed_different_ring(self):
        a = ShardRouter(4, hash_seed=0)
        b = ShardRouter(4, hash_seed=1)
        assert any(
            a.preference(s) != b.preference(s) for s in range(64)
        )

    def test_preference_has_replication_distinct_nodes(self):
        router = ShardRouter(5, replication=3)
        for shard in range(32):
            owners = router.preference(shard)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_route_fails_over_to_replica(self):
        router = ShardRouter(3, replication=2)
        shard = 0
        primary, backup = router.preference(shard)[:2]
        assert router.route(shard) == (primary, False)
        router.fail_node(primary)
        node, failover = router.route(shard)
        assert node == backup and failover
        router.restore_node(primary)
        assert router.route(shard) == (primary, False)

    def test_route_spills_past_dead_replica_set(self):
        router = ShardRouter(3, replication=1)
        shard = 0
        (primary,) = router.preference(shard)
        router.fail_node(primary)
        node, failover = router.route(shard)
        assert failover and node != primary
        assert node in router.live_nodes()

    def test_cannot_fail_last_live_node(self):
        router = ShardRouter(2)
        router.fail_node(0)
        with pytest.raises(ServeError, match="last live node"):
            router.fail_node(1)

    def test_validation(self):
        with pytest.raises(ServeError):
            ShardRouter(0)
        with pytest.raises(ServeError):
            ShardRouter(2, replication=3)
        with pytest.raises(ServeError):
            ShardRouter(2, vnodes=0)
        with pytest.raises(ServeError):
            ShardRouter(2).fail_node(9)

    def test_placement_covers_every_shard_once(self):
        router = ShardRouter(4, replication=2)
        placement = router.placement(33)
        seen = sorted(s for shards in placement.values() for s in shards)
        assert seen == list(range(33))

    def test_rebalance_bounded_and_narrows_spread(self):
        router = ShardRouter(4, replication=2, hash_seed=3)
        # one scorching shard, everything else cold
        loads = {s: 1.0 for s in range(16)}
        hot_node = router.route(0)[0]
        for s in range(16):
            if router.route(s)[0] == hot_node:
                loads[s] = 100.0
                break
        moves = router.rebalance(loads, max_moves=2)
        assert len(moves) <= 2
        for shard, src, dst in moves:
            assert router.route(shard)[0] == dst

    def test_rebalance_is_deterministic(self):
        loads = {s: float((s * 7) % 13) for s in range(24)}
        a = ShardRouter(4, replication=2, hash_seed=5)
        b = ShardRouter(4, replication=2, hash_seed=5)
        assert a.rebalance(loads) == b.rebalance(loads)

    def test_to_dict_round_trip_preserves_state(self):
        router = ShardRouter(4, replication=2, vnodes=32, hash_seed=9)
        router.fail_node(1)
        router.rebalance({s: float(s) for s in range(16)}, max_moves=2)
        clone = ShardRouter.from_dict(router.to_dict())
        assert clone.to_dict() == router.to_dict()
        for shard in range(16):
            assert clone.route(shard) == router.route(shard)


class TestRoutedExactness:
    """Routed answers == single-node answers, always."""

    def _probe_pairs(self, n, seed, count=48):
        rng = np.random.default_rng(seed)
        return [
            (int(u), int(v))
            for u, v in zip(
                rng.integers(0, n, size=count),
                rng.integers(0, n, size=count),
            )
        ]

    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    def test_bitwise_identical_for_any_topology(
        self, store, single, num_nodes, data
    ):
        replication = data.draw(
            st.integers(min_value=1, max_value=num_nodes)
        )
        hash_seed = data.draw(st.integers(min_value=0, max_value=1000))
        traffic_seed = data.draw(st.integers(min_value=0, max_value=999))
        router = ShardRouter(
            num_nodes, replication=replication, hash_seed=hash_seed
        )
        routed = RoutedEngine(store, router, cache_shards=2)
        pairs = self._probe_pairs(store.n, traffic_seed)

        def check():
            for u, v in pairs[:12]:
                r, s = routed.dist(u, v), single.dist(u, v)
                assert r == s or (np.isinf(r) and np.isinf(s))
            assert np.array_equal(
                routed.dist_batch(pairs), single.dist_batch(pairs)
            )
            u0 = pairs[0][0]
            assert np.array_equal(
                routed.dist_from(u0), single.dist_from(u0)
            )
            assert routed.top_k(u0, 5) == single.top_k(u0, 5)

        check()
        # node loss: kill the node serving the first probe, replicas
        # (or the ring spill) must keep answers identical
        if num_nodes >= 2:
            victim = routed.node_of(pairs[0][0])
            routed.fail_node(victim)
            check()
            if replication >= 2:
                assert routed.stats["failovers"] > 0
            routed.restore_node(victim)
        # rebalance pins change placement only, never answers
        loads = {
            s: float(ld)
            for s, ld in enumerate(
                np.random.default_rng(traffic_seed).integers(
                    0, 50, size=store.num_shards
                )
            )
        }
        router.rebalance(loads, max_moves=3)
        check()

    def test_dist_bounds_and_approx_match(self, store, single):
        router = ShardRouter(3, replication=2)
        routed = RoutedEngine(store, router)
        for u, v in [(0, 7), (13, 40), (55, 2)]:
            assert routed.dist_bounds(u, v) == single.dist_bounds(u, v)
            assert routed.dist_approx(u, v) == single.dist_approx(u, v)

    def test_routed_counts_and_budget(self, store):
        router = ShardRouter(4, replication=2)
        routed = RoutedEngine(store, router, node_budget=1)
        pairs = self._probe_pairs(store.n, seed=3, count=32)
        routed.dist_batch(pairs)
        assert routed.stats["routed"] == len(pairs)
        assert routed.stats["failovers"] == 0
        stats = routed.node_stats()
        assert len(stats) == 4
        assert sum(s["hits"] + s["misses"] for s in stats) > 0

    def test_rejects_non_router(self, store):
        with pytest.raises(ServeError, match="router"):
            RoutedEngine(store, router="ring")

    def test_refresh_spans_all_nodes(self, store, tmp_path):
        router = ShardRouter(2)
        routed = RoutedEngine(store, router)
        generation = routed.refresh()
        assert all(
            e.store.generation == generation for e in routed.engines
        )


class TestRoutedFrontend:
    def test_frontend_accepts_routed_engine(self, store):
        from repro.serve import ServeFrontend

        fe = ServeFrontend(RoutedEngine(store, ShardRouter(3)))
        resp = fe.point(0, 9)
        assert resp.status == "ok" and not resp.approx
        single = QueryEngine(store)
        assert resp.value == single.dist(0, 9)
