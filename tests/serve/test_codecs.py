"""Shard codecs: certified round-trips, determinism, corruption drills.

The property under test is the codec contract itself: for every codec
and every block, ``|decode(encode(x)) - x| <= certified_error`` over
the finite entries, with ``inf`` (unreachable) preserved exactly and
the payload bytes deterministic.  The corruption drill then checks the
whole store path per codec: seeded XOR flips over the *encoded* bytes
are detected on load and ``repair()`` reproduces the manifest crc
byte-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.runner import solve_apsp
from repro.exceptions import StoreCorruptionError, StoreError
from repro.faults import StoreCorruptionSpec
from repro.serve import DistStore, QueryEngine, solve_to_store
from repro.serve.codecs import codec_names, get_codec

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: codecs whose constructor needs no store context
ALL_CODECS = list(codec_names())


@st.composite
def dist_block(draw, max_rows=4, max_n=16):
    """A plausible distance block: finite non-negatives plus inf."""
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    n = draw(st.integers(min_value=1, max_value=max_n))
    finite = st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    )
    values = draw(
        st.lists(
            st.one_of(finite, st.just(float("inf"))),
            min_size=rows * n,
            max_size=rows * n,
        )
    )
    return np.asarray(values, dtype=np.float64).reshape(rows, n)


def _round_trip(codec_name, block, order=None):
    if order is not None:
        codec = get_codec(codec_name, order=order)
    elif codec_name == "u16qd":
        codec = get_codec(codec_name)
    else:
        codec = get_codec(codec_name)
    payload, params, err = codec.encode(block)
    decoded = codec.decode(payload, block.shape[0], block.shape[1], params)
    return payload, params, err, decoded


class TestRoundTripProperties:
    @pytest.mark.parametrize("name", ALL_CODECS)
    @given(block=dist_block())
    @settings(**SETTINGS)
    def test_error_within_certified_bound(self, name, block):
        _, _, err, decoded = _round_trip(name, block)
        finite = np.isfinite(block)
        # inf entries must survive exactly, never leak into finites
        assert np.array_equal(np.isfinite(decoded), finite)
        if finite.any():
            observed = float(
                np.max(np.abs(decoded[finite] - block[finite]))
            )
            assert observed <= err + 1e-300
        assert np.isfinite(err) and err >= 0.0

    @pytest.mark.parametrize("name", ALL_CODECS)
    @given(block=dist_block())
    @settings(**SETTINGS)
    def test_encode_is_deterministic(self, name, block):
        payload_a, params_a, err_a = get_codec(name).encode(block)
        payload_b, params_b, err_b = get_codec(name).encode(block)
        assert payload_a == payload_b
        assert params_a == params_b
        assert err_a == err_b

    @given(block=dist_block())
    @settings(**SETTINGS)
    def test_raw_is_exact_and_bitwise(self, block):
        payload, _, err, decoded = _round_trip("raw", block)
        assert err == 0.0
        assert np.array_equal(decoded, block)
        assert payload == block.astype("<f8").tobytes()
        assert decoded.flags.writeable

    @given(block=dist_block())
    @settings(**SETTINGS)
    def test_f4_exact_for_representable_values(self, block):
        # force values onto the f4 grid: small integers (hop counts)
        block = block.copy()
        mask = np.isfinite(block)
        block[mask] = np.rint(block[mask]) % 4096
        _, _, err, decoded = _round_trip("f4", block)
        assert err == 0.0
        assert np.array_equal(decoded, block)

    @given(block=dist_block())
    @settings(**SETTINGS)
    def test_u16q_delta_matches_u16q_values(self, block):
        # delta+zlib is lossless over the quantized codes: identical
        # decoded values and identical certified bound as plain u16q
        _, _, err_q, dec_q = _round_trip("u16q", block)
        _, _, err_d, dec_d = _round_trip("u16qd", block)
        assert err_d == err_q
        assert np.array_equal(dec_q, dec_d)

    @given(block=dist_block(max_n=12), data=st.data())
    @settings(**SETTINGS)
    def test_u16qd_order_is_cosmetic(self, block, data):
        n = block.shape[1]
        perm = data.draw(st.permutations(range(n)))
        _, _, _, plain = _round_trip("u16qd", block)
        _, _, _, permuted = _round_trip("u16qd", block, order=perm)
        assert np.array_equal(plain, permuted)


class TestEdgeShapes:
    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_single_row_shard(self, name):
        block = np.array([[0.0, 1.5, np.inf, 3.0]])
        _, _, err, decoded = _round_trip(name, block)
        finite = np.isfinite(block)
        assert np.array_equal(np.isfinite(decoded), finite)
        assert np.max(np.abs(decoded[finite] - block[finite])) <= err

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_all_inf_shard(self, name):
        block = np.full((3, 5), np.inf)
        _, _, err, decoded = _round_trip(name, block)
        assert err == 0.0
        assert np.all(np.isinf(decoded))

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_constant_shard(self, name):
        # span 0 exercises the u16q scale=1.0 degenerate branch
        block = np.full((2, 6), 7.25)
        _, _, err, decoded = _round_trip(name, block)
        assert err == 0.0
        assert np.array_equal(decoded, block)

    def test_u16q_inf_sentinel_never_collides(self):
        # a finite value quantizing to the top code must not read back
        # as inf: code 65534 is the finite ceiling, 65535 the sentinel
        block = np.array([[0.0, 1.0, np.inf]])
        _, _, err, decoded = _round_trip("u16q", block)
        assert np.isfinite(decoded[0, 1])
        assert np.isinf(decoded[0, 2])
        assert abs(decoded[0, 1] - 1.0) <= err


class TestRegistry:
    def test_unknown_codec(self):
        with pytest.raises(StoreError, match="unknown shard codec"):
            get_codec("lz77")

    def test_stray_params_rejected(self):
        with pytest.raises(StoreError, match="no parameters"):
            get_codec("raw", order=[0, 1])

    def test_u16qd_wrong_order_length(self):
        codec = get_codec("u16qd", order=[0, 1, 2])
        with pytest.raises(StoreError, match="degree order"):
            codec.encode(np.zeros((1, 5)))

    def test_registry_lists_all(self):
        assert set(codec_names()) == {"raw", "f4", "u16q", "u16qd"}


class TestStoreCorruptionPerCodec:
    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_detected_and_byte_exact_repair(
        self, name, small_weighted, tmp_path
    ):
        store = solve_to_store(
            small_weighted, tmp_path / name, shard_rows=16,
            num_landmarks=3, codec=name,
        )
        spec = StoreCorruptionSpec(shard=2, nbytes=8, seed=21)
        target = spec.resolve(store)
        before = target.read_bytes()
        spec.apply_to_store(store)
        assert target.read_bytes() != before
        with pytest.raises(StoreCorruptionError) as exc_info:
            store.load_shard(2)
        assert exc_info.value.shards == (2,)
        assert store.repair(small_weighted) == [2]
        # repair must reproduce the *encoded* bytes exactly, not just
        # semantically equivalent ones — the crc covers the payload
        assert target.read_bytes() == before
        store.verify()
        ref = solve_apsp(small_weighted, use_flags=False).dist
        decoded = store.load_shard(2)
        finite = np.isfinite(ref[32:48])
        assert np.array_equal(np.isfinite(decoded), finite)
        assert np.max(
            np.abs(decoded[finite] - ref[32:48][finite])
        ) <= store.max_abs_error

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_reopened_store_serves_within_bound(
        self, name, small_weighted, tmp_path
    ):
        solve_to_store(
            small_weighted, tmp_path / name, shard_rows=16,
            num_landmarks=3, codec=name,
        )
        store = DistStore.open(tmp_path / name)
        assert store.codec_name == name
        ref = solve_apsp(small_weighted, use_flags=False).dist
        engine = QueryEngine(store)
        for u, v in [(0, 50), (3, 77), (90, 12)]:
            assert abs(engine.dist(u, v) - ref[u, v]) \
                <= store.max_abs_error
