"""DistStore: streaming build, bitwise round-trip, memory bound."""

from __future__ import annotations

import json
import tracemalloc

import numpy as np
import pytest

from repro.core.runner import solve_apsp, solve_apsp_shards
from repro.exceptions import ConfigError, StoreError
from repro.serve import STORE_SCHEMA_VERSION, DistStore, solve_to_store


@pytest.fixture()
def store_and_ref(small_weighted, tmp_path):
    store = solve_to_store(
        small_weighted, tmp_path / "store", shard_rows=16, num_landmarks=4
    )
    ref = solve_apsp(small_weighted, use_flags=False).dist
    return store, ref


class TestStreamingSolve:
    def test_bitwise_across_shard_sizes(self, small_weighted):
        ref = solve_apsp(small_weighted, use_flags=False).dist
        n = small_weighted.num_vertices
        for shard_rows in (1, 7, 32, n, n + 50):
            out = np.empty_like(ref)
            for start, rows in solve_apsp_shards(
                small_weighted, shard_rows=shard_rows, use_flags=False
            ):
                out[start:start + rows.shape[0]] = rows
            assert np.array_equal(out, ref)

    def test_full_shard_matches_flags_on_solver(self, small_weighted):
        ref = solve_apsp(small_weighted).dist
        n = small_weighted.num_vertices
        (start, rows), = solve_apsp_shards(small_weighted, shard_rows=n)
        assert start == 0
        assert np.array_equal(rows, ref)

    def test_row_range_restriction(self, small_weighted):
        ref = solve_apsp(small_weighted, use_flags=False).dist
        blocks = [
            (start, rows.copy())  # the generator reuses its buffer
            for start, rows in solve_apsp_shards(
                small_weighted,
                shard_rows=16,
                start_row=32,
                stop_row=64,
                use_flags=False,
            )
        ]
        assert [start for start, _ in blocks] == [32, 48]
        for start, rows in blocks:
            assert np.array_equal(rows, ref[start:start + rows.shape[0]])

    def test_rejects_parallel_backend(self, small_weighted):
        with pytest.raises(ConfigError, match="parallel.backend"):
            next(
                solve_apsp_shards(
                    small_weighted, shard_rows=8, backend="threads"
                )
            )

    def test_rejects_bad_shard_rows_and_range(self, small_weighted):
        with pytest.raises(ConfigError, match="shard_rows"):
            next(solve_apsp_shards(small_weighted, shard_rows=0))
        with pytest.raises(ConfigError, match="start_row"):
            next(
                solve_apsp_shards(
                    small_weighted, shard_rows=8, start_row=3
                )
            )
        with pytest.raises(ConfigError, match="start_row"):
            next(
                solve_apsp_shards(
                    small_weighted, shard_rows=8, start_row=8, stop_row=4
                )
            )

    def test_buffer_is_reused_between_shards(self, small_weighted):
        gen = solve_apsp_shards(
            small_weighted, shard_rows=16, use_flags=False
        )
        _, first = next(gen)
        _, second = next(gen)
        # each yield is a view over the same backing buffer
        assert np.shares_memory(first, second)
        gen.close()


class TestStoreRoundTrip:
    def test_bitwise_round_trip_and_reopen(self, store_and_ref, tmp_path):
        store, ref = store_and_ref
        reopened = DistStore.open(tmp_path / "store")
        assert reopened.manifest["schema"] == STORE_SCHEMA_VERSION
        got = np.vstack(
            [reopened.load_shard(i) for i in range(reopened.num_shards)]
        )
        assert np.array_equal(got, ref)

    def test_row_access(self, store_and_ref):
        store, ref = store_and_ref
        for vertex in (0, 15, 16, 99):
            assert np.array_equal(store.row(vertex), ref[vertex])

    def test_landmarks_are_exact_rows(self, store_and_ref):
        store, ref = store_and_ref
        rows = store.landmark_rows()
        assert rows.shape == (len(store.landmark_ids), store.n)
        for i, vertex in enumerate(store.landmark_ids):
            assert np.array_equal(rows[i], ref[vertex])

    def test_build_peak_memory_bounded_by_shard(self, tmp_path):
        from repro.graphs import attach_random_weights, barabasi_albert

        graph = attach_random_weights(
            barabasi_albert(400, 3, seed=5), seed=6
        )
        n = graph.num_vertices
        shard_rows = 16
        tracemalloc.start()
        tracemalloc.reset_peak()
        solve_to_store(
            graph, tmp_path / "store", shard_rows=shard_rows,
            num_landmarks=2,
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        full_bytes = n * n * 8
        # the full matrix is 1.28 MB; a shard is 51 KB.  Allow generous
        # slack for the solver's own state (O(n) arrays, CSR copies) —
        # what must NOT appear is anything close to n^2 doubles.
        assert peak < full_bytes / 2

    def test_store_bytes_independent_of_shard_rows(
        self, small_weighted, tmp_path
    ):
        a = solve_to_store(
            small_weighted, tmp_path / "a", shard_rows=16, num_landmarks=2
        )
        b = solve_to_store(
            small_weighted, tmp_path / "b", shard_rows=25, num_landmarks=2
        )
        got_a = np.vstack(
            [a.load_shard(i) for i in range(a.num_shards)]
        )
        got_b = np.vstack(
            [b.load_shard(i) for i in range(b.num_shards)]
        )
        assert np.array_equal(got_a, got_b)


class TestCodecStores:
    def test_raw_manifest_defaults(self, store_and_ref):
        store, _ = store_and_ref
        assert store.codec_name == "raw"
        assert store.max_abs_error == 0.0
        assert store.epsilon is None
        assert store.store_bytes() == store.n * store.n * 8
        assert store.shard_nbytes(0) == 16 * store.n * 8

    def test_v1_manifest_still_opens(self, store_and_ref, tmp_path):
        # down-convert the manifest to what schema /1 builds wrote:
        # no codec fields anywhere
        manifest_path = tmp_path / "store" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = "repro.serve.store/1"
        for key in ("codec", "codec_params", "max_abs_error", "epsilon"):
            manifest.pop(key, None)
        for entry in manifest["shards"]:
            for key in ("nbytes", "params", "max_abs_error"):
                entry.pop(key, None)
        manifest_path.write_text(json.dumps(manifest))
        store = DistStore.open(tmp_path / "store")
        assert store.codec_name == "raw"
        assert store.max_abs_error == 0.0
        assert store.shard_nbytes(0) == 16 * store.n * 8
        store.verify()
        np.testing.assert_array_equal(
            store.load_shard(0), store_and_ref[1][:16]
        )

    @pytest.mark.parametrize("codec", ["f4", "u16q", "u16qd"])
    def test_compressed_round_trip_within_bound(
        self, codec, small_weighted, tmp_path
    ):
        store = solve_to_store(
            small_weighted, tmp_path / codec, shard_rows=16,
            num_landmarks=4, codec=codec,
        )
        ref = solve_apsp(small_weighted, use_flags=False).dist
        got = np.vstack(
            [store.load_shard(i) for i in range(store.num_shards)]
        )
        assert np.array_equal(np.isfinite(got), np.isfinite(ref))
        finite = np.isfinite(ref)
        assert np.max(np.abs(got[finite] - ref[finite])) \
            <= store.max_abs_error
        assert store.manifest["codec"] == codec
        # per-shard certified bounds roll up to the store-level maximum
        shard_errs = [
            store.shard_error(i) for i in range(store.num_shards)
        ]
        assert store.max_abs_error == max(shard_errs)

    def test_compressed_stores_are_smaller(self, small_weighted,
                                           tmp_path):
        raw_bytes = None
        sizes = {}
        for codec in ("raw", "f4", "u16q"):
            store = solve_to_store(
                small_weighted, tmp_path / codec, shard_rows=16,
                num_landmarks=2, codec=codec,
            )
            sizes[codec] = store.store_bytes()
            if codec == "raw":
                raw_bytes = store.store_bytes()
        assert sizes["f4"] * 2 == raw_bytes
        assert sizes["u16q"] * 4 == raw_bytes

    def test_landmarks_stay_raw_under_compression(
        self, small_weighted, tmp_path
    ):
        store = solve_to_store(
            small_weighted, tmp_path / "q", shard_rows=16,
            num_landmarks=4, codec="u16q",
        )
        ref = solve_apsp(small_weighted, use_flags=False).dist
        rows = store.landmark_rows()
        for i, vertex in enumerate(store.landmark_ids):
            assert np.array_equal(rows[i], ref[vertex])

    def test_epsilon_recorded(self, small_weighted, tmp_path):
        store = solve_to_store(
            small_weighted, tmp_path / "eps", shard_rows=16,
            num_landmarks=4, epsilon=0.5,
        )
        assert store.epsilon == 0.5
        assert DistStore.open(tmp_path / "eps").epsilon == 0.5

    def test_store_config_object_path(self, small_weighted, tmp_path):
        from repro.config import StoreConfig

        cfg = StoreConfig(codec="u16q", shard_rows=32, num_landmarks=2)
        store = solve_to_store(
            small_weighted, tmp_path / "cfg", store_config=cfg
        )
        assert store.codec_name == "u16q"
        assert store.shard_rows == 32
        assert len(store.landmark_ids) == 2
        # flat kwargs override the config object and re-validate
        override = solve_to_store(
            small_weighted, tmp_path / "cfg2", store_config=cfg,
            codec="raw",
        )
        assert override.codec_name == "raw"

    def test_bad_codec_rejected(self, small_weighted, tmp_path):
        with pytest.raises(ConfigError, match="codec"):
            solve_to_store(
                small_weighted, tmp_path / "bad", codec="lz77"
            )
        with pytest.raises(ConfigError, match="epsilon"):
            solve_to_store(
                small_weighted, tmp_path / "bad", epsilon=-0.5
            )


class TestStoreValidation:
    def test_refuses_non_empty_dir(self, small_weighted, tmp_path):
        (tmp_path / "occupied").mkdir()
        (tmp_path / "occupied" / "junk").write_text("x")
        with pytest.raises(StoreError, match="non-empty"):
            solve_to_store(
                small_weighted, tmp_path / "occupied", shard_rows=16
            )

    def test_open_missing_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="manifest"):
            DistStore.open(tmp_path)

    def test_open_rejects_schema_mismatch(self, store_and_ref, tmp_path):
        manifest_path = tmp_path / "store" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = "repro.serve.store/999"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="schema"):
            DistStore.open(tmp_path / "store")

    def test_vertex_out_of_range(self, store_and_ref):
        store, _ = store_and_ref
        with pytest.raises(StoreError, match="out of range"):
            store.shard_of(store.n)

    def test_bad_num_landmarks(self, small_weighted, tmp_path):
        with pytest.raises(ConfigError, match="num_landmarks"):
            solve_to_store(
                small_weighted, tmp_path / "s", shard_rows=8,
                num_landmarks=-1,
            )

    def test_config_recorded_in_manifest(self, store_and_ref):
        store, _ = store_and_ref
        from repro.config import SolverConfig

        cfg = SolverConfig.from_dict(store.manifest["config"])
        assert cfg.algorithm.use_flags is False
        assert cfg.parallel.backend == "serial"


class TestAtomicBuild:
    def test_mid_build_fault_leaves_target_absent(
        self, small_weighted, tmp_path, monkeypatch
    ):
        import repro.core.runner as runner

        real = runner.solve_apsp_shards

        def exploding(*args, **kwargs):
            inner = real(*args, **kwargs)

            def wrap():
                yield next(inner)
                raise RuntimeError("injected mid-build fault")

            return wrap()

        monkeypatch.setattr(runner, "solve_apsp_shards", exploding)
        target = tmp_path / "store"
        with pytest.raises(RuntimeError, match="mid-build"):
            solve_to_store(small_weighted, target, shard_rows=16)
        # the build happened in a temp sibling: the target path never
        # existed, and the sibling is swept on failure
        assert not target.exists()
        assert not list(tmp_path.glob(".store.build-*"))
        # a retry is not blocked by partial output
        monkeypatch.undo()
        store = solve_to_store(small_weighted, target, shard_rows=16)
        store.verify()


class TestLandmarkIntegrity:
    def test_failed_repair_leaves_damaged_file_untouched(
        self, store_and_ref, tmp_path
    ):
        from repro.graphs import attach_random_weights, barabasi_albert

        store, _ = store_and_ref
        lm_path = store.path / store.manifest["landmarks"]["file"]
        raw = bytearray(lm_path.read_bytes())
        raw[0] ^= 0xFF
        lm_path.write_bytes(bytes(raw))
        damaged = lm_path.read_bytes()
        imposter = attach_random_weights(
            barabasi_albert(store.n, 3, seed=9), seed=77
        )
        with pytest.raises(StoreError, match="graph"):
            store.repair(imposter)
        # verify-before-write: the failed repair must not have installed
        # the imposter's landmark bytes over the damaged file
        assert lm_path.read_bytes() == damaged

    def test_verify_flags_wrong_length_even_with_matching_crc(
        self, store_and_ref
    ):
        from repro.exceptions import StoreCorruptionError
        from repro.serve.store import _crc32

        store, _ = store_and_ref
        lm_path = store.path / store.manifest["landmarks"]["file"]
        padded = lm_path.read_bytes() + b"\x00" * 16
        lm_path.write_bytes(padded)
        manifest_path = store.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["landmarks"]["crc32"] = _crc32(padded)
        manifest_path.write_text(json.dumps(manifest))
        reopened = DistStore.open(store.path)
        # the checksum matches the padded bytes; only the length check
        # can catch this, both in verify() and on the read path
        with pytest.raises(StoreCorruptionError) as exc_info:
            reopened.verify()
        assert "landmarks" in exc_info.value.shards
        with pytest.raises(StoreCorruptionError, match="bytes"):
            reopened.landmark_rows()
