"""Request-scoped telemetry: trace ids, ring, JSONL, Perfetto export."""

from __future__ import annotations

import io
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import ServeError
from repro.serve import (
    TELEMETRY_SCHEMA_VERSION,
    JsonlSink,
    QueryEngine,
    ServeFrontend,
    TelemetryCollector,
    export_request_trace,
    generate_trace,
    make_trace_id,
    read_event_log,
    replay_virtual,
    solve_to_store,
)
from repro.serve.telemetry import (
    EVENT_KINDS,
    RequestContext,
    TelemetryEvent,
    emit as scope_emit,
    request_scope,
)
from repro.serve.traffic import TrafficSpec
from repro.trace import to_chrome, validate_chrome

SPEC = TrafficSpec(num_requests=64, rate=2000.0, zipf_s=1.1, seed=3,
                   row_frac=0.05, topk_frac=0.05, topk_k=4)


def _replay(n=128, collector=None):
    trace = generate_trace(SPEC, n)
    return replay_virtual(
        trace, n=n, shard_rows=16, cache_shards=2, num_servers=2,
        optimized=True, telemetry=collector,
    )


class TestTraceIds:
    def test_deterministic_and_unique(self):
        a = make_trace_id(7, "point", 3, 9)
        assert a == make_trace_id(7, "point", 3, 9)
        assert a != make_trace_id(8, "point", 3, 9)
        assert a != make_trace_id(7, "point", 3, 10)
        assert a.startswith("req-000007-")

    def test_replay_ids_match_sequence(self):
        collector = TelemetryCollector()
        _replay(collector=collector)
        requests = [e for e in collector.events() if e.kind == "request"]
        trace = generate_trace(SPEC, 128)
        assert len(requests) == len(trace)
        for seq, (event, req) in enumerate(zip(requests, trace)):
            assert event.trace_id == make_trace_id(
                seq, req.kind, req.u, req.v
            )


class TestCollector:
    def test_ring_keeps_newest(self):
        collector = TelemetryCollector(capacity=4)
        for i in range(11):
            collector.emit(f"req-{i:06d}-aaaaaaaa", "request", float(i))
        assert len(collector) == 4
        kept = [e.t for e in collector.events()]
        assert kept == [7.0, 8.0, 9.0, 10.0]

    def test_events_filter_by_trace(self):
        collector = TelemetryCollector()
        collector.emit("req-000000-aaaaaaaa", "request", 0.0)
        collector.emit("req-000001-bbbbbbbb", "request", 1.0)
        collector.emit("req-000000-aaaaaaaa", "answer", 2.0, 2.0)
        mine = collector.events("req-000000-aaaaaaaa")
        assert [e.kind for e in mine] == ["request", "answer"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError):
            TelemetryEvent(trace_id="t", kind="nope", t=0.0)
        assert "request" in EVENT_KINDS

    def test_validation(self):
        with pytest.raises(ServeError):
            TelemetryCollector(capacity=0)
        with pytest.raises(ServeError):
            TelemetryCollector(sample=0.0)
        with pytest.raises(ServeError):
            TelemetryCollector(sample=1.5)

    def test_scope_emit_is_noop_without_scope(self):
        scope_emit("cache_hit")  # must not raise

    def test_scope_emit_lands_under_context(self):
        collector = TelemetryCollector()
        ctx = RequestContext(trace_id="req-000000-cafecafe",
                             klass="point", u=1, v=2)
        with request_scope(collector, ctx):
            scope_emit("cache_hit", shard=3)
        (event,) = collector.events()
        assert event.trace_id == ctx.trace_id
        assert event.attrs["shard"] == 3


class TestJsonl:
    def test_log_byte_identical_across_runs(self):
        logs = []
        for _ in range(2):
            buf = io.StringIO()
            sink = JsonlSink(buf, params={"codec": "raw"})
            _replay(collector=TelemetryCollector(sink=sink))
            sink.close()
            logs.append(buf.getvalue())
        assert logs[0] == logs[1]
        header = json.loads(logs[0].splitlines()[0])
        assert header["schema"] == TELEMETRY_SCHEMA_VERSION

    def test_sampling_is_per_trace_and_deterministic(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        collector = TelemetryCollector(sink=sink, sample=0.5)
        _replay(collector=collector)
        sink.close()
        lines = buf.getvalue().splitlines()[1:]
        logged = {json.loads(line)["trace_id"] for line in lines}
        all_ids = {e.trace_id for e in collector.events()}
        assert set() < logged < all_ids
        # all-or-nothing per trace: every logged trace has its full set
        for tid in logged:
            assert collector.sampled(tid)
            mine = [json.loads(ln) for ln in lines
                    if json.loads(ln)["trace_id"] == tid]
            assert len(mine) == len(collector.events(tid))
        for tid in all_ids - logged:
            assert not collector.sampled(tid)

    def test_read_event_log_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), params={"seed": 3})
        collector = TelemetryCollector(sink=sink)
        _replay(collector=collector)
        sink.close()
        header, records = read_event_log(str(path))
        assert header["schema"] == TELEMETRY_SCHEMA_VERSION
        assert header["params"]["seed"] == 3
        assert len(records) == len(collector.events())
        assert records[0]["kind"] == "request"

    def test_read_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema":"other/9"}\n')
        with pytest.raises(ServeError):
            read_event_log(str(bad))


class TestPerfettoExport:
    def test_export_passes_validate_chrome(self):
        collector = TelemetryCollector()
        result = _replay(collector=collector)
        # pick the slowest point request by recorded latency
        lat = result.latencies["point"]
        tid = result.trace_ids["point"][lat.index(max(lat))]
        trace = export_request_trace(collector.events(), tid)
        assert validate_chrome(to_chrome(trace)) == []
        assert trace.meta["trace_id"] == tid

    def test_export_from_log_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        collector = TelemetryCollector(sink=sink)
        result = _replay(collector=collector)
        sink.close()
        _, records = read_event_log(str(path))
        tid = result.trace_ids["point"][0]
        trace = export_request_trace(records, tid)
        assert validate_chrome(to_chrome(trace)) == []

    def test_export_unknown_trace_raises(self):
        collector = TelemetryCollector()
        _replay(collector=collector)
        with pytest.raises(ServeError):
            export_request_trace(collector.events(), "req-999999-00000000")


class TestThreadedFrontend:
    def test_real_frontend_emits_scoped_events(self, small_weighted,
                                               tmp_path):
        store = solve_to_store(small_weighted, tmp_path / "store",
                               shard_rows=16, num_landmarks=4)
        collector = TelemetryCollector()
        frontend = ServeFrontend(
            QueryEngine(store, cache_shards=2), telemetry=collector,
        )
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(lambda v: frontend.point(0, v), range(32)))
        answers = [e for e in collector.events() if e.kind == "answer"]
        assert len(answers) == 32
        # every answer's trace has its own request + admit events, and
        # the engine's scope-aware emits landed under real trace ids
        for event in answers:
            kinds = {e.kind for e in collector.events(event.trace_id)}
            assert "request" in kinds
            assert "admit" in kinds
        hits = [e for e in collector.events() if e.kind == "cache_hit"]
        assert hits, "engine cache hits did not reach the collector"
