"""Artifact build / validate / JSON round-trip."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    artifact_from_apsp_result,
    build_artifact,
    env_fingerprint,
    load_artifact,
    use_registry,
    validate_artifact,
    write_artifact,
)


class TestEnvFingerprint:
    def test_has_the_explanatory_keys(self):
        env = env_fingerprint()
        for key in ("python", "platform", "machine", "numpy", "cpu_count"):
            assert key in env
        assert env["cpu_count"] >= 1


class TestBuildArtifact:
    def test_minimal_artifact_is_valid(self):
        art = build_artifact("empty")
        assert art["schema"] == SCHEMA_VERSION
        assert art["name"] == "empty"
        assert validate_artifact(art) == []

    def test_registry_seeds_sections_and_mappings_overlay(self):
        reg = MetricsRegistry()
        reg.add("ops.pops", 5)
        reg.gauge_set("util", 0.5)
        art = build_artifact(
            "overlay",
            counters={"ops.pops": 99, "extra": 1},
            registry=reg,
        )
        # explicit mapping wins over the registry value
        assert art["counters"] == {"ops.pops": 99, "extra": 1}
        assert art["gauges"] == {"util": 0.5}

    def test_non_numeric_counter_rejected(self):
        with pytest.raises(TypeError):
            build_artifact("bad", counters={"x": "fast"})
        with pytest.raises(TypeError):
            build_artifact("bad", counters={"x": True})


class TestValidate:
    def test_missing_section_reported(self):
        art = build_artifact("x")
        del art["counters"]
        assert any("counters" in p for p in validate_artifact(art))

    def test_unknown_schema_reported(self):
        art = build_artifact("x")
        art["schema"] = "something/else"
        assert any("schema" in p for p in validate_artifact(art))

    def test_bad_span_record_reported(self):
        art = build_artifact("x")
        art["spans"] = [{"path": "p"}]  # duration missing
        assert any("spans[0]" in p for p in validate_artifact(art))

    def test_non_mapping_rejected(self):
        assert validate_artifact([1, 2]) != []


class TestRoundTrip:
    def test_write_then_load_preserves_content(self, tmp_path):
        reg = MetricsRegistry()
        reg.add("kernel.merge_row.calls", 12)
        reg.gauge_max("sweep.fifo.peak_queue_occupancy", 17)
        art = build_artifact(
            "roundtrip",
            params={"graph": "rmat-s5", "threads": 4},
            timings={"virtual.total": 123.5, "wall.elapsed": 0.01},
            registry=reg,
        )
        path = str(tmp_path / "BENCH_roundtrip.json")
        assert write_artifact(path, art) == path
        loaded = load_artifact(path)
        for section in ("params", "counters", "timings", "gauges"):
            assert loaded[section] == art[section]
        assert loaded["schema"] == SCHEMA_VERSION

    def test_written_json_is_sorted_and_indented(self, tmp_path):
        path = str(tmp_path / "BENCH_fmt.json")
        write_artifact(path, build_artifact("fmt", counters={"b": 1, "a": 2}))
        text = open(path).read()
        assert text.endswith("\n")
        raw = json.loads(text)
        assert list(raw["counters"]) == ["a", "b"]

    def test_write_refuses_invalid_artifact(self, tmp_path):
        art = build_artifact("x")
        art.pop("env")
        with pytest.raises(ValueError):
            write_artifact(str(tmp_path / "bad.json"), art)

    def test_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text('{"schema": "repro.obs.bench/1"}')
        with pytest.raises(ValueError):
            load_artifact(str(path))


class TestFromApspResult:
    def test_counters_match_cost_model_exactly(self, tmp_path):
        from repro.core.runner import solve_apsp
        from repro.graphs.rmat import rmat

        graph = rmat(5, 8, seed=3)
        reg = MetricsRegistry()
        with use_registry(reg):
            result = solve_apsp(
                graph, algorithm="parapsp", backend="sim", num_threads=4
            )
        art = artifact_from_apsp_result(
            "unit", graph, result, registry=reg, wall_seconds=0.5
        )
        assert validate_artifact(art) == []
        # the acceptance criterion: artifact op counts == cost model,
        # both from the result object and the live registry counters
        ops = result.ops.as_dict()
        for key, value in ops.items():
            assert art["counters"][f"ops.{key}"] == value
        reg_counters = reg.counters()
        for key, value in ops.items():
            assert reg_counters[f"ops.{key}"] == value
        # sim backend -> deterministic virtual timings, plus the wall note
        assert art["params"]["backend"] == "sim"
        assert "virtual.total" in art["timings"]
        assert art["timings"]["wall.elapsed"] == 0.5
        write_artifact(str(tmp_path / "BENCH_unit.json"), art)

    def test_real_backend_times_go_under_wall(self):
        from repro.core.runner import solve_apsp
        from repro.graphs.rmat import rmat

        graph = rmat(4, 4, seed=1)
        result = solve_apsp(
            graph, algorithm="parapsp", backend="serial", num_threads=1
        )
        art = artifact_from_apsp_result("serial", graph, result)
        assert "wall.total" in art["timings"]
        assert not any(k.startswith("virtual.") for k in art["timings"])
