"""The regression comparator: exact counters, tolerant timings, exits."""

import copy

import pytest

from repro.obs import build_artifact, write_artifact
from repro.obs.regress import (
    check_kernel_consistency,
    compare_artifacts,
    main,
)


def make_artifact(**overrides):
    art = build_artifact(
        "gate",
        params={"graph": "rmat-s7", "threads": 8, "backend": "sim"},
        counters={"ops.row_merges": 522, "ops.edge_relaxations": 15525},
        timings={"virtual.total": 1000.0, "wall.elapsed": 0.25},
        gauges={"sim.utilization": 0.9},
    )
    for section, values in overrides.items():
        art[section] = {**art[section], **values}
    return art


class TestCompare:
    def test_identical_artifacts_pass(self):
        base = make_artifact()
        regressions, _ = compare_artifacts(base, copy.deepcopy(base))
        assert regressions == []

    def test_counter_increase_fails(self):
        cur = make_artifact(counters={"ops.row_merges": 523})
        regressions, _ = compare_artifacts(make_artifact(), cur)
        assert any("ops.row_merges" in r and "up" in r for r in regressions)

    def test_counter_decrease_also_fails_stale_baseline(self):
        cur = make_artifact(counters={"ops.row_merges": 500})
        regressions, _ = compare_artifacts(make_artifact(), cur)
        assert any("down" in r for r in regressions)

    def test_missing_counter_fails(self):
        cur = make_artifact()
        del cur["counters"]["ops.edge_relaxations"]
        regressions, _ = compare_artifacts(make_artifact(), cur)
        assert any("missing" in r for r in regressions)

    def test_new_counter_is_a_note_not_a_regression(self):
        cur = make_artifact(counters={"ops.flag_hits": 42})
        regressions, notes = compare_artifacts(make_artifact(), cur)
        assert regressions == []
        assert any("ops.flag_hits" in n for n in notes)

    def test_virtual_timing_within_tolerance_passes(self):
        cur = make_artifact(timings={"virtual.total": 1099.0})
        regressions, _ = compare_artifacts(make_artifact(), cur, rtol=0.10)
        assert regressions == []

    def test_virtual_timing_beyond_tolerance_fails(self):
        cur = make_artifact(timings={"virtual.total": 1101.0})
        regressions, _ = compare_artifacts(make_artifact(), cur, rtol=0.10)
        assert any("virtual.total" in r for r in regressions)

    def test_faster_is_never_a_regression(self):
        cur = make_artifact(timings={"virtual.total": 1.0})
        regressions, _ = compare_artifacts(make_artifact(), cur)
        assert regressions == []

    def test_wall_time_ignored_by_default(self):
        cur = make_artifact(timings={"wall.elapsed": 9999.0})
        regressions, notes = compare_artifacts(make_artifact(), cur)
        assert regressions == []
        assert any("wall.elapsed" in n for n in notes)

    def test_wall_time_gated_with_include_wall(self):
        cur = make_artifact(timings={"wall.elapsed": 9999.0})
        regressions, _ = compare_artifacts(
            make_artifact(), cur, include_wall=True
        )
        assert any("wall.elapsed" in r for r in regressions)

    def test_changed_param_fails_loudly(self):
        cur = make_artifact(params={"threads": 16})
        regressions, notes = compare_artifacts(make_artifact(), cur)
        # exactly ONE regression: the artifacts are incomparable — the
        # per-counter diffs that could never match must not pile on
        assert len(regressions) == 1
        assert "different solver configurations" in regressions[0]
        assert "threads" in regressions[0]
        assert "regenerate the baseline" in regressions[0]
        # per-key detail is demoted to the notes
        assert any("param threads" in n for n in notes)

    def test_incomparable_artifacts_skip_counter_diffs(self):
        cur = make_artifact(
            params={"algorithm": "johnson"},
            counters={"ops.row_merges": 1, "ops.edge_relaxations": 2},
        )
        base = make_artifact(params={"algorithm": "parapsp"})
        regressions, notes = compare_artifacts(base, cur)
        assert len(regressions) == 1
        assert not any(r.startswith("counter ") for r in regressions)
        assert any("comparison skipped" in n for n in notes)

    def test_ignore_excludes_key_from_gating(self):
        cur = make_artifact(counters={"ops.row_merges": 9999})
        regressions, notes = compare_artifacts(
            make_artifact(), cur, ignore=["ops.row_merges"]
        )
        assert regressions == []
        assert any("ignored" in n for n in notes)

    def test_gauge_drift_is_a_note(self):
        cur = make_artifact(gauges={"sim.utilization": 0.5})
        regressions, notes = compare_artifacts(make_artifact(), cur)
        assert regressions == []
        assert any("sim.utilization" in n for n in notes)

    def test_schema_mismatch_raises(self):
        cur = make_artifact()
        cur["schema"] = "repro.obs.bench/999"
        with pytest.raises(ValueError):
            compare_artifacts(make_artifact(), cur)

    def test_invalid_artifact_raises(self):
        cur = make_artifact()
        del cur["counters"]
        with pytest.raises(ValueError):
            compare_artifacts(make_artifact(), cur)


def traced_artifact(**fractions):
    summary = {
        "trace.makespan": 1000.0,
        "trace.lock_wait_fraction": 0.05,
        "trace.idle_fraction": 0.10,
        "trace.overhead_fraction": 0.08,
        "trace.compute_fraction": 0.77,
        "trace.phase.sweep.idle_fraction": 0.02,
        "trace.critical_path.length": 980.0,
    }
    summary.update(fractions)
    art = make_artifact()
    art["trace_summary"] = summary
    return art


class TestTraceSummaryGate:
    def test_identical_passes(self):
        regressions, _ = compare_artifacts(
            traced_artifact(), traced_artifact()
        )
        assert regressions == []

    def test_fraction_growth_past_atol_fails(self):
        cur = traced_artifact(**{"trace.idle_fraction": 0.14})
        regressions, _ = compare_artifacts(
            traced_artifact(), cur, trace_atol=0.02
        )
        assert any("trace.idle_fraction" in r for r in regressions)

    def test_growth_within_atol_passes(self):
        cur = traced_artifact(**{"trace.idle_fraction": 0.11})
        regressions, _ = compare_artifacts(
            traced_artifact(), cur, trace_atol=0.02
        )
        assert regressions == []

    def test_fraction_drop_is_an_improvement(self):
        cur = traced_artifact(**{"trace.lock_wait_fraction": 0.0})
        regressions, notes = compare_artifacts(traced_artifact(), cur)
        assert regressions == []
        assert any("trace.lock_wait_fraction" in n for n in notes)

    def test_phase_scoped_fractions_also_gate(self):
        cur = traced_artifact(**{"trace.phase.sweep.idle_fraction": 0.30})
        regressions, _ = compare_artifacts(traced_artifact(), cur)
        assert any(
            "trace.phase.sweep.idle_fraction" in r for r in regressions
        )

    def test_makespan_and_critical_path_are_notes(self):
        cur = traced_artifact(**{
            "trace.makespan": 2000.0,
            "trace.critical_path.length": 1900.0,
        })
        regressions, notes = compare_artifacts(traced_artifact(), cur)
        assert regressions == []
        assert any("trace.makespan" in n for n in notes)

    def test_summary_dropped_from_current_fails(self):
        regressions, _ = compare_artifacts(traced_artifact(), make_artifact())
        assert any("trace_summary" in r for r in regressions)

    def test_baseline_without_summary_is_a_note(self):
        regressions, notes = compare_artifacts(
            make_artifact(), traced_artifact()
        )
        assert regressions == []
        assert any("trace_summary" in n for n in notes)

    def test_gated_key_missing_from_current_fails(self):
        cur = traced_artifact()
        del cur["trace_summary"]["trace.idle_fraction"]
        regressions, _ = compare_artifacts(traced_artifact(), cur)
        assert any(
            "trace.idle_fraction" in r and "missing" in r
            for r in regressions
        )

    def test_ignore_excludes_trace_key(self):
        cur = traced_artifact(**{"trace.idle_fraction": 0.5})
        regressions, notes = compare_artifacts(
            traced_artifact(), cur, ignore=["trace.idle_fraction"]
        )
        assert regressions == []
        assert any("ignored" in n for n in notes)

    def test_cli_trace_atol_flag(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        write_artifact(str(base), traced_artifact())
        write_artifact(
            str(cur), traced_artifact(**{"trace.idle_fraction": 0.14})
        )
        assert main([str(base), str(cur), "--quiet"]) == 1
        assert main(
            [str(base), str(cur), "--trace-atol", "0.10", "--quiet"]
        ) == 0


def consistent_kernel_counters(**overrides):
    """A counter set satisfying every cross-layer invariant.

    12 pops: 4 merges (3 row calls + 1 batched row) and 8 relax events
    (5 row calls + 3 batched segments), 40 attempted arcs, 9 improved.
    """
    counters = {
        "ops.pops": 12,
        "ops.row_merges": 4,
        "ops.edge_relaxations": 40,
        "ops.edge_improvements": 9,
        "kernel.merge_row.calls": 3,
        "kernel.batch.merge.rows": 1,
        "kernel.relax.calls": 5,
        "kernel.batch.relax.segments": 3,
        "kernel.relax.attempted": 25,
        "kernel.batch.relax.attempted": 15,
        "kernel.relax.improved": 6,
        "kernel.batch.relax.improved": 3,
    }
    counters.update(overrides)
    return counters


class TestKernelConsistency:
    def test_consistent_counters_pass(self):
        assert check_kernel_consistency(consistent_kernel_counters()) == []

    def test_no_kernel_counters_skips(self):
        assert check_kernel_consistency({"ops.row_merges": 99}) == []

    def test_merge_count_mismatch_detected(self):
        problems = check_kernel_consistency(
            consistent_kernel_counters(**{"kernel.merge_row.calls": 2})
        )
        assert any("ops.row_merges" in p for p in problems)

    def test_attempted_mismatch_detected(self):
        problems = check_kernel_consistency(
            consistent_kernel_counters(**{"kernel.relax.attempted": 24})
        )
        assert any("ops.edge_relaxations" in p for p in problems)

    def test_improved_mismatch_detected(self):
        problems = check_kernel_consistency(
            consistent_kernel_counters(**{"kernel.batch.relax.improved": 4})
        )
        assert any("ops.edge_improvements" in p for p in problems)

    def test_relax_events_over_pop_budget_detected(self):
        problems = check_kernel_consistency(
            consistent_kernel_counters(**{"kernel.relax.calls": 9})
        )
        assert any("exceeds" in p for p in problems)

    def test_heap_stale_pops_leave_slack(self):
        # lazy heap deletion: pops exceed kernel events — allowed
        counters = consistent_kernel_counters(**{"ops.pops": 20})
        assert check_kernel_consistency(counters) == []

    def test_compare_artifacts_gates_on_inconsistency(self):
        base = make_artifact()
        cur = make_artifact(
            counters=consistent_kernel_counters(
                **{"kernel.merge_row.calls": 2}
            )
        )
        cur_base = make_artifact(
            counters=consistent_kernel_counters(
                **{"kernel.merge_row.calls": 2}
            )
        )
        regressions, _ = compare_artifacts(cur_base, cur)
        assert any("kernel consistency" in r for r in regressions)
        regressions, _ = compare_artifacts(base, copy.deepcopy(base))
        assert regressions == []

    def test_real_sweep_counters_are_consistent(self, small_weighted):
        """End to end: a real batched run satisfies the invariants."""
        import numpy as np

        from repro.core.sweep import run_sweep
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        n = small_weighted.num_vertices
        with use_registry(registry):
            outcome = run_sweep(
                small_weighted, np.arange(n), block_size=16
            )
        counters = registry.counters()
        total = outcome.total_ops()
        counters.update(
            {f"ops.{k}": v for k, v in total.as_dict().items()}
        )
        assert check_kernel_consistency(counters) == []


class TestMainExitCodes:
    def write(self, tmp_path, name, art):
        path = str(tmp_path / name)
        write_artifact(path, art)
        return path

    def test_exit_zero_on_match(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_artifact())
        cur = self.write(tmp_path, "cur.json", make_artifact())
        assert main([base, cur]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_exit_one_on_injected_count_regression(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_artifact())
        cur = self.write(
            tmp_path,
            "cur.json",
            make_artifact(counters={"ops.row_merges": 532}),
        )
        assert main([base, cur]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_two_on_missing_file(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_artifact())
        assert main([base, str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_exit_two_on_schema_mismatch(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_artifact())
        other = make_artifact()
        other["schema"] = "repro.obs.bench/9"
        cur = self.write(tmp_path, "cur.json", other)
        assert main([base, cur]) == 2
        assert "schema mismatch" in capsys.readouterr().err

    def test_rtol_flag_controls_timing_gate(self, tmp_path):
        base = self.write(tmp_path, "base.json", make_artifact())
        cur = self.write(
            tmp_path,
            "cur.json",
            make_artifact(timings={"virtual.total": 1200.0}),
        )
        assert main([base, cur]) == 1
        assert main([base, cur, "--rtol", "0.25"]) == 0
