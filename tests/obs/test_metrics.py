"""Registry behaviour: spans, counters, gauges, merging, fast path."""

import threading

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, use_registry


class FakeClock:
    """Deterministic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


class TestSpans:
    def test_nested_spans_compose_dotted_paths(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("apsp"):
            with reg.span("ordering"):
                pass
            with reg.span("dijkstra"):
                with reg.span("sweep"):
                    pass
        paths = [rec.path for rec in reg.spans]
        # inner spans close (and record) before outer ones
        assert paths == [
            "apsp.ordering",
            "apsp.dijkstra.sweep",
            "apsp.dijkstra",
            "apsp",
        ]

    def test_span_durations_aggregate_by_path(self):
        reg = MetricsRegistry(clock=FakeClock(step=1.0))
        for _ in range(3):
            with reg.span("phase"):
                pass
        durations = reg.span_durations()
        assert set(durations) == {"phase"}
        # each with-block reads the clock twice -> duration == 1.0 each
        assert durations["phase"] == 3.0

    def test_span_record_name_is_last_component(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("a"):
            with reg.span("b"):
                pass
        assert reg.spans[0].name == "b"

    def test_each_thread_gets_its_own_span_stack(self):
        reg = MetricsRegistry(clock=FakeClock())
        seen = []

        def worker(tag):
            with reg.span(tag):
                pass
            seen.append(tag)

        with reg.span("outer"):
            t = threading.Thread(target=worker, args=("isolated",))
            t.start()
            t.join()
        # the worker's span must NOT nest under the main thread's "outer"
        paths = {rec.path for rec in reg.spans}
        assert "isolated" in paths
        assert "outer.isolated" not in paths


class TestCounters:
    def test_add_and_counter_handle(self):
        reg = MetricsRegistry()
        reg.add("x")
        reg.add("x", 4)
        c = reg.counter("y")
        c.add(2.5)
        assert reg.counters() == {"x": 5, "y": 2.5}

    def test_add_many_with_prefix(self):
        reg = MetricsRegistry()
        reg.add_many({"pops": 3, "merges": 2}, prefix="ops")
        reg.add_many({"pops": 1}, prefix="ops")
        assert reg.counters() == {"ops.pops": 4, "ops.merges": 2}

    def test_merge_across_simulated_threads(self):
        # one registry per simulated worker, reduced like the paper's
        # per-thread op counters
        workers = []
        for t in range(4):
            reg = MetricsRegistry()
            reg.add("ops.pops", 10 + t)
            reg.gauge_max("peak_queue", t)
            workers.append(reg)
        total = MetricsRegistry()
        for reg in workers:
            total.merge(reg)
        assert total.counters() == {"ops.pops": 10 + 11 + 12 + 13}
        assert total.gauges() == {"peak_queue": 3.0}

    def test_merge_concatenates_spans(self):
        a = MetricsRegistry(clock=FakeClock())
        b = MetricsRegistry(clock=FakeClock())
        with a.span("left"):
            pass
        with b.span("right"):
            pass
        a.merge(b)
        assert [rec.path for rec in a.spans] == ["left", "right"]

    def test_concurrent_adds_do_not_lose_updates(self):
        reg = MetricsRegistry()
        n, iters = 8, 500

        def worker():
            for _ in range(iters):
                reg.add("hits")

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counters()["hits"] == n * iters


class TestDeterministicOrdering:
    def test_counters_sorted_regardless_of_touch_order(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.add(name)
        assert list(reg.counters()) == ["alpha", "mid", "zeta"]

    def test_gauges_sorted_regardless_of_touch_order(self):
        reg = MetricsRegistry()
        reg.gauge_set("z", 1.0)
        reg.gauge_set("a", 2.0)
        assert list(reg.gauges()) == ["a", "z"]

    def test_snapshot_inherits_sorted_order(self):
        reg = MetricsRegistry()
        reg.add("b")
        reg.add("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]


class TestGauges:
    def test_gauge_set_keeps_latest(self):
        reg = MetricsRegistry()
        reg.gauge_set("util", 0.5)
        reg.gauge_set("util", 0.25)
        assert reg.gauges() == {"util": 0.25}

    def test_gauge_max_keeps_peak(self):
        reg = MetricsRegistry()
        for v in (1, 7, 3):
            reg.gauge_max("occupancy", v)
        assert reg.gauges() == {"occupancy": 7.0}


class TestModuleFastPath:
    def test_disabled_by_default(self):
        assert metrics.get_registry() is None
        assert not metrics.enabled()
        # all helpers must be harmless no-ops
        metrics.counter_add("nope")
        metrics.gauge_set("nope", 1)
        metrics.gauge_max("nope", 1)
        with metrics.span("nope"):
            pass

    def test_disabled_span_is_shared_singleton(self):
        assert metrics.span("a") is metrics.span("b")

    def test_use_registry_installs_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg) as installed:
            assert installed is reg
            assert metrics.get_registry() is reg
            metrics.counter_add("seen", 2)
            metrics.gauge_max("peak", 9)
            with metrics.span("timed"):
                pass
        assert metrics.get_registry() is None
        assert reg.counters() == {"seen": 2}
        assert reg.gauges() == {"peak": 9.0}
        assert [rec.path for rec in reg.spans] == ["timed"]

    def test_use_registry_stacks(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                metrics.counter_add("who")
            assert metrics.get_registry() is outer
        assert inner.counters() == {"who": 1}
        assert outer.counters() == {}

    def test_use_registry_restores_on_exception(self):
        reg = MetricsRegistry()
        try:
            with use_registry(reg):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert metrics.get_registry() is None

    def test_snapshot_shape(self):
        reg = MetricsRegistry(clock=FakeClock())
        reg.add("c", 1)
        reg.gauge_set("g", 2)
        with reg.span("s"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["spans"] == [
            {"path": "s", "start": 0.0, "duration": 1.0}
        ]
