"""LatencyHistogram: certified error, mergeability, exemplars."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.obs.hist import HIST_SCHEMA_VERSION, LatencyHistogram

latencies = st.lists(
    st.floats(min_value=1e-6, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)


class TestBuckets:
    def test_rel_error_is_sqrt_gamma_minus_one(self):
        hist = LatencyHistogram(gamma=1.2)
        assert hist.rel_error == pytest.approx(math.sqrt(1.2) - 1.0)

    def test_estimate_within_rel_error_of_any_member(self):
        hist = LatencyHistogram()
        for value in (1e-6, 3.7e-4, 0.002, 0.5, 12.0):
            index = hist.bucket_index(value)
            lo, hi = hist.bucket_bounds(index)
            assert lo <= value < hi or index in (0, hist.num_buckets - 1)
            estimate = hist.bucket_estimate(index)
            if lo <= value < hi:
                assert abs(estimate - value) <= hist.rel_error * value

    def test_invalid_samples_rejected(self):
        hist = LatencyHistogram()
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValidationError):
                hist.record(bad)

    def test_zero_goes_to_zero_count(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        assert hist.zero_count == 1
        assert hist.count == 1
        assert hist.quantile(50) == 0.0


class TestQuantileCertificate:
    @settings(max_examples=60, deadline=None)
    @given(samples=latencies, q=st.floats(min_value=0, max_value=100))
    def test_quantile_within_certified_error_of_numpy(self, samples, q):
        hist = LatencyHistogram()
        for value in samples:
            hist.record(value)
        exact = float(np.percentile(samples, q))
        approx = hist.quantile(q)
        assert abs(approx - exact) <= hist.rel_error * exact + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(samples=latencies)
    def test_count_le_consistent_with_quantile(self, samples):
        hist = LatencyHistogram()
        for value in samples:
            hist.record(value)
        # count_le at the q-quantile must cover at least rank(q) samples
        median = hist.quantile(50)
        assert hist.count_le(median) >= (len(samples) - 1) // 2

    def test_clamping_counted_not_lost(self):
        hist = LatencyHistogram(v_min=1e-3, num_buckets=8)
        hist.record(1e-9)       # below v_min -> clamped low
        hist.record(1e9)        # above top bucket -> clamped high
        assert hist.clamped_low == 1
        assert hist.clamped_high == 1
        assert hist.count == 2


class TestMerge:
    @settings(max_examples=30, deadline=None)
    @given(a=latencies, b=latencies)
    def test_merge_equals_recording_everything(self, a, b):
        ha, hb, hall = (LatencyHistogram() for _ in range(3))
        for value in a:
            ha.record(value)
        for value in b:
            hb.record(value)
        for value in a + b:
            hall.record(value)
        merged = ha.merge(hb)
        assert merged.to_dict() == hall.to_dict()

    @settings(max_examples=20, deadline=None)
    @given(a=latencies, b=latencies)
    def test_merge_commutes(self, a, b):
        ha, hb = LatencyHistogram(), LatencyHistogram()
        for i, value in enumerate(a):
            ha.record(value, f"a-{i}")
        for i, value in enumerate(b):
            hb.record(value, f"b-{i}")
        assert ha.merge(hb).to_dict() == hb.merge(ha).to_dict()

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            LatencyHistogram(gamma=1.2).merge(LatencyHistogram(gamma=1.5))


class TestExemplars:
    def test_exemplar_names_recorded_trace_id(self):
        hist = LatencyHistogram()
        hist.record(0.004, "req-000001-aaaaaaaa")
        hist.record(0.0041, "req-000002-bbbbbbbb")
        index = hist.bucket_index(0.0041)
        assert hist.exemplars[index] == (0.0041, "req-000002-bbbbbbbb")

    def test_exemplar_is_order_independent(self):
        pairs = [(0.004, "a"), (0.0041, "b"), (0.00405, "c")]
        fwd, rev = LatencyHistogram(), LatencyHistogram()
        for value, tid in pairs:
            fwd.record(value, tid)
        for value, tid in reversed(pairs):
            rev.record(value, tid)
        assert fwd.exemplars == rev.exemplars


class TestSerialization:
    @settings(max_examples=20, deadline=None)
    @given(samples=latencies)
    def test_roundtrip(self, samples):
        hist = LatencyHistogram()
        for i, value in enumerate(samples):
            hist.record(value, f"req-{i:06d}-deadbeef")
        back = LatencyHistogram.from_dict(hist.to_dict())
        assert back.to_dict() == hist.to_dict()
        assert back.quantile(99) == hist.quantile(99)

    def test_snapshot_schema(self):
        snap = LatencyHistogram().snapshot()
        assert snap["schema"] == HIST_SCHEMA_VERSION

    def test_flat_keys_are_artifact_safe(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004):
            hist.record(value)
        flat = hist.flat("serve.opt.hist")
        assert flat["serve.opt.hist.count"] == 3.0
        bucket_keys = [k for k in flat if ".bucket." in k]
        assert bucket_keys
        for key, value in flat.items():
            assert isinstance(value, float)
            assert key.startswith("serve.opt.hist.")
