"""Hot-path instrumentation: kernels, sweeps, CLI and smoke harness."""

import json
import sys

import numpy as np
import pytest

from repro.core.kernels import merge_row, relax_edges
from repro.obs import MetricsRegistry, use_registry
from repro.types import INF


class TestKernelCounters:
    def test_merge_row_counts_calls_and_improvements(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            ds = np.array([0.0, 5.0, INF])
            dt = np.array([5.0, 0.0, 1.0])
            merge_row(ds, dt, ds_t=5.0)
        counters = reg.counters()
        assert counters["kernel.merge_row.calls"] == 1
        assert counters["kernel.merge_row.improved"] == 1
        assert "kernel.merge_row.noop" not in counters

    def test_merge_row_all_inf_candidate_row_edge_case(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            ds = np.array([0.0, 2.0])
            dt = np.array([INF, INF])
            assert merge_row(ds, dt, ds_t=INF) == 0
        counters = reg.counters()
        assert counters["kernel.merge_row.noop"] == 1
        assert counters["kernel.merge_row.all_inf_row"] == 1

    def test_merge_row_finite_noop_not_flagged_all_inf(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            ds = np.array([0.0, 1.0])
            dt = np.array([9.0, 0.0])
            merge_row(ds, dt, ds_t=9.0)
        counters = reg.counters()
        assert counters["kernel.merge_row.noop"] == 1
        assert "kernel.merge_row.all_inf_row" not in counters

    def test_relax_edges_empty_frontier_edge_case(self):
        reg = MetricsRegistry()
        empty = np.array([], dtype=np.int64)
        weights = np.array([], dtype=np.float64)
        with use_registry(reg):
            targets, improved = relax_edges(
                np.array([0.0, INF]), empty, weights, ds_t=0.0
            )
        assert improved == 0 and targets.size == 0
        counters = reg.counters()
        assert counters["kernel.relax.calls"] == 1
        assert counters["kernel.relax.empty_frontier"] == 1
        assert "kernel.relax.attempted" not in counters

    def test_relax_edges_counts_attempted_and_improved(self):
        reg = MetricsRegistry()
        ds = np.array([0.0, INF, 3.0, INF])
        neighbors = np.array([1, 2, 3], dtype=np.int64)
        weights = np.array([1.0, 9.0, 2.0])
        with use_registry(reg):
            targets, improved = relax_edges(ds, neighbors, weights, ds_t=0.0)
        assert improved == 2
        assert sorted(targets.tolist()) == [1, 3]
        counters = reg.counters()
        assert counters["kernel.relax.attempted"] == 3
        assert counters["kernel.relax.improved"] == 2

    def test_kernels_unchanged_when_disabled(self):
        # identical numeric behaviour with no registry installed
        ds = np.array([0.0, 5.0, INF])
        dt = np.array([5.0, 0.0, 1.0])
        assert merge_row(ds, dt, ds_t=5.0) == 1
        assert ds.tolist() == [0.0, 5.0, 6.0]


class TestSweepAndScheduleCounters:
    def test_registry_ops_match_result_ops_exactly(self):
        from repro.core.runner import solve_apsp
        from repro.graphs.rmat import rmat

        graph = rmat(5, 8, seed=7)
        reg = MetricsRegistry()
        with use_registry(reg):
            result = solve_apsp(
                graph, algorithm="parapsp", backend="sim", num_threads=4
            )
        counters = reg.counters()
        for key, value in result.ops.as_dict().items():
            assert counters[f"ops.{key}"] == value, key
        # per-sweep bookkeeping and phase spans came along
        assert counters["sweep.count"] == graph.num_vertices
        paths = {rec.path for rec in reg.spans}
        assert {"apsp.ordering", "apsp.dijkstra"} <= paths

    def test_queue_occupancy_gauge_recorded(self):
        from repro.core.modified_dijkstra import modified_dijkstra_sssp
        from repro.core.state import new_state
        from repro.graphs.rmat import rmat

        graph = rmat(4, 4, seed=2)
        state = new_state(graph.num_vertices)
        reg = MetricsRegistry()
        with use_registry(reg):
            modified_dijkstra_sssp(graph, 0, state)
        gauges = reg.gauges()
        assert gauges.get("sweep.fifo.peak_queue_occupancy", 0) >= 1

    def test_dynamic_schedule_publishes_claims(self):
        from repro.parallel.api import parallel_for
        from repro.types import Schedule

        reg = MetricsRegistry()
        with use_registry(reg):
            parallel_for(
                10,
                lambda i, t: None,
                num_threads=2,
                schedule=Schedule.DYNAMIC,
                backend="threads",
            )
        counters = reg.counters()
        assert counters["schedule.dynamic.iterations"] == 10
        assert counters["schedule.dynamic.claims"] >= 10


class TestCliMetrics:
    def test_solve_rmat_metrics_writes_valid_artifact(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import load_artifact

        out = tmp_path / "BENCH_cli.json"
        code = main(
            [
                "solve",
                "--rmat", "5",
                "--seed", "3",
                "--backend", "sim",
                "--threads", "4",
                "--metrics", str(out),
            ]
        )
        assert code == 0
        assert "metrics saved" in capsys.readouterr().out
        art = load_artifact(str(out))
        assert art["params"]["backend"] == "sim"
        assert art["counters"]["ops.row_merges"] > 0
        assert any(k.startswith("virtual.") for k in art["timings"])

    def test_smoke_harness_is_deterministic(self, tmp_path):
        from repro.obs.regress import main as regress_main
        from repro.obs.smoke import main as smoke_main

        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        assert smoke_main(["--out", a, "--scale", "5"]) == 0
        assert smoke_main(["--out", b, "--scale", "5"]) == 0
        assert regress_main([a, b, "--quiet"]) == 0
        # same gated payload bit-for-bit
        aj, bj = json.load(open(a)), json.load(open(b))
        for section in ("params", "counters", "gauges"):
            assert aj[section] == bj[section]

    def test_smoke_regression_is_caught(self, tmp_path):
        from repro.obs.regress import main as regress_main
        from repro.obs.smoke import main as smoke_main

        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        assert smoke_main(["--out", a, "--scale", "5"]) == 0
        art = json.load(open(a))
        art["counters"]["ops.row_merges"] -= 10
        with open(b, "w") as fh:
            json.dump(art, fh)
        assert regress_main([a, b, "--quiet"]) == 1


@pytest.mark.skipif(
    sys.platform == "win32", reason="overhead check needs a stable clock"
)
def test_disabled_overhead_is_one_attribute_probe():
    """The no-op path must not allocate: same singleton, no registry."""
    from repro.obs import metrics

    assert metrics.get_registry() is None
    before = metrics.span("x")
    after = metrics.span("y")
    assert before is after is metrics._NULL_SPAN
