"""TelemetryConfig: validation, round trips, collector construction."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TelemetryConfig
from repro.exceptions import ConfigError
from repro.serve.telemetry import TelemetryCollector


@st.composite
def telemetry_configs(draw):
    return TelemetryConfig(
        capacity=draw(st.integers(min_value=1, max_value=1 << 20)),
        sample=draw(
            st.floats(min_value=0.001, max_value=1.0,
                      allow_nan=False, allow_infinity=False)
        ),
    )


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(telemetry_configs())
    def test_dict_round_trip_is_identity(self, cfg):
        assert TelemetryConfig.from_dict(cfg.to_dict()) == cfg
        json.dumps(cfg.to_dict())  # plain JSON, no exotic objects

    def test_defaults(self):
        cfg = TelemetryConfig()
        assert cfg.capacity == 4096
        assert cfg.sample == 1.0

    def test_sample_normalised_to_float(self):
        assert isinstance(TelemetryConfig(sample=1).sample, float)


class TestValidation:
    @pytest.mark.parametrize(
        ("field", "build"),
        [
            ("telemetry.capacity", lambda: TelemetryConfig(capacity=0)),
            ("telemetry.capacity",
             lambda: TelemetryConfig(capacity=True)),
            ("telemetry.capacity",
             lambda: TelemetryConfig(capacity=2.5)),
            ("telemetry.sample", lambda: TelemetryConfig(sample=0.0)),
            ("telemetry.sample", lambda: TelemetryConfig(sample=1.5)),
            ("telemetry.sample", lambda: TelemetryConfig(sample=True)),
            ("telemetry.sample",
             lambda: TelemetryConfig(sample=float("nan"))),
        ],
    )
    def test_bad_values_name_the_field(self, field, build):
        with pytest.raises(ConfigError, match=field):
            build()

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            TelemetryConfig.from_dict({"capacity": 8, "ring": 2})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            TelemetryConfig.from_dict([1, 2])


class TestCollectorConstruction:
    def test_from_config_applies_knobs(self):
        cfg = TelemetryConfig(capacity=7, sample=0.25)
        collector = TelemetryCollector.from_config(cfg)
        assert collector.capacity == 7
        assert collector.sample == 0.25
        assert collector.sink is None
