"""StoreConfig: validation, round trips, and the solve_to_store path."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StoreConfig
from repro.exceptions import ConfigError
from repro.serve.codecs import codec_names


@st.composite
def store_configs(draw):
    return StoreConfig(
        codec=draw(st.sampled_from(codec_names())),
        shard_rows=draw(st.integers(min_value=1, max_value=512)),
        num_landmarks=draw(st.integers(min_value=0, max_value=16)),
        epsilon=draw(
            st.none()
            | st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
        ),
    )


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(store_configs())
    def test_dict_round_trip_is_identity(self, cfg):
        assert StoreConfig.from_dict(cfg.to_dict()) == cfg
        json.dumps(cfg.to_dict())  # plain JSON, no exotic objects

    def test_defaults(self):
        cfg = StoreConfig()
        assert cfg.codec == "raw"
        assert cfg.shard_rows == 256
        assert cfg.num_landmarks == 8
        assert cfg.epsilon is None

    def test_epsilon_normalised_to_float(self):
        assert isinstance(StoreConfig(epsilon=0).epsilon, float)


class TestValidation:
    @pytest.mark.parametrize(
        ("field", "build"),
        [
            ("store.codec", lambda: StoreConfig(codec="lz77")),
            ("store.shard_rows", lambda: StoreConfig(shard_rows=0)),
            ("store.shard_rows", lambda: StoreConfig(shard_rows=True)),
            ("store.num_landmarks",
             lambda: StoreConfig(num_landmarks=-1)),
            ("store.epsilon", lambda: StoreConfig(epsilon=-0.5)),
            ("store.epsilon",
             lambda: StoreConfig(epsilon=float("inf"))),
            ("store.epsilon",
             lambda: StoreConfig(epsilon=float("nan"))),
            ("store.epsilon", lambda: StoreConfig(epsilon="0")),
        ],
    )
    def test_field_named_in_error(self, field, build):
        with pytest.raises(ConfigError) as exc_info:
            build()
        assert exc_info.value.field == field
        assert field in str(exc_info.value)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown field"):
            StoreConfig.from_dict({"compression": "zstd"})
        with pytest.raises(ConfigError, match="mapping"):
            StoreConfig.from_dict("raw")

    def test_exported_from_package_root(self):
        import repro

        assert repro.StoreConfig is StoreConfig
