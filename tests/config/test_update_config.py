"""UpdateConfig: validation and round trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import UpdateConfig
from repro.exceptions import ConfigError


@st.composite
def update_configs(draw):
    return UpdateConfig(
        prescreen=draw(st.booleans()),
        verify_before=draw(st.booleans()),
        prune=draw(st.booleans()),
    )


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(update_configs())
    def test_dict_round_trip_is_identity(self, cfg):
        assert UpdateConfig.from_dict(cfg.to_dict()) == cfg
        json.dumps(cfg.to_dict())  # plain JSON, no exotic objects

    def test_defaults(self):
        cfg = UpdateConfig()
        assert cfg.prescreen is True
        assert cfg.verify_before is True
        assert cfg.prune is False


class TestValidation:
    @pytest.mark.parametrize(
        ("field", "build"),
        [
            ("update.prescreen", lambda: UpdateConfig(prescreen=1)),
            ("update.verify_before",
             lambda: UpdateConfig(verify_before="yes")),
            ("update.prune", lambda: UpdateConfig(prune=0.0)),
        ],
    )
    def test_bad_values_name_the_field(self, field, build):
        with pytest.raises(ConfigError, match=field):
            build()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown"):
            UpdateConfig.from_dict({"prescreen": True, "bogus": 1})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ConfigError, match="mapping"):
            UpdateConfig.from_dict([("prescreen", True)])
