"""ServeConfig: round-trip property, validation, shim semantics."""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AdmissionConfig,
    EngineConfig,
    RoutingConfig,
    ServeConfig,
    ServeCostConfig,
    StoreConfig,
    TelemetryConfig,
    UpdateConfig,
    load_serve_config,
    resolve_serve_config,
)
from repro.exceptions import ConfigError
from repro.serve.codecs import codec_names

_pos_float = st.floats(
    min_value=1e-6, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def serve_configs(draw):
    """Arbitrary *valid* ServeConfigs (cross-field constraint included)."""
    store = StoreConfig(
        codec=draw(st.sampled_from(codec_names())),
        shard_rows=draw(st.integers(min_value=1, max_value=512)),
        num_landmarks=draw(st.integers(min_value=0, max_value=16)),
        epsilon=draw(
            st.none()
            | st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
        ),
    )
    engine = EngineConfig(
        cache_shards=draw(st.integers(min_value=1, max_value=64)),
        verify_loads=draw(st.booleans()),
        num_servers=draw(st.integers(min_value=1, max_value=8)),
        batch_window=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        batch_max=draw(st.integers(min_value=1, max_value=128)),
    )
    admission = AdmissionConfig(
        max_point=draw(st.integers(min_value=1, max_value=256)),
        max_row=draw(st.integers(min_value=1, max_value=32)),
        max_topk=draw(st.integers(min_value=1, max_value=32)),
    )
    cost = ServeCostConfig(
        load_base=draw(_pos_float),
        hit_cost=draw(_pos_float),
        point_cost=draw(_pos_float),
    )
    telemetry = TelemetryConfig(
        capacity=draw(st.integers(min_value=1, max_value=8192)),
        sample=draw(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
        ),
    )
    update = UpdateConfig(
        prescreen=draw(st.booleans()),
        verify_before=draw(st.booleans()),
        prune=draw(st.booleans()),
    )
    num_nodes = draw(st.integers(min_value=1, max_value=8))
    routing = RoutingConfig(
        num_nodes=num_nodes,
        replication=draw(st.integers(min_value=1, max_value=num_nodes)),
        vnodes=draw(st.integers(min_value=1, max_value=128)),
        hash_seed=draw(st.integers(min_value=0, max_value=2**31)),
        node_budget=draw(st.integers(min_value=1, max_value=128)),
        servers_per_node=draw(st.integers(min_value=1, max_value=8)),
    )
    return ServeConfig(
        store=store, engine=engine, admission=admission, cost=cost,
        telemetry=telemetry, update=update, routing=routing,
    )


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(serve_configs())
    def test_dict_round_trip_is_identity(self, cfg):
        assert ServeConfig.from_dict(cfg.to_dict()) == cfg

    @settings(max_examples=50, deadline=None)
    @given(serve_configs())
    def test_json_round_trip_is_identity(self, cfg):
        assert ServeConfig.from_json(cfg.to_json()) == cfg
        # and the dict really is plain JSON (no exotic objects)
        json.dumps(cfg.to_dict())

    def test_from_dict_fills_missing_groups_with_defaults(self):
        assert ServeConfig.from_dict({}) == ServeConfig()

    def test_nested_plain_dicts_are_tolerated(self):
        cfg = ServeConfig(store={"codec": "f4"}, routing={"num_nodes": 4})
        assert cfg.store.codec == "f4"
        assert cfg.routing.num_nodes == 4

    def test_load_serve_config_file(self, tmp_path):
        cfg = ServeConfig.from_kwargs(
            shard_rows=32, cache_shards=8, num_nodes=4, replication=2
        )
        path = tmp_path / "serve.json"
        path.write_text(cfg.to_json())
        assert load_serve_config(str(path)) == cfg


class TestValidation:
    """Every rejection is a ConfigError naming the offending field."""

    @pytest.mark.parametrize(
        ("field", "build"),
        [
            ("store.codec", lambda: StoreConfig(codec="bogus")),
            ("store.shard_rows", lambda: StoreConfig(shard_rows=0)),
            ("store.num_landmarks",
             lambda: StoreConfig(num_landmarks=-1)),
            ("store.epsilon", lambda: StoreConfig(epsilon=-0.5)),
            ("engine.cache_shards",
             lambda: EngineConfig(cache_shards=0)),
            ("engine.verify_loads",
             lambda: EngineConfig(verify_loads=1)),
            ("engine.batch_window",
             lambda: EngineConfig(batch_window=-1.0)),
            ("admission.max_point",
             lambda: AdmissionConfig(max_point=0)),
            ("cost.load_base", lambda: ServeCostConfig(load_base=-1.0)),
            ("telemetry.capacity",
             lambda: TelemetryConfig(capacity=0)),
            ("update.prune", lambda: UpdateConfig(prune="yes")),
            ("routing.num_nodes", lambda: RoutingConfig(num_nodes=0)),
            ("routing.hash_seed", lambda: RoutingConfig(hash_seed=-1)),
            ("routing.replication",
             lambda: RoutingConfig(num_nodes=2, replication=3)),
        ],
    )
    def test_field_named_in_error(self, field, build):
        with pytest.raises(ConfigError) as exc_info:
            build()
        assert exc_info.value.field == field
        assert field in str(exc_info.value)

    def test_from_dict_rejects_unknown_groups_and_fields(self):
        with pytest.raises(ConfigError):
            ServeConfig.from_dict({"gpu": {}})
        with pytest.raises(ConfigError):
            ServeConfig.from_dict({"store": {"bogus_knob": 1}})

    def test_unknown_kwarg_is_config_error(self):
        with pytest.raises(ConfigError, match="wibble"):
            ServeConfig.from_kwargs(wibble=1)


class TestShim:
    """resolve_serve_config is the one dispatch path all entry points
    share: ServeConfig | mapping | None, flat kwargs win on conflict."""

    def test_none_plus_kwargs_builds_from_kwargs(self):
        cfg = resolve_serve_config(
            None, caller="t", overrides={"shard_rows": 32}
        )
        assert cfg == ServeConfig.from_kwargs(shard_rows=32)

    def test_mapping_accepted(self):
        cfg = resolve_serve_config(
            {"store": {"codec": "u16q"}}, caller="t"
        )
        assert cfg.store.codec == "u16q"

    def test_config_only_no_warning(self):
        cfg = ServeConfig.from_kwargs(cache_shards=8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = resolve_serve_config(cfg, caller="t")
        assert out is cfg

    def test_agreeing_kwargs_no_warning(self):
        cfg = ServeConfig.from_kwargs(cache_shards=8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = resolve_serve_config(
                cfg, caller="t", overrides={"cache_shards": 8}
            )
        assert out == cfg

    def test_conflicting_kwargs_warn_and_kwargs_win(self):
        cfg = ServeConfig.from_kwargs(cache_shards=8)
        with pytest.warns(DeprecationWarning, match="cache_shards"):
            out = resolve_serve_config(
                cfg, caller="t", overrides={"cache_shards": 2}
            )
        assert out.engine.cache_shards == 2

    def test_bad_type_is_config_error(self):
        with pytest.raises(ConfigError) as exc_info:
            resolve_serve_config(42, caller="t")
        assert exc_info.value.field == "serve_config"

    def test_with_overrides(self):
        cfg = ServeConfig()
        bumped = cfg.with_overrides(num_nodes=4, replication=2)
        assert bumped.routing.num_nodes == 4
        assert bumped.routing.replication == 2
        # original untouched (frozen)
        assert cfg.routing.num_nodes == 1


class TestEntryPointParity:
    """The same ServeConfig produces the same behavior as the legacy
    flat kwargs at every serving entry point."""

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory, small_weighted):
        from repro.serve import solve_to_store

        cfg = ServeConfig.from_kwargs(shard_rows=16, num_landmarks=4)
        return solve_to_store(
            small_weighted,
            tmp_path_factory.mktemp("cfgstore") / "s",
            serve_config=cfg,
        )

    def test_store_build_matches_flat_kwargs(
        self, tmp_path, small_weighted, store
    ):
        from repro.serve import solve_to_store

        flat = solve_to_store(
            small_weighted, tmp_path / "flat", shard_rows=16,
            num_landmarks=4,
        )
        assert flat.num_shards == store.num_shards
        for i in range(store.num_shards):
            assert flat.load_shard(i).tobytes() == \
                store.load_shard(i).tobytes()

    def test_engine_honours_config(self, store):
        from repro.serve import QueryEngine

        cfg = ServeConfig.from_kwargs(cache_shards=2)
        engine = QueryEngine(store, serve_config=cfg)
        assert engine.cache_shards == 2
        flat = QueryEngine(store, cache_shards=2)
        assert engine.dist(0, 7) == flat.dist(0, 7)

    def test_frontend_honours_admission(self, store):
        from repro.serve import QueryEngine, ServeFrontend

        cfg = ServeConfig.from_kwargs(max_point=3)
        fe = ServeFrontend(QueryEngine(store), serve_config=cfg)
        assert fe.policy.max_point == 3

    def test_store_conflict_with_store_config_rejected(
        self, tmp_path, small_weighted
    ):
        from repro.config import StoreConfig as SC
        from repro.serve import solve_to_store

        with pytest.raises(ConfigError) as exc_info:
            solve_to_store(
                small_weighted, tmp_path / "x",
                store_config=SC(), serve_config=ServeConfig(),
            )
        assert exc_info.value.field == "serve_config"
