"""SolverConfig: round-trip property, validation, shim semantics."""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AlgorithmConfig,
    BatchConfig,
    FaultConfig,
    ObsConfig,
    ParallelConfig,
    SolverConfig,
    load_config,
)
from repro.core.kernels import kernel_names
from repro.core.runner import ALGORITHMS, solve_apsp
from repro.exceptions import (
    AlgorithmError,
    BackendError,
    ConfigError,
    ScheduleError,
)
from repro.graphs.degree import DegreeKind
from repro.order import ORDERINGS
from repro.simx.machine import MachineSpec

SERIAL_ALGOS = [n for n, s in ALGORITHMS.items() if not s.parallel]
PARALLEL_ALGOS = [n for n, s in ALGORITHMS.items() if s.parallel]
DEGREE_KINDS = [k.value for k in DegreeKind]


@st.composite
def solver_configs(draw):
    """Arbitrary *valid* SolverConfigs (cross-group constraint included)."""
    name = draw(st.sampled_from(sorted(ALGORITHMS)))
    if ALGORITHMS[name].parallel:
        backend = draw(
            st.sampled_from(["serial", "threads", "process", "sim"])
        )
    else:
        backend = draw(st.sampled_from(["serial", "sim"]))
    spec = ALGORITHMS[name]
    algorithm = AlgorithmConfig(
        name=name,
        ordering=draw(st.none() | st.sampled_from(ORDERINGS)),
        schedule=draw(
            st.none()
            | st.sampled_from(["block", "static-cyclic", "dynamic"])
        ),
        queue=draw(st.sampled_from(["fifo", "heap"])),
        ratio=draw(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
        ),
        degree_kind=draw(st.sampled_from(DEGREE_KINDS)),
        use_flags=draw(st.booleans()),
        delta=draw(
            st.none()
            | st.just("auto")
            | st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
        ) if spec.uses_delta else None,
    )
    parallel = ParallelConfig(
        backend=backend,
        num_threads=draw(st.integers(min_value=1, max_value=16)),
        chunk=draw(st.integers(min_value=1, max_value=8)),
    )
    batch = BatchConfig(
        block_size=draw(
            st.none()
            | st.just("auto")
            | st.integers(min_value=1, max_value=64)
        ) if spec.batchable else None,
        kernel=draw(st.sampled_from(("auto",) + kernel_names())),
    )
    faults = FaultConfig(
        on_worker_death=draw(st.sampled_from(["retry", "raise"])),
        timeout=draw(
            st.none()
            | st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
        ),
        max_retries=draw(st.integers(min_value=0, max_value=5)),
    )
    obs = ObsConfig(trace=draw(st.booleans()))
    return SolverConfig(
        algorithm=algorithm, parallel=parallel, batch=batch,
        faults=faults, obs=obs,
    )


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(solver_configs())
    def test_dict_round_trip_is_identity(self, cfg):
        assert SolverConfig.from_dict(cfg.to_dict()) == cfg

    @settings(max_examples=50, deadline=None)
    @given(solver_configs())
    def test_json_round_trip_is_identity(self, cfg):
        assert SolverConfig.from_json(cfg.to_json()) == cfg
        # and the dict really is plain JSON (no exotic objects)
        json.dumps(cfg.to_dict())

    def test_machine_spec_round_trips(self):
        cfg = SolverConfig(
            parallel=ParallelConfig(
                backend="sim",
                num_threads=4,
                machine=MachineSpec(name="toy", num_cores=4),
            )
        )
        assert SolverConfig.from_dict(cfg.to_dict()) == cfg

    def test_fault_plan_round_trips(self):
        from repro.faults import parse_fault_plan

        plan = parse_fault_plan("kill:round=0,worker=1")
        cfg = SolverConfig(faults=FaultConfig(plan=plan,
                                              on_worker_death="retry"))
        assert SolverConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_fills_missing_groups_with_defaults(self):
        assert SolverConfig.from_dict({}) == SolverConfig()

    def test_load_config_file(self, tmp_path):
        cfg = SolverConfig(parallel=ParallelConfig(backend="sim",
                                                   num_threads=8))
        path = tmp_path / "cfg.json"
        path.write_text(cfg.to_json())
        assert load_config(str(path)) == cfg


class TestValidation:
    """Every rejection is a ConfigError naming the offending field."""

    @pytest.mark.parametrize(
        ("field", "build"),
        [
            ("algorithm.name", lambda: AlgorithmConfig(name="bogus")),
            ("algorithm.ordering",
             lambda: AlgorithmConfig(ordering="bogus")),
            ("algorithm.schedule",
             lambda: AlgorithmConfig(schedule="bogus")),
            ("algorithm.queue", lambda: AlgorithmConfig(queue="lifo")),
            ("algorithm.ratio", lambda: AlgorithmConfig(ratio=0.0)),
            ("algorithm.ratio", lambda: AlgorithmConfig(ratio=1.5)),
            ("algorithm.use_flags",
             lambda: AlgorithmConfig(use_flags=1)),
            ("parallel.backend", lambda: ParallelConfig(backend="gpu")),
            ("parallel.num_threads",
             lambda: ParallelConfig(num_threads=0)),
            ("parallel.chunk", lambda: ParallelConfig(chunk=0)),
            ("parallel.machine", lambda: ParallelConfig(machine="m5")),
            ("batch.block_size", lambda: BatchConfig(block_size=0)),
            ("batch.block_size", lambda: BatchConfig(block_size="big")),
            ("batch.kernel", lambda: BatchConfig(kernel="cuda")),
            ("faults.on_worker_death",
             lambda: FaultConfig(on_worker_death="shrug")),
            ("faults.timeout", lambda: FaultConfig(timeout=0)),
            ("faults.max_retries", lambda: FaultConfig(max_retries=-1)),
            ("obs.trace", lambda: ObsConfig(trace="yes")),
        ],
    )
    def test_field_named_in_error(self, field, build):
        with pytest.raises(ConfigError) as exc_info:
            build()
        assert exc_info.value.field == field
        assert field in str(exc_info.value)

    def test_sequential_algorithm_rejects_parallel_backend(self):
        with pytest.raises(ConfigError) as exc_info:
            SolverConfig(
                algorithm=AlgorithmConfig(name="seq-basic"),
                parallel=ParallelConfig(backend="threads", num_threads=2),
            )
        assert exc_info.value.field == "parallel.backend"

    def test_from_dict_rejects_unknown_groups_and_fields(self):
        with pytest.raises(ConfigError):
            SolverConfig.from_dict({"gpu": {}})
        with pytest.raises(ConfigError):
            SolverConfig.from_dict({"algorithm": {"bogus_knob": 1}})

    def test_legacy_exception_types_still_catch(self):
        """ConfigError subclasses the pre-redesign exception types, so
        code written against AlgorithmError/ScheduleError/BackendError
        keeps working."""
        for legacy, build in [
            (AlgorithmError, lambda: AlgorithmConfig(name="bogus")),
            (ScheduleError, lambda: AlgorithmConfig(schedule="bogus")),
            (BackendError, lambda: ParallelConfig(backend="gpu")),
        ]:
            with pytest.raises(legacy):
                build()


class TestShim:
    def test_config_only_no_warning(self, small_weighted):
        cfg = SolverConfig.from_kwargs(use_flags=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            solve_apsp(small_weighted, config=cfg)

    def test_agreeing_kwargs_no_warning(self, small_weighted):
        cfg = SolverConfig.from_kwargs(use_flags=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # explicit kwarg equals what the config already says
            solve_apsp(small_weighted, config=cfg, use_flags=False)

    def test_conflicting_kwargs_warn_and_kwargs_win(self, small_weighted):
        # the shim detects explicit kwargs as "differs from the legacy
        # default", so the conflict must come from a non-default kwarg
        cfg = SolverConfig()  # queue="fifo"
        with pytest.warns(DeprecationWarning, match="queue"):
            result = solve_apsp(small_weighted, config=cfg, queue="heap")
        # the explicit kwarg won: ops match a pure heap run
        ref = solve_apsp(small_weighted, queue="heap")
        assert result.ops == ref.ops

    def test_config_accepts_plain_mapping(self, small_weighted):
        result = solve_apsp(
            small_weighted,
            config={"algorithm": {"use_flags": False}},
        )
        ref = solve_apsp(small_weighted, use_flags=False)
        import numpy as np

        assert np.array_equal(result.dist, ref.dist)

    def test_unknown_kwarg_is_config_error(self, small_weighted):
        with pytest.raises(ConfigError, match="wibble"):
            SolverConfig.from_kwargs(wibble=1)

    def test_with_overrides(self):
        cfg = SolverConfig()
        bumped = cfg.with_overrides(num_threads=4, backend="sim")
        assert bumped.parallel.num_threads == 4
        assert bumped.parallel.backend == "sim"
        # original untouched (frozen)
        assert cfg.parallel.num_threads == 1
