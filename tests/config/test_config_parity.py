"""Config-vs-kwargs parity: one dispatch path, bitwise-identical results.

The redesign's contract is that ``solve_apsp(g, config=c)`` and the
equivalent flat-kwargs call are the *same* run — not merely numerically
close: identical ``dist`` bytes and identical ``OpCounts`` — across
backends and schedules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SolverConfig
from repro.core.runner import solve_apsp

COMBOS = [
    pytest.param(kwargs, id=label)
    for label, kwargs in [
        ("serial-default", {}),
        ("serial-seq-opt", {"algorithm": "seq-opt", "ratio": 0.5}),
        ("serial-heap-noflags", {"queue": "heap", "use_flags": False}),
        ("serial-batched", {"block_size": 16, "kernel": "blocked"}),
        (
            "sim-8t",
            {"backend": "sim", "num_threads": 8, "trace": True},
        ),
        # flags off on the real-concurrency backends: with flags on,
        # which finalised rows get merged depends on worker timing, so
        # runs are not bit-deterministic and parity cannot be asserted
        (
            "threads-dynamic",
            {"backend": "threads", "num_threads": 4,
             "schedule": "dynamic", "use_flags": False},
        ),
        (
            "threads-static-cyclic",
            {"backend": "threads", "num_threads": 4,
             "schedule": "static-cyclic", "chunk": 2,
             "use_flags": False},
        ),
        (
            "process-block",
            {"backend": "process", "num_threads": 2, "schedule": "block",
             "use_flags": False},
        ),
    ]
]


@pytest.mark.parametrize("kwargs", COMBOS)
def test_config_equals_kwargs_bitwise(small_weighted, kwargs):
    via_kwargs = solve_apsp(small_weighted, **kwargs)
    via_config = solve_apsp(
        small_weighted, config=SolverConfig.from_kwargs(**kwargs)
    )
    assert np.array_equal(via_kwargs.dist, via_config.dist)
    assert via_kwargs.ops == via_config.ops
    assert via_kwargs.algorithm == via_config.algorithm
    if kwargs.get("backend") == "sim":
        # virtual time is part of the result on SIM; it must agree too
        assert via_kwargs.total_time == via_config.total_time


@st.composite
def deterministic_kwargs(draw):
    """Flat kwargs drawn from the solver's bit-deterministic envelope."""
    out = {
        "algorithm": draw(
            st.sampled_from(["seq-basic", "seq-opt", "parapsp"])
        ),
        "queue": draw(st.sampled_from(["fifo", "heap"])),
        "use_flags": draw(st.booleans()),
        "backend": draw(st.sampled_from(["serial", "sim"])),
    }
    if out["backend"] == "sim":
        out["num_threads"] = draw(st.integers(min_value=1, max_value=8))
    if out["algorithm"] != "seq-basic":
        out["ratio"] = draw(
            st.sampled_from([0.25, 0.5, 0.9, 1.0])
        )
    if draw(st.booleans()):
        out["schedule"] = draw(
            st.sampled_from(["block", "static-cyclic", "dynamic"])
        )
    return out


@settings(max_examples=12, deadline=None)
@given(deterministic_kwargs())
def test_parity_property(toy_graph, kwargs):
    via_kwargs = solve_apsp(toy_graph, **kwargs)
    via_config = solve_apsp(
        toy_graph, config=SolverConfig.from_kwargs(**kwargs)
    )
    assert np.array_equal(via_kwargs.dist, via_config.dist)
    assert via_kwargs.ops == via_config.ops
