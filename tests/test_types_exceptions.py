"""Shared enums, value objects and the exception hierarchy."""

import pytest

from repro import exceptions as exc
from repro.types import Backend, OpCounts, PhaseTimes, Schedule


class TestScheduleEnum:
    def test_coerce_accepts_member(self):
        assert Schedule.coerce(Schedule.BLOCK) is Schedule.BLOCK

    def test_coerce_accepts_string(self):
        assert Schedule.coerce("dynamic") is Schedule.DYNAMIC
        assert Schedule.coerce("static-cyclic") is Schedule.STATIC_CYCLIC

    def test_coerce_rejects_unknown(self):
        with pytest.raises(exc.ScheduleError, match="block"):
            Schedule.coerce("guided")

    def test_values_are_cli_strings(self):
        assert {m.value for m in Schedule} == {
            "block",
            "static-cyclic",
            "dynamic",
        }


class TestBackendEnum:
    def test_coerce(self):
        assert Backend.coerce("sim") is Backend.SIM
        assert Backend.coerce(Backend.THREADS) is Backend.THREADS

    def test_coerce_rejects_unknown(self):
        with pytest.raises(exc.BackendError):
            Backend.coerce("cuda")

    def test_four_backends(self):
        assert {m.value for m in Backend} == {
            "serial",
            "threads",
            "process",
            "sim",
        }


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            exc.GraphError,
            exc.GraphFormatError,
            exc.DatasetError,
            exc.OrderingError,
            exc.ScheduleError,
            exc.BackendError,
            exc.SimulationError,
            exc.AlgorithmError,
            exc.ValidationError,
            exc.BenchmarkError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, exc.ReproError)

    def test_format_error_is_graph_error(self):
        assert issubclass(exc.GraphFormatError, exc.GraphError)

    def test_catchable_as_base(self):
        with pytest.raises(exc.ReproError):
            raise exc.DatasetError("nope")


class TestOpCountsAndPhaseTimes:
    def test_opcounts_defaults_zero(self):
        c = OpCounts()
        assert c.total_work() == 0
        assert all(v == 0 for v in c.as_dict().values())

    def test_phase_times_defaults(self):
        pt = PhaseTimes()
        assert pt.total == 0.0

    def test_opcounts_sum_matches_iadd_fold(self):
        counts = [
            OpCounts(
                pops=i,
                edge_relaxations=2 * i,
                edge_improvements=3 * i,
                row_merges=i % 3,
                merge_comparisons=7 * (i % 3),
                flag_hits=i % 2,
            )
            for i in range(25)
        ]
        folded = OpCounts()
        for c in counts:
            folded += c
        assert OpCounts.sum(counts) == folded

    def test_opcounts_sum_empty_is_zero(self):
        assert OpCounts.sum([]) == OpCounts()
        assert OpCounts.sum(iter([])) == OpCounts()
