"""Atomic counter and flag array."""

import threading

from repro.parallel import AtomicCounter, AtomicFlagArray


class TestAtomicCounter:
    def test_fetch_add_returns_previous(self):
        c = AtomicCounter()
        assert c.fetch_add() == 0
        assert c.fetch_add(5) == 1
        assert c.value == 6

    def test_start_value(self):
        assert AtomicCounter(10).value == 10

    def test_concurrent_uniqueness(self):
        c = AtomicCounter()
        tickets = [[] for _ in range(4)]

        def worker(k):
            for _ in range(500):
                tickets[k].append(c.fetch_add())

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        combined = sorted(x for part in tickets for x in part)
        assert combined == list(range(2000))


class TestAtomicFlagArray:
    def test_set_get(self):
        flags = AtomicFlagArray(5)
        assert not flags.get(3)
        flags.set(3)
        assert flags.get(3)
        assert flags.count_set() == 1

    def test_len(self):
        assert len(AtomicFlagArray(7)) == 7

    def test_idempotent_set(self):
        flags = AtomicFlagArray(2)
        flags.set(0)
        flags.set(0)
        assert flags.count_set() == 1
