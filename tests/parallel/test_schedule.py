"""Loop-scheduling math: the OpenMP schedule clause semantics."""

import numpy as np
import pytest

from repro.exceptions import ScheduleError
from repro.parallel import (
    DynamicCounter,
    block_assignment,
    static_assignment,
    static_cyclic_assignment,
)
from repro.types import Schedule


def flatten(assignment):
    return sorted(int(i) for part in assignment for i in part)


class TestBlock:
    def test_partitions_exactly(self):
        for n in (0, 1, 7, 10, 16, 23):
            for t in (1, 2, 3, 8):
                assert flatten(block_assignment(n, t)) == list(range(n))

    def test_contiguous_blocks(self):
        for part in block_assignment(17, 4):
            if part.size > 1:
                assert np.all(np.diff(part) == 1)

    def test_early_threads_get_remainder(self):
        sizes = [p.size for p in block_assignment(10, 3)]
        assert sizes == [4, 3, 3]

    def test_more_threads_than_items(self):
        parts = block_assignment(2, 5)
        assert [p.size for p in parts] == [1, 1, 0, 0, 0]


class TestStaticCyclic:
    def test_partitions_exactly(self):
        for n in (0, 5, 12, 31):
            for t in (1, 2, 4):
                assert flatten(static_cyclic_assignment(n, t)) == list(range(n))

    def test_round_robin_chunk1(self):
        parts = static_cyclic_assignment(10, 3)
        assert parts[0].tolist() == [0, 3, 6, 9]
        assert parts[1].tolist() == [1, 4, 7]
        assert parts[2].tolist() == [2, 5, 8]

    def test_chunked_round_robin(self):
        parts = static_cyclic_assignment(10, 2, chunk=3)
        assert parts[0].tolist() == [0, 1, 2, 6, 7, 8]
        assert parts[1].tolist() == [3, 4, 5, 9]


class TestStaticDispatch:
    def test_block_and_cyclic_selectable(self):
        assert [
            p.tolist() for p in static_assignment(Schedule.BLOCK, 4, 2)
        ] == [[0, 1], [2, 3]]
        assert [
            p.tolist()
            for p in static_assignment("static-cyclic", 4, 2)
        ] == [[0, 2], [1, 3]]

    def test_dynamic_has_no_static_assignment(self):
        with pytest.raises(ScheduleError, match="dynamic"):
            static_assignment(Schedule.DYNAMIC, 4, 2)

    def test_validation(self):
        with pytest.raises(ScheduleError):
            block_assignment(-1, 2)
        with pytest.raises(ScheduleError):
            block_assignment(4, 0)
        with pytest.raises(ScheduleError):
            static_cyclic_assignment(4, 2, chunk=0)

    def test_schedule_coercion_error(self):
        with pytest.raises(ScheduleError, match="unknown schedule"):
            Schedule.coerce("fifo")


class TestDynamicCounter:
    def test_hands_out_in_order(self):
        counter = DynamicCounter(5)
        seen = []
        while True:
            chunk = counter.next_chunk()
            if not chunk:
                break
            seen.extend(chunk)
        assert seen == [0, 1, 2, 3, 4]

    def test_chunked(self):
        counter = DynamicCounter(7, chunk=3)
        assert list(counter.next_chunk()) == [0, 1, 2]
        assert list(counter.next_chunk()) == [3, 4, 5]
        assert list(counter.next_chunk()) == [6]
        assert not counter.next_chunk()

    def test_remaining(self):
        counter = DynamicCounter(4, chunk=2)
        assert counter.remaining() == 4
        counter.next_chunk()
        assert counter.remaining() == 2

    def test_thread_safe_no_duplicates(self):
        import threading

        counter = DynamicCounter(2000)
        claimed = [[] for _ in range(4)]

        def worker(k):
            while True:
                chunk = counter.next_chunk()
                if not chunk:
                    return
                claimed[k].extend(chunk)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        combined = sorted(i for part in claimed for i in part)
        assert combined == list(range(2000))
