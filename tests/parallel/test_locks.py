"""Counting locks and the per-bucket lock array."""

import threading

import pytest

from repro.parallel import CountingLock, LockArray


class TestCountingLock:
    def test_context_manager_counts(self):
        lock = CountingLock()
        with lock:
            pass
        with lock:
            pass
        assert lock.acquisitions == 2
        assert lock.contended == 0

    def test_contention_observed(self):
        lock = CountingLock()
        started = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                started.set()
                release.wait(timeout=5)

        t = threading.Thread(target=holder)
        t.start()
        started.wait(timeout=5)
        # this acquire must observe the lock held
        acquired = []

        def contender():
            with lock:
                acquired.append(True)

        t2 = threading.Thread(target=contender)
        t2.start()
        # give the contender time to hit the held lock
        import time

        time.sleep(0.05)
        release.set()
        t.join()
        t2.join()
        assert acquired == [True]
        assert lock.contended >= 1
        assert lock.acquisitions == 2

    def test_mutual_exclusion(self):
        lock = CountingLock()
        counter = {"v": 0}

        def bump():
            for _ in range(3000):
                with lock:
                    counter["v"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["v"] == 12000


class TestLockArray:
    def test_size_and_indexing(self):
        arr = LockArray(5)
        assert len(arr) == 5
        with arr[3]:
            pass
        assert arr[3].acquisitions == 1

    def test_totals(self):
        arr = LockArray(3)
        with arr[0]:
            pass
        with arr[0]:
            pass
        with arr[2]:
            pass
        assert arr.total_acquisitions == 3
        assert arr.acquisition_histogram() == [2, 0, 1]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LockArray(-1)

    def test_zero_size_ok(self):
        assert len(LockArray(0)) == 0
