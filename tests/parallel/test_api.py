"""parallel_for / parallel_map across backends."""

import numpy as np
import pytest

from repro.exceptions import BackendError
from repro.parallel import Backend, Schedule, parallel_for, parallel_map


class TestParallelFor:
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    @pytest.mark.parametrize(
        "schedule", ["block", "static-cyclic", "dynamic"]
    )
    def test_every_index_exactly_once(self, backend, schedule):
        hits = np.zeros(37, dtype=np.int64)

        def body(i, _t):
            hits[i] += 1

        executed = parallel_for(
            37, body, num_threads=3, schedule=schedule, backend=backend
        )
        assert np.all(hits == 1)
        assert sorted(i for part in executed for i in part) == list(range(37))

    def test_thread_ids_in_range(self):
        seen = set()

        def body(_i, t):
            seen.add(t)

        parallel_for(20, body, num_threads=4, backend="threads")
        assert seen <= {0, 1, 2, 3}

    def test_zero_iterations(self):
        executed = parallel_for(0, lambda i, t: None, num_threads=2)
        assert all(not part for part in executed)

    def test_negative_iterations(self):
        with pytest.raises(BackendError):
            parallel_for(-1, lambda i, t: None)

    def test_worker_exception_propagates(self):
        def body(i, _t):
            if i == 7:
                raise ValueError("boom at 7")

        with pytest.raises(ValueError, match="boom at 7"):
            parallel_for(20, body, num_threads=3, backend="threads")

    def test_process_backend_rejected(self):
        with pytest.raises(BackendError, match="process"):
            parallel_for(4, lambda i, t: None, num_threads=2, backend="process")

    def test_sim_backend_rejected(self):
        with pytest.raises(BackendError, match="sim"):
            parallel_for(4, lambda i, t: None, num_threads=2, backend="sim")

    def test_serial_dynamic_issue_order_is_index_order(self):
        order = []
        parallel_for(
            10,
            lambda i, t: order.append(i),
            num_threads=3,
            schedule="dynamic",
            backend="serial",
        )
        assert order == list(range(10))

    def test_single_thread_any_backend_is_serial(self):
        order = []
        parallel_for(
            6,
            lambda i, t: order.append(i),
            num_threads=1,
            schedule="dynamic",
            backend="threads",
        )
        assert order == list(range(6))


class TestParallelMap:
    @pytest.mark.parametrize("backend", ["serial", "threads", "process"])
    @pytest.mark.parametrize("schedule", ["block", "static-cyclic", "dynamic"])
    def test_results_ordered(self, backend, schedule):
        got = parallel_map(
            15,
            lambda i: i * i,
            num_threads=3,
            schedule=schedule,
            backend=backend,
        )
        assert got == [i * i for i in range(15)]

    def test_closure_over_numpy_array_process(self):
        data = np.arange(100, dtype=np.float64)
        got = parallel_map(
            5,
            lambda i: float(data[i * 10 : (i + 1) * 10].sum()),
            num_threads=2,
            backend="process",
        )
        assert got == [
            float(data[i * 10 : (i + 1) * 10].sum()) for i in range(5)
        ]

    def test_process_worker_failure_reported(self):
        with pytest.raises(BackendError, match="worker process"):
            parallel_map(
                4, lambda i: 1 // (i - 2), num_threads=2, backend="process"
            )

    def test_empty(self):
        assert parallel_map(0, lambda i: i, num_threads=2) == []

    def test_backend_coercion_error(self):
        with pytest.raises(BackendError, match="unknown backend"):
            parallel_map(3, lambda i: i, backend="gpu")
