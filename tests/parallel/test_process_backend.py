"""Shared-memory arrays and the fork-based map."""

import numpy as np
import pytest

from repro.exceptions import BackendError
from repro.parallel import SharedArray, SharedMatrix, fork_available
from repro.parallel.backends.process import run_parallel_map
from repro.types import Schedule

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestSharedArray:
    def test_shape_dtype(self):
        with SharedArray.allocate((3, 4), np.float64) as arr:
            assert arr.array.shape == (3, 4)
            assert arr.array.dtype == np.float64

    def test_uint8_flags(self):
        with SharedArray.allocate((10,), np.uint8) as arr:
            arr.array[:] = 0
            arr.array[3] = 1
            assert arr.array.sum() == 1

    def test_negative_dims_rejected(self):
        with pytest.raises(BackendError):
            SharedArray((-1, 2))

    def test_double_close_safe(self):
        arr = SharedArray((2, 2))
        arr.close()
        arr.close()  # idempotent

    @needs_fork
    def test_writes_visible_across_fork(self):
        with SharedArray.allocate((8,), np.float64) as shared:
            shared.array[:] = 0.0

            def work(i):
                shared.array[i] = i * 2.0
                return i

            run_parallel_map(8, work, num_threads=2)
            assert shared.array.tolist() == [i * 2.0 for i in range(8)]


class TestSharedMatrix:
    def test_matrix_is_2d_float(self):
        with SharedMatrix.allocate(4, 5) as m:
            assert m.array.shape == (4, 5)
            m.array[:] = 1.5
            assert m.array.sum() == 30.0


class TestRunParallelMap:
    @needs_fork
    @pytest.mark.parametrize(
        "schedule", [Schedule.BLOCK, Schedule.STATIC_CYCLIC, Schedule.DYNAMIC]
    )
    def test_all_schedules(self, schedule):
        got = run_parallel_map(
            12, lambda i: i + 100, num_threads=3, schedule=schedule
        )
        assert got == [i + 100 for i in range(12)]

    def test_single_thread_fallback(self):
        got = run_parallel_map(5, lambda i: -i, num_threads=1)
        assert got == [0, -1, -2, -3, -4]

    def test_empty(self):
        assert run_parallel_map(0, lambda i: i, num_threads=2) == []
