"""Property-based APSP correctness: random graphs vs golden references.

Exactness is the paper's central correctness claim (§5): every
algorithm, backend, schedule and thread count must produce the same —
and the *right* — distance matrix.  Hypothesis drives the graph space:
random topologies, weights, directedness, disconnection.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import reference_apsp
from repro.core import solve_apsp
from repro.graphs import from_arc_arrays
from tests.conftest import assert_same_apsp

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graph(draw, max_n=24, directed=None, weighted=None):
    n = draw(st.integers(min_value=2, max_value=max_n))
    if directed is None:
        directed = draw(st.booleans())
    if weighted is None:
        weighted = draw(st.booleans())
    max_arcs = n * (n - 1) // (1 if directed else 2)
    m = draw(st.integers(min_value=0, max_value=min(3 * n, max_arcs)))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] != p[1]),
            min_size=m,
            max_size=m,
        )
    )
    if weighted:
        weights = draw(
            st.lists(
                st.floats(
                    min_value=0.1,
                    max_value=50.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=len(pairs),
                max_size=len(pairs),
            )
        )
    else:
        weights = [1.0] * len(pairs)
    src = np.asarray([p[0] for p in pairs], dtype=np.int64)
    dst = np.asarray([p[1] for p in pairs], dtype=np.int64)
    return from_arc_arrays(
        src,
        dst,
        np.asarray(weights),
        num_vertices=n,
        directed=directed,
    )


class TestAgainstScipy:
    @given(graph=random_graph())
    @settings(**SETTINGS)
    def test_parapsp_serial(self, graph):
        result = solve_apsp(graph, algorithm="parapsp")
        assert_same_apsp(result.dist, reference_apsp(graph))

    @given(graph=random_graph())
    @settings(**SETTINGS)
    def test_seq_basic(self, graph):
        result = solve_apsp(graph, algorithm="seq-basic")
        assert_same_apsp(result.dist, reference_apsp(graph))

    @given(graph=random_graph())
    @settings(**SETTINGS)
    def test_heap_queue(self, graph):
        result = solve_apsp(graph, algorithm="seq-opt", queue="heap")
        assert_same_apsp(result.dist, reference_apsp(graph))

    @given(graph=random_graph(), threads=st.integers(2, 8))
    @settings(**SETTINGS)
    def test_simulated_parallel(self, graph, threads):
        result = solve_apsp(
            graph, algorithm="parapsp", backend="sim", num_threads=threads
        )
        assert_same_apsp(result.dist, reference_apsp(graph))

    @given(graph=random_graph(directed=True))
    @settings(**SETTINGS)
    def test_directed_graphs(self, graph):
        result = solve_apsp(graph, algorithm="paralg2", backend="serial")
        assert_same_apsp(result.dist, reference_apsp(graph))


class TestAgainstNetworkx:
    @given(graph=random_graph(max_n=16, weighted=True))
    @settings(max_examples=15, deadline=None)
    def test_all_pairs_dijkstra(self, graph):
        import networkx as nx

        from repro.graphs import to_networkx

        result = solve_apsp(graph, algorithm="parapsp")
        nx_graph = to_networkx(graph)
        for s, lengths in nx.all_pairs_dijkstra_path_length(
            nx_graph, weight="weight"
        ):
            for v, d in lengths.items():
                assert result.dist[s, v] == pytest.approx(d)


class TestCrossAlgorithm:
    @given(graph=random_graph())
    @settings(**SETTINGS)
    def test_all_algorithms_equal(self, graph):
        mats = [
            solve_apsp(graph, algorithm=a).dist
            for a in ("seq-basic", "seq-opt", "paralg1", "paralg2", "parapsp")
        ]
        for m in mats[1:]:
            assert np.array_equal(np.isfinite(m), np.isfinite(mats[0]))
            fin = np.isfinite(mats[0])
            # last-ulp tolerance: equally-short paths may round
            # differently depending on the merge order
            np.testing.assert_allclose(
                m[fin], mats[0][fin], rtol=1e-12, atol=0.0
            )

    @given(graph=random_graph(), seed=st.integers(0, 2**16))
    @settings(**SETTINGS)
    def test_any_source_order_is_exact(self, graph, seed):
        """The optimization is order-sensitive in *cost* only — any
        permutation of sources must give the same matrix."""
        from repro.core.sweep import run_sweep

        rng = np.random.default_rng(seed)
        order = rng.permutation(graph.num_vertices)
        out = run_sweep(graph, order)
        assert_same_apsp(out.dist, reference_apsp(graph))
