"""Property-based tests on the ordering procedures and the sorts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.order import (
    ORDERINGS,
    check_ordering,
    compute_order,
    exact_bucket_order,
    find_bins,
    is_permutation,
    multilists_order,
    par_max_order,
    selection_order,
)
from repro.sort import check_stable_argsort, counting_argsort, multilists_argsort

degree_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=120),
    elements=st.integers(min_value=0, max_value=300),
)

SETTINGS = dict(max_examples=40, deadline=None)


class TestOrderingProperties:
    @given(degrees=degree_arrays)
    @settings(**SETTINGS)
    def test_every_method_yields_permutation(self, degrees):
        for name in ORDERINGS:
            result = compute_order(
                name, degrees, num_threads=3, backend="serial"
            )
            assert is_permutation(result.order, degrees.size)

    @given(degrees=degree_arrays)
    @settings(**SETTINGS)
    def test_exact_methods_descending(self, degrees):
        for name in ("selection", "exact-buckets", "parmax", "multilists"):
            result = compute_order(
                name, degrees, num_threads=3, backend="serial"
            )
            seq = degrees[result.order]
            assert np.all(np.diff(seq) <= 0)

    @given(degrees=degree_arrays)
    @settings(**SETTINGS)
    def test_exact_methods_agree_on_profile(self, degrees):
        ref = degrees[exact_bucket_order(degrees).order]
        for result in (
            selection_order(degrees),
            par_max_order(degrees, num_threads=2, backend="serial"),
            multilists_order(degrees, num_threads=2, backend="serial"),
        ):
            assert np.array_equal(degrees[result.order], ref)

    @given(degrees=degree_arrays, threads=st.integers(1, 8))
    @settings(**SETTINGS)
    def test_multilists_thread_invariant(self, degrees, threads):
        a = multilists_order(degrees, num_threads=threads, backend="serial")
        b = exact_bucket_order(degrees)
        assert np.array_equal(a.order, b.order)

    @given(degrees=degree_arrays)
    @settings(**SETTINGS)
    def test_approx_buckets_non_increasing_bins(self, degrees):
        result = compute_order("approx-buckets", degrees)
        lo, hi = int(degrees.min()), int(degrees.max())
        bins = find_bins(degrees[result.order], hi, lo)
        assert np.all(np.diff(bins) <= 0)

    @given(
        degrees=degree_arrays,
        threshold=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(**SETTINGS)
    def test_parmax_any_threshold_exact(self, degrees, threshold):
        result = par_max_order(
            degrees, threshold=threshold, backend="serial"
        )
        check_ordering(result, degrees)

    @given(
        degrees=degree_arrays,
        ratio=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(**SETTINGS)
    def test_multilists_any_parratio_exact(self, degrees, ratio):
        result = multilists_order(
            degrees, par_ratio=ratio, num_threads=4, backend="serial"
        )
        assert np.array_equal(result.order, exact_bucket_order(degrees).order)


keys_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=0, max_value=200),
    elements=st.integers(min_value=0, max_value=64),
)


class TestSortProperties:
    @given(keys=keys_arrays, descending=st.booleans())
    @settings(**SETTINGS)
    def test_counting_argsort_stable(self, keys, descending):
        perm = counting_argsort(keys, descending=descending)
        check_stable_argsort(perm, keys, descending=descending)

    @given(
        keys=keys_arrays,
        descending=st.booleans(),
        threads=st.integers(1, 8),
    )
    @settings(**SETTINGS)
    def test_parallel_equals_sequential(self, keys, descending, threads):
        seq = counting_argsort(keys, descending=descending)
        par = multilists_argsort(
            keys,
            descending=descending,
            num_threads=threads,
            backend="serial",
        )
        assert np.array_equal(seq, par)

    @given(keys=keys_arrays)
    @settings(**SETTINGS)
    def test_counting_matches_numpy(self, keys):
        assert np.array_equal(
            counting_argsort(keys), np.argsort(keys, kind="stable")
        )
