"""Property-based invariants of the simulated machine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.parallel.schedule import static_assignment
from repro.simx import (
    MACHINE_I,
    MachineSpec,
    Op,
    run_lock_program,
    simulate_parallel_for,
)
from repro.types import Schedule

cost_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=60),
    elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)

SETTINGS = dict(max_examples=40, deadline=None)

BARE = MachineSpec(
    name="bare",
    num_cores=16,
    fork_join_overhead=0.0,
    dispatch_overhead=0.0,
    memory_bandwidth_factor=0.0,
    cache_boost_factor=0.0,
)


class TestParForInvariants:
    @given(
        costs=cost_arrays,
        threads=st.integers(1, 16),
        schedule=st.sampled_from(list(Schedule)),
    )
    @settings(**SETTINGS)
    def test_conservation_and_coverage(self, costs, threads, schedule):
        out = simulate_parallel_for(
            costs.size, costs, MACHINE_I, num_threads=threads,
            schedule=schedule,
        )
        r = out.result
        # every iteration dispatched exactly once
        assert sorted(out.issue_order.tolist()) == list(range(costs.size))
        # busy time is conserved: sum of all costs
        assert r.total_busy == pytest.approx(np.sum(costs))
        # per-thread accounting
        assert np.all(r.busy + r.overhead <= r.makespan + 1e-9)
        # makespan bounds: critical path ≤ makespan ≤ serial + overheads
        assert r.makespan + 1e-9 >= costs.max()
        serial_bound = (
            np.sum(costs)
            + MACHINE_I.region_overhead(threads)
            + MACHINE_I.dispatch_overhead * costs.size
            + 1e-9
        )
        assert r.makespan <= serial_bound

    @given(costs=cost_arrays, threads=st.integers(1, 16))
    @settings(**SETTINGS)
    def test_more_threads_never_hurt_without_overheads(self, costs, threads):
        t1 = simulate_parallel_for(
            costs.size, costs, BARE, num_threads=1
        ).result.makespan
        tN = simulate_parallel_for(
            costs.size, costs, BARE, num_threads=threads
        ).result.makespan
        assert tN <= t1 + 1e-9

    @given(costs=cost_arrays, threads=st.integers(1, 8))
    @settings(**SETTINGS)
    def test_static_assignment_respected(self, costs, threads):
        out = simulate_parallel_for(
            costs.size, costs, BARE, num_threads=threads, schedule="block"
        )
        T = out.result.num_threads
        assignment = static_assignment(Schedule.BLOCK, costs.size, T)
        for t, indices in enumerate(assignment):
            for i in indices:
                assert out.thread_of[i] == t

    @given(costs=cost_arrays)
    @settings(**SETTINGS)
    def test_deterministic(self, costs):
        a = simulate_parallel_for(
            costs.size, costs, MACHINE_I, num_threads=5
        ).result.makespan
        b = simulate_parallel_for(
            costs.size, costs, MACHINE_I, num_threads=5
        ).result.makespan
        assert a == b


ops_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.one_of(st.none(), st.integers(0, 4)),
    ),
    min_size=0,
    max_size=30,
)


class TestLockSimInvariants:
    @given(programs=st.lists(ops_strategy, min_size=1, max_size=8))
    @settings(**SETTINGS)
    def test_accounting_and_counts(self, programs):
        progs = [
            [Op(work=w, lock_id=l) for w, l in prog] for prog in programs
        ]
        r = run_lock_program(progs, MACHINE_I)
        expected_acqs = sum(
            1 for prog in programs for _, l in prog if l is not None
        )
        assert r.total_acquisitions == expected_acqs
        assert 0 <= r.contended_acquisitions <= expected_acqs
        assert np.all(r.busy + r.overhead <= r.makespan + 1e-9)
        # makespan at least the largest single program's pure work
        for prog in progs:
            work = sum(op.work for op in prog)
            assert r.makespan + 1e-9 >= work

    @given(programs=st.lists(ops_strategy, min_size=1, max_size=6))
    @settings(**SETTINGS)
    def test_deterministic(self, programs):
        progs = [
            [Op(work=w, lock_id=l) for w, l in prog] for prog in programs
        ]
        a = run_lock_program(progs, MACHINE_I).makespan
        b = run_lock_program(progs, MACHINE_I).makespan
        assert a == b
