"""Property-based batched/unbatched sweep equivalence (ISSUE 2).

The batched lockstep engine's contract: on a deterministic single-worker
run (serial backend, or threads/process with one worker) the batched
sweep is *bitwise-identical* to the unbatched one — the distance matrix
AND every per-source ``OpCounts`` — for every graph, block size, queue
discipline and kernel implementation.  With several workers the flags
are read opportunistically, so the op counts may differ (forgone reuse
opportunities) but the distances stay exact.

Hypothesis drives the graph space; the block sizes deliberately include
degenerate (1), non-divisor and whole-graph values.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.kernels import kernel_names
from repro.core.sweep import run_sweep
from tests.integration.test_property_apsp import random_graph

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BLOCK_SIZES = st.sampled_from([1, 2, 3, 7, 16, 64, "auto"])
QUEUES = st.sampled_from(["fifo", "heap"])


def _order_for(graph, seed):
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices)


def _assert_bitwise(batched, unbatched):
    assert np.array_equal(batched.dist, unbatched.dist), (
        "batched distance matrix differs bitwise from unbatched"
    )
    assert batched.per_source == unbatched.per_source, (
        "batched per-source OpCounts differ from unbatched"
    )


class TestStrictBitwise:
    @given(
        graph=random_graph(),
        block=BLOCK_SIZES,
        queue=QUEUES,
        use_flags=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    @settings(**SETTINGS)
    def test_serial(self, graph, block, queue, use_flags, seed):
        order = _order_for(graph, seed)
        unbatched = run_sweep(
            graph, order, queue=queue, use_flags=use_flags
        )
        batched = run_sweep(
            graph,
            order,
            queue=queue,
            use_flags=use_flags,
            block_size=block,
        )
        _assert_bitwise(batched, unbatched)

    @given(
        graph=random_graph(),
        block=st.sampled_from([1, 4, 16]),
        queue=QUEUES,
        kernel=st.sampled_from(kernel_names()),
    )
    @settings(**SETTINGS)
    def test_every_kernel(self, graph, block, queue, kernel):
        order = np.arange(graph.num_vertices)
        unbatched = run_sweep(graph, order, queue=queue)
        batched = run_sweep(
            graph, order, queue=queue, block_size=block, kernel=kernel
        )
        _assert_bitwise(batched, unbatched)

    @given(
        graph=random_graph(),
        block=st.sampled_from([2, 8, "auto"]),
        queue=QUEUES,
    )
    @settings(**SETTINGS)
    def test_threads_one_worker_is_strict(self, graph, block, queue):
        order = np.arange(graph.num_vertices)
        unbatched = run_sweep(graph, order, queue=queue)
        batched = run_sweep(
            graph,
            order,
            backend="threads",
            num_threads=1,
            queue=queue,
            block_size=block,
        )
        _assert_bitwise(batched, unbatched)


class TestConcurrentExact:
    @given(
        graph=random_graph(),
        block=st.sampled_from([2, 8, 64]),
        threads=st.integers(2, 4),
        queue=QUEUES,
    )
    @settings(**SETTINGS)
    def test_threads_multiworker_distances(
        self, graph, block, threads, queue
    ):
        """Racy mode: exact distances (op counts may legally differ)."""
        order = np.arange(graph.num_vertices)
        reference = run_sweep(graph, order, queue=queue)
        batched = run_sweep(
            graph,
            order,
            backend="threads",
            num_threads=threads,
            queue=queue,
            block_size=block,
        )
        assert np.array_equal(
            np.isfinite(batched.dist), np.isfinite(reference.dist)
        )
        fin = np.isfinite(reference.dist)
        # equally-short paths may round differently depending on which
        # finalised row a racy reader saw — last-ulp tolerance like the
        # cross-algorithm exactness test
        np.testing.assert_allclose(
            batched.dist[fin], reference.dist[fin], rtol=1e-12, atol=0.0
        )
