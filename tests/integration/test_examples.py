"""Every shipped example must run clean end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "matches scipy" in proc.stdout

    def test_social_network_analysis(self):
        proc = run_example("social_network_analysis.py")
        assert proc.returncode == 0, proc.stderr
        assert "closeness" in proc.stdout

    def test_scheduling_study(self):
        proc = run_example("scheduling_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "Figure 1" in proc.stdout

    def test_ordering_study(self):
        proc = run_example("ordering_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "counting sort" in proc.stdout
