"""Property tests for the scipy-free verifier and the path extension.

Soundness: every genuine APSP matrix passes.  Sensitivity: random
single-entry corruptions of finite distances are caught (raising an
entry breaks a witness or the fixpoint; lowering one breaks a witness).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import apsp_with_paths, solve_apsp, verify_apsp
from repro.exceptions import ValidationError
from tests.integration.test_property_apsp import random_graph

SETTINGS = dict(max_examples=20, deadline=None)


class TestVerifierSoundness:
    @given(graph=random_graph(max_n=18))
    @settings(**SETTINGS)
    def test_accepts_every_genuine_matrix(self, graph):
        dist = solve_apsp(graph, algorithm="parapsp").dist
        verify_apsp(graph, dist, sample=None)

    @given(graph=random_graph(max_n=18))
    @settings(**SETTINGS)
    def test_accepts_baseline_matrices(self, graph):
        from repro.baselines import floyd_warshall

        verify_apsp(graph, floyd_warshall(graph), sample=None)


class TestVerifierSensitivity:
    @given(
        graph=random_graph(max_n=14),
        seed=st.integers(0, 2**16),
        factor=st.sampled_from([0.25, 0.5, 1.7, 3.0]),
    )
    @settings(**SETTINGS)
    def test_detects_corrupted_entry(self, graph, seed, factor):
        dist = solve_apsp(graph, algorithm="seq-basic").dist
        rng = np.random.default_rng(seed)
        off = ~np.eye(graph.num_vertices, dtype=bool)
        candidates = np.argwhere(np.isfinite(dist) & off & (dist > 0))
        assume(candidates.size > 0)
        s, t = candidates[rng.integers(len(candidates))]
        bad = dist.copy()
        bad[s, t] *= factor
        with pytest.raises(ValidationError):
            verify_apsp(graph, bad, sample=None)


class TestPathProperty:
    @given(graph=random_graph(max_n=14))
    @settings(**SETTINGS)
    def test_every_reconstructed_path_realises_its_distance(self, graph):
        result = apsp_with_paths(graph)
        weight = {(u, v): w for u, v, w in graph.iter_arcs()}
        n = graph.num_vertices
        for s in range(n):
            for t in range(n):
                if s == t or not np.isfinite(result.dist[s, t]):
                    continue
                route = result.path(s, t)
                assert route is not None
                total = 0.0
                for a, b in zip(route, route[1:]):
                    assert (a, b) in weight
                    total += weight[(a, b)]
                assert total == pytest.approx(result.dist[s, t])
