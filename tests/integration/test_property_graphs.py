"""Property-based tests on the graph substrate."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    from_dense,
    from_edges,
    parse_edgelist_text,
    to_dense,
    write_edgelist,
)
from repro.graphs.validate import (
    check_no_self_loops,
    check_sorted_rows,
    check_structure,
    check_symmetry,
)

SETTINGS = dict(max_examples=50, deadline=None)


@st.composite
def edge_lists(draw, max_n=16):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=2 * n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.25, max_value=9.0, allow_nan=False),
            ),
            min_size=m,
            max_size=m,
        )
    )
    directed = draw(st.booleans())
    return n, edges, directed


class TestBuilderProperties:
    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_construction_invariants(self, data):
        n, edges, directed = data
        g = from_edges(edges, num_vertices=n, directed=directed)
        check_structure(g)
        check_sorted_rows(g)
        check_no_self_loops(g)
        check_symmetry(g)

    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_dense_roundtrip(self, data):
        n, edges, directed = data
        # "min" dedup makes the dense matrix a faithful representation
        g = from_edges(edges, num_vertices=n, directed=directed)
        g2 = from_dense(to_dense(g), directed=directed)
        assert np.array_equal(g2.indptr, g.indptr)
        assert np.array_equal(g2.indices, g.indices)
        assert np.allclose(g2.weights, g.weights)

    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_reverse_involution(self, data):
        n, edges, directed = data
        g = from_edges(edges, num_vertices=n, directed=directed)
        rr = g.reverse().reverse()
        assert np.array_equal(rr.indptr, g.indptr)
        assert np.array_equal(np.sort(rr.indices), np.sort(g.indices))

    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_degree_sum_equals_arcs(self, data):
        n, edges, directed = data
        g = from_edges(edges, num_vertices=n, directed=directed)
        assert g.out_degrees().sum() == g.num_arcs
        assert g.in_degrees().sum() == g.num_arcs


class TestIOProperties:
    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_edgelist_roundtrip_structure(self, data):
        n, edges, directed = data
        g = from_edges(edges, num_vertices=n, directed=directed)
        buf = io.StringIO()
        write_edgelist(g, buf, write_weights=True)
        g2, id_map = parse_edgelist_text(buf.getvalue(), directed=directed)
        # ids compact to the vertices that have arcs; arc multiset
        # must survive through the id map
        inverse = {new: old for old, new in id_map.items()}
        arcs_in = {(u, v, round(w, 9)) for u, v, w in g.iter_arcs()}
        arcs_out = {
            (inverse[u], inverse[v], round(w, 9))
            for u, v, w in g2.iter_arcs()
        }
        assert arcs_out <= arcs_in
        # every arc between surviving vertices round-trips
        assert len(arcs_out) == g2.num_arcs
