"""End-to-end determinism: the whole pipeline is seeded and replayable.

Bit-reproducibility is what makes the harness's numbers citable: the
same seeds must give the same graphs, the same orders, the same virtual
times — across runs and across process boundaries.
"""

import subprocess
import sys
import textwrap

import numpy as np

from repro.core import solve_apsp
from repro.graphs import load_dataset
from repro.order import simulate_order
from repro.graphs.degree import degree_array
from repro.simx import MACHINE_I


class TestInProcessDeterminism:
    def test_dataset_generation(self):
        a = load_dataset("Flickr", scale=300)
        b = load_dataset("Flickr", scale=300)
        assert a == b

    def test_simulated_solve_bitwise(self):
        g = load_dataset("WordNet", scale=250)
        r1 = solve_apsp(g, algorithm="parapsp", backend="sim", num_threads=8)
        r2 = solve_apsp(g, algorithm="parapsp", backend="sim", num_threads=8)
        assert r1.total_time == r2.total_time
        assert np.array_equal(r1.dist, r2.dist)
        assert np.array_equal(r1.order, r2.order)

    def test_ordering_virtual_times(self):
        deg = degree_array(load_dataset("WordNet", scale=2000))
        for method in ("parbuckets", "parmax", "multilists"):
            a = simulate_order(method, deg, MACHINE_I, num_threads=8)
            b = simulate_order(method, deg, MACHINE_I, num_threads=8)
            assert a.virtual_time == b.virtual_time
            assert np.array_equal(a.order, b.order)


class TestCrossProcessDeterminism:
    def test_fresh_interpreter_same_makespan(self):
        """No hidden global state: a brand-new process reproduces the
        exact virtual time."""
        script = textwrap.dedent(
            """
            from repro.core import solve_apsp
            from repro.graphs import load_dataset
            g = load_dataset("WordNet", scale=200)
            r = solve_apsp(g, algorithm="parapsp", backend="sim",
                           num_threads=8)
            print(repr(r.total_time))
            """
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=300,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outputs) == 1
        assert next(iter(outputs))  # non-empty
