"""Cross-solver distance parity: the registry's correctness contract.

Every registered solver claims to compute the *same* APSP function.  On
graphs whose weights are dyadic rationals (denominator 8, bounded
magnitude) every intermediate path sum is exactly representable in
float64, so summation order cannot perturb the result — which turns the
parity claim into a *bitwise* assertion across solvers as different as
flag-reuse sweeps, bucketed Δ-stepping and Johnson's reweighting.

On negative-weight graphs the only capable solver, ``johnson``, is
checked against the O(n·m)-per-source Bellman–Ford oracle; negative
weights are synthesised from potentials (``attach_negative_weights``),
which provably cannot create a negative cycle, and the explicit
negative-cycle fixture asserts the typed failure path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ALGORITHMS, solve_apsp
from repro.core.johnson import bellman_ford_apsp
from repro.exceptions import NegativeCycleError, NegativeWeightError
from repro.graphs import (
    attach_negative_weights,
    from_arc_arrays,
    negative_cycle_graph,
)

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: the non-negative-capable solvers, snapshotted from the registry
ALL_SOLVERS = sorted(ALGORITHMS)


@st.composite
def dyadic_graphs(draw, max_n=20, directed=None):
    """Random graphs whose weights are multiples of 1/8 in [1/8, 50]."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    if directed is None:
        directed = draw(st.booleans())
    max_arcs = n * (n - 1) // (1 if directed else 2)
    m = draw(st.integers(min_value=0, max_value=min(3 * n, max_arcs)))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] != p[1]),
            min_size=m,
            max_size=m,
        )
    )
    eighths = draw(
        st.lists(
            st.integers(min_value=1, max_value=400),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    src = np.asarray([p[0] for p in pairs], dtype=np.int64)
    dst = np.asarray([p[1] for p in pairs], dtype=np.int64)
    weights = np.asarray(eighths, dtype=np.float64) / 8.0
    return from_arc_arrays(
        src, dst, weights, num_vertices=n, directed=directed
    )


class TestBitwiseParity:
    @given(graph=dyadic_graphs())
    @settings(**SETTINGS)
    def test_all_registered_solvers_agree_bitwise(self, graph):
        reference = solve_apsp(graph, algorithm="parapsp").dist
        for name in ALL_SOLVERS:
            if name == "parapsp":
                continue
            dist = solve_apsp(graph, algorithm=name).dist
            assert np.array_equal(dist, reference), (
                f"{name} disagrees with parapsp"
            )

    @given(graph=dyadic_graphs(), delta=st.floats(0.125, 60.0))
    @settings(**SETTINGS)
    def test_delta_stepping_bitwise_for_any_bucket_width(
        self, graph, delta
    ):
        reference = solve_apsp(graph, algorithm="parapsp").dist
        dist = solve_apsp(
            graph, algorithm="delta-stepping", delta=delta
        ).dist
        assert np.array_equal(dist, reference)


class TestNegativeWeightParity:
    @given(
        graph=dyadic_graphs(directed=True),
        seed=st.integers(0, 2**16),
        potential_range=st.integers(1, 8),
    )
    @settings(**SETTINGS)
    def test_johnson_matches_bellman_ford_oracle(
        self, graph, seed, potential_range
    ):
        negative = attach_negative_weights(
            graph, potential_range=potential_range, seed=seed
        )
        result = solve_apsp(negative, algorithm="johnson")
        oracle = bellman_ford_apsp(negative)
        # dyadic base weights + integer potentials keep every sum exact,
        # so even two completely different algorithms agree bitwise
        assert np.array_equal(result.dist, oracle)

    @given(graph=dyadic_graphs(directed=True), seed=st.integers(0, 2**16))
    @settings(**SETTINGS)
    def test_incapable_solvers_reject_negative_weights(self, graph, seed):
        negative = attach_negative_weights(graph, seed=seed)
        if not negative.has_negative_weights:
            return  # potentials may cancel; nothing to gate
        for name in ALL_SOLVERS:
            if ALGORITHMS[name].negative_weights:
                continue
            with pytest.raises(NegativeWeightError):
                solve_apsp(negative, algorithm=name)

    def test_negative_cycle_is_a_typed_error(self):
        with pytest.raises(NegativeCycleError) as info:
            solve_apsp(negative_cycle_graph(), algorithm="johnson")
        assert info.value.witness is not None
