"""End-to-end exactness: the paper's §5 claim on realistic graphs.

"We found that the APSP solution of our proposed ParAPSP algorithm is
exactly same as the output of sequential runs."
"""

import numpy as np
import pytest

from repro.baselines import floyd_warshall, reference_apsp
from repro.core import solve_apsp
from repro.graphs import attach_random_weights, load_dataset
from tests.conftest import assert_same_apsp


@pytest.fixture(scope="module")
def graphs():
    """A representative slice of the dataset registry, small scales."""
    out = {}
    for name in ("WordNet", "Flickr", "ego-Twitter", "sx-superuser"):
        out[name] = load_dataset(name, scale=150)
    out["WordNet-weighted"] = attach_random_weights(
        load_dataset("WordNet", scale=150), seed=99
    )
    return out


@pytest.fixture(scope="module")
def references(graphs):
    return {name: reference_apsp(g) for name, g in graphs.items()}


class TestSequentialGolden:
    @pytest.mark.parametrize(
        "name",
        ["WordNet", "Flickr", "ego-Twitter", "sx-superuser", "WordNet-weighted"],
    )
    def test_seq_opt_matches_scipy(self, graphs, references, name):
        r = solve_apsp(graphs[name], algorithm="seq-opt")
        assert_same_apsp(r.dist, references[name])

    def test_floyd_warshall_agrees(self, graphs, references):
        assert_same_apsp(
            floyd_warshall(graphs["WordNet-weighted"]),
            references["WordNet-weighted"],
        )


def assert_equal_matrices(a, b):
    """Bitwise for unit-weight graphs; last-ulp tolerance for float
    weights (ties between equally-short paths may round differently
    depending on merge order)."""
    assert np.array_equal(np.isfinite(a), np.isfinite(b))
    fin = np.isfinite(a)
    np.testing.assert_allclose(a[fin], b[fin], rtol=1e-12, atol=0.0)


class TestParallelEqualsSequential:
    """Sequential and every parallel mode agree exactly."""

    @pytest.mark.parametrize("name", ["WordNet", "WordNet-weighted"])
    def test_threads_bitwise(self, graphs, name):
        seq = solve_apsp(graphs[name], algorithm="seq-opt").dist
        par = solve_apsp(
            graphs[name],
            algorithm="parapsp",
            backend="threads",
            num_threads=4,
        ).dist
        assert_equal_matrices(seq, par)

    def test_process_bitwise(self, graphs):
        seq = solve_apsp(graphs["WordNet"], algorithm="seq-opt").dist
        par = solve_apsp(
            graphs["WordNet"],
            algorithm="parapsp",
            backend="process",
            num_threads=2,
        ).dist
        assert_equal_matrices(seq, par)

    @pytest.mark.parametrize("threads", [2, 7, 16])
    def test_sim_bitwise_across_thread_counts(self, graphs, threads):
        seq = solve_apsp(graphs["WordNet-weighted"], algorithm="seq-opt").dist
        par = solve_apsp(
            graphs["WordNet-weighted"],
            algorithm="parapsp",
            backend="sim",
            num_threads=threads,
        ).dist
        assert_equal_matrices(seq, par)

    def test_all_algorithms_one_matrix(self, graphs):
        """Five algorithms, one exact answer."""
        g = graphs["ego-Twitter"]
        mats = [
            solve_apsp(g, algorithm=a).dist
            for a in ("seq-basic", "seq-opt", "paralg1", "paralg2", "parapsp")
        ]
        for m in mats[1:]:
            assert np.array_equal(
                np.isfinite(m), np.isfinite(mats[0])
            )
            fin = np.isfinite(mats[0])
            assert np.array_equal(m[fin], mats[0][fin])
