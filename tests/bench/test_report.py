"""CSV/summary report writers."""

import csv
import os

import pytest

from repro.bench import export_all, run_many, write_csv, write_series_csv


@pytest.fixture(scope="module")
def results():
    return run_many(["table2", "fig3"], profile="quick")


class TestCsvExport:
    def test_rows_csv(self, results, tmp_path):
        target = tmp_path / "t.csv"
        write_csv(results[0][1], str(target))
        with open(target) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(results[0][1].headers)
        assert len(rows) == len(results[0][1].rows) + 1

    def test_series_csv_long_format(self, results, tmp_path):
        fig3 = results[1][1]
        target = tmp_path / "s.csv"
        write_series_csv(fig3, str(target))
        with open(target) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["series", "x", "y"]
        total_points = sum(len(pts) for pts in fig3.series.values())
        assert len(rows) == total_points + 1

    def test_export_all(self, results, tmp_path):
        paths = export_all(results, str(tmp_path))
        names = {os.path.basename(p) for p in paths}
        assert "table2.csv" in names
        assert "fig3.csv" in names
        assert "fig3_series.csv" in names
        assert "SUMMARY.md" in names

    def test_summary_contents(self, results, tmp_path):
        export_all(results, str(tmp_path))
        text = (tmp_path / "SUMMARY.md").read_text()
        assert "| table2 | True |" in text
        assert "## fig3" in text
        assert "*observed*" in text
