"""Benchmark harness plumbing: profiles, registry, runner, reports."""

import os

import pytest

from repro.bench import (
    EXPERIMENTS,
    experiment_ids,
    get_profile,
    run_experiment,
    run_many,
    save_report,
)
from repro.exceptions import BenchmarkError


class TestProfiles:
    def test_both_profiles_exist(self):
        assert get_profile("quick").name == "quick"
        assert get_profile("full").name == "full"

    def test_unknown_profile(self):
        with pytest.raises(BenchmarkError):
            get_profile("huge")

    def test_ordering_graph_routing(self):
        profile = get_profile("quick")
        small = profile.ordering_graph("WordNet")
        big = profile.ordering_graph("soc-Pokec")
        assert big.num_vertices > small.num_vertices

    def test_machines(self):
        profile = get_profile("quick")
        assert profile.machine_i.num_cores == 16
        assert profile.machine_ii.num_cores == 32


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = experiment_ids()
        for required in (
            "table1",
            "table2",
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
        ):
            assert required in ids

    def test_ablations_registered(self):
        ids = experiment_ids()
        for required in (
            "seq-basic-vs-opt",
            "complexity-exponent",
            "queue-discipline",
            "parmax-threshold",
            "multilists-parratio",
            "chunk-size",
            "degree-kind",
        ):
            assert required in ids

    def test_unknown_experiment(self):
        with pytest.raises(BenchmarkError, match="unknown experiment"):
            run_experiment("fig99", get_profile("quick"))


class TestRunnerAndReport:
    @pytest.fixture(scope="class")
    def one_result(self):
        return run_many(["table2"], profile="quick")

    def test_run_many_returns_triples(self, one_result):
        (exp_id, result, seconds), = one_result
        assert exp_id == "table2"
        assert result.rows
        assert seconds >= 0

    def test_render_contains_claim_and_table(self, one_result):
        text = one_result[0][1].render()
        assert "paper claim" in text
        assert "shape holds" in text
        assert "ego-Twitter" in text

    def test_save_report_writes_files(self, one_result, tmp_path):
        paths = save_report(one_result, str(tmp_path))
        assert len(paths) == 1
        assert os.path.exists(paths[0])
        with open(paths[0]) as fh:
            assert "table2" in fh.read()


class TestExperimentContracts:
    """Cheap experiments run here end to end; the expensive ones are
    exercised (and shape-asserted) by the benchmark suite."""

    @pytest.mark.parametrize("exp_id", ["table2", "fig3"])
    def test_runs_and_holds(self, exp_id):
        result = run_experiment(exp_id, get_profile("quick"))
        assert result.holds, result.observed
        assert result.headers
        assert result.rows
