"""Schema contracts every registered experiment must satisfy."""

import pytest

from repro.bench import EXPERIMENTS, get_profile, run_experiment

#: experiments cheap enough to execute inside the unit-test suite; the
#: rest run under `pytest benchmarks/` where their cost is budgeted
CHEAP = (
    "table2",
    "fig3",
    "adaptive-vs-opt",
    "queue-discipline",
    "degree-kind",
)


class TestRegistryCoversThePaper:
    def test_count(self):
        # 11 paper artifacts + 7 ablations + 3 extensions
        assert len(EXPERIMENTS) == 21

    def test_ids_are_kebab_or_figN(self):
        for exp_id in EXPERIMENTS:
            assert exp_id == exp_id.lower()
            assert " " not in exp_id


@pytest.fixture(scope="module")
def cheap_results():
    profile = get_profile("quick")
    return {exp_id: run_experiment(exp_id, profile) for exp_id in CHEAP}


@pytest.mark.parametrize("exp_id", CHEAP)
class TestResultSchema:
    @pytest.fixture()
    def result(self, cheap_results, exp_id):
        return cheap_results[exp_id]

    def test_identity(self, result, exp_id):
        assert result.id == exp_id
        assert result.title
        assert result.paper_claim

    def test_rows_match_headers(self, result, exp_id):
        assert result.headers
        assert result.rows
        for row in result.rows:
            assert len(row) == len(result.headers)

    def test_observed_and_render(self, result, exp_id):
        assert result.observed
        text = result.render()
        assert result.title in text
        assert "shape holds" in text

    def test_series_points_are_pairs(self, result, exp_id):
        for points in result.series.values():
            for point in points:
                assert len(point) == 2
