"""Name dispatch and the OrderingResult contract."""

import numpy as np
import pytest

from repro.exceptions import OrderingError
from repro.graphs import degree_array
from repro.order import (
    ORDERINGS,
    OrderingResult,
    check_descending,
    check_ordering,
    compute_order,
    is_permutation,
    ordering_names,
    simulate_order,
)
from repro.simx import MACHINE_I


@pytest.fixture(scope="module")
def degrees(powerlaw_graph):
    return degree_array(powerlaw_graph)


class TestDispatch:
    def test_names_listed(self):
        assert "multilists" in ordering_names()
        assert len(ORDERINGS) == 7

    @pytest.mark.parametrize("name", ORDERINGS)
    def test_every_name_computes(self, name, degrees):
        result = compute_order(name, degrees, num_threads=2, backend="serial")
        check_ordering(result, degrees)

    def test_none_is_identity(self, degrees):
        result = compute_order("none", degrees)
        assert np.array_equal(result.order, np.arange(degrees.size))
        assert not result.exact

    def test_unknown_name(self, degrees):
        with pytest.raises(OrderingError, match="unknown ordering"):
            compute_order("quicksort", degrees)

    @pytest.mark.parametrize(
        "name", ["none", "selection", "parbuckets", "parmax", "multilists"]
    )
    def test_simulated_names(self, name, degrees):
        result = simulate_order(name, degrees, MACHINE_I, num_threads=4)
        assert result.sim is not None
        check_ordering(result, degrees)

    def test_sequential_reference_has_no_sim(self, degrees):
        with pytest.raises(OrderingError, match="no simulated variant"):
            simulate_order("exact-buckets", degrees, MACHINE_I)

    def test_exact_methods_agree_on_degree_profile(self, degrees):
        exact = [
            compute_order(name, degrees, num_threads=3, backend="serial")
            for name in ("selection", "exact-buckets", "parmax", "multilists")
        ]
        profiles = [degrees[r.order] for r in exact]
        for p in profiles[1:]:
            assert np.array_equal(profiles[0], p)


class TestContracts:
    def test_is_permutation(self):
        assert is_permutation(np.array([2, 0, 1]), 3)
        assert not is_permutation(np.array([0, 0, 1]), 3)
        assert not is_permutation(np.array([0, 1]), 3)
        assert not is_permutation(np.array([0, 1, 3]), 3)

    def test_check_descending_raises_on_violation(self):
        deg = np.array([1, 9])
        with pytest.raises(OrderingError, match="not descending"):
            check_descending(np.array([0, 1]), deg)

    def test_check_ordering_permutation_failure(self):
        bad = OrderingResult(
            method="x", order=np.array([0, 0]), exact=False
        )
        with pytest.raises(OrderingError, match="permutation"):
            check_ordering(bad, np.array([1, 2]))

    def test_virtual_time_none_without_sim(self, degrees):
        result = compute_order("exact-buckets", degrees)
        assert result.virtual_time is None
