"""Algorithm 6 — ParMax."""

import numpy as np
import pytest

from repro.exceptions import OrderingError
from repro.graphs import degree_array
from repro.order import (
    check_ordering,
    exact_bucket_order,
    par_max_order,
    simulate_par_max,
)
from repro.simx import MACHINE_I


@pytest.fixture(scope="module")
def degrees(powerlaw_graph):
    return degree_array(powerlaw_graph)


class TestRealExecution:
    def test_exact_descending_always(self, degrees):
        for backend, threads in (("serial", 1), ("threads", 4)):
            result = par_max_order(
                degrees, num_threads=threads, backend=backend
            )
            check_ordering(result, degrees)
            assert result.exact

    def test_serial_matches_exact_buckets(self, degrees):
        ours = par_max_order(degrees, num_threads=1, backend="serial")
        ref = exact_bucket_order(degrees)
        assert np.array_equal(ours.order, ref.order)

    def test_threshold_splits_inserts(self, degrees):
        result = par_max_order(degrees, backend="serial")
        par = result.stats["parallel_inserts"]
        seq = result.stats["sequential_inserts"]
        assert par + seq == degrees.size
        assert par == (degrees >= 0.01 * degrees.max()).sum()

    def test_threshold_zero_everything_parallel(self, degrees):
        result = par_max_order(degrees, threshold=0.0, backend="serial")
        assert result.stats["sequential_inserts"] == 0

    def test_threshold_above_max_everything_sequential(self, degrees):
        result = par_max_order(degrees, threshold=1.0, backend="serial")
        # only vertices at exactly max degree stay parallel
        assert result.stats["parallel_inserts"] == (
            degrees == degrees.max()
        ).sum()

    def test_invalid_threshold(self, degrees):
        with pytest.raises(OrderingError):
            par_max_order(degrees, threshold=1.5)

    def test_lock_acquisitions_only_for_high(self, degrees):
        result = par_max_order(degrees, num_threads=2, backend="threads")
        assert result.stats["lock_acquisitions"] == result.stats[
            "parallel_inserts"
        ]

    def test_empty(self):
        assert par_max_order(np.array([], dtype=np.int64)).order.size == 0


class TestSimulated:
    def test_order_exact(self, degrees):
        sim = simulate_par_max(degrees, MACHINE_I, num_threads=8)
        check_ordering(sim, degrees)
        assert np.array_equal(
            sim.order, exact_bucket_order(degrees).order
        )

    def test_much_cheaper_than_parbuckets_under_contention(self):
        from repro.graphs import load_dataset
        from repro.order import simulate_par_buckets

        deg = degree_array(load_dataset("WordNet", scale=5000))
        pm = simulate_par_max(deg, MACHINE_I, num_threads=16).virtual_time
        pb = simulate_par_buckets(deg, MACHINE_I, num_threads=16).virtual_time
        assert pm < pb / 3

    def test_no_thread_blowup(self):
        """Figure 4: ParMax stays flat-to-improving with threads."""
        from repro.graphs import load_dataset

        deg = degree_array(load_dataset("WordNet", scale=20000))
        t1 = simulate_par_max(deg, MACHINE_I, num_threads=1).virtual_time
        t16 = simulate_par_max(deg, MACHINE_I, num_threads=16).virtual_time
        assert t16 <= 1.2 * t1

    def test_stats_consistent(self, degrees):
        sim = simulate_par_max(degrees, MACHINE_I, num_threads=4)
        assert (
            sim.stats["parallel_inserts"] + sim.stats["sequential_inserts"]
            == degrees.size
        )
