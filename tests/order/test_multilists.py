"""Algorithm 7 — MultiLists."""

import numpy as np
import pytest

from repro.exceptions import OrderingError
from repro.graphs import degree_array, load_dataset
from repro.order import (
    check_ordering,
    exact_bucket_order,
    multilists_order,
    simulate_multilists,
)
from repro.simx import MACHINE_I


@pytest.fixture(scope="module")
def degrees(powerlaw_graph):
    return degree_array(powerlaw_graph)


class TestRealExecution:
    @pytest.mark.parametrize("threads", [1, 2, 4, 7])
    def test_exact_and_deterministic(self, degrees, threads):
        result = multilists_order(
            degrees, num_threads=threads, backend="threads"
        )
        check_ordering(result, degrees)
        assert result.exact
        # lock-free and deterministic: identical to the counting order
        # for every thread count
        assert np.array_equal(
            result.order, exact_bucket_order(degrees).order
        )

    def test_serial_backend_same_result(self, degrees):
        a = multilists_order(degrees, num_threads=3, backend="serial")
        b = multilists_order(degrees, num_threads=3, backend="threads")
        assert np.array_equal(a.order, b.order)

    def test_par_ratio_extremes(self, degrees):
        for ratio in (0.0, 1.0):
            result = multilists_order(
                degrees, num_threads=2, par_ratio=ratio, backend="serial"
            )
            assert result.exact
            assert np.array_equal(
                result.order, exact_bucket_order(degrees).order
            )

    def test_invalid_par_ratio(self, degrees):
        with pytest.raises(OrderingError):
            multilists_order(degrees, par_ratio=-0.1)

    def test_region_count_reported(self, degrees):
        result = multilists_order(degrees, num_threads=2, backend="serial")
        low_cut = int(0.1 * degrees.max())
        assert result.stats["parallel_regions"] == low_cut + 2

    def test_empty(self):
        assert multilists_order(np.array([], dtype=np.int64)).order.size == 0


class TestSimulated:
    def test_order_identical_to_real(self, degrees):
        sim = simulate_multilists(degrees, MACHINE_I, num_threads=4)
        real = multilists_order(degrees, num_threads=4, backend="serial")
        assert np.array_equal(sim.order, real.order)

    def test_beats_parmax_on_large_graph(self):
        """Figure 6: MultiLists < ParMax."""
        from repro.order import simulate_par_max

        deg = degree_array(load_dataset("WordNet", scale=20000))
        for t in (4, 8, 16):
            ml = simulate_multilists(deg, MACHINE_I, num_threads=t)
            pm = simulate_par_max(deg, MACHINE_I, num_threads=t)
            assert ml.virtual_time < pm.virtual_time

    def test_scales_then_dips(self):
        """Figure 6 WordNet shape: improves from 1 thread, may dip at 16."""
        deg = degree_array(load_dataset("WordNet", scale=20000))
        times = {
            t: simulate_multilists(deg, MACHINE_I, num_threads=t).virtual_time
            for t in (1, 2, 4, 8, 16)
        }
        assert min(times.values()) < times[1]
        best = min(times, key=times.get)
        assert best in (2, 4, 8)

    def test_large_graph_keeps_scaling(self):
        """§4.3: million-scale graphs keep improving at 16 threads —
        approximated here by the soc-Pokec stand-in."""
        deg = degree_array(load_dataset("soc-Pokec", scale=40000))
        t8 = simulate_multilists(deg, MACHINE_I, num_threads=8).virtual_time
        t16 = simulate_multilists(deg, MACHINE_I, num_threads=16).virtual_time
        t1 = simulate_multilists(deg, MACHINE_I, num_threads=1).virtual_time
        assert t16 < t1
        assert t16 <= 1.15 * t8  # no small-graph collapse

    def test_no_lock_acquisitions(self, degrees):
        sim = simulate_multilists(degrees, MACHINE_I, num_threads=8)
        assert sim.sim.total_acquisitions == 0
