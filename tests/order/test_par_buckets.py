"""Algorithm 5 — ParBuckets."""

import numpy as np
import pytest

from repro.graphs import degree_array
from repro.order import (
    approx_bucket_order,
    check_ordering,
    par_buckets_order,
    simulate_par_buckets,
)
from repro.simx import MACHINE_I


@pytest.fixture(scope="module")
def degrees(powerlaw_graph):
    return degree_array(powerlaw_graph)


class TestRealExecution:
    def test_serial_matches_sequential_reference(self, degrees):
        ours = par_buckets_order(degrees, num_threads=1, backend="serial")
        ref = approx_bucket_order(degrees)
        assert np.array_equal(ours.order, ref.order)

    def test_threads_valid_bucketing(self, degrees):
        result = par_buckets_order(degrees, num_threads=4, backend="threads")
        check_ordering(result, degrees)
        # same multiset per bucket as the reference even if tie order
        # differs under real concurrency
        ref = approx_bucket_order(degrees)
        assert np.array_equal(
            np.sort(result.order), np.sort(ref.order)
        )

    def test_lock_stats_reported(self, degrees):
        result = par_buckets_order(degrees, num_threads=4, backend="threads")
        assert result.stats["lock_acquisitions"] == degrees.size

    def test_custom_bin_count(self, degrees):
        result = par_buckets_order(degrees, num_bins=1000, backend="serial")
        assert result.stats["num_bins"] == 1000

    def test_empty(self):
        result = par_buckets_order(np.array([], dtype=np.int64))
        assert result.order.size == 0


class TestSimulated:
    def test_order_matches_serial_reference(self, degrees):
        sim = simulate_par_buckets(degrees, MACHINE_I, num_threads=4)
        ref = approx_bucket_order(degrees)
        assert np.array_equal(sim.order, ref.order)

    def test_table1_shape_contention_growth(self):
        """More threads → more virtual time (lock pile-up, Table 1)."""
        from repro.graphs import load_dataset

        deg = degree_array(load_dataset("WordNet", scale=5000))
        times = [
            simulate_par_buckets(deg, MACHINE_I, num_threads=t).virtual_time
            for t in (1, 4, 16)
        ]
        assert times[0] < times[1] < times[2]

    def test_contention_counted(self, degrees):
        sim = simulate_par_buckets(degrees, MACHINE_I, num_threads=8)
        assert sim.stats["lock_contended"] > 0
        assert sim.stats["lock_acquisitions"] == degrees.size

    def test_single_thread_uncontended(self, degrees):
        sim = simulate_par_buckets(degrees, MACHINE_I, num_threads=1)
        assert sim.stats["lock_contended"] == 0

    def test_rejects_empty(self):
        from repro.exceptions import OrderingError

        with pytest.raises(OrderingError):
            simulate_par_buckets(
                np.array([], dtype=np.int64), MACHINE_I, num_threads=2
            )
