"""Sequential bucket orderings and Eq. (1)."""

import numpy as np
import pytest

from repro.exceptions import OrderingError
from repro.order import (
    approx_bucket_order,
    bucket_fill_counts,
    check_ordering,
    exact_bucket_order,
    find_bin,
    find_bins,
)


class TestFindBin:
    def test_endpoints(self):
        assert find_bin(0, 100, 0) == 0
        assert find_bin(100, 100, 0) == 100

    def test_midpoint(self):
        assert find_bin(50, 100, 0) == 50

    def test_degenerate_range_maps_to_top(self):
        assert find_bin(7, 7, 7) == 100

    def test_shifted_range(self):
        assert find_bin(10, 20, 10) == 0
        assert find_bin(20, 20, 10) == 100

    def test_out_of_range_rejected(self):
        with pytest.raises(OrderingError):
            find_bin(5, 4, 0)
        with pytest.raises(OrderingError):
            find_bin(-1, 4, 0)

    def test_bad_num_bins(self):
        with pytest.raises(OrderingError):
            find_bin(1, 2, 0, num_bins=0)

    def test_vectorised_agrees_with_scalar(self):
        degrees = np.arange(0, 101)
        bins = find_bins(degrees, 100, 0)
        for d in degrees:
            assert bins[d] == find_bin(int(d), 100, 0)


class TestExactBucketOrder:
    def test_descending_and_exact(self, powerlaw_graph):
        from repro.graphs import degree_array

        deg = degree_array(powerlaw_graph)
        result = exact_bucket_order(deg)
        check_ordering(result, deg)
        assert result.exact

    def test_ties_ascending_vertex_id(self):
        deg = np.array([2, 5, 2, 5, 2])
        result = exact_bucket_order(deg)
        assert result.order.tolist() == [1, 3, 0, 2, 4]

    def test_matches_stable_lexsort(self):
        rng = np.random.default_rng(6)
        deg = rng.integers(0, 40, size=200)
        result = exact_bucket_order(deg)
        expected = np.lexsort((np.arange(200), -deg))
        assert np.array_equal(result.order, expected)

    def test_empty(self):
        assert exact_bucket_order(np.array([], dtype=np.int64)).order.size == 0


class TestApproxBucketOrder:
    def test_bucket_indices_non_increasing(self):
        rng = np.random.default_rng(7)
        deg = rng.integers(0, 500, size=300)
        result = approx_bucket_order(deg)
        lo, hi = int(deg.min()), int(deg.max())
        bins = find_bins(deg[result.order], hi, lo)
        assert np.all(np.diff(bins) <= 0)

    def test_exact_flag_when_buckets_homogeneous(self):
        # degree range ≤ bins → each degree its own bucket → exact
        deg = np.random.default_rng(8).integers(0, 50, size=100)
        assert approx_bucket_order(deg).exact

    def test_inexact_on_wide_range(self):
        # 1000 distinct degrees into 101 buckets must mix degrees
        deg = np.arange(1000)
        result = approx_bucket_order(deg)
        assert not result.exact

    def test_is_permutation(self):
        deg = np.random.default_rng(9).integers(0, 900, size=250)
        result = approx_bucket_order(deg)
        check_ordering(result, deg)  # permutation check (non-exact path)


class TestBucketFillCounts:
    def test_power_law_piles_into_bottom_bucket(self, powerlaw_graph):
        from repro.graphs import degree_array

        deg = degree_array(powerlaw_graph)
        fills = bucket_fill_counts(deg)
        assert fills.sum() == deg.size
        assert fills[0] == fills.max()  # §4.2's hot bucket

    def test_empty(self):
        assert bucket_fill_counts(np.array([], dtype=np.int64)).sum() == 0
