"""Algorithm 3's selection-sort ordering."""

import numpy as np
import pytest

from repro.exceptions import OrderingError
from repro.order import (
    check_ordering,
    selection_comparison_count,
    selection_order,
)
from repro.order.selection import _faithful


class TestFaithfulLoop:
    def test_descending_degrees(self):
        deg = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        result = selection_order(deg)
        check_ordering(result, deg)
        assert deg[result.order].tolist() == sorted(deg, reverse=True)

    def test_comparison_count_matches_closed_form(self):
        deg = np.random.default_rng(0).integers(0, 50, size=40)
        result = selection_order(deg)
        assert result.stats["comparisons"] == selection_comparison_count(
            40, 1.0
        )

    def test_partial_ratio_orders_prefix_only(self):
        deg = np.random.default_rng(1).integers(0, 100, size=60)
        result = selection_order(deg, ratio=0.25)
        prefix = int(np.ceil(0.25 * 60))
        head = deg[result.order[:prefix]]
        # head is the top-prefix degrees, descending
        assert head.tolist() == sorted(deg, reverse=True)[:prefix]
        assert not result.exact  # tail unordered

    def test_ratio_one_is_exact(self):
        deg = np.array([5, 5, 5])
        assert selection_order(deg).exact

    def test_invalid_ratio(self):
        with pytest.raises(OrderingError):
            selection_order(np.array([1, 2]), ratio=0.0)
        with pytest.raises(OrderingError):
            selection_order(np.array([1, 2]), ratio=1.5)

    def test_swap_count_reported(self):
        deg = np.array([1, 2, 3])  # ascending input maximises swaps
        result = selection_order(deg)
        assert result.stats["swaps"] >= 2

    def test_empty_input(self):
        result = selection_order(np.array([], dtype=np.int64))
        assert result.order.size == 0


class TestFastEquivalent:
    def test_same_degree_profile_as_faithful(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            n = int(rng.integers(2, 60))
            deg = rng.integers(0, 12, size=n)
            slow = selection_order(deg)
            fast = selection_order(deg, fast=True)
            assert np.array_equal(deg[slow.order], deg[fast.order])

    def test_fast_is_stable_on_ties(self):
        deg = np.array([5, 5, 3, 5])
        fast = selection_order(deg, fast=True)
        assert fast.order.tolist() == [0, 1, 3, 2]

    def test_fast_partial_prefix_matches(self):
        deg = np.random.default_rng(3).integers(0, 30, size=50)
        slow = selection_order(deg, ratio=0.3)
        fast = selection_order(deg, fast=True, ratio=0.3)
        k = int(np.ceil(0.3 * 50))
        assert np.array_equal(deg[slow.order[:k]], deg[fast.order[:k]])

    def test_fast_reports_closed_form_comparisons(self):
        deg = np.arange(30)
        fast = selection_order(deg, fast=True)
        assert fast.stats["comparisons"] == selection_comparison_count(30, 1.0)


class TestSimulatedCost:
    def test_sim_attached_with_machine(self):
        from repro.simx import MACHINE_I

        deg = np.random.default_rng(4).integers(0, 20, size=30)
        result = selection_order(deg, machine=MACHINE_I)
        assert result.sim is not None
        assert result.virtual_time > 0

    def test_virtual_time_thread_independent(self):
        """Table 1's flat selection row: the procedure is sequential."""
        from repro.simx import MACHINE_I

        deg = np.random.default_rng(5).integers(0, 20, size=30)
        a = selection_order(deg, machine=MACHINE_I)
        b = selection_order(deg, machine=MACHINE_I)
        assert a.virtual_time == b.virtual_time
        assert a.sim.num_threads == 1

    def test_quadratic_growth(self):
        assert selection_comparison_count(200, 1.0) > 3.5 * (
            selection_comparison_count(100, 1.0)
        )
