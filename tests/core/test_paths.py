"""Path reconstruction (predecessor tracking)."""

import numpy as np
import pytest

from repro.core import (
    apsp_with_paths,
    reconstruct_path,
    verify_predecessors,
)
from repro.baselines import reference_apsp
from repro.exceptions import AlgorithmError
from repro.graphs import from_edges
from tests.conftest import assert_same_apsp


class TestDistances:
    def test_distances_still_exact(self, small_weighted):
        result = apsp_with_paths(small_weighted)
        assert_same_apsp(result.dist, reference_apsp(small_weighted))

    def test_directed_distances(self, directed_weighted):
        result = apsp_with_paths(directed_weighted)
        assert_same_apsp(result.dist, reference_apsp(directed_weighted))

    def test_arbitrary_order(self, small_weighted):
        rng = np.random.default_rng(3)
        order = rng.permutation(small_weighted.num_vertices)
        result = apsp_with_paths(small_weighted, order=order)
        assert_same_apsp(result.dist, reference_apsp(small_weighted))

    def test_order_must_be_complete(self, toy_graph):
        with pytest.raises(AlgorithmError):
            apsp_with_paths(toy_graph, order=np.array([0, 1]))


class TestPaths:
    def test_toy_path(self, toy_graph):
        result = apsp_with_paths(toy_graph)
        # 0 -> 2 goes through 1 (cost 3) not through 3 (cost 5)
        assert result.path(0, 2) == [0, 1, 2]
        assert result.path(0, 4) == [0, 1, 2, 4]

    def test_trivial_path(self, toy_graph):
        result = apsp_with_paths(toy_graph)
        assert result.path(3, 3) == [3]

    def test_unreachable_is_none(self):
        g = from_edges([(0, 1)], num_vertices=3)
        result = apsp_with_paths(g)
        assert result.path(0, 2) is None

    def test_every_path_is_a_walk_with_right_weight(self, small_weighted):
        result = apsp_with_paths(small_weighted)
        verify_predecessors(small_weighted, result, sample=20)

    def test_directed_paths_respect_arcs(self, directed_weighted):
        result = apsp_with_paths(directed_weighted)
        verify_predecessors(directed_weighted, result, sample=20)

    def test_paths_verified_on_powerlaw_with_merges(self, powerlaw_graph):
        """Merge-inherited predecessors must still be consistent."""
        result = apsp_with_paths(powerlaw_graph)
        verify_predecessors(powerlaw_graph, result, sample=12)

    def test_out_of_range_endpoints(self, toy_graph):
        result = apsp_with_paths(toy_graph)
        with pytest.raises(AlgorithmError):
            result.path(0, 99)

    def test_path_length_matches_distance(self, small_weighted):
        result = apsp_with_paths(small_weighted)
        path = result.path(0, 10)
        assert path is not None
        assert path[0] == 0 and path[-1] == 10
        assert len(path) - 1 <= small_weighted.num_vertices


class TestReconstruct:
    def test_broken_chain_detected(self):
        pred = np.array([[-1, -1], [-1, -1]])
        dist = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(AlgorithmError, match="broken"):
            reconstruct_path(pred, dist, 0, 1)

    def test_cycle_detected(self):
        pred = np.array([[-1, 1], [0, -1]])  # 1's pred is itself via loop
        pred[0, 1] = 1  # self-loop in the chain
        dist = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(AlgorithmError):
            reconstruct_path(pred, dist, 0, 1)
