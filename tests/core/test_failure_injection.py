"""Failure injection: errors in user-supplied callbacks and workers
must surface, never corrupt results or hang."""

import numpy as np
import pytest

from repro.core import run_sweep, solve_apsp
from repro.simx import MACHINE_I, simulate_parallel_for


class TestSimulatorCallbackFailures:
    def test_cost_fn_exception_propagates(self):
        def cost(i, _t, _w):
            if i == 3:
                raise RuntimeError("injected cost failure")
            return 1.0

        with pytest.raises(RuntimeError, match="injected"):
            simulate_parallel_for(10, cost, MACHINE_I, num_threads=2)

    def test_cost_fn_nan_rejected(self):
        # NaN durations would silently poison the virtual clock — the
        # simulator must reject them at dispatch
        from repro.exceptions import SimulationError

        def cost(i, _t, _w):
            return float("nan")

        with pytest.raises(SimulationError, match="invalid cost"):
            simulate_parallel_for(4, cost, MACHINE_I, num_threads=2)

    def test_cost_fn_nan_rejected_static_schedule(self):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="invalid cost"):
            simulate_parallel_for(
                4,
                lambda i, t, w: float("nan"),
                MACHINE_I,
                num_threads=2,
                schedule="block",
            )


class TestThreadWorkerFailures:
    def test_sweep_worker_exception_surfaces(self, small_weighted):
        """A failure mid-sweep on the thread backend must abort the
        whole solve with the original exception."""
        n = small_weighted.num_vertices
        bad_order = np.arange(n).copy()
        bad_order[n // 2] = n + 5  # out-of-range source injected
        with pytest.raises(Exception):
            run_sweep(
                small_weighted,
                bad_order,
                backend="threads",
                num_threads=3,
            )

    def test_partial_failure_does_not_hang(self, small_weighted):
        """After a failed run the backend is reusable (no poisoned
        global state, no leaked locks)."""
        n = small_weighted.num_vertices
        bad_order = np.arange(n).copy()
        bad_order[0] = -1
        with pytest.raises(Exception):
            run_sweep(
                small_weighted, bad_order, backend="threads", num_threads=2
            )
        good = solve_apsp(
            small_weighted,
            algorithm="parapsp",
            backend="threads",
            num_threads=2,
        )
        assert np.isfinite(good.dist).any()
