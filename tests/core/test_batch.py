"""The batched lockstep sweep engine and its kernel dispatch layer."""

import numpy as np
import pytest

from repro.core.batch import (
    SPRINT_THRESHOLD,
    autotune_block_size,
    resolve_block_size,
    run_block,
)
from repro.core.kernels import (
    KERNELS,
    BlockedKernel,
    RowBlockKernel,
    kernel_names,
    resolve_kernel,
)
from repro.core.state import new_state
from repro.core.sweep import run_sweep
from repro.exceptions import AlgorithmError
from repro.obs import MetricsRegistry, use_registry
from tests.conftest import assert_same_apsp


class TestResolveBlockSize:
    def test_none_means_unbatched(self):
        assert resolve_block_size(None, 100) is None

    def test_int_passthrough_capped_at_n(self):
        assert resolve_block_size(16, 100) == 16
        assert resolve_block_size(500, 100) == 100

    def test_auto_tunes_within_range(self):
        b = resolve_block_size("auto", 200)
        assert 1 <= b <= 200

    @pytest.mark.parametrize("bad", [0, -1, -64])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(AlgorithmError, match="block_size"):
            resolve_block_size(bad, 100)

    def test_garbage_string_rejected(self):
        with pytest.raises(AlgorithmError):
            resolve_block_size("bogus", 100)


class TestAutotune:
    def test_returns_valid_candidate(self):
        b, samples = autotune_block_size(256, repeats=1)
        assert b in {s.block_size for s in samples}
        assert all(s.seconds_per_row >= 0 for s in samples)
        assert all(1 <= s.block_size <= 256 for s in samples)

    def test_tiny_n_degenerates_to_one(self):
        b, samples = autotune_block_size(1)
        assert b == 1
        assert samples == []

    def test_probes_do_not_pollute_metrics(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            autotune_block_size(128, repeats=1)
        assert registry.counters() == {}


class TestKernelRegistry:
    def test_row_and_blocked_always_available(self):
        assert "row" in KERNELS
        assert "blocked" in KERNELS

    def test_auto_resolves_to_blocked(self):
        assert isinstance(resolve_kernel("auto"), BlockedKernel)

    def test_instance_passthrough(self):
        kern = RowBlockKernel()
        assert resolve_kernel(kern) is kern

    def test_unknown_name_rejected(self):
        with pytest.raises(AlgorithmError, match="unknown kernel"):
            resolve_kernel("cuda")


class TestKernelParity:
    """Every kernel implementation must act bitwise like the row loop."""

    def _setup(self, graph, seed=0):
        n = graph.num_vertices
        rng = np.random.default_rng(seed)
        dist = rng.uniform(1.0, 50.0, size=(n, n))
        np.fill_diagonal(dist, 0.0)
        rows = np.array([1, 3, 4], dtype=np.int64) % n
        hubs = np.array([0, 2, 0], dtype=np.int64) % n
        # rows must be duplicate-free for the scatter contract
        rows, idx = np.unique(rows, return_index=True)
        return dist, rows, hubs[idx]

    @pytest.mark.parametrize("name", kernel_names())
    def test_merge_block_matches_row_loop(self, small_weighted, name):
        dist_a, rows, hubs = self._setup(small_weighted)
        dist_b = dist_a.copy()
        RowBlockKernel().merge_block(dist_a, rows, hubs)
        resolve_kernel(name).merge_block(dist_b, rows, hubs)
        assert np.array_equal(dist_a, dist_b)

    @pytest.mark.parametrize("name", kernel_names())
    def test_relax_block_matches_row_loop(self, small_weighted, name):
        g = small_weighted
        dist_a, rows, hubs = self._setup(g, seed=3)
        dist_b = dist_a.copy()
        targets_a, lens_a = RowBlockKernel().relax_block(
            dist_a, rows, hubs, g.indptr, g.indices, g.weights
        )
        targets_b, lens_b = resolve_kernel(name).relax_block(
            dist_b, rows, hubs, g.indptr, g.indices, g.weights
        )
        assert np.array_equal(dist_a, dist_b)
        assert list(lens_a) == list(lens_b)
        # enqueue sets must match *in CSR order* — queue contents feed
        # the pop sequence, so ordering is part of the bitwise contract
        assert len(targets_a) == len(targets_b)
        for got_a, got_b in zip(targets_a, targets_b):
            assert np.array_equal(got_a, got_b)


class TestRunBlock:
    def _unbatched(self, graph, queue="fifo", use_flags=True):
        return run_sweep(
            graph,
            np.arange(graph.num_vertices),
            queue=queue,
            use_flags=use_flags,
        )

    @pytest.mark.parametrize("queue", ["fifo", "heap"])
    def test_whole_graph_block_bitwise(self, small_weighted, queue):
        g = small_weighted
        n = g.num_vertices
        ref = self._unbatched(g, queue=queue)
        state = new_state(n)
        order = np.arange(n)
        got = run_block(
            g,
            state,
            order,
            order.copy(),
            queue=queue,
            use_flags=True,
            strict=True,
            kernel=resolve_kernel("blocked"),
        )
        assert np.array_equal(state.dist, ref.dist)
        assert len(got) == n
        for s, counts in got.items():
            assert counts == ref.per_source[s]

    def test_flagless_block_is_plain_sssp(self, small_weighted):
        g = small_weighted
        n = g.num_vertices
        ref = self._unbatched(g, use_flags=False)
        out = run_sweep(
            g, np.arange(n), use_flags=False, block_size=n
        )
        assert np.array_equal(out.dist, ref.dist)
        assert out.per_source == ref.per_source

    def test_sprint_path_covered(self, toy_graph):
        """A block smaller than the sprint threshold runs inline and
        must still be bitwise-identical."""
        g = toy_graph
        n = g.num_vertices
        assert n > SPRINT_THRESHOLD  # blocks shrink below it mid-run
        ref = self._unbatched(g)
        out = run_sweep(g, np.arange(n), block_size=2)
        assert np.array_equal(out.dist, ref.dist)
        assert out.per_source == ref.per_source


class TestBatchedSweepBackends:
    def test_outcome_records_block_size(self, small_weighted):
        g = small_weighted
        out = run_sweep(g, np.arange(g.num_vertices), block_size=8)
        assert out.block_size == 8
        unbatched = run_sweep(g, np.arange(g.num_vertices))
        assert unbatched.block_size is None

    def test_process_backend_exact(self, small_weighted, reference):
        g = small_weighted
        out = run_sweep(
            g,
            np.arange(g.num_vertices),
            backend="process",
            num_threads=2,
            block_size=16,
        )
        assert_same_apsp(out.dist, reference(g))

    def test_emits_batch_counters(self, small_weighted):
        g = small_weighted
        registry = MetricsRegistry()
        with use_registry(registry):
            run_sweep(g, np.arange(g.num_vertices), block_size=16)
        counters = registry.counters()
        assert counters["kernel.batch.blocks"] >= 1
        assert registry.gauges()["kernel.batch.block_size"] == 16
