"""The simulated sweep: virtual time + flag-availability interleaving."""

import numpy as np
import pytest

from repro.core import simulate_sweep
from repro.exceptions import AlgorithmError
from repro.order import exact_bucket_order
from repro.graphs import degree_array
from repro.simx import MACHINE_I, MachineSpec
from tests.conftest import assert_same_apsp

BARE = MachineSpec(
    name="bare-apsp",
    num_cores=16,
    fork_join_overhead=0.0,
    dispatch_overhead=0.0,
    memory_bandwidth_factor=0.0,
    cache_boost_factor=0.0,
)


class TestExactness:
    @pytest.mark.parametrize("threads", [1, 2, 8, 16])
    def test_exact_at_any_thread_count(
        self, small_weighted, reference, threads
    ):
        n = small_weighted.num_vertices
        sweep = simulate_sweep(
            small_weighted, np.arange(n), MACHINE_I, num_threads=threads
        )
        assert_same_apsp(sweep.dist, reference(small_weighted))

    def test_exact_under_every_schedule(self, small_weighted, reference):
        n = small_weighted.num_vertices
        for schedule in ("block", "static-cyclic", "dynamic"):
            sweep = simulate_sweep(
                small_weighted,
                np.arange(n),
                MACHINE_I,
                num_threads=4,
                schedule=schedule,
            )
            assert_same_apsp(sweep.dist, reference(small_weighted))

    def test_order_shape_validated(self, toy_graph):
        with pytest.raises(AlgorithmError):
            simulate_sweep(
                toy_graph, np.array([0, 1]), MACHINE_I, num_threads=2
            )


class TestVirtualTime:
    def test_single_thread_equals_serial_cost_sum(self, small_ba):
        n = small_ba.num_vertices
        sweep = simulate_sweep(small_ba, np.arange(n), BARE, num_threads=1)
        from repro.core.costs import DEFAULT_COST_MODEL

        expected = sum(
            DEFAULT_COST_MODEL.sweep_cost(c) for c in sweep.per_source
        )
        assert sweep.makespan == pytest.approx(expected)

    def test_more_threads_less_time(self, small_ba):
        n = small_ba.num_vertices
        order = exact_bucket_order(degree_array(small_ba)).order
        t1 = simulate_sweep(small_ba, order, MACHINE_I, num_threads=1)
        t8 = simulate_sweep(small_ba, order, MACHINE_I, num_threads=8)
        assert t8.makespan < t1.makespan / 4

    def test_flag_interleaving_costs_work(self, small_ba):
        """With T threads the first T sweeps can't reuse each other —
        total work at 16 threads must be ≥ the serial total."""
        n = small_ba.num_vertices
        order = exact_bucket_order(degree_array(small_ba)).order
        w1 = simulate_sweep(
            small_ba, order, BARE, num_threads=1
        ).total_ops().total_work()
        w16 = simulate_sweep(
            small_ba, order, BARE, num_threads=16
        ).total_ops().total_work()
        assert w16 >= w1

    def test_completion_respects_dispatch_causality(self, small_ba):
        n = small_ba.num_vertices
        sweep = simulate_sweep(
            small_ba, np.arange(n), MACHINE_I, num_threads=4
        )
        out = sweep.outcome
        assert np.all(out.end_times >= out.start_times)
        # dynamic chunk-1 dispatch order is index order
        assert out.issue_order.tolist() == list(range(n))
