"""The sweep engine (real backends)."""

import numpy as np
import pytest

from repro.core import run_sweep
from repro.core.runner import solve_apsp
from repro.exceptions import AlgorithmError, BackendError
from repro.types import OpCounts
from tests.conftest import assert_same_apsp


class TestRunSweep:
    def test_identity_order_serial(self, small_weighted, reference):
        n = small_weighted.num_vertices
        out = run_sweep(small_weighted, np.arange(n))
        assert_same_apsp(out.dist, reference(small_weighted))
        assert len(out.per_source) == n
        assert out.elapsed_seconds > 0

    def test_arbitrary_order_exact(self, small_weighted, reference):
        n = small_weighted.num_vertices
        rng = np.random.default_rng(5)
        order = rng.permutation(n)
        out = run_sweep(small_weighted, order)
        assert_same_apsp(out.dist, reference(small_weighted))

    def test_per_source_indexed_by_vertex(self, star_graph):
        n = star_graph.num_vertices
        out = run_sweep(star_graph, np.arange(n)[::-1].copy())
        # the hub (vertex 0) relaxes n-1 edges in its own sweep
        assert out.per_source[0].edge_relaxations >= n - 1

    def test_order_must_cover_all_sources(self, toy_graph):
        with pytest.raises(AlgorithmError, match="all 5 sources"):
            run_sweep(toy_graph, np.array([0, 1]))

    def test_sim_backend_rejected(self, toy_graph):
        with pytest.raises(BackendError, match="simulate"):
            run_sweep(toy_graph, np.arange(5), backend="sim")

    def test_threads_backend(self, small_weighted, reference):
        n = small_weighted.num_vertices
        out = run_sweep(
            small_weighted,
            np.arange(n),
            backend="threads",
            num_threads=4,
            schedule="dynamic",
        )
        assert_same_apsp(out.dist, reference(small_weighted))

    def test_process_backend(self, small_weighted, reference):
        n = small_weighted.num_vertices
        out = run_sweep(
            small_weighted,
            np.arange(n),
            backend="process",
            num_threads=2,
        )
        assert_same_apsp(out.dist, reference(small_weighted))
        # per-source counts travelled back through the pipe
        assert sum(c.pops for c in out.per_source) > 0

    def test_work_vector_aligned(self, small_weighted):
        n = small_weighted.num_vertices
        out = run_sweep(small_weighted, np.arange(n))
        work = out.work_vector()
        assert work.shape == (n,)
        assert np.all(work > 0)

    def test_total_ops_aggregates(self, toy_graph):
        out = run_sweep(toy_graph, np.arange(5))
        total = out.total_ops()
        assert total.pops == sum(c.pops for c in out.per_source)

    def test_use_flags_false(self, small_weighted, reference):
        n = small_weighted.num_vertices
        out = run_sweep(small_weighted, np.arange(n), use_flags=False)
        assert_same_apsp(out.dist, reference(small_weighted))
        assert out.total_ops().row_merges == 0
