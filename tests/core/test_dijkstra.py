"""Classic Dijkstra reference SSSP."""

import numpy as np
import pytest

from repro.core import dijkstra_sssp
from repro.exceptions import AlgorithmError


class TestDijkstra:
    def test_toy_distances(self, toy_graph):
        dist, _ = dijkstra_sssp(toy_graph, 0)
        assert dist.tolist() == [0.0, 1.0, 3.0, 4.0, 6.0]

    def test_matches_networkx(self, small_weighted):
        import networkx as nx

        from repro.graphs import to_networkx

        ref = nx.single_source_dijkstra_path_length(
            to_networkx(small_weighted), 0
        )
        dist, _ = dijkstra_sssp(small_weighted, 0)
        for v, d in ref.items():
            assert dist[v] == pytest.approx(d)

    def test_unreachable_inf(self, directed_weighted):
        dist, _ = dijkstra_sssp(directed_weighted, 0)
        # directed sparse ER graph: some pairs unreachable
        assert np.isinf(dist).any() or np.isfinite(dist).all()

    def test_out_buffer(self, toy_graph):
        buf = np.empty(5)
        dist, _ = dijkstra_sssp(toy_graph, 0, out=buf)
        assert dist is buf

    def test_bad_out_buffer(self, toy_graph):
        with pytest.raises(AlgorithmError):
            dijkstra_sssp(toy_graph, 0, out=np.empty(3))

    def test_bad_source(self, toy_graph):
        with pytest.raises(AlgorithmError):
            dijkstra_sssp(toy_graph, -1)

    def test_counts(self, toy_graph):
        _, counts = dijkstra_sssp(toy_graph, 0)
        assert counts.pops >= 5
        assert counts.edge_relaxations >= 5
