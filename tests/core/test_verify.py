"""The scipy-free APSP result verifier."""

import numpy as np
import pytest

from repro.core import solve_apsp, verify_apsp
from repro.exceptions import ValidationError
from repro.graphs import from_edges


@pytest.fixture(scope="module")
def solved(small_weighted):
    return solve_apsp(small_weighted, algorithm="parapsp").dist


class TestAcceptsValid:
    def test_weighted(self, small_weighted, solved):
        verify_apsp(small_weighted, solved)

    def test_full_witness_check(self, toy_graph):
        dist = solve_apsp(toy_graph, algorithm="seq-basic").dist
        verify_apsp(toy_graph, dist, sample=None)

    def test_directed_with_unreachable(self, directed_weighted):
        dist = solve_apsp(directed_weighted, algorithm="parapsp").dist
        verify_apsp(directed_weighted, dist)

    def test_empty_graph(self):
        import numpy as np

        from repro.graphs import CSRGraph

        g = CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        verify_apsp(g, np.zeros((0, 0)))


class TestRejectsCorruption:
    def test_too_small_distance(self, small_weighted, solved):
        bad = solved.copy()
        # a distance smaller than possible has no witnessing arc
        finite = np.isfinite(bad) & (bad > 0)
        s, t = np.argwhere(finite)[0]
        bad[s, t] *= 0.5
        with pytest.raises(ValidationError):
            verify_apsp(small_weighted, bad, sample=None)

    def test_too_large_distance(self, small_weighted, solved):
        bad = solved.copy()
        finite = np.isfinite(bad) & (bad > 0)
        s, t = np.argwhere(finite)[-1]
        bad[s, t] *= 2.0
        with pytest.raises(ValidationError, match="improves|witness"):
            verify_apsp(small_weighted, bad, sample=None)

    def test_nonzero_diagonal(self, small_weighted, solved):
        bad = solved.copy()
        bad[3, 3] = 1.0
        with pytest.raises(ValidationError, match="diagonal"):
            verify_apsp(small_weighted, bad)

    def test_nan(self, small_weighted, solved):
        bad = solved.copy()
        bad[0, 1] = np.nan
        with pytest.raises(ValidationError, match="NaN"):
            verify_apsp(small_weighted, bad)

    def test_negative(self, small_weighted, solved):
        bad = solved.copy()
        bad[0, 1] = -1.0
        with pytest.raises(ValidationError):
            verify_apsp(small_weighted, bad)

    def test_shape_mismatch(self, small_weighted):
        with pytest.raises(ValidationError, match="shape"):
            verify_apsp(small_weighted, np.zeros((2, 2)))

    def test_phantom_reachability(self):
        g = from_edges([(0, 1)], num_vertices=3)
        dist = solve_apsp(g, algorithm="seq-basic").dist
        bad = dist.copy()
        bad[0, 2] = 7.0  # claims a path into an isolated vertex
        with pytest.raises(ValidationError, match="no incoming|witness"):
            verify_apsp(g, bad, sample=None)

    def test_asymmetric_undirected(self, small_weighted, solved):
        bad = solved.copy()
        # corrupt symmetrically-invisible? make a consistent-looking but
        # asymmetric entry by bumping one direction beyond its mirror
        s, t = 0, 1
        # keep relaxation fixpoint: raising is caught earlier; instead
        # swap rows to break symmetry while keeping shape
        bad[s], bad[t] = solved[t].copy(), solved[s].copy()
        with pytest.raises(ValidationError):
            verify_apsp(small_weighted, bad, sample=None)
