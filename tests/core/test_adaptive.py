"""The adaptive optimized algorithm (extension)."""

import numpy as np
import pytest

from repro.baselines import reference_apsp
from repro.core import seq_adaptive, seq_optimized
from repro.exceptions import AlgorithmError
from tests.conftest import assert_same_apsp


class TestCorrectness:
    def test_exact_on_weighted(self, small_weighted):
        r = seq_adaptive(small_weighted)
        assert_same_apsp(r.dist, reference_apsp(small_weighted))

    def test_exact_on_directed(self, directed_weighted):
        r = seq_adaptive(directed_weighted)
        assert_same_apsp(r.dist, reference_apsp(directed_weighted))

    def test_exact_with_frequent_reordering(self, small_ba):
        r = seq_adaptive(small_ba, reorder_every=1)
        assert_same_apsp(r.dist, reference_apsp(small_ba))

    def test_invalid_reorder_every(self, toy_graph):
        with pytest.raises(AlgorithmError):
            seq_adaptive(toy_graph, reorder_every=0)


class TestBehaviour:
    def test_order_is_permutation(self, powerlaw_graph):
        r = seq_adaptive(powerlaw_graph)
        n = powerlaw_graph.num_vertices
        assert sorted(r.order.tolist()) == list(range(n))

    def test_result_metadata(self, small_ba):
        r = seq_adaptive(small_ba)
        assert r.algorithm == "seq-adaptive"
        assert r.ordering_method == "adaptive"
        assert r.num_threads == 1

    def test_gain_over_optimized_is_small(self, wordnet_tiny):
        """The paper's premise (§2.2) for not parallelising it."""
        opt = seq_optimized(wordnet_tiny).ops.total_work()
        ada = seq_adaptive(wordnet_tiny).ops.total_work()
        assert 0.6 <= opt / ada <= 1.6

    def test_heap_queue_variant(self, small_weighted):
        r = seq_adaptive(small_weighted, queue="heap")
        assert_same_apsp(r.dist, reference_apsp(small_weighted))
