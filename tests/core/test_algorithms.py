"""Per-algorithm public wrappers and their paper-mandated behaviours."""

import numpy as np
import pytest

from repro.core import (
    par_alg1,
    par_alg2,
    par_apsp,
    seq_basic,
    seq_optimized,
    solve_apsp,
)
from repro.simx import MACHINE_I
from tests.conftest import assert_same_apsp


class TestSequential:
    def test_seq_basic(self, small_weighted, reference):
        r = seq_basic(small_weighted)
        assert r.algorithm == "seq-basic"
        assert r.ordering_method == "none"
        assert_same_apsp(r.dist, reference(small_weighted))

    def test_seq_optimized(self, small_weighted, reference):
        r = seq_optimized(small_weighted)
        assert r.ordering_method == "selection"
        assert_same_apsp(r.dist, reference(small_weighted))

    def test_optimized_orders_sources_by_degree(self, powerlaw_graph):
        from repro.graphs import degree_array

        r = seq_optimized(powerlaw_graph)
        deg = degree_array(powerlaw_graph)
        seq = deg[r.order]
        assert np.all(np.diff(seq) <= 0)

    def test_optimized_beats_basic_in_work(self, wordnet_tiny):
        """§2: the optimized algorithm wins on scale-free graphs."""
        basic = seq_basic(wordnet_tiny)
        opt = seq_optimized(wordnet_tiny)
        assert opt.ops.total_work() < basic.ops.total_work()

    def test_heap_queue_variant(self, small_weighted, reference):
        r = seq_optimized(small_weighted, queue="heap")
        assert_same_apsp(r.dist, reference(small_weighted))


class TestParallelWrappers:
    def test_paralg1_no_ordering(self, small_weighted, reference):
        r = par_alg1(small_weighted, num_threads=3, backend="threads")
        assert r.ordering_method == "none"
        assert_same_apsp(r.dist, reference(small_weighted))

    def test_paralg2_defaults(self, small_weighted):
        r = par_alg2(small_weighted, num_threads=2, backend="sim")
        assert r.ordering_method == "selection"
        assert r.schedule == "dynamic"

    def test_paralg2_ordering_swap(self, small_weighted, reference):
        r = par_alg2(
            small_weighted,
            num_threads=2,
            backend="sim",
            ordering="parbuckets",
        )
        assert r.ordering_method == "parbuckets"
        assert_same_apsp(r.dist, reference(small_weighted))

    def test_parapsp_uses_multilists(self, small_weighted):
        r = par_apsp(small_weighted, num_threads=4, backend="sim")
        assert r.ordering_method == "multilists"


class TestPaperShapes:
    """Cross-algorithm behaviours the evaluation section reports."""

    def test_fig8_ordering_overhead_structure(self):
        """ParAlg2 pays a thread-independent O(n²) ordering cost;
        ParAPSP's parallel ordering is far below it (needs a graph big
        enough that the quadratic term dominates the region overheads)."""
        from repro.graphs import load_dataset

        graph = load_dataset("WordNet", scale=800)
        alg2 = par_alg2(
            graph, num_threads=16, backend="sim", machine=MACHINE_I
        )
        apsp = par_apsp(
            graph, num_threads=16, backend="sim", machine=MACHINE_I
        )
        assert apsp.phase_times.ordering < alg2.phase_times.ordering / 5

    def test_fig9_speedup_ranking(self, wordnet_tiny):
        def speedup(fn):
            t1 = fn(
                wordnet_tiny, num_threads=1, backend="sim", machine=MACHINE_I
            ).total_time
            t16 = fn(
                wordnet_tiny, num_threads=16, backend="sim", machine=MACHINE_I
            ).total_time
            return t1 / t16

        s_alg2 = speedup(par_alg2)
        s_apsp = speedup(par_apsp)
        assert s_apsp > s_alg2  # removing the O(n²) ordering helps

    def test_ordered_beats_unordered_work(self, wordnet_tiny):
        """Figures 7/8: ParAlg2 and ParAPSP below ParAlg1."""
        w1 = par_alg1(wordnet_tiny, backend="serial").ops.total_work()
        w2 = par_alg2(wordnet_tiny, backend="serial").ops.total_work()
        wp = par_apsp(wordnet_tiny, backend="serial").ops.total_work()
        assert w2 < w1
        assert wp < w1
