"""Vectorised merge/relax kernels."""

import numpy as np

from repro.core import merge_row, relax_edges
from repro.types import INF


class TestMergeRow:
    def test_improves_through_intermediate(self):
        ds = np.array([0.0, 5.0, INF])
        dt = np.array([5.0, 0.0, 1.0])  # final row of vertex 1
        improved = merge_row(ds, dt, ds_t=5.0)
        assert improved == 1
        assert ds.tolist() == [0.0, 5.0, 6.0]

    def test_no_improvement_counts_zero(self):
        ds = np.array([0.0, 1.0, 2.0])
        dt = np.array([1.0, 0.0, 5.0])
        assert merge_row(ds, dt, ds_t=1.0) == 0
        assert ds.tolist() == [0.0, 1.0, 2.0]

    def test_inf_prefix_never_creates_paths(self):
        ds = np.array([0.0, INF, INF])
        dt = np.array([INF, 0.0, 1.0])
        assert merge_row(ds, dt, ds_t=INF) == 0
        assert np.isinf(ds[1]) and np.isinf(ds[2])

    def test_self_entry_untouched(self):
        ds = np.array([0.0, 3.0])
        dt = np.array([3.0, 0.0])
        merge_row(ds, dt, ds_t=3.0)
        assert ds[0] == 0.0  # 3 + dt[0] = 6 > 0


class TestRelaxEdges:
    def test_improved_targets_returned(self):
        ds = np.array([0.0, INF, 4.0, INF])
        nbrs = np.array([1, 2, 3])
        wts = np.array([1.0, 9.0, 2.0])
        targets, k = relax_edges(ds, nbrs, wts, ds_t=0.0)
        assert k == 2
        assert sorted(targets.tolist()) == [1, 3]
        assert ds.tolist() == [0.0, 1.0, 4.0, 2.0]

    def test_nothing_improves(self):
        ds = np.array([0.0, 0.5])
        targets, k = relax_edges(
            ds, np.array([1]), np.array([1.0]), ds_t=0.0
        )
        assert k == 0
        assert targets.size == 0

    def test_empty_neighbourhood(self):
        ds = np.array([0.0])
        targets, k = relax_edges(
            ds, np.array([], dtype=np.int64), np.array([]), ds_t=0.0
        )
        assert k == 0
        assert targets.size == 0

    def test_from_unreached_vertex(self):
        ds = np.array([0.0, INF, INF])
        targets, k = relax_edges(
            ds, np.array([2]), np.array([1.0]), ds_t=INF
        )
        assert k == 0
