"""Cost model and op counters."""

import pytest

from repro.core import DEFAULT_COST_MODEL, DijkstraCostModel
from repro.types import OpCounts


class TestOpCounts:
    def test_addition(self):
        a = OpCounts(pops=1, edge_relaxations=2, merge_comparisons=3)
        b = OpCounts(pops=10, row_merges=1, flag_hits=1)
        c = a + b
        assert c.pops == 11
        assert c.edge_relaxations == 2
        assert c.row_merges == 1
        # operands untouched
        assert a.pops == 1 and b.pops == 10

    def test_inplace_addition(self):
        a = OpCounts(pops=1)
        a += OpCounts(pops=2, edge_improvements=5)
        assert a.pops == 3
        assert a.edge_improvements == 5

    def test_total_work_formula(self):
        c = OpCounts(pops=2, edge_relaxations=3, merge_comparisons=4)
        assert c.total_work() == 9

    def test_as_dict_round(self):
        c = OpCounts(pops=7)
        assert c.as_dict()["pops"] == 7
        assert set(c.as_dict()) == {
            "pops",
            "edge_relaxations",
            "edge_improvements",
            "row_merges",
            "merge_comparisons",
            "flag_hits",
        }


class TestCostModel:
    def test_sweep_cost_linear_combination(self):
        model = DijkstraCostModel(
            pop=1.0, edge_relaxation=2.0, merge_comparison=0.5,
            row_merge=10.0, call=100.0,
        )
        counts = OpCounts(
            pops=4, edge_relaxations=3, merge_comparisons=8, row_merges=2
        )
        assert model.sweep_cost(counts) == 100 + 4 + 6 + 4 + 20

    def test_call_overhead_floor(self):
        assert DEFAULT_COST_MODEL.sweep_cost(OpCounts()) == (
            DEFAULT_COST_MODEL.call
        )

    def test_default_model_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.pop = 99.0
