"""The unified solve_apsp entry point."""

import numpy as np
import pytest

from repro.core import ALGORITHMS, algorithm_names, solve_apsp
from repro.exceptions import AlgorithmError
from repro.simx import MACHINE_I
from tests.conftest import assert_same_apsp


class TestAlgorithmRegistry:
    def test_registered_algorithms(self):
        assert set(algorithm_names()) == {
            "seq-basic",
            "seq-opt",
            "paralg1",
            "paralg2",
            "parapsp",
            "delta-stepping",
            "johnson",
        }

    def test_paper_configurations(self):
        assert ALGORITHMS["parapsp"].ordering == "multilists"
        assert ALGORITHMS["paralg2"].ordering == "selection"
        assert ALGORITHMS["paralg1"].ordering == "none"
        assert not ALGORITHMS["seq-basic"].parallel


class TestDispatch:
    def test_unknown_algorithm(self, toy_graph):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            solve_apsp(toy_graph, algorithm="bellman")

    def test_sequential_algorithms_reject_thread_backends(self, toy_graph):
        with pytest.raises(AlgorithmError, match="sequential"):
            solve_apsp(
                toy_graph, algorithm="seq-basic", backend="threads",
                num_threads=2,
            )

    def test_sequential_on_sim_clamps_to_one_thread(self, toy_graph):
        r = solve_apsp(
            toy_graph, algorithm="seq-opt", backend="sim", num_threads=8
        )
        assert r.num_threads == 1

    def test_ordering_override(self, small_weighted, reference):
        r = solve_apsp(
            small_weighted,
            algorithm="paralg2",
            ordering="parmax",
            backend="serial",
        )
        assert r.ordering_method == "parmax"
        assert_same_apsp(r.dist, reference(small_weighted))

    def test_schedule_override_recorded(self, toy_graph):
        r = solve_apsp(
            toy_graph,
            algorithm="parapsp",
            backend="sim",
            num_threads=4,
            schedule="block",
        )
        assert r.schedule == "block"


class TestResultContents:
    def test_serial_result_fields(self, small_weighted):
        r = solve_apsp(small_weighted, algorithm="parapsp")
        assert r.backend == "serial"
        assert r.order is not None and r.order.size == small_weighted.num_vertices
        assert r.phase_times.dijkstra > 0
        assert r.per_source_work is not None
        assert r.ops.pops > 0

    def test_sim_result_has_traces(self, small_weighted):
        r = solve_apsp(
            small_weighted,
            algorithm="parapsp",
            backend="sim",
            num_threads=8,
            machine=MACHINE_I,
        )
        assert r.sim_ordering is not None
        assert r.sim_dijkstra is not None
        assert r.sim_dijkstra.num_threads == 8
        assert r.total_time == pytest.approx(
            r.phase_times.ordering + r.phase_times.dijkstra
        )

    def test_ratio_forwarded(self, small_weighted, reference):
        r = solve_apsp(small_weighted, algorithm="seq-opt", ratio=0.5)
        assert_same_apsp(r.dist, reference(small_weighted))

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.0001, 2.0])
    def test_ratio_out_of_range_rejected(self, toy_graph, bad):
        with pytest.raises(AlgorithmError, match="ratio"):
            solve_apsp(toy_graph, algorithm="seq-opt", ratio=bad)

    def test_ratio_validated_through_seq_optimized(self, toy_graph):
        from repro.core import seq_optimized

        with pytest.raises(AlgorithmError, match="ratio"):
            seq_optimized(toy_graph, ratio=-1.0)

    def test_block_size_forwarded(self, small_weighted):
        a = solve_apsp(small_weighted, algorithm="seq-opt")
        b = solve_apsp(small_weighted, algorithm="seq-opt", block_size=16)
        assert b.extra["block_size"] == 16
        assert "block_size" not in a.extra
        assert np.array_equal(a.dist, b.dist)
        assert a.ops == b.ops

    def test_block_size_auto_resolves(self, small_weighted):
        r = solve_apsp(
            small_weighted, algorithm="parapsp", block_size="auto"
        )
        assert 1 <= r.extra["block_size"] <= small_weighted.num_vertices

    def test_degree_kind_forwarded(self, directed_weighted, reference):
        r = solve_apsp(
            directed_weighted, algorithm="seq-opt", degree_kind="in"
        )
        assert_same_apsp(r.dist, reference(directed_weighted))


class TestExactnessMatrix:
    """The paper's §5 claim: identical outputs everywhere."""

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_every_algorithm_exact(self, small_weighted, reference, algorithm):
        r = solve_apsp(small_weighted, algorithm=algorithm)
        assert_same_apsp(r.dist, reference(small_weighted))

    @pytest.mark.parametrize("backend", ["serial", "threads", "process", "sim"])
    def test_every_backend_exact(self, small_weighted, reference, backend):
        r = solve_apsp(
            small_weighted,
            algorithm="parapsp",
            backend=backend,
            num_threads=3,
        )
        assert_same_apsp(r.dist, reference(small_weighted))

    @pytest.mark.parametrize("schedule", ["block", "static-cyclic", "dynamic"])
    def test_every_schedule_exact(self, small_weighted, reference, schedule):
        r = solve_apsp(
            small_weighted,
            algorithm="parapsp",
            backend="sim",
            num_threads=8,
            schedule=schedule,
        )
        assert_same_apsp(r.dist, reference(small_weighted))

    def test_directed_graph_exact(self, directed_weighted, reference):
        for algorithm in ("seq-basic", "parapsp"):
            r = solve_apsp(directed_weighted, algorithm=algorithm)
            assert_same_apsp(r.dist, reference(directed_weighted))

    def test_bitwise_identical_across_algorithms(self, small_ba):
        """Unit weights → integer distances → bitwise equality."""
        mats = [
            solve_apsp(small_ba, algorithm=a).dist
            for a in ("seq-basic", "seq-opt", "parapsp")
        ]
        assert np.array_equal(mats[0], mats[1])
        assert np.array_equal(mats[0], mats[2])
