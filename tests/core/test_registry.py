"""The declarative solver registry (repro.core.registry)."""

import pytest

from repro.core import ALGORITHMS, solve_apsp
from repro.core.registry import (
    ShardHooks,
    SolverSpec,
    canonical_solver_name,
    get_solver,
    register_solver,
    solver_names,
)
from repro.exceptions import ConfigError
from repro.types import Schedule


def _spec(name, **overrides):
    base = dict(
        name=name,
        ordering="none",
        schedule=Schedule.DYNAMIC,
        parallel=True,
        description="test solver",
        solve=lambda graph, cfg, spec: None,
        store_buildable=False,
    )
    base.update(overrides)
    return SolverSpec(**base)


class TestCanonicalNames:
    def test_underscores_become_hyphens(self):
        assert canonical_solver_name("delta_stepping") == "delta-stepping"

    def test_case_and_whitespace_folded(self):
        assert canonical_solver_name("  Johnson ") == "johnson"

    def test_lookup_accepts_aliases(self):
        assert get_solver("delta_stepping") is get_solver("delta-stepping")
        assert get_solver("JOHNSON") is ALGORITHMS["johnson"]


class TestRegistration:
    def test_algorithms_is_the_live_registry(self):
        # the historical name must alias the registry dict, not a copy
        from repro.core.registry import _REGISTRY

        assert ALGORITHMS is _REGISTRY
        assert set(solver_names()) == set(ALGORITHMS)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_solver(_spec("parapsp"))

    def test_replace_allows_override_and_restore(self):
        original = ALGORITHMS["parapsp"]
        try:
            swapped = register_solver(
                _spec("parapsp", description="instrumented"), replace=True
            )
            assert ALGORITHMS["parapsp"] is swapped
        finally:
            register_solver(original, replace=True)
        assert ALGORITHMS["parapsp"] is original

    def test_non_canonical_name_rejected(self):
        with pytest.raises(ConfigError, match="not canonical"):
            register_solver(_spec("Delta_Stepping"))

    def test_missing_solve_rejected(self):
        with pytest.raises(ConfigError, match="no solve callable"):
            register_solver(_spec("no-solve", solve=None))

    def test_store_buildable_requires_shard_hooks(self):
        with pytest.raises(ConfigError, match="shard_hooks"):
            register_solver(
                _spec("no-hooks", store_buildable=True, shard_hooks=None)
            )

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            register_solver("parapsp")

    def test_unknown_lookup_lists_registered(self):
        with pytest.raises(ConfigError, match="registered solvers"):
            get_solver("bogus")


class TestCapabilities:
    def test_capabilities_dict_mirrors_flags(self):
        spec = ALGORITHMS["johnson"]
        caps = spec.capabilities()
        assert caps["negative_weights"] is True
        assert caps["batchable"] is True
        assert set(caps) == {
            "negative_weights", "batchable", "simulatable",
            "store_buildable", "uses_flags", "uses_delta",
        }

    def test_sweep_family_flags(self):
        for name in ("seq-basic", "seq-opt", "paralg1", "paralg2",
                     "parapsp"):
            spec = ALGORITHMS[name]
            assert not spec.negative_weights
            assert spec.batchable
            assert spec.store_buildable
            assert not spec.uses_delta

    def test_delta_stepping_flags(self):
        spec = ALGORITHMS["delta-stepping"]
        assert spec.uses_delta
        assert not spec.negative_weights
        assert not spec.batchable

    def test_every_registered_solver_has_callables(self):
        for name, spec in ALGORITHMS.items():
            assert spec.solve is not None, name
            if spec.store_buildable:
                assert spec.shard_hooks is not None, name


class TestDispatch:
    def test_solve_apsp_accepts_alias_spelling(self, toy_graph):
        r = solve_apsp(toy_graph, algorithm="delta_stepping")
        assert r.algorithm == "delta-stepping"

    def test_registered_stub_is_dispatchable(self, toy_graph):
        calls = []

        def fake_solve(graph, cfg, spec):
            calls.append(spec.name)
            return solve_apsp(graph, algorithm="seq-basic")

        try:
            register_solver(_spec("stub-solver", solve=fake_solve))
            solve_apsp(toy_graph, algorithm="stub-solver")
            assert calls == ["stub-solver"]
        finally:
            from repro.core.registry import _REGISTRY

            _REGISTRY.pop("stub-solver", None)


class TestShardHooks:
    def test_shard_hooks_fields(self, toy_graph):
        hooks = ShardHooks(toy_graph, lambda g, s, state, cfg: None)
        assert hooks.graph is toy_graph
        assert hooks.finalize is None
