"""Johnson's algorithm: potentials, reweighting, negative cycles."""

import numpy as np
import pytest

from repro.core import solve_apsp, solve_apsp_shards
from repro.core.johnson import (
    bellman_ford_apsp,
    bellman_ford_potentials,
    bellman_ford_sssp,
    reweight_graph,
)
from repro.exceptions import NegativeCycleError, NegativeWeightError
from repro.graphs import (
    attach_negative_weights,
    attach_random_weights,
    erdos_renyi,
    negative_cycle_graph,
)
from repro.obs import MetricsRegistry, use_registry


@pytest.fixture(scope="module")
def base_graph():
    return attach_random_weights(
        erdos_renyi(60, 0.1, seed=13, directed=True), seed=14
    )


@pytest.fixture(scope="module")
def negative_graph(base_graph):
    g = attach_negative_weights(base_graph, seed=15)
    assert g.has_negative_weights
    return g


class TestPotentials:
    def test_nonnegative_graph_gives_zero_potentials(self, base_graph):
        h, passes, relaxations = bellman_ford_potentials(base_graph)
        assert np.all(h == 0.0)
        assert passes == 1  # fixpoint on the first pass
        assert relaxations == base_graph.indices.size

    def test_reweighted_graph_is_nonnegative(self, negative_graph):
        h, _, _ = bellman_ford_potentials(negative_graph)
        inner = reweight_graph(negative_graph, h)
        assert np.all(inner.weights >= 0.0)
        assert not inner.has_negative_weights

    def test_potentials_satisfy_triangle_fixpoint(self, negative_graph):
        h, _, _ = bellman_ford_potentials(negative_graph)
        src = np.repeat(
            np.arange(negative_graph.num_vertices),
            np.diff(negative_graph.indptr),
        )
        assert np.all(
            h[negative_graph.indices] <= h[src] + negative_graph.weights
        )

    def test_negative_cycle_raises_with_witness(self):
        with pytest.raises(NegativeCycleError) as info:
            bellman_ford_potentials(negative_cycle_graph())
        assert info.value.witness in (0, 1, 2)


class TestReferenceOracle:
    def test_sssp_matches_dijkstra_on_nonnegative(self, base_graph):
        from repro.core.dijkstra import dijkstra_sssp

        for s in (0, 7, 31):
            ref, _ = dijkstra_sssp(base_graph, s)
            bf = bellman_ford_sssp(base_graph, s)
            assert np.allclose(bf, ref, equal_nan=False)
            assert np.array_equal(np.isfinite(bf), np.isfinite(ref))

    def test_sssp_negative_cycle_detection(self):
        with pytest.raises(NegativeCycleError):
            bellman_ford_sssp(negative_cycle_graph(), 0)

    def test_sssp_from_unaffected_source_succeeds(self):
        # vertex 3 hangs off the cycle and cannot reach it
        dist = bellman_ford_sssp(negative_cycle_graph(), 3)
        assert dist[3] == 0.0
        assert not np.isfinite(dist[0])


class TestSolve:
    def test_matches_bellman_ford_on_negative_graph(self, negative_graph):
        r = solve_apsp(negative_graph, algorithm="johnson")
        ref = bellman_ford_apsp(negative_graph)
        assert np.array_equal(np.isfinite(r.dist), np.isfinite(ref))
        finite = np.isfinite(ref)
        assert np.allclose(r.dist[finite], ref[finite])
        assert r.extra["johnson.reweighted"] == 1.0
        assert r.extra["johnson.bf_passes"] >= 1

    def test_bitwise_parity_with_parapsp_on_nonnegative(self, base_graph):
        """Zero potentials mean the inner graph IS the input graph, so
        johnson and parapsp run the identical code path."""
        ref = solve_apsp(base_graph, algorithm="parapsp")
        r = solve_apsp(base_graph, algorithm="johnson")
        assert np.array_equal(r.dist, ref.dist)
        assert r.extra["johnson.reweighted"] == 0.0

    def test_negative_cycle_raises_typed_error(self):
        with pytest.raises(NegativeCycleError):
            solve_apsp(negative_cycle_graph(), algorithm="johnson")

    def test_other_solvers_reject_negative_weights(self, negative_graph):
        for alg in ("parapsp", "seq-basic", "delta-stepping"):
            with pytest.raises(NegativeWeightError, match="johnson"):
                solve_apsp(negative_graph, algorithm=alg)

    def test_sim_backend_allclose(self, negative_graph):
        serial = solve_apsp(negative_graph, algorithm="johnson")
        sim = solve_apsp(
            negative_graph, algorithm="johnson", backend="sim",
            num_threads=8,
        )
        finite = np.isfinite(serial.dist)
        assert np.array_equal(finite, np.isfinite(sim.dist))
        assert np.allclose(sim.dist[finite], serial.dist[finite])
        # the Bellman–Ford phase is charged in virtual time
        assert sim.phase_times.other > 0

    def test_batched_matches_unbatched(self, negative_graph):
        a = solve_apsp(negative_graph, algorithm="johnson")
        b = solve_apsp(negative_graph, algorithm="johnson", block_size=16)
        assert np.array_equal(
            np.isfinite(a.dist), np.isfinite(b.dist)
        )
        finite = np.isfinite(a.dist)
        assert np.allclose(a.dist[finite], b.dist[finite])

    def test_bf_counters_emitted(self, negative_graph):
        registry = MetricsRegistry()
        with use_registry(registry):
            solve_apsp(negative_graph, algorithm="johnson")
        counters = registry.counters()
        assert counters["johnson.bf.passes"] >= 1
        assert counters["johnson.bf.relaxations"] > 0
        assert registry.gauges()["johnson.reweighted"] == 1.0


class TestShards:
    def test_shards_reassemble_to_solve(self, negative_graph):
        ref = solve_apsp(negative_graph, algorithm="johnson")
        blocks = [
            block.copy()
            for _, block in solve_apsp_shards(
                negative_graph, shard_rows=16, algorithm="johnson"
            )
        ]
        full = np.vstack(blocks)
        finite = np.isfinite(ref.dist)
        assert np.array_equal(finite, np.isfinite(full))
        assert np.allclose(full[finite], ref.dist[finite])

    def test_shard_blocks_are_unreweighted(self, negative_graph):
        """Each yielded block must be in true-distance space (diagonal
        zero), not the reweighted inner space."""
        for start, block in solve_apsp_shards(
            negative_graph, shard_rows=16, algorithm="johnson"
        ):
            k = block.shape[0]
            diag = block[np.arange(k), np.arange(start, start + k)]
            assert np.all(diag == 0.0)
