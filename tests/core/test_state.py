"""APSP state and result containers."""

import numpy as np
import pytest

from repro.core import APSPResult, new_state
from repro.exceptions import AlgorithmError
from repro.types import INF, PhaseTimes


class TestState:
    def test_initialisation_matches_algorithm2(self):
        state = new_state(4)
        assert np.all(np.diag(state.dist) == 0.0)
        off = ~np.eye(4, dtype=bool)
        assert np.all(np.isinf(state.dist[off]))
        assert state.flag.sum() == 0
        assert state.n == 4

    def test_reset(self):
        state = new_state(3)
        state.dist[0, 1] = 5.0
        state.flag[2] = 1
        state.reset()
        assert np.isinf(state.dist[0, 1])
        assert state.flag[2] == 0

    def test_external_buffer(self):
        buf = np.empty((3, 3), dtype=np.float64)
        state = new_state(3, dist_buffer=buf)
        assert state.dist is buf
        assert buf[0, 0] == 0.0

    def test_bad_buffer(self):
        with pytest.raises(AlgorithmError):
            new_state(3, dist_buffer=np.empty((2, 3)))
        with pytest.raises(AlgorithmError):
            new_state(2, dist_buffer=np.empty((2, 2), dtype=np.float32))

    def test_negative_size(self):
        with pytest.raises(AlgorithmError):
            new_state(-1)

    def test_zero_size(self):
        state = new_state(0)
        assert state.n == 0


class TestResult:
    def test_summary_fields(self):
        r = APSPResult(
            algorithm="parapsp",
            dist=np.zeros((2, 2)),
            num_threads=4,
            backend="sim",
            phase_times=PhaseTimes(ordering=1.0, dijkstra=9.0),
        )
        s = r.summary()
        assert s["total_time"] == 10.0
        assert s["threads"] == 4.0
        assert r.n == 2

    def test_reachable_pairs(self):
        dist = np.array([[0.0, INF], [1.0, 0.0]])
        r = APSPResult(
            algorithm="x", dist=dist, num_threads=1, backend="serial"
        )
        assert r.reachable_pairs() == 3


class TestPhaseTimes:
    def test_total(self):
        pt = PhaseTimes(ordering=1.0, dijkstra=2.0, other=0.5)
        assert pt.total == 3.5
        assert pt.as_tuple() == (1.0, 2.0, 0.5)
