"""Algorithm 1 — the modified Dijkstra with flag reuse."""

import numpy as np
import pytest

from repro.core import modified_dijkstra_sssp, new_state
from repro.core.dijkstra import dijkstra_sssp
from repro.exceptions import AlgorithmError
from repro.graphs import from_edges


def sssp_via_state(graph, source, **kw):
    state = new_state(graph.num_vertices)
    counts = modified_dijkstra_sssp(graph, source, state, **kw)
    return state, counts


class TestSingleSweep:
    @pytest.mark.parametrize("queue", ["fifo", "heap"])
    def test_matches_classic_dijkstra(self, small_weighted, queue):
        for source in (0, 5, 50):
            state, _ = sssp_via_state(small_weighted, source, queue=queue)
            ref, _ = dijkstra_sssp(small_weighted, source)
            assert np.allclose(state.dist[source], ref)

    def test_directed_with_unreachable(self, directed_weighted):
        state, _ = sssp_via_state(directed_weighted, 0)
        ref, _ = dijkstra_sssp(directed_weighted, 0)
        assert np.array_equal(
            np.isfinite(state.dist[0]), np.isfinite(ref)
        )
        finite = np.isfinite(ref)
        assert np.allclose(state.dist[0][finite], ref[finite])

    def test_flag_raised_after_completion(self, toy_graph):
        state, _ = sssp_via_state(toy_graph, 0)
        assert state.flag[0] == 1
        assert state.flag[1:].sum() == 0

    def test_set_flag_false(self, toy_graph):
        state, _ = sssp_via_state(toy_graph, 0, set_flag=False)
        assert state.flag.sum() == 0

    def test_bad_source(self, toy_graph):
        state = new_state(5)
        with pytest.raises(AlgorithmError):
            modified_dijkstra_sssp(toy_graph, 9, state)

    def test_state_graph_mismatch(self, toy_graph):
        with pytest.raises(AlgorithmError, match="sized for"):
            modified_dijkstra_sssp(toy_graph, 0, new_state(3))

    def test_unknown_queue(self, toy_graph):
        with pytest.raises(AlgorithmError, match="queue"):
            sssp_via_state(toy_graph, 0, queue="stack")


class TestFlagReuse:
    def test_second_sweep_merges_first(self, small_weighted):
        state = new_state(small_weighted.num_vertices)
        modified_dijkstra_sssp(small_weighted, 0, state)
        counts = modified_dijkstra_sssp(small_weighted, 1, state)
        assert counts.flag_hits >= 1
        ref, _ = dijkstra_sssp(small_weighted, 1)
        assert np.allclose(state.dist[1], ref)

    def test_reuse_reduces_work(self, small_ba):
        n = small_ba.num_vertices
        with_flags = new_state(n)
        total_with = 0
        for s in range(n):
            total_with += modified_dijkstra_sssp(
                small_ba, s, with_flags
            ).total_work()
        no_flags = new_state(n)
        total_without = 0
        for s in range(n):
            total_without += modified_dijkstra_sssp(
                small_ba, s, no_flags, use_flags=False
            ).total_work()
        # reuse changes (usually reduces pop/relax) — at minimum the
        # results agree and flag machinery engaged
        assert np.allclose(with_flags.dist, no_flags.dist)

    def test_flag_gate_blocks_reuse(self, small_weighted):
        state = new_state(small_weighted.num_vertices)
        modified_dijkstra_sssp(small_weighted, 0, state)
        gated = modified_dijkstra_sssp(
            small_weighted, 1, state, flag_gate=lambda t: False
        )
        assert gated.flag_hits == 0
        ref, _ = dijkstra_sssp(small_weighted, 1)
        assert np.allclose(state.dist[1], ref)

    def test_use_flags_false_never_merges(self, small_weighted):
        state = new_state(small_weighted.num_vertices)
        modified_dijkstra_sssp(small_weighted, 0, state)
        counts = modified_dijkstra_sssp(
            small_weighted, 1, state, use_flags=False
        )
        assert counts.row_merges == 0

    def test_exactness_under_partial_gates(self, small_weighted):
        """Any subset of usable flags must still give exact distances —
        the property the parallel interleaving relies on."""
        n = small_weighted.num_vertices
        rng = np.random.default_rng(12)
        state = new_state(n)
        for s in range(n):
            usable = set(rng.choice(n, size=n // 3, replace=False).tolist())
            modified_dijkstra_sssp(
                small_weighted, s, state, flag_gate=lambda t: t in usable
            )
        for s in (0, 3, n - 1):
            ref, _ = dijkstra_sssp(small_weighted, s)
            assert np.allclose(state.dist[s], ref)


class TestOpCounts:
    def test_counts_populated(self, small_weighted):
        _, counts = sssp_via_state(small_weighted, 0)
        assert counts.pops > 0
        assert counts.edge_relaxations > 0
        assert counts.edge_improvements > 0

    def test_merge_comparisons_are_n_per_merge(self, small_weighted):
        state = new_state(small_weighted.num_vertices)
        modified_dijkstra_sssp(small_weighted, 0, state)
        counts = modified_dijkstra_sssp(small_weighted, 1, state)
        assert counts.merge_comparisons == (
            counts.row_merges * small_weighted.num_vertices
        )

    def test_isolated_source_trivial(self):
        g = from_edges([(0, 1)], num_vertices=3)
        state, counts = sssp_via_state(g, 2)
        assert counts.edge_relaxations == 0
        assert state.dist[2].tolist() == [np.inf, np.inf, 0.0]
