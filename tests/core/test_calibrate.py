"""Host cost-model calibration."""

import numpy as np
import pytest

from repro.core import (
    CalibrationSample,
    fit_cost_model,
    measure_sweeps,
)
from repro.exceptions import ValidationError
from repro.types import OpCounts


class TestMeasureSweeps:
    def test_batching(self, small_ba):
        samples = measure_sweeps(small_ba, max_sources=40, batch=8)
        assert len(samples) == 5
        assert all(s.calls == 8 for s in samples)
        assert all(s.seconds > 0 for s in samples)
        assert all(s.counts.pops > 0 for s in samples)

    def test_remainder_batch(self, small_ba):
        samples = measure_sweeps(small_ba, max_sources=10, batch=4)
        assert [s.calls for s in samples] == [4, 4, 2]

    def test_validation(self, small_ba):
        import numpy as np

        from repro.graphs import CSRGraph

        empty = CSRGraph(
            np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        with pytest.raises(ValidationError):
            measure_sweeps(empty)
        with pytest.raises(ValidationError):
            measure_sweeps(small_ba, batch=0)


class TestFitCostModel:
    def test_recovers_synthetic_costs(self):
        """Exact synthetic samples must be fit perfectly."""
        rng = np.random.default_rng(0)
        true = dict(call=5e-5, pop=2e-6, relax=4e-7, cmp=1e-9, merge=3e-8)
        samples = []
        for _ in range(40):
            counts = OpCounts(
                pops=int(rng.integers(10, 5000)),
                edge_relaxations=int(rng.integers(10, 20000)),
                merge_comparisons=int(rng.integers(0, 300000)),
                row_merges=int(rng.integers(0, 200)),
            )
            calls = int(rng.integers(1, 20))
            seconds = (
                calls * true["call"]
                + counts.pops * true["pop"]
                + counts.edge_relaxations * true["relax"]
                + counts.merge_comparisons * true["cmp"]
                + counts.row_merges * true["merge"]
            )
            samples.append(CalibrationSample(counts, seconds, calls=calls))
        model, r2 = fit_cost_model(samples)
        assert r2 > 0.999
        assert model.call == pytest.approx(true["call"], rel=1e-6)
        assert model.pop == pytest.approx(true["pop"], rel=1e-6)
        assert model.edge_relaxation == pytest.approx(true["relax"], rel=1e-6)

    def test_real_measurement_fits_well(self, wordnet_tiny):
        samples = measure_sweeps(wordnet_tiny, batch=16)
        model, r2 = fit_cost_model(samples)
        # real timing is noisy; the batched fit should still explain
        # most of the variance and give non-negative costs
        assert r2 > 0.5
        assert model.call >= 0 and model.pop >= 0

    def test_needs_samples(self):
        with pytest.raises(ValidationError):
            fit_cost_model([])
