"""Δ-stepping: bucketed SSSP, autotuning, sweeps, SIM contention."""

import numpy as np
import pytest

from repro.core import solve_apsp
from repro.core.delta_stepping import (
    DELTA_AUTOTUNE_FACTORS,
    DeltaGraph,
    autotune_delta,
    delta_stepping_sssp,
    run_delta_sweep,
    simulate_delta_sweep,
)
from repro.core.dijkstra import dijkstra_sssp
from repro.exceptions import AlgorithmError, BackendError, ConfigError
from repro.graphs import attach_random_weights, erdos_renyi
from repro.obs import MetricsRegistry, use_registry
from repro.simx import MACHINE_I


@pytest.fixture(scope="module")
def weighted_er():
    return attach_random_weights(
        erdos_renyi(70, 0.08, seed=3, directed=True), seed=4
    )


class TestDeltaGraph:
    def test_light_heavy_partition_is_exact(self, weighted_er):
        dg = DeltaGraph(weighted_er, 2.0)
        m = weighted_er.indices.size
        assert dg.light_weights.size + dg.heavy_weights.size == m
        assert np.all(dg.light_weights <= 2.0)
        assert np.all(dg.heavy_weights > 2.0)
        # per-vertex arc multisets are preserved
        for v in range(weighted_er.num_vertices):
            orig = sorted(
                zip(
                    weighted_er.indices[
                        weighted_er.indptr[v]:weighted_er.indptr[v + 1]
                    ].tolist(),
                    weighted_er.weights[
                        weighted_er.indptr[v]:weighted_er.indptr[v + 1]
                    ].tolist(),
                )
            )
            split = sorted(
                zip(
                    dg.light_indices[
                        dg.light_indptr[v]:dg.light_indptr[v + 1]
                    ].tolist(),
                    dg.light_weights[
                        dg.light_indptr[v]:dg.light_indptr[v + 1]
                    ].tolist(),
                )
            ) + sorted(
                zip(
                    dg.heavy_indices[
                        dg.heavy_indptr[v]:dg.heavy_indptr[v + 1]
                    ].tolist(),
                    dg.heavy_weights[
                        dg.heavy_indptr[v]:dg.heavy_indptr[v + 1]
                    ].tolist(),
                )
            )
            assert sorted(split) == orig

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_delta_rejected(self, toy_graph, bad):
        with pytest.raises(ConfigError, match="algorithm.delta"):
            DeltaGraph(toy_graph, bad)


class TestSSSP:
    @pytest.mark.parametrize("delta", [0.1, 0.7, 2.0, 100.0])
    def test_matches_dijkstra_bitwise(self, weighted_er, delta):
        """Δ-stepping relaxes edge-by-edge exactly like Dijkstra, so the
        distances agree bitwise for any Δ."""
        dg = DeltaGraph(weighted_er, delta)
        n = weighted_er.num_vertices
        dist = np.empty(n)
        for s in range(0, n, 7):
            delta_stepping_sssp(dg, s, dist)
            ref, _ = dijkstra_sssp(weighted_er, s)
            assert np.array_equal(dist, ref), (s, delta)

    def test_rerun_is_bitwise_idempotent(self, weighted_er):
        """The row reset inside the sweep makes fault retries exact."""
        dg = DeltaGraph(weighted_er, 1.5)
        n = weighted_er.num_vertices
        dist = np.empty(n)
        delta_stepping_sssp(dg, 3, dist)
        first = dist.copy()
        dist[:] = -123.0  # poison: the sweep must not read stale state
        counts = delta_stepping_sssp(dg, 3, dist)
        assert np.array_equal(dist, first)
        assert counts.pops > 0

    def test_source_out_of_range(self, weighted_er):
        dg = DeltaGraph(weighted_er, 1.0)
        dist = np.empty(weighted_er.num_vertices)
        with pytest.raises(AlgorithmError, match="out of range"):
            delta_stepping_sssp(dg, weighted_er.num_vertices, dist)

    def test_counters_emitted(self, weighted_er):
        dg = DeltaGraph(weighted_er, 1.0)
        dist = np.empty(weighted_er.num_vertices)
        registry = MetricsRegistry()
        with use_registry(registry):
            delta_stepping_sssp(dg, 0, dist)
        counters = registry.counters()
        assert counters["sweep.count"] == 1
        assert counters["ops.pops"] > 0
        assert counters["delta.buckets_processed"] > 0
        assert (
            counters["delta.light_relaxations"]
            + counters["delta.heavy_relaxations"]
            == counters["ops.edge_relaxations"]
        )
        assert registry.gauges()["delta.peak_bucket_index"] >= 0

    def test_small_delta_exercises_lazy_and_fusion_paths(self, weighted_er):
        """A small Δ forces many buckets and light re-insertions, the
        regime where lazy skips and bucket fusions must actually fire."""
        dg = DeltaGraph(weighted_er, 0.2)
        dist = np.empty(weighted_er.num_vertices)
        registry = MetricsRegistry()
        with use_registry(registry):
            for s in range(10):
                delta_stepping_sssp(dg, s, dist)
        counters = registry.counters()
        assert counters["delta.lazy_skips"] > 0

    def test_insert_log_records_bucket_indices(self, weighted_er):
        dg = DeltaGraph(weighted_er, 1.0)
        dist = np.empty(weighted_er.num_vertices)
        log = []
        counts = delta_stepping_sssp(dg, 0, dist, insert_log=log)
        assert len(log) == counts.edge_improvements
        assert all(b >= 0 for b in log)


class TestAutotune:
    def test_winner_is_deterministic(self, weighted_er):
        d1, samples1 = autotune_delta(weighted_er)
        d2, _ = autotune_delta(weighted_er)
        assert d1 == d2
        assert len(samples1) == len(DELTA_AUTOTUNE_FACTORS) + 1

    def test_explicit_candidates(self, weighted_er):
        best, samples = autotune_delta(weighted_er, candidates=[0.5, 5.0])
        assert best in (0.5, 5.0)
        assert len(samples) == 2

    def test_probes_do_not_pollute_counters(self, weighted_er):
        registry = MetricsRegistry()
        with use_registry(registry):
            autotune_delta(weighted_er)
        assert "ops.pops" not in registry.counters()

    def test_empty_graph_rejected(self):
        from repro.graphs.csr import CSRGraph

        empty = CSRGraph(
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
            directed=True,
        )
        with pytest.raises(AlgorithmError, match="empty"):
            autotune_delta(empty)


class TestSweep:
    def test_serial_and_threads_agree_bitwise(self, weighted_er):
        n = weighted_er.num_vertices
        order = np.arange(n)
        a = run_delta_sweep(weighted_er, order, delta=1.5)
        b = run_delta_sweep(
            weighted_er, order, delta=1.5, backend="threads", num_threads=4
        )
        assert np.array_equal(a.dist, b.dist)

    def test_bad_order_shape(self, weighted_er):
        with pytest.raises(AlgorithmError, match="order"):
            run_delta_sweep(weighted_er, np.arange(3), delta=1.0)

    def test_sim_backend_redirected(self, weighted_er):
        order = np.arange(weighted_er.num_vertices)
        with pytest.raises(BackendError, match="simulate_delta_sweep"):
            run_delta_sweep(weighted_er, order, delta=1.0, backend="sim")


class TestSimulate:
    def test_exact_and_deterministic(self, weighted_er):
        n = weighted_er.num_vertices
        order = np.arange(n)
        ref = run_delta_sweep(weighted_er, order, delta=1.5)
        a = simulate_delta_sweep(
            weighted_er, order, MACHINE_I, delta=1.5, num_threads=8
        )
        b = simulate_delta_sweep(
            weighted_er, order, MACHINE_I, delta=1.5, num_threads=8
        )
        assert np.array_equal(a.dist, ref.dist)
        assert a.makespan == b.makespan

    def test_bucket_lock_events_in_trace(self, weighted_er):
        order = np.arange(weighted_er.num_vertices)
        sweep = simulate_delta_sweep(
            weighted_er, order, MACHINE_I, delta=0.5, num_threads=8,
            trace=True,
        )
        labels = {
            e.label for e in sweep.sim.events if e.label is not None
        }
        assert any(
            label.startswith("delta.bucket") for label in labels
        ), labels

    def test_more_threads_not_slower(self, weighted_er):
        order = np.arange(weighted_er.num_vertices)
        t1 = simulate_delta_sweep(
            weighted_er, order, MACHINE_I, delta=1.5, num_threads=1
        ).makespan
        t8 = simulate_delta_sweep(
            weighted_er, order, MACHINE_I, delta=1.5, num_threads=8
        ).makespan
        assert t8 < t1


class TestSolveIntegration:
    def test_extra_records_resolved_delta(self, weighted_er):
        r = solve_apsp(weighted_er, algorithm="delta-stepping")
        assert r.extra["delta"] > 0
        explicit = solve_apsp(
            weighted_er, algorithm="delta-stepping", delta=2.0
        )
        assert explicit.extra["delta"] == 2.0

    def test_sim_matches_serial(self, weighted_er):
        a = solve_apsp(weighted_er, algorithm="delta-stepping", delta=1.0)
        b = solve_apsp(
            weighted_er, algorithm="delta-stepping", delta=1.0,
            backend="sim", num_threads=8,
        )
        assert np.array_equal(a.dist, b.dist)

    def test_delta_rejected_for_other_solvers(self, weighted_er):
        with pytest.raises(ConfigError, match="algorithm.delta"):
            solve_apsp(weighted_er, algorithm="parapsp", delta=1.0)

    def test_block_size_rejected_for_delta(self, weighted_er):
        with pytest.raises(ConfigError, match="batch.block_size"):
            solve_apsp(
                weighted_er, algorithm="delta-stepping", block_size=8
            )
