"""ISSUE 3 acceptance: valid Perfetto JSON, dynamic beats static idle."""

import pytest

from repro.core.runner import solve_apsp
from repro.graphs.rmat import rmat
from repro.trace import (
    analyze_trace,
    to_chrome,
    trace_from_apsp_result,
    validate_chrome,
)


@pytest.fixture(scope="module")
def rmat_graph():
    return rmat(7, edge_factor=8, seed=5, name="rmat-s7-ef8")


def run_traced(graph, schedule):
    result = solve_apsp(
        graph,
        algorithm="paralg1",
        num_threads=8,
        backend="sim",
        schedule=schedule,
        trace=True,
    )
    return trace_from_apsp_result(result)


class TestChromeAcceptance:
    def test_rmat_workload_produces_valid_chrome_json(self, rmat_graph):
        trace = run_traced(rmat_graph, "dynamic")
        obj = to_chrome(trace)
        assert validate_chrome(obj) == []
        # one track per simulated thread plus the phase-extent row
        tids = {
            e["tid"] for e in obj["traceEvents"] if e["ph"] == "X"
        }
        assert tids == set(range(trace.num_tracks + 1))
        # flow arrows across fork/join are present and paired
        assert any(e["ph"] == "s" for e in obj["traceEvents"])
        assert any(e["ph"] == "f" for e in obj["traceEvents"])


class TestSchedulingAcceptance:
    def test_dynamic_idle_strictly_below_static_cyclic(self, rmat_graph):
        """Self-scheduling soaks up the R-MAT hub imbalance (paper §4).

        The skewed per-source sweep costs make any static assignment
        leave threads idle at the join; dynamic chunk claims fill the
        tail, so its sweep-phase idle fraction must be strictly lower.
        """
        static = analyze_trace(
            run_traced(rmat_graph, "static-cyclic")
        ).summary()
        dynamic = analyze_trace(run_traced(rmat_graph, "dynamic")).summary()
        key = "trace.phase.sweep.idle_fraction"
        assert dynamic[key] < static[key]

    def test_dynamic_makespan_no_worse(self, rmat_graph):
        static = analyze_trace(
            run_traced(rmat_graph, "static-cyclic")
        ).summary()
        dynamic = analyze_trace(run_traced(rmat_graph, "dynamic")).summary()
        key = "trace.phase.sweep.makespan"
        assert dynamic[key] <= static[key]
