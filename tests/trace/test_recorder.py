"""Wall-clock TraceRecorder through the repro.obs span hook."""

import threading

import pytest

from repro.obs import span, use_registry
from repro.trace import TraceRecorder, to_chrome, validate_chrome


class FakeClock:
    """Deterministic clock: each call advances by the programmed step."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestTraceRecorder:
    def test_empty_recorder_refuses_to_trace(self):
        with pytest.raises(ValueError, match="no spans"):
            TraceRecorder().to_trace()

    def test_spans_rebased_to_zero(self):
        rec = TraceRecorder(clock=FakeClock())
        with use_registry(rec):
            with span("apsp"):
                with span("dijkstra"):
                    pass
        trace = rec.to_trace()
        assert trace.clock == "wall"
        assert min(s.start for s in trace.spans) == 0.0
        assert {s.name for s in trace.spans} == {"apsp", "apsp.dijkstra"}

    def test_one_track_per_thread_with_names(self):
        rec = TraceRecorder()
        barrier = threading.Barrier(2)

        def worker():
            with use_registry(rec):
                barrier.wait()
                with span("work"):
                    pass

        threads = [
            threading.Thread(target=worker, name=f"w-{i}") for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        trace = rec.to_trace()
        assert trace.num_tracks == 2
        assert set(trace.track_names.values()) == {"w-0", "w-1"}

    def test_apsp_phase_windows_derived(self):
        rec = TraceRecorder(clock=FakeClock())
        with use_registry(rec):
            with span("apsp"):
                with span("ordering"):
                    pass
                with span("dijkstra"):
                    pass
        trace = rec.to_trace()
        names = [p.name for p in trace.phases]
        assert names == ["ordering", "dijkstra"]

    def test_chrome_export_valid(self):
        rec = TraceRecorder(clock=FakeClock(step=0.001))
        with use_registry(rec):
            with span("apsp"):
                with span("dijkstra"):
                    pass
        assert validate_chrome(to_chrome(rec.to_trace())) == []

    def test_still_a_metrics_registry(self):
        rec = TraceRecorder(clock=FakeClock())
        with use_registry(rec):
            with span("apsp"):
                pass
        assert "apsp" in rec.span_durations()
