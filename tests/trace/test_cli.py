"""`repro-apsp trace` round trip."""

import json

from repro.cli import main
from repro.trace import validate_chrome


class TestTraceCommand:
    def test_sim_roundtrip_writes_valid_chrome(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--rmat", "6", "--threads", "4",
            "--schedule", "dynamic", "--out", str(out),
            "--report", "--gantt",
        ])
        assert rc == 0
        obj = json.loads(out.read_text())
        assert validate_chrome(obj) == []
        text = capsys.readouterr().out
        assert "critical path" in text
        assert "#=busy" in text  # the Gantt legend
        assert "perfetto" in text

    def test_report_is_default_without_out(self, capsys):
        rc = main(["trace", "--rmat", "5", "--threads", "2"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "critical path" in text
        assert "phase sweep" in text

    def test_wall_clock_backend_records_spans(self, capsys):
        rc = main([
            "trace", "--rmat", "5", "--threads", "2",
            "--backend", "threads", "--report",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "wall clock" in text
