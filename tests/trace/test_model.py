"""Unified trace model: spans, phases, flows, builders."""

import numpy as np
import pytest

from repro.core.runner import solve_apsp
from repro.exceptions import SimulationError
from repro.graphs.rmat import rmat
from repro.simx import MACHINE_I, simulate_parallel_for
from repro.trace import (
    CATEGORIES,
    TRACE_SCHEMA_VERSION,
    PhaseStats,
    Trace,
    TraceSpan,
    trace_from_apsp_result,
    trace_from_phases,
    trace_from_sim,
)


@pytest.fixture(scope="module")
def traced_parfor():
    out = simulate_parallel_for(
        16, np.full(16, 40.0), MACHINE_I, num_threads=4, trace=True
    )
    return out.result


@pytest.fixture(scope="module")
def sim_apsp():
    graph = rmat(6, edge_factor=8, seed=3, name="rmat-s6")
    return solve_apsp(
        graph,
        algorithm="parapsp",
        num_threads=4,
        backend="sim",
        schedule="dynamic",
        trace=True,
    )


class TestTraceSpan:
    def test_rejects_unknown_category(self):
        with pytest.raises(SimulationError, match="category"):
            TraceSpan("x", "busy", 0, 0.0, 1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError, match="duration"):
            TraceSpan("x", "compute", 0, 0.0, -1.0)

    def test_rejects_negative_track(self):
        with pytest.raises(SimulationError, match="track"):
            TraceSpan("x", "compute", -1, 0.0, 1.0)

    def test_end(self):
        assert TraceSpan("x", "compute", 0, 2.0, 3.0).end == 5.0


class TestTraceContainer:
    def test_rejects_bad_clock(self):
        with pytest.raises(SimulationError, match="clock"):
            Trace(clock="cpu", num_tracks=1, makespan=0.0)

    def test_rejects_zero_tracks(self):
        with pytest.raises(SimulationError, match="track"):
            Trace(clock="virtual", num_tracks=0, makespan=0.0)

    def test_track_label_fallback(self):
        t = Trace(clock="virtual", num_tracks=2, makespan=1.0,
                  track_names={0: "main"})
        assert t.track_label(0) == "main"
        assert t.track_label(1) == "thread 1"


class TestTraceFromSim:
    def test_single_phase_layout(self, traced_parfor):
        trace = trace_from_sim(traced_parfor, phase="p0")
        assert trace.clock == "virtual"
        assert trace.schema == TRACE_SCHEMA_VERSION
        assert trace.num_tracks == traced_parfor.num_threads
        assert trace.makespan == traced_parfor.makespan
        assert [p.name for p in trace.phases] == ["p0"]
        assert all(s.phase == "p0" for s in trace.spans)
        assert all(s.category in CATEGORIES for s in trace.spans)

    def test_spans_stay_inside_makespan(self, traced_parfor):
        trace = trace_from_sim(traced_parfor)
        for s in trace.spans:
            assert 0.0 <= s.start <= s.end <= trace.makespan + 1e-9

    def test_phase_conservation(self, traced_parfor):
        trace = trace_from_sim(traced_parfor)
        ps = trace.phases[0]
        assert ps.busy + ps.overhead + ps.idle == pytest.approx(
            ps.makespan * ps.tracks
        )

    def test_fork_join_flows_for_parallel_phase(self, traced_parfor):
        trace = trace_from_sim(traced_parfor)
        forks = [f for f in trace.flows if f.name == "fork"]
        joins = [f for f in trace.flows if f.name == "join"]
        assert forks and joins
        assert len({f.flow_id for f in trace.flows}) == len(trace.flows)
        for f in forks:
            assert f.src_track == 0 and f.src_time == trace.phases[0].start
        for f in joins:
            assert f.dst_track == 0 and f.dst_time == trace.phases[0].end

    def test_single_track_phase_has_no_flows(self):
        out = simulate_parallel_for(
            4, np.ones(4), MACHINE_I, num_threads=1, trace=True
        )
        trace = trace_from_sim(out.result)
        assert trace.flows == []


class TestTraceFromPhases:
    def test_phases_laid_back_to_back(self, traced_parfor):
        trace = trace_from_phases(
            [("a", traced_parfor), ("b", traced_parfor)]
        )
        a, b = trace.phases
        assert a.start == 0.0
        assert b.start == pytest.approx(traced_parfor.makespan)
        assert trace.makespan == pytest.approx(2 * traced_parfor.makespan)
        b_spans = trace.spans_in_phase("b")
        assert b_spans and all(s.start >= b.start - 1e-9 for s in b_spans)

    def test_meta_namespaced_per_phase(self, traced_parfor):
        trace = trace_from_phases(
            [("a", traced_parfor)], meta={"algorithm": "x"}
        )
        assert trace.meta["algorithm"] == "x"
        assert trace.meta["a.schedule"] == traced_parfor.meta["schedule"]

    def test_empty_phase_list_rejected(self):
        with pytest.raises(SimulationError, match="phase"):
            trace_from_phases([])


class TestTraceFromAPSPResult:
    def test_two_phases_with_meta(self, sim_apsp):
        trace = trace_from_apsp_result(sim_apsp)
        assert [p.name for p in trace.phases] == ["ordering", "sweep"]
        assert trace.meta["algorithm"] == "parapsp"
        assert trace.meta["schedule"] == "dynamic"
        assert trace.meta["threads"] == "4"
        sweep = trace.phases[1]
        assert sweep.schedule == "dynamic"

    def test_real_backend_rejected(self, toy_graph):
        result = solve_apsp(toy_graph, backend="serial")
        with pytest.raises(SimulationError, match="SIM backend"):
            trace_from_apsp_result(result)

    def test_untraced_run_rejected(self):
        graph = rmat(5, edge_factor=8, seed=3)
        result = solve_apsp(
            graph, algorithm="parapsp", num_threads=4, backend="sim"
        )
        with pytest.raises(SimulationError, match="trace=True"):
            trace_from_apsp_result(result)
