"""Chrome Trace Event Format export and its schema validator."""

import json

import numpy as np
import pytest

from repro.simx import MACHINE_I, simulate_parallel_for
from repro.trace import (
    to_chrome,
    trace_from_phases,
    trace_from_sim,
    validate_chrome,
    write_chrome,
)


@pytest.fixture(scope="module")
def trace():
    out = simulate_parallel_for(
        16, np.full(16, 40.0), MACHINE_I, num_threads=4, trace=True
    )
    return trace_from_sim(out.result, phase="sweep")


class TestToChrome:
    def test_valid_per_own_schema_check(self, trace):
        assert validate_chrome(to_chrome(trace)) == []

    def test_one_thread_name_row_per_track(self, trace):
        obj = to_chrome(trace)
        names = [
            e["args"]["name"]
            for e in obj["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        for t in range(trace.num_tracks):
            assert f"sim thread {t}" in names

    def test_complete_events_carry_category_and_phase(self, trace):
        obj = to_chrome(trace)
        xs = [
            e for e in obj["traceEvents"]
            if e["ph"] == "X" and e["tid"] < trace.num_tracks
        ]
        assert len(xs) == len(trace.spans)
        assert all(e["args"]["phase"] == "sweep" for e in xs)

    def test_flow_events_pair_up(self, trace):
        obj = to_chrome(trace)
        starts = [e for e in obj["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in obj["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == len(trace.flows)
        assert all(e["bp"] == "e" for e in finishes)

    def test_phase_extent_row(self, trace):
        obj = to_chrome(trace)
        extents = [
            e for e in obj["traceEvents"]
            if e["ph"] == "X" and e["tid"] == trace.num_tracks
        ]
        assert [e["name"] for e in extents] == ["phase:sweep"]

    def test_virtual_units_map_to_microseconds(self, trace):
        obj = to_chrome(trace)
        span = trace.spans[0]
        ev = next(
            e for e in obj["traceEvents"]
            if e["ph"] == "X" and e["tid"] == span.track
            and e["ts"] == span.start
        )
        assert ev["dur"] == span.duration  # scale 1.0 on the virtual clock

    def test_multi_phase_flow_ids_unique(self):
        out = simulate_parallel_for(
            8, np.full(8, 10.0), MACHINE_I, num_threads=2, trace=True
        )
        tr = trace_from_phases([("a", out.result), ("b", out.result)])
        obj = to_chrome(tr)
        assert validate_chrome(obj) == []


class TestWriteChrome:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "sub" / "trace.json"
        written = write_chrome(str(path), trace)
        obj = json.loads(path.read_text())
        assert written == str(path)
        assert validate_chrome(obj) == []
        assert obj["otherData"]["clock"] == "virtual"
        assert obj["otherData"]["schema"] == trace.schema


class TestValidateChrome:
    def test_rejects_non_object(self):
        assert validate_chrome([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome({"displayTimeUnit": "ms"}) != []

    def test_rejects_unknown_ph(self):
        obj = {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 0}]}
        assert any("unknown ph" in p for p in validate_chrome(obj))

    def test_rejects_missing_pid_tid(self):
        obj = {"traceEvents": [{"ph": "X", "name": "a", "ts": 0, "dur": 1}]}
        assert any("pid/tid" in p for p in validate_chrome(obj))

    def test_rejects_negative_duration(self):
        obj = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 0,
                 "ts": 0, "dur": -5}
            ]
        }
        assert any("negative dur" in p for p in validate_chrome(obj))

    def test_rejects_non_numeric_ts(self):
        obj = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 0,
                 "ts": "soon", "dur": 1}
            ]
        }
        assert any("numeric" in p for p in validate_chrome(obj))

    def test_rejects_orphan_flow_finish(self):
        obj = {
            "traceEvents": [
                {"ph": "f", "bp": "e", "id": 9, "pid": 1, "tid": 0, "ts": 0}
            ]
        }
        assert any("no matching start" in p for p in validate_chrome(obj))

    def test_rejects_unfinished_flow(self):
        obj = {
            "traceEvents": [
                {"ph": "s", "id": 9, "pid": 1, "tid": 0, "ts": 0}
            ]
        }
        assert any("never finished" in p for p in validate_chrome(obj))
