"""Trace analyzer: attribution, critical path, hotspots, stragglers."""

import pytest

from repro.simx import MACHINE_I, Op, run_lock_program
from repro.trace import (
    PhaseStats,
    Trace,
    TraceSpan,
    analyze_trace,
    trace_from_sim,
)


def hand_trace():
    """Two tracks; track 1's lock wait sits on the critical path.

    track 0: [compute 0-4] [lock-hold 4-6]
    track 1: [compute 0-4] [lock-wait 4-6] [lock-hold 6-8]
    """
    spans = [
        TraceSpan("iter 0", "compute", 0, 0.0, 4.0, phase="p"),
        TraceSpan("L", "compute", 0, 4.0, 2.0, phase="p"),
        TraceSpan("iter 1", "compute", 1, 0.0, 4.0, phase="p"),
        TraceSpan("L", "lock-wait", 1, 4.0, 2.0, phase="p"),
        TraceSpan("L", "compute", 1, 6.0, 2.0, phase="p"),
    ]
    phases = [
        PhaseStats(
            name="p", start=0.0, makespan=8.0, tracks=2,
            busy=12.0, overhead=2.0, idle=2.0, lock_wait=2.0,
            lock_acquisitions=2, lock_contended=1, schedule="dynamic",
        )
    ]
    return Trace(
        clock="virtual", num_tracks=2, makespan=8.0,
        spans=spans, phases=phases,
    )


class TestAttribution:
    def test_fractions_sum_to_one(self):
        report = analyze_trace(hand_trace())
        p = report.phases[0]
        total = (
            p.compute_fraction + p.lock_wait_fraction
            + p.overhead_fraction + p.idle_fraction
        )
        assert total == pytest.approx(1.0)

    def test_lock_wait_split_out_of_overhead(self):
        p = analyze_trace(hand_trace()).phases[0]
        assert p.lock_wait == 2.0
        assert p.overhead == 0.0  # the 2.0 overhead was all lock wait
        assert p.schedule == "dynamic"

    def test_simulated_phase_conserves(self):
        progs = [[Op(work=5.0, lock_id=0)] * 3 for _ in range(4)]
        result = run_lock_program(progs, MACHINE_I, trace=True)
        report = analyze_trace(trace_from_sim(result))
        p = report.phases[0]
        assert (
            p.compute + p.lock_wait + p.overhead + p.idle
            == pytest.approx(p.makespan * p.tracks)
        )


class TestCriticalPath:
    def test_walks_through_the_lock_chain(self):
        cp = analyze_trace(hand_trace()).critical_path
        assert cp.length == pytest.approx(8.0)
        # iter 1 (4) -> lock-wait (2) -> lock-hold (2): no gaps
        assert cp.gap == pytest.approx(0.0)
        assert cp.lock_wait == pytest.approx(2.0)
        assert cp.compute == pytest.approx(6.0)

    def test_span_count_bounded(self):
        cp = analyze_trace(hand_trace()).critical_path
        assert 1 <= cp.span_count <= 5

    def test_empty_trace_is_all_gap(self):
        t = Trace(clock="virtual", num_tracks=1, makespan=5.0)
        cp = analyze_trace(t).critical_path
        assert cp.length == 5.0
        assert cp.gap == 5.0
        assert cp.span_count == 0

    def test_zero_duration_spans_terminate(self):
        spans = [
            TraceSpan("z", "overhead", 0, 0.0, 0.0, phase="p"),
            TraceSpan("z", "overhead", 0, 0.0, 0.0, phase="p"),
            TraceSpan("a", "compute", 0, 0.0, 1.0, phase="p"),
        ]
        t = Trace(
            clock="virtual", num_tracks=1, makespan=1.0, spans=spans
        )
        cp = analyze_trace(t).critical_path  # must not loop forever
        assert cp.length == pytest.approx(1.0)


class TestLockHotspots:
    def test_named_and_ranked(self):
        progs = [[Op(work=1.0, lock_id=0)] * 4 for _ in range(4)]
        result = run_lock_program(
            progs, MACHINE_I, trace=True,
            lock_names=["bucket.mutex"],
        )
        report = analyze_trace(trace_from_sim(result))
        assert report.lock_hotspots, "contended program must surface a hotspot"
        top = report.lock_hotspots[0]
        assert top.name == "bucket.mutex"  # never an anonymous lock_0
        assert top.wait_total > 0
        assert top.waits >= 1
        assert top.max_wait <= top.wait_total

    def test_top_k_truncates(self):
        spans = [
            TraceSpan(f"lock_{i}", "lock-wait", 0, float(i), 1.0, phase="p")
            for i in range(8)
        ]
        t = Trace(
            clock="virtual", num_tracks=1, makespan=10.0, spans=spans
        )
        assert len(analyze_trace(t, top_k=3).lock_hotspots) == 3


class TestStragglers:
    def test_last_finisher_identified(self):
        spans = [
            TraceSpan("a", "compute", 0, 0.0, 2.0, phase="p"),
            TraceSpan("b", "compute", 1, 0.0, 8.0, phase="p"),
        ]
        phases = [
            PhaseStats(name="p", start=0.0, makespan=8.0, tracks=2,
                       busy=10.0, overhead=0.0, idle=6.0)
        ]
        t = Trace(clock="virtual", num_tracks=2, makespan=8.0,
                  spans=spans, phases=phases)
        s = analyze_trace(t).stragglers[0]
        assert s.track == 1
        assert s.caused_idle == pytest.approx(6.0)


class TestReportOutput:
    def test_summary_flat_sorted_numeric(self):
        summary = analyze_trace(hand_trace()).summary()
        assert list(summary) == sorted(summary)
        assert all(isinstance(v, float) for v in summary.values())
        assert summary["trace.makespan"] == 8.0
        assert summary["trace.tracks"] == 2.0
        assert "trace.phase.p.idle_fraction" in summary
        assert "trace.critical_path.length" in summary

    def test_format_mentions_the_story(self):
        text = analyze_trace(hand_trace()).format()
        assert "critical path" in text
        assert "phase p" in text
        assert "schedule=dynamic" in text
