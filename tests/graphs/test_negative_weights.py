"""Negative-weight graph support: construction, generators, validation."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    attach_negative_weights,
    attach_random_weights,
    erdos_renyi,
    negative_cycle_graph,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.validate import check_structure


@pytest.fixture(scope="module")
def directed_weighted_er():
    return attach_random_weights(
        erdos_renyi(50, 0.1, seed=1, directed=True), seed=2
    )


class TestCSRConstruction:
    def test_strict_positive_check_by_default(self):
        with pytest.raises(GraphError, match="allow_negative"):
            CSRGraph(
                np.array([0, 1, 1]),
                np.array([1]),
                np.array([-1.0]),
                directed=True,
            )

    def test_allow_negative_accepts_negative_and_zero(self):
        g = CSRGraph(
            np.array([0, 2, 2]),
            np.array([1, 1]),
            np.array([-1.0, 0.0]),
            directed=True,
            allow_negative=True,
        )
        assert g.has_negative_weights

    def test_allow_negative_still_rejects_non_finite(self):
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(GraphError, match="finite"):
                CSRGraph(
                    np.array([0, 1, 1]),
                    np.array([1]),
                    np.array([bad]),
                    directed=True,
                    allow_negative=True,
                )

    def test_has_negative_weights_flag(self, directed_weighted_er):
        assert not directed_weighted_er.has_negative_weights
        zero_only = CSRGraph(
            np.array([0, 1, 1]),
            np.array([1]),
            np.array([0.0]),
            directed=True,
            allow_negative=True,
        )
        # zero is not negative: the flag gates solver capability, and
        # zero weights are fine for every Dijkstra-family solver
        assert not zero_only.has_negative_weights

    def test_transforms_preserve_negative_weights(self, directed_weighted_er):
        g = attach_negative_weights(directed_weighted_er, seed=3)
        rev = g.reverse()
        assert rev.has_negative_weights
        sub = g.subgraph(np.arange(20))
        assert isinstance(sub, CSRGraph)


class TestAttachNegativeWeights:
    def test_potential_reweighting_shape(self, directed_weighted_er):
        g = attach_negative_weights(directed_weighted_er, seed=7)
        assert g.num_vertices == directed_weighted_er.num_vertices
        assert g.indices.size == directed_weighted_er.indices.size
        assert np.array_equal(g.indptr, directed_weighted_er.indptr)

    def test_no_negative_cycles_by_construction(self, directed_weighted_er):
        """Potential reweighting telescopes along any cycle, so cycle
        sums are unchanged — Bellman–Ford must reach a fixpoint."""
        from repro.core.johnson import bellman_ford_potentials

        g = attach_negative_weights(
            directed_weighted_er, potential_range=10, seed=8
        )
        h, passes, _ = bellman_ford_potentials(g)  # must not raise
        assert np.all(np.isfinite(h))
        assert passes <= g.num_vertices

    def test_deterministic_under_seed(self, directed_weighted_er):
        a = attach_negative_weights(directed_weighted_er, seed=9)
        b = attach_negative_weights(directed_weighted_er, seed=9)
        assert np.array_equal(a.weights, b.weights)
        c = attach_negative_weights(directed_weighted_er, seed=10)
        assert not np.array_equal(a.weights, c.weights)

    def test_undirected_rejected(self):
        undirected = attach_random_weights(
            erdos_renyi(20, 0.2, seed=4), seed=5
        )
        with pytest.raises(GraphError, match="directed"):
            attach_negative_weights(undirected, seed=6)

    def test_shortest_path_structure_preserved(self, directed_weighted_er):
        """Reweighting by potentials shifts every s→v path by the same
        h[s] − h[v], so argmin paths (and reachability) are unchanged."""
        from repro.core.johnson import bellman_ford_apsp

        g = attach_negative_weights(directed_weighted_er, seed=11)
        from repro.core import solve_apsp

        orig = solve_apsp(directed_weighted_er, algorithm="parapsp").dist
        neg = bellman_ford_apsp(g)
        assert np.array_equal(np.isfinite(orig), np.isfinite(neg))


class TestNegativeCycleGraph:
    def test_contains_a_negative_cycle(self):
        g = negative_cycle_graph()
        assert g.directed
        assert g.has_negative_weights
        # cycle 0 -> 1 -> 2 -> 0 sums below zero
        total = 0.0
        for u, v in ((0, 1), (1, 2), (2, 0)):
            lo, hi = g.indptr[u], g.indptr[u + 1]
            row = g.indices[lo:hi]
            k = np.nonzero(row == v)[0]
            assert k.size == 1
            total += float(g.weights[lo:hi][k[0]])
        assert total < 0


class TestValidate:
    def test_check_structure_rejects_negative_by_default(self):
        g = negative_cycle_graph()
        with pytest.raises(GraphError, match="non-positive"):
            check_structure(g)

    def test_check_structure_allow_negative(self):
        check_structure(negative_cycle_graph(), allow_negative=True)

    def test_check_structure_allow_negative_rejects_nan(self):
        g = CSRGraph(
            np.array([0, 1, 1]),
            np.array([1]),
            np.array([-1.0]),
            directed=True,
            allow_negative=True,
        )
        g.weights.setflags(write=True)
        g.weights[0] = np.nan  # corrupt after construction
        with pytest.raises(GraphError, match="non-finite"):
            check_structure(g, allow_negative=True)
