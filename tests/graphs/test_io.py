"""SNAP-format edge-list IO."""

import io

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graphs import (
    parse_edgelist_text,
    read_edgelist,
    write_edgelist,
)


class TestRead:
    def test_basic_parse(self):
        g, id_map = parse_edgelist_text("0 1\n1 2\n")
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert id_map == {0: 0, 1: 1, 2: 2}

    def test_comments_and_blank_lines(self):
        text = "# SNAP comment\n% KONECT comment\n\n0 1\n"
        g, _ = parse_edgelist_text(text)
        assert g.num_edges == 1

    def test_weighted_rows(self):
        g, _ = parse_edgelist_text("0 1 2.5\n1 2 0.5\n")
        assert sorted(set(g.weights.tolist())) == [0.5, 2.5]

    def test_mixed_weighted_unweighted_rejected(self):
        with pytest.raises(GraphFormatError, match="mixed"):
            parse_edgelist_text("0 1\n1 2 3.0\n")

    def test_bad_token_count(self):
        with pytest.raises(GraphFormatError, match="expected"):
            parse_edgelist_text("0 1 2 3\n")

    def test_non_numeric(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            parse_edgelist_text("a b\n")

    def test_self_loops_skipped(self):
        g, _ = parse_edgelist_text("0 0\n0 1\n")
        assert g.num_edges == 1

    def test_sparse_ids_compacted(self):
        g, id_map = parse_edgelist_text("100 200\n200 300\n")
        assert g.num_vertices == 3
        assert id_map == {100: 0, 200: 1, 300: 2}

    def test_compact_ids_disabled(self):
        g, id_map = parse_edgelist_text("0 5\n", compact_ids=False)
        assert g.num_vertices == 6
        assert id_map == {0: 0, 5: 5}

    def test_directed_flag(self):
        g, _ = parse_edgelist_text("0 1\n", directed=True)
        assert g.directed
        assert g.neighbors(1).size == 0

    def test_tabs_and_spaces(self):
        g, _ = parse_edgelist_text("0\t1\n1  2\n")
        assert g.num_edges == 2

    def test_empty_input(self):
        g, id_map = parse_edgelist_text("")
        assert g.num_vertices == 0
        assert id_map == {}


class TestWriteRoundtrip:
    def test_undirected_roundtrip(self, small_ba):
        buf = io.StringIO()
        write_edgelist(small_ba, buf)
        buf.seek(0)
        g2, _ = read_edgelist(buf)
        assert np.array_equal(g2.indptr, small_ba.indptr)
        assert np.array_equal(g2.indices, small_ba.indices)

    def test_weighted_roundtrip(self, small_weighted):
        buf = io.StringIO()
        write_edgelist(small_weighted, buf, write_weights=True)
        buf.seek(0)
        g2, _ = read_edgelist(buf)
        assert np.allclose(g2.weights, small_weighted.weights)

    def test_directed_roundtrip(self, directed_weighted):
        buf = io.StringIO()
        write_edgelist(directed_weighted, buf, write_weights=True)
        buf.seek(0)
        g2, _ = read_edgelist(buf, directed=True)
        # ids may compact (isolated vertices dropped); arc count preserved
        assert g2.num_arcs == np.count_nonzero(
            np.diff(directed_weighted.indptr)
            [np.diff(directed_weighted.indptr) > 0]
        ) or g2.num_edges == directed_weighted.num_edges

    def test_header_written(self, toy_graph):
        buf = io.StringIO()
        write_edgelist(toy_graph, buf)
        assert buf.getvalue().startswith("#")

    def test_file_paths(self, tmp_path, small_ba):
        target = tmp_path / "graph.txt"
        write_edgelist(small_ba, target)
        g2, _ = read_edgelist(target)
        assert g2.num_edges == small_ba.num_edges
