"""Dataset registry: stand-in generation, Table 2 metadata."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.graphs import (
    DATASETS,
    dataset_info,
    dataset_names,
    degree_array,
    load_dataset,
    table2_names,
)
from repro.graphs.validate import check_structure, check_symmetry


class TestRegistry:
    def test_all_eight_registered(self):
        assert len(dataset_names()) == 8

    def test_table2_is_the_papers_five(self):
        assert table2_names() == (
            "ego-Twitter",
            "Livemocha",
            "Flickr",
            "WordNet",
            "sx-superuser",
        )

    def test_published_counts_quoted(self):
        spec = dataset_info("WordNet")
        assert spec.real_vertices == 146_005
        assert spec.real_edges == 656_999

    def test_directedness_matches_table2(self):
        assert dataset_info("ego-Twitter").directed
        assert dataset_info("sx-superuser").directed
        assert not dataset_info("Flickr").directed
        assert not dataset_info("WordNet").directed
        assert not dataset_info("Livemocha").directed

    def test_real_avg_degree(self):
        spec = dataset_info("WordNet")
        assert spec.real_avg_degree == pytest.approx(
            2 * 656_999 / 146_005
        )

    def test_name_resolution_tolerant(self):
        assert dataset_info("wordnet").name == "WordNet"
        assert dataset_info("SOC-POKEC").name == "soc-Pokec"
        assert dataset_info("ego_twitter").name == "ego-Twitter"

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            dataset_info("facebook")


class TestLoading:
    def test_default_scale(self):
        g = load_dataset("WordNet")
        assert g.num_vertices == DATASETS["WordNet"].default_scale

    def test_explicit_scale(self):
        g = load_dataset("WordNet", scale=321)
        assert g.num_vertices == 321

    def test_deterministic(self):
        a = load_dataset("Flickr", scale=200)
        b = load_dataset("Flickr", scale=200)
        assert a == b

    def test_seed_changes_graph(self):
        a = load_dataset("Flickr", scale=200, seed=1)
        b = load_dataset("Flickr", scale=200, seed=2)
        assert a != b

    def test_too_small_scale(self):
        with pytest.raises(DatasetError, match="scale"):
            load_dataset("WordNet", scale=2)

    def test_directedness_of_standins(self):
        assert load_dataset("ego-Twitter", scale=150).directed
        assert not load_dataset("Livemocha", scale=150).directed

    @pytest.mark.parametrize("name", dataset_names())
    def test_every_standin_structurally_valid(self, name):
        g = load_dataset(name, scale=200)
        check_structure(g)
        if not g.directed:
            check_symmetry(g)

    def test_scale_free_shape(self):
        """The properties the paper's algorithms exploit must survive
        the scale-down: hub ≫ median, heavy low-degree mass."""
        g = load_dataset("WordNet")
        deg = degree_array(g)
        assert deg.max() >= 20 * max(1, int(np.median(deg)))
        assert (deg <= np.median(deg)).mean() >= 0.4

    def test_parmax_threshold_separates_at_ordering_scale(self):
        """§4.2 needs most vertices below 1% of the max degree at the
        ordering-experiment scales."""
        g = load_dataset("WordNet", scale=20000)
        deg = degree_array(g)
        assert (deg < 0.01 * deg.max()).mean() > 0.8

    def test_name_embeds_scale(self):
        assert load_dataset("WordNet", scale=250).name == "WordNet@250"
