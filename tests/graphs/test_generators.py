"""Random and deterministic graph generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    attach_random_weights,
    barabasi_albert,
    complete,
    cycle,
    degree_array,
    erdos_renyi,
    grid_2d,
    path,
    powerlaw_configuration,
    random_weighted,
    star,
    watts_strogatz,
)
from repro.graphs.validate import check_structure, check_symmetry, is_connected


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        g = barabasi_albert(200, 3, seed=1)
        assert g.num_vertices == 200
        assert is_connected(g)
        # every vertex beyond the seed attaches m edges
        assert g.num_edges >= (200 - 3 - 1) * 3

    def test_deterministic_per_seed(self):
        a = barabasi_albert(80, 2, seed=5)
        b = barabasi_albert(80, 2, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        a = barabasi_albert(80, 2, seed=5)
        b = barabasi_albert(80, 2, seed=6)
        assert a != b

    def test_min_degree_is_m(self):
        g = barabasi_albert(150, 4, seed=2)
        assert degree_array(g).min() >= 4

    def test_hub_emerges(self):
        g = barabasi_albert(300, 2, seed=3)
        deg = degree_array(g)
        assert deg.max() > 8 * deg.min()

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert(10, 0)

    def test_structure_valid(self):
        g = barabasi_albert(100, 3, seed=4)
        check_structure(g)
        check_symmetry(g)


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        n, p = 200, 0.05
        g = erdos_renyi(n, p, seed=8)
        expected = p * n * (n - 1) / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_p_zero_empty(self):
        assert erdos_renyi(50, 0.0, seed=1).num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi(12, 1.0, seed=1)
        assert g.num_edges == 12 * 11 // 2

    def test_p_one_complete_directed(self):
        g = erdos_renyi(8, 1.0, seed=1, directed=True)
        assert g.num_edges == 8 * 7

    def test_directed_edge_count(self):
        n, p = 150, 0.04
        g = erdos_renyi(n, p, seed=9, directed=True)
        expected = p * n * (n - 1)
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)

    def test_deterministic(self):
        assert erdos_renyi(60, 0.1, seed=3) == erdos_renyi(60, 0.1, seed=3)

    def test_no_self_loops(self):
        g = erdos_renyi(40, 0.3, seed=4)
        for v in range(40):
            assert v not in g.neighbors(v)


class TestPowerlawConfiguration:
    def test_degree_bounds_respected(self):
        g = powerlaw_configuration(
            300, 2.5, min_degree=2, max_degree=40, seed=5
        )
        # erased configuration model only *removes* arcs, so max holds
        assert degree_array(g).max() <= 40 + 1  # +1 for parity fix

    def test_planted_hubs_present(self):
        g = powerlaw_configuration(
            400, 2.5, min_degree=1, max_degree=120,
            planted_hubs=(1.0, 0.5), seed=6,
        )
        deg = degree_array(g)
        # erasure trims the hub but it must remain dominant
        assert deg.max() >= 60

    def test_bad_exponent(self):
        with pytest.raises(GraphError):
            powerlaw_configuration(50, 0.9)

    def test_bad_hub_fraction(self):
        with pytest.raises(GraphError):
            powerlaw_configuration(50, 2.5, planted_hubs=(1.5,), seed=1)

    def test_too_many_hubs(self):
        with pytest.raises(GraphError):
            powerlaw_configuration(3, 2.5, planted_hubs=(0.5,) * 5, seed=1)

    def test_directed_variant(self):
        g = powerlaw_configuration(200, 2.3, seed=7, directed=True)
        assert g.directed
        check_structure(g)

    def test_power_law_shape(self):
        g = powerlaw_configuration(
            2000, 2.5, min_degree=1, max_degree=100, seed=8
        )
        deg = degree_array(g)
        # mass concentrates at the minimum degree
        assert (deg <= 2).mean() > 0.5


class TestWattsStrogatz:
    def test_ring_structure_p0(self):
        g = watts_strogatz(30, 4, 0.0, seed=1)
        assert g.num_edges == 30 * 2
        assert np.all(degree_array(g) == 4)

    def test_rewiring_keeps_edge_count(self):
        g = watts_strogatz(50, 4, 0.3, seed=2)
        assert g.num_edges <= 100
        assert g.num_edges >= 90  # a few rewires may collide and drop

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            watts_strogatz(4, 6, 0.1)  # k >= n


class TestWeights:
    def test_random_weighted_range(self):
        g = random_weighted(60, 0.1, weight_range=(1.0, 2.0), seed=3)
        if g.num_arcs:
            assert g.weights.min() >= 1.0
            assert g.weights.max() <= 2.0

    def test_attach_preserves_symmetry(self, small_ba):
        g = attach_random_weights(small_ba, seed=4)
        check_symmetry(g)

    def test_attach_directed_independent(self, directed_weighted):
        # directed arcs may carry distinct weights; structure preserved
        g = attach_random_weights(directed_weighted, seed=5)
        assert np.array_equal(g.indices, directed_weighted.indices)

    def test_bad_weight_range(self, small_ba):
        with pytest.raises(GraphError):
            attach_random_weights(small_ba, weight_range=(0.0, 1.0))


class TestDeterministicTopologies:
    def test_star(self):
        g = star(6)
        deg = degree_array(g)
        assert deg[0] == 5
        assert np.all(deg[1:] == 1)

    def test_path(self):
        g = path(5)
        assert g.num_edges == 4
        assert degree_array(g).max() == 2

    def test_cycle(self):
        g = cycle(7)
        assert g.num_edges == 7
        assert np.all(degree_array(g) == 2)

    def test_complete(self):
        g = complete(6)
        assert g.num_edges == 15
        assert np.all(degree_array(g) == 5)

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    @pytest.mark.parametrize(
        "factory,bad",
        [(star, 1), (path, 0), (cycle, 2), (complete, 0), (grid_2d, 0)],
    )
    def test_degenerate_sizes_rejected(self, factory, bad):
        with pytest.raises(GraphError):
            if factory is grid_2d:
                factory(bad, 3)
            else:
                factory(bad)
