"""Degree utilities."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    DegreeKind,
    degree_array,
    degree_bounds,
    degree_histogram,
    from_edges,
)


@pytest.fixture(scope="module")
def digraph():
    return from_edges(
        [(0, 1), (0, 2), (1, 2), (3, 0)], num_vertices=4, directed=True
    )


class TestDegreeArray:
    def test_out_degrees(self, digraph):
        assert degree_array(digraph, "out").tolist() == [2, 1, 0, 1]

    def test_in_degrees(self, digraph):
        assert degree_array(digraph, "in").tolist() == [1, 1, 2, 0]

    def test_total_degrees(self, digraph):
        assert degree_array(digraph, "total").tolist() == [3, 2, 2, 1]

    def test_undirected_kind_irrelevant(self, small_ba):
        out = degree_array(small_ba, "out")
        inn = degree_array(small_ba, "in")
        tot = degree_array(small_ba, "total")
        assert np.array_equal(out, inn)
        assert np.array_equal(out, tot)

    def test_enum_and_string_accepted(self, digraph):
        a = degree_array(digraph, DegreeKind.IN)
        b = degree_array(digraph, "in")
        assert np.array_equal(a, b)

    def test_unknown_kind(self, digraph):
        with pytest.raises(GraphError, match="degree kind"):
            degree_array(digraph, "sideways")


class TestBoundsAndHistogram:
    def test_bounds(self):
        assert degree_bounds(np.array([3, 1, 7])) == (1, 7)

    def test_bounds_empty(self):
        assert degree_bounds(np.array([], dtype=np.int64)) == (0, 0)

    def test_histogram_counts(self):
        h = degree_histogram(np.array([0, 2, 2, 5]))
        assert h.tolist() == [1, 0, 2, 0, 0, 1]

    def test_histogram_sums_to_n(self, small_ba):
        deg = degree_array(small_ba)
        assert degree_histogram(deg).sum() == small_ba.num_vertices

    def test_histogram_rejects_negative(self):
        with pytest.raises(GraphError):
            degree_histogram(np.array([-1, 2]))

    def test_histogram_empty(self):
        assert degree_histogram(np.array([], dtype=np.int64)).tolist() == [0]
