"""Binary (.npz) graph persistence."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graphs import load_graph_npz, save_graph_npz


class TestNpzRoundtrip:
    def test_undirected(self, small_weighted, tmp_path):
        target = tmp_path / "g.npz"
        save_graph_npz(small_weighted, target)
        loaded = load_graph_npz(target)
        assert loaded == small_weighted
        assert loaded.name == small_weighted.name

    def test_directed(self, directed_weighted, tmp_path):
        target = tmp_path / "g.npz"
        save_graph_npz(directed_weighted, target)
        loaded = load_graph_npz(target)
        assert loaded.directed
        assert loaded == directed_weighted

    def test_weights_exact(self, small_weighted, tmp_path):
        target = tmp_path / "g.npz"
        save_graph_npz(small_weighted, target)
        loaded = load_graph_npz(target)
        assert np.array_equal(loaded.weights, small_weighted.weights)

    def test_not_an_archive(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, something=np.arange(3))
        with pytest.raises(GraphFormatError, match="not a repro graph"):
            load_graph_npz(bogus)
