"""Structural validation helpers."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import CSRGraph, from_edges
from repro.graphs.validate import (
    check_no_self_loops,
    check_sorted_rows,
    check_structure,
    check_symmetry,
    connected_components,
    is_connected,
)


class TestChecks:
    def test_valid_graph_passes_everything(self, small_ba):
        check_structure(small_ba)
        check_sorted_rows(small_ba)
        check_no_self_loops(small_ba)
        check_symmetry(small_ba)

    def test_asymmetric_undirected_detected(self):
        # build a structurally-undirected graph missing a reverse arc by
        # constructing CSR manually
        g = CSRGraph(
            np.array([0, 1, 1]), np.array([1]), np.array([1.0]),
            directed=False,
        )
        with pytest.raises(GraphError, match="reverse arc"):
            check_symmetry(g)

    def test_symmetry_skipped_for_directed(self, directed_weighted):
        check_symmetry(directed_weighted)  # no-op, must not raise

    def test_asymmetric_weights_detected(self):
        g = CSRGraph(
            np.array([0, 1, 2]),
            np.array([1, 0]),
            np.array([1.0, 2.0]),
            directed=False,
        )
        with pytest.raises(GraphError, match="asymmetric weights"):
            check_symmetry(g)

    def test_self_loop_detected(self):
        g = CSRGraph(np.array([0, 1]), np.array([0]), np.array([1.0]))
        with pytest.raises(GraphError, match="self loop"):
            check_no_self_loops(g)

    def test_unsorted_row_detected(self):
        g = CSRGraph(
            np.array([0, 2, 2, 2]),
            np.array([2, 1]),
            directed=True,
        )
        with pytest.raises(GraphError, match="not strictly sorted"):
            check_sorted_rows(g)


class TestConnectivity:
    def test_connected_graph(self, small_ba):
        assert is_connected(small_ba)
        assert connected_components(small_ba).max() == 0

    def test_two_components(self):
        g = from_edges([(0, 1), (2, 3)], num_vertices=4)
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert not is_connected(g)

    def test_isolated_vertex_is_own_component(self):
        g = from_edges([(0, 1)], num_vertices=3)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 2

    def test_weak_connectivity_directed(self):
        # 0 -> 1 <- 2 : weakly connected despite no directed path 0~2
        g = from_edges([(0, 1), (2, 1)], num_vertices=3, directed=True)
        assert is_connected(g)

    def test_empty_graph_connected(self):
        g = CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert is_connected(g)
