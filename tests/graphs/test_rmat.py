"""R-MAT generator."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import degree_array, rmat
from repro.graphs.validate import check_structure, check_symmetry


class TestRmat:
    def test_size(self):
        g = rmat(8, 8, seed=1)
        assert g.num_vertices == 256
        # erasure removes duplicates/self-loops: below the nominal count
        assert 0.3 * 8 * 256 < g.num_edges <= 8 * 256

    def test_structurally_valid(self):
        g = rmat(7, 4, seed=2)
        check_structure(g)
        check_symmetry(g)

    def test_directed(self):
        g = rmat(7, 4, seed=3, directed=True)
        assert g.directed

    def test_deterministic(self):
        assert rmat(6, 4, seed=9) == rmat(6, 4, seed=9)
        assert rmat(6, 4, seed=9) != rmat(6, 4, seed=10)

    def test_skewed_degrees(self):
        """Graph500 parameters give a heavy-tailed degree distribution."""
        g = rmat(10, 16, seed=4)
        deg = degree_array(g)
        assert deg.max() > 6 * np.median(deg)

    def test_uniform_parameters_not_skewed(self):
        """a=b=c=d=0.25 is Erdős–Rényi-like: no heavy tail."""
        g = rmat(10, 16, a=0.25, b=0.25, c=0.25, seed=5)
        deg = degree_array(g)
        assert deg.max() < 4 * np.median(deg)

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            rmat(0)
        with pytest.raises(GraphError):
            rmat(8, 0)
        with pytest.raises(GraphError):
            rmat(8, 4, a=0.9, b=0.2, c=0.2)  # d < 0

    def test_works_with_apsp(self):
        from repro.baselines import reference_apsp
        from repro.core import solve_apsp
        from tests.conftest import assert_same_apsp

        g = rmat(7, 6, seed=6)
        r = solve_apsp(g, algorithm="parapsp")
        assert_same_apsp(r.dist, reference_apsp(g))
