"""Graph builders: edge lists, dense matrices, networkx round trips."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import from_dense, from_edges, to_dense, to_networkx
from repro.graphs.build import from_arc_arrays, from_networkx, to_scipy_csr


class TestFromEdges:
    def test_infers_vertex_count(self):
        g = from_edges([(0, 5)])
        assert g.num_vertices == 6

    def test_two_and_three_tuples(self):
        g = from_edges([(0, 1), (1, 2, 7.5)], num_vertices=3)
        assert g.neighbor_weights(0)[0] == 1.0
        w = dict(zip(g.neighbors(1).tolist(), g.neighbor_weights(1).tolist()))
        assert w[2] == 7.5

    def test_self_loops_dropped_by_default(self):
        g = from_edges([(0, 0), (0, 1)], num_vertices=2)
        assert g.num_edges == 1

    def test_self_loops_error_when_requested(self):
        with pytest.raises(GraphError, match="self loop"):
            from_edges([(0, 0)], num_vertices=1, drop_self_loops=False)

    def test_duplicate_min_policy(self):
        g = from_edges([(0, 1, 5.0), (0, 1, 2.0)], num_vertices=2)
        assert g.neighbor_weights(0)[0] == 2.0

    def test_duplicate_first_policy(self):
        g = from_edges(
            [(0, 1, 5.0), (0, 1, 2.0)], num_vertices=2, dedup="first",
            directed=True,
        )
        assert g.neighbor_weights(0)[0] == 5.0

    def test_duplicate_error_policy(self):
        with pytest.raises(GraphError, match="duplicate"):
            from_edges(
                [(0, 1), (0, 1)], num_vertices=2, dedup="error", directed=True
            )

    def test_unknown_dedup_policy(self):
        with pytest.raises(GraphError, match="dedup"):
            from_edges([(0, 1)], num_vertices=2, dedup="bogus")

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphError, match="negative"):
            from_edges([(-1, 0)])

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphError, match="2- or 3-tuple"):
            from_edges([(0, 1, 2, 3)])

    def test_undirected_symmetrised(self):
        g = from_edges([(0, 1, 3.0)], num_vertices=2)
        assert list(g.neighbors(1)) == [0]
        assert g.neighbor_weights(1)[0] == 3.0

    def test_directed_not_symmetrised(self):
        g = from_edges([(0, 1)], num_vertices=2, directed=True)
        assert g.neighbors(1).size == 0


class TestFromArcArrays:
    def test_out_of_range_endpoint(self):
        with pytest.raises(GraphError, match="outside"):
            from_arc_arrays(
                np.array([0]), np.array([9]), num_vertices=3
            )

    def test_misaligned_arrays(self):
        with pytest.raises(GraphError, match="equal-length"):
            from_arc_arrays(
                np.array([0, 1]), np.array([1]), num_vertices=3
            )

    def test_rows_come_out_sorted(self):
        g = from_arc_arrays(
            np.array([0, 0, 0]),
            np.array([3, 1, 2]),
            num_vertices=4,
            directed=True,
        )
        assert list(g.neighbors(0)) == [1, 2, 3]


class TestDenseRoundtrip:
    def test_roundtrip_undirected(self, small_weighted):
        g2 = from_dense(to_dense(small_weighted))
        assert not g2.directed
        assert np.array_equal(g2.indices, small_weighted.indices)
        assert np.allclose(g2.weights, small_weighted.weights)

    def test_roundtrip_directed(self, directed_weighted):
        g2 = from_dense(to_dense(directed_weighted), directed=True)
        assert np.array_equal(g2.indices, directed_weighted.indices)

    def test_directedness_autodetected(self):
        asym = np.array([[0, 2.0], [np.inf, 0]])
        assert from_dense(asym).directed
        sym = np.array([[0, 2.0], [2.0, 0]])
        assert not from_dense(sym).directed

    def test_dense_diagonal_zero(self, toy_graph):
        d = to_dense(toy_graph)
        assert np.all(np.diag(d) == 0)

    def test_dense_absent_is_inf(self, toy_graph):
        d = to_dense(toy_graph)
        assert np.isinf(d[0, 4])

    def test_rejects_nonsquare(self):
        with pytest.raises(GraphError, match="square"):
            from_dense(np.zeros((2, 3)))


class TestNetworkxBridge:
    def test_roundtrip(self, small_weighted):
        nx_graph = to_networkx(small_weighted)
        back = from_networkx(nx_graph)
        assert back.num_vertices == small_weighted.num_vertices
        assert back.num_edges == small_weighted.num_edges
        assert np.allclose(
            sorted(back.weights), sorted(small_weighted.weights)
        )

    def test_directed_preserved(self, directed_weighted):
        nx_graph = to_networkx(directed_weighted)
        assert nx_graph.is_directed()
        assert from_networkx(nx_graph).directed


class TestScipyBridge:
    def test_csr_matrix_shape_and_sum(self, small_weighted):
        m = to_scipy_csr(small_weighted)
        n = small_weighted.num_vertices
        assert m.shape == (n, n)
        assert m.nnz == small_weighted.num_arcs
        assert np.isclose(m.sum(), small_weighted.weights.sum())
