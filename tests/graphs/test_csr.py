"""CSRGraph container invariants and accessors."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import CSRGraph, from_edges


def make(edges, n, **kw):
    return from_edges(edges, num_vertices=n, **kw)


class TestConstruction:
    def test_basic_properties(self, toy_graph):
        assert toy_graph.num_vertices == 5
        assert toy_graph.num_edges == 5
        assert toy_graph.num_arcs == 10  # undirected: both arcs stored
        assert not toy_graph.directed

    def test_directed_arc_count(self):
        g = make([(0, 1), (1, 2)], 3, directed=True)
        assert g.num_arcs == 2
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_isolated_vertices(self):
        g = make([(0, 1)], 5)
        assert g.out_degree(4) == 0
        assert g.out_degree(0) == 1

    def test_default_unit_weights(self):
        g = make([(0, 1), (1, 2)], 3)
        assert np.all(g.weights == 1.0)

    def test_repr_mentions_shape(self):
        g = make([(0, 1)], 2, name="tiny")
        assert "tiny" in repr(g)
        assert "n=2" in repr(g)

    def test_len_is_vertex_count(self, toy_graph):
        assert len(toy_graph) == 5


class TestValidation:
    def test_rejects_bad_indptr_start(self):
        with pytest.raises(GraphError, match="indptr\\[0\\]"):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_rejects_indptr_indices_mismatch(self):
        with pytest.raises(GraphError, match="must equal len"):
            CSRGraph(np.array([0, 5]), np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(GraphError, match="outside"):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(GraphError, match="positive"):
            CSRGraph(
                np.array([0, 1, 1]),
                np.array([1]),
                np.array([0.0]),
            )

    def test_rejects_misaligned_weights(self):
        with pytest.raises(GraphError, match="shape"):
            CSRGraph(
                np.array([0, 1, 1]),
                np.array([1]),
                np.array([1.0, 2.0]),
            )

    def test_buffers_are_frozen(self, toy_graph):
        with pytest.raises(ValueError):
            toy_graph.indices[0] = 0
        with pytest.raises(ValueError):
            toy_graph.weights[0] = 5.0


class TestAdjacency:
    def test_neighbors_sorted(self, small_ba):
        for v in range(small_ba.num_vertices):
            row = small_ba.neighbors(v)
            assert np.all(np.diff(row) > 0)

    def test_neighbor_weights_align(self, toy_graph):
        nbrs = toy_graph.neighbors(0)
        wts = toy_graph.neighbor_weights(0)
        assert nbrs.shape == wts.shape
        lookup = dict(zip(nbrs.tolist(), wts.tolist()))
        assert lookup[1] == 1.0
        assert lookup[3] == 4.0

    def test_out_degrees_vector_matches_scalar(self, small_ba):
        vec = small_ba.out_degrees()
        for v in range(small_ba.num_vertices):
            assert vec[v] == small_ba.out_degree(v)

    def test_in_degrees_undirected_equal_out(self, small_ba):
        assert np.array_equal(small_ba.in_degrees(), small_ba.out_degrees())

    def test_in_degrees_directed(self):
        g = make([(0, 1), (2, 1), (1, 0)], 3, directed=True)
        assert g.in_degrees().tolist() == [1, 2, 0]

    def test_iter_arcs_covers_all(self, toy_graph):
        arcs = list(toy_graph.iter_arcs())
        assert len(arcs) == toy_graph.num_arcs
        assert (0, 1, 1.0) in arcs
        assert (1, 0, 1.0) in arcs  # reverse arc stored

    def test_arc_array_shape(self, small_ba):
        arr = small_ba.arc_array()
        assert arr.shape == (small_ba.num_arcs, 2)


class TestTransforms:
    def test_reverse_directed(self):
        g = make([(0, 1, 2.0), (1, 2, 3.0)], 3, directed=True)
        r = g.reverse()
        assert list(r.neighbors(1)) == [0]
        assert list(r.neighbors(2)) == [1]
        assert r.neighbor_weights(2)[0] == 3.0

    def test_reverse_undirected_is_same_graph(self, small_ba):
        r = small_ba.reverse()
        # same multiset of arcs; rows are sorted in both
        for v in range(small_ba.num_vertices):
            assert sorted(r.neighbors(v)) == sorted(small_ba.neighbors(v))

    def test_with_unit_weights(self, small_weighted):
        g = small_weighted.with_unit_weights()
        assert np.all(g.weights == 1.0)
        assert np.array_equal(g.indices, small_weighted.indices)

    def test_subgraph_relabels(self):
        g = make([(0, 1), (1, 2), (2, 3), (3, 0)], 4)
        sub = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        # 1-2, 2-3 survive; 0's edges dropped
        assert sub.num_edges == 2

    def test_subgraph_rejects_bad_ids(self, toy_graph):
        with pytest.raises(GraphError):
            toy_graph.subgraph([0, 99])


class TestEquality:
    def test_equal_graphs(self):
        a = make([(0, 1, 2.0)], 2)
        b = make([(0, 1, 2.0)], 2)
        assert a == b

    def test_weight_difference_detected(self):
        a = make([(0, 1, 2.0)], 2)
        b = make([(0, 1, 3.0)], 2)
        assert a != b

    def test_directedness_difference_detected(self):
        a = make([(0, 1)], 2)
        b = make([(0, 1)], 2, directed=True)
        assert a != b
