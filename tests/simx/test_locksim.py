"""Lock-contention simulation semantics."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simx import MACHINE_I, MachineSpec, Op, run_lock_program

BARE = MachineSpec(
    name="bare",
    num_cores=16,
    fork_join_overhead=0.0,
    lock_uncontended=0.0,
    lock_handoff=0.0,
    critical_section=10.0,
)


class TestOpValidation:
    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            Op(work=-1.0)

    def test_negative_cs_scale_rejected(self):
        with pytest.raises(SimulationError):
            Op(cs_scale=-0.5)


class TestSerialBehaviour:
    def test_pure_work_sums(self):
        r = run_lock_program([[Op(work=5.0), Op(work=7.0)]], BARE)
        assert r.makespan == 12.0
        assert r.total_acquisitions == 0

    def test_lock_ops_add_critical_sections(self):
        r = run_lock_program([[Op(work=5.0, lock_id=0)] * 3], BARE)
        assert r.makespan == 3 * (5.0 + 10.0)
        assert r.total_acquisitions == 3
        assert r.contended_acquisitions == 0

    def test_false_sharing_penalty_charged(self):
        machine = BARE.with_overrides(false_sharing_penalty=100.0)
        r = run_lock_program([[Op(work=1.0, false_sharing=True)]], machine)
        assert r.makespan == 101.0


class TestContention:
    def test_single_lock_serialises(self):
        # two threads, same lock, no private work: strictly serialised
        progs = [[Op(work=0.0, lock_id=0)] * 4 for _ in range(2)]
        r = run_lock_program(progs, BARE)
        assert r.makespan == pytest.approx(8 * 10.0)
        assert r.contended_acquisitions > 0

    def test_disjoint_locks_run_parallel(self):
        progs = [
            [Op(work=0.0, lock_id=0)] * 4,
            [Op(work=0.0, lock_id=1)] * 4,
        ]
        r = run_lock_program(progs, BARE)
        assert r.makespan == pytest.approx(4 * 10.0)
        assert r.contended_acquisitions == 0

    def test_handoff_penalty_makes_parallel_worse_than_serial(self):
        """The Table 1 inversion: hot-lock parallel > serial."""
        machine = MACHINE_I
        serial = run_lock_program(
            [[Op(work=5.0, lock_id=0)] * 400], machine
        )
        parallel = run_lock_program(
            [[Op(work=5.0, lock_id=0)] * 100 for _ in range(4)], machine
        )
        assert parallel.makespan > serial.makespan

    def test_contention_grows_with_threads(self):
        def makespan(T):
            per = 240 // T
            return run_lock_program(
                [[Op(work=5.0, lock_id=0)] * per for _ in range(T)],
                MACHINE_I,
            ).makespan

        times = [makespan(t) for t in (2, 4, 8, 16)]
        assert times == sorted(times)

    def test_fifo_order_respects_arrival_time(self):
        # thread 1 arrives at the lock later (big private work first);
        # thread 0 must win the first grant despite same start
        progs = [
            [Op(work=1.0, lock_id=0)],
            [Op(work=50.0, lock_id=0)],
        ]
        r = run_lock_program(progs, BARE, trace=True)
        holds = [e for e in r.events if e.kind == "lock-hold"]
        assert holds[0].thread == 0
        # thread 1 arrives at 50 > release 11, so never contends
        assert r.contended_acquisitions == 0


class TestValidation:
    def test_needs_programs(self):
        with pytest.raises(SimulationError):
            run_lock_program([], MACHINE_I)

    def test_too_many_threads(self):
        with pytest.raises(SimulationError, match="exceed"):
            run_lock_program([[] for _ in range(99)], MACHINE_I)

    def test_empty_programs_ok(self):
        r = run_lock_program([[], []], BARE)
        assert r.makespan == 0.0

    def test_accounting_invariant(self):
        rng = np.random.default_rng(3)
        progs = [
            [
                Op(work=float(rng.uniform(1, 5)), lock_id=int(rng.integers(3)))
                for _ in range(20)
            ]
            for _ in range(4)
        ]
        r = run_lock_program(progs, MACHINE_I)
        assert np.all(r.busy + r.overhead <= r.makespan + 1e-9)
