"""Machine cost-model parameters."""

import pytest

from repro.exceptions import SimulationError
from repro.simx import MACHINE_I, MACHINE_II, MachineSpec, default_machine


class TestPresets:
    def test_paper_testbeds(self):
        assert MACHINE_I.num_cores == 16
        assert MACHINE_II.num_cores == 32

    def test_default_machine_picks_by_thread_count(self):
        assert default_machine(8) is MACHINE_I
        assert default_machine(16) is MACHINE_I
        assert default_machine(17) is MACHINE_II
        assert default_machine(32) is MACHINE_II


class TestSpec:
    def test_clamp_threads(self):
        assert MACHINE_I.clamp_threads(64) == 16
        assert MACHINE_I.clamp_threads(4) == 4
        with pytest.raises(SimulationError):
            MACHINE_I.clamp_threads(0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            MachineSpec(name="bad", num_cores=0)
        with pytest.raises(SimulationError):
            MachineSpec(name="bad", num_cores=4, lock_handoff=-1.0)

    def test_region_overhead_grows_with_team(self):
        assert MACHINE_I.region_overhead(1) == MACHINE_I.fork_join_overhead
        assert (
            MACHINE_I.region_overhead(16)
            > MACHINE_I.region_overhead(8)
            > MACHINE_I.region_overhead(2)
        )

    def test_bandwidth_slowdown_monotone(self):
        vals = [MACHINE_I.bandwidth_slowdown(t) for t in (1, 4, 16)]
        assert vals[0] == 1.0
        assert vals[0] <= vals[1] <= vals[2]

    def test_cache_relief_below_one(self):
        assert MACHINE_I.cache_relief(1) == 1.0
        assert MACHINE_I.cache_relief(16) < 1.0

    def test_memory_multiplier_hyperlinear_capable(self):
        # net effect must allow >T speedup: multiplier < 1 at full team
        assert MACHINE_I.memory_cost_multiplier(16) < 1.0

    def test_single_core_machine_neutral(self):
        m = MachineSpec(name="uni", num_cores=1)
        assert m.bandwidth_slowdown(1) == 1.0
        assert m.cache_relief(1) == 1.0

    def test_with_overrides(self):
        m = MACHINE_I.with_overrides(lock_handoff=10.0)
        assert m.lock_handoff == 10.0
        assert m.num_cores == MACHINE_I.num_cores
        assert MACHINE_I.lock_handoff != 10.0  # original untouched
