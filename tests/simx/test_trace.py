"""Trace records and result invariants."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simx import SimResult, TraceEvent


class TestTraceEvent:
    def test_duration(self):
        e = TraceEvent(item=1, thread=0, start=2.0, end=5.0)
        assert e.duration == 3.0

    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            TraceEvent(item=0, thread=0, start=5.0, end=2.0)


def make_result(**kw):
    defaults = dict(
        num_threads=2,
        makespan=10.0,
        busy=np.array([6.0, 4.0]),
        overhead=np.array([1.0, 2.0]),
    )
    defaults.update(kw)
    return SimResult(**defaults)


class TestSimResult:
    def test_idle_completes_the_budget(self):
        r = make_result()
        assert np.allclose(r.idle, [3.0, 4.0])

    def test_utilization(self):
        r = make_result()
        assert r.utilization == pytest.approx(10.0 / 20.0)

    def test_zero_makespan_utilization(self):
        r = SimResult(
            num_threads=1,
            makespan=0.0,
            busy=np.zeros(1),
            overhead=np.zeros(1),
        )
        assert r.utilization == 1.0

    def test_rejects_overcommitted_thread(self):
        with pytest.raises(SimulationError, match="exceeds makespan"):
            make_result(busy=np.array([9.0, 4.0]), overhead=np.array([5.0, 0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(SimulationError):
            make_result(busy=np.array([1.0]))

    def test_rejects_negative_makespan(self):
        with pytest.raises(SimulationError):
            make_result(
                makespan=-1.0,
                busy=np.zeros(2),
                overhead=np.zeros(2),
            )

    def test_merge_sequential_adds_makespans(self):
        a = make_result()
        b = make_result(makespan=5.0, busy=np.array([2.0, 1.0]),
                        overhead=np.array([0.0, 0.0]))
        merged = a.merge_sequential(b)
        assert merged.makespan == 15.0
        assert np.allclose(merged.busy, [8.0, 5.0])

    def test_merge_pads_narrower_phase(self):
        seq = SimResult(
            num_threads=1, makespan=3.0, busy=np.array([3.0]),
            overhead=np.array([0.0]),
        )
        par = make_result()
        merged = seq.merge_sequential(par)
        assert merged.num_threads == 2
        assert merged.makespan == 13.0
        assert np.allclose(merged.busy, [9.0, 4.0])

    def test_merge_shifts_events(self):
        a = make_result(events=[TraceEvent(0, 0, 0.0, 1.0)])
        b = make_result(events=[TraceEvent(1, 0, 0.0, 1.0)])
        merged = a.merge_sequential(b)
        assert merged.events[1].start == 10.0

    def test_merge_accumulates_lock_stats(self):
        a = make_result(contended_acquisitions=3, total_acquisitions=10)
        b = make_result(contended_acquisitions=2, total_acquisitions=5)
        merged = a.merge_sequential(b)
        assert merged.contended_acquisitions == 5
        assert merged.total_acquisitions == 15


class TestTraceEventValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SimulationError, match="kind"):
            TraceEvent(item=0, thread=0, start=0.0, end=1.0, kind="bogus")

    def test_rejects_negative_thread(self):
        with pytest.raises(SimulationError, match="thread"):
            TraceEvent(item=0, thread=-1, start=0.0, end=1.0)

    def test_label_wins_in_name(self):
        e = TraceEvent(0, 0, 0.0, 1.0, kind="lock-wait", label="parmax.deg3")
        assert e.name() == "parmax.deg3"

    def test_name_falls_back_per_kind(self):
        assert TraceEvent(7, 0, 0.0, 1.0).name() == "iter 7"
        assert TraceEvent(3, 0, 0.0, 1.0, kind="lock-hold").name() == "lock_3"
        assert (
            TraceEvent(-1, 0, 0.0, 1.0, kind="overhead").name() == "overhead"
        )


class TestMergeSequentialEdgeCases:
    def test_unequal_thread_counts_wide_then_narrow(self):
        wide = make_result()
        narrow = SimResult(
            num_threads=1, makespan=3.0, busy=np.array([3.0]),
            overhead=np.array([0.0]),
        )
        merged = wide.merge_sequential(narrow)
        assert merged.num_threads == 2
        assert merged.makespan == 13.0
        # the narrow phase contributes idle (not busy) to the padded thread
        assert np.allclose(merged.busy, [9.0, 4.0])
        assert np.allclose(merged.idle, [3.0, 7.0])

    def test_empty_event_lists_stay_empty(self):
        merged = make_result().merge_sequential(make_result())
        assert merged.events == []

    def test_one_sided_events_survive_with_offset(self):
        a = make_result()  # no events
        b = make_result(
            events=[TraceEvent(4, 1, 2.0, 3.0, kind="lock-wait", label="L")]
        )
        merged = a.merge_sequential(b)
        assert len(merged.events) == 1
        shifted = merged.events[0]
        assert (shifted.start, shifted.end) == (12.0, 13.0)
        assert shifted.kind == "lock-wait" and shifted.label == "L"

    def test_meta_collision_earlier_phase_wins(self):
        a = make_result(meta={"schedule": "dynamic", "only_a": "1"})
        b = make_result(meta={"schedule": "block", "only_b": "2"})
        merged = a.merge_sequential(b)
        assert merged.meta == {
            "schedule": "dynamic", "only_a": "1", "only_b": "2",
        }
