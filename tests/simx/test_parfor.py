"""Simulated parallel-for semantics."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simx import MACHINE_I, MachineSpec, simulate_parallel_for

#: overhead-free machine: virtual time equals pure work, which makes
#: the arithmetic below exact
BARE = MachineSpec(
    name="bare",
    num_cores=16,
    fork_join_overhead=0.0,
    dispatch_overhead=0.0,
    memory_bandwidth_factor=0.0,
    cache_boost_factor=0.0,
)


class TestBasics:
    def test_single_thread_sum(self):
        costs = np.array([5.0, 7.0, 3.0])
        out = simulate_parallel_for(3, costs, BARE, num_threads=1)
        assert out.result.makespan == 15.0

    def test_every_iteration_dispatched_once(self):
        out = simulate_parallel_for(
            50, np.ones(50), BARE, num_threads=4, schedule="dynamic"
        )
        assert sorted(out.issue_order.tolist()) == list(range(50))

    def test_dynamic_issue_order_is_index_order(self):
        out = simulate_parallel_for(
            20, np.random.default_rng(0).uniform(1, 9, 20), BARE,
            num_threads=4, schedule="dynamic",
        )
        assert out.issue_order.tolist() == list(range(20))

    def test_perfect_speedup_equal_costs(self):
        costs = np.full(64, 10.0)
        t1 = simulate_parallel_for(64, costs, BARE, num_threads=1)
        t8 = simulate_parallel_for(64, costs, BARE, num_threads=8)
        assert t1.result.makespan == pytest.approx(8 * t8.result.makespan)

    def test_makespan_bounded_by_critical_path(self):
        costs = np.array([100.0] + [1.0] * 50)
        out = simulate_parallel_for(
            51, costs, BARE, num_threads=8, schedule="dynamic"
        )
        assert out.result.makespan >= 100.0
        assert out.result.makespan < 151.0

    def test_zero_iterations(self):
        out = simulate_parallel_for(0, np.empty(0), MACHINE_I, num_threads=4)
        assert out.result.makespan == MACHINE_I.region_overhead(4)

    def test_threads_clamped_to_cores(self):
        out = simulate_parallel_for(
            8, np.ones(8), BARE, num_threads=99
        )
        assert out.result.num_threads == 16


class TestSchedules:
    def test_block_assignment_respected(self):
        costs = np.ones(8)
        out = simulate_parallel_for(
            8, costs, BARE, num_threads=2, schedule="block"
        )
        assert set(out.thread_of[:4].tolist()) == {0}
        assert set(out.thread_of[4:].tolist()) == {1}

    def test_static_cyclic_assignment_respected(self):
        out = simulate_parallel_for(
            8, np.ones(8), BARE, num_threads=2, schedule="static-cyclic"
        )
        assert out.thread_of.tolist() == [0, 1] * 4

    def test_block_load_imbalance_visible(self):
        # thread 0 gets all the heavy items under block partitioning
        costs = np.concatenate([np.full(10, 100.0), np.full(10, 1.0)])
        block = simulate_parallel_for(
            20, costs, BARE, num_threads=2, schedule="block"
        )
        dyn = simulate_parallel_for(
            20, costs, BARE, num_threads=2, schedule="dynamic"
        )
        assert block.result.makespan > dyn.result.makespan

    def test_dynamic_chunk_reduces_dispatches(self):
        machine = BARE.with_overrides(dispatch_overhead=50.0)
        chunk1 = simulate_parallel_for(
            64, np.ones(64), machine, num_threads=4, schedule="dynamic",
            chunk=1,
        )
        chunk8 = simulate_parallel_for(
            64, np.ones(64), machine, num_threads=4, schedule="dynamic",
            chunk=8,
        )
        assert chunk8.result.total_overhead < chunk1.result.total_overhead


class TestCostModel:
    def test_cost_multiplier_scales_busy_time(self):
        base = simulate_parallel_for(10, np.ones(10), BARE, num_threads=1)
        doubled = simulate_parallel_for(
            10, np.ones(10), BARE, num_threads=1, cost_multiplier=2.0
        )
        assert doubled.result.makespan == pytest.approx(
            2 * base.result.makespan
        )

    def test_cost_callback_sees_dispatch_time(self):
        seen = []

        def cost(i, time, thread):
            seen.append((i, time))
            return 10.0

        simulate_parallel_for(5, cost, BARE, num_threads=1)
        times = [t for _, t in seen]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(10.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(SimulationError):
            simulate_parallel_for(
                3, np.array([1.0, -2.0, 1.0]), BARE, num_threads=1
            )

    def test_invalid_multiplier(self):
        with pytest.raises(SimulationError):
            simulate_parallel_for(
                2, np.ones(2), BARE, num_threads=1, cost_multiplier=0.0
            )


class TestAccounting:
    def test_busy_plus_overhead_le_makespan(self):
        out = simulate_parallel_for(
            40,
            np.random.default_rng(1).uniform(1, 20, 40),
            MACHINE_I,
            num_threads=8,
        )
        r = out.result
        assert np.all(r.busy + r.overhead <= r.makespan + 1e-9)
        assert np.all(r.idle >= -1e-9)

    def test_total_busy_conserved_across_thread_counts(self):
        costs = np.random.default_rng(2).uniform(1, 5, 30)
        t1 = simulate_parallel_for(30, costs, BARE, num_threads=1)
        t4 = simulate_parallel_for(30, costs, BARE, num_threads=4)
        assert t1.result.total_busy == pytest.approx(t4.result.total_busy)

    def test_trace_events_cover_iterations(self):
        out = simulate_parallel_for(
            12, np.ones(12), BARE, num_threads=3, trace=True
        )
        assert len(out.result.events) == 12
        assert sorted(e.item for e in out.result.events) == list(range(12))

    def test_end_times_consistent(self):
        costs = np.arange(1.0, 11.0)
        out = simulate_parallel_for(10, costs, BARE, num_threads=2)
        assert np.allclose(out.end_times - out.start_times, costs)
