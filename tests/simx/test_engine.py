"""Discrete-event core: the thread clock queue."""

import pytest

from repro.exceptions import SimulationError
from repro.simx import ThreadClockQueue


class TestThreadClockQueue:
    def test_pops_earliest(self):
        q = ThreadClockQueue(3)
        q.advance(0, 10.0)
        q.advance(1, 5.0)
        q.advance(2, 7.0)
        assert q.pop_earliest() == (5.0, 1)

    def test_deterministic_tie_break_by_thread_id(self):
        q = ThreadClockQueue(4, start_time=2.0)
        assert q.pop_earliest() == (2.0, 0)

    def test_stale_entries_skipped(self):
        q = ThreadClockQueue(2)
        q.pop_earliest()  # thread 0 at 0.0
        q.advance(0, 3.0)
        q.advance(0, 5.0)  # 3.0 entry becomes stale
        time, thread = q.pop_earliest()
        assert (time, thread) == (0.0, 1)
        q.advance(1, 10.0)
        assert q.pop_earliest() == (5.0, 0)

    def test_clock_cannot_go_backwards(self):
        q = ThreadClockQueue(1)
        q.advance(0, 4.0)
        with pytest.raises(SimulationError, match="backwards"):
            q.advance(0, 3.0)

    def test_latest(self):
        q = ThreadClockQueue(2)
        q.advance(0, 9.0)
        assert q.latest == 9.0

    def test_clocks_snapshot(self):
        q = ThreadClockQueue(2, start_time=1.0)
        assert q.clocks() == [1.0, 1.0]

    def test_needs_thread(self):
        with pytest.raises(SimulationError):
            ThreadClockQueue(0)
