"""ASCII Gantt rendering."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simx import (
    MACHINE_I,
    Op,
    render_gantt,
    run_lock_program,
    simulate_parallel_for,
)


@pytest.fixture(scope="module")
def traced_result():
    out = simulate_parallel_for(
        20,
        np.full(20, 50.0),
        MACHINE_I,
        num_threads=4,
        trace=True,
    )
    return out.result


class TestRenderGantt:
    def test_one_row_per_thread(self, traced_result):
        text = render_gantt(traced_result, width=40)
        rows = [l for l in text.splitlines() if "|" in l]
        assert len(rows) == traced_result.num_threads

    def test_busy_glyphs_present(self, traced_result):
        assert "#" in render_gantt(traced_result)

    def test_width_respected(self, traced_result):
        text = render_gantt(traced_result, width=30)
        body = text.splitlines()[0]
        assert body.count("|") == 2
        start = body.index("|") + 1
        assert body.rindex("|") - start == 30

    def test_lock_waits_rendered(self):
        progs = [[Op(work=1.0, lock_id=0)] * 5 for _ in range(4)]
        r = run_lock_program(progs, MACHINE_I, trace=True)
        text = render_gantt(r, width=60)
        assert "~" in text  # somebody waited

    def test_untraced_rejected(self):
        out = simulate_parallel_for(
            5, np.ones(5), MACHINE_I, num_threads=2, trace=False
        )
        with pytest.raises(SimulationError, match="trace=True"):
            render_gantt(out.result)

    def test_tiny_width_rejected(self, traced_result):
        with pytest.raises(SimulationError):
            render_gantt(traced_result, width=4)

    def test_legend_line(self, traced_result):
        assert "busy" in render_gantt(traced_result)
