"""Speedup / efficiency / Amdahl fitting."""

import pytest

from repro.analysis import (
    amdahl_fit,
    amdahl_predict,
    efficiency,
    is_hyperlinear,
    speedup,
    speedup_curve,
)
from repro.exceptions import ValidationError


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_efficiency(self):
        assert efficiency(16.0, 2.0, 8) == 1.0

    def test_positive_times_required(self):
        with pytest.raises(ValidationError):
            speedup(0.0, 1.0)
        with pytest.raises(ValidationError):
            speedup(1.0, -1.0)

    def test_curve(self):
        curve = speedup_curve([1, 2, 4], [100.0, 50.0, 25.0])
        assert curve == {1: 1.0, 2: 2.0, 4: 4.0}

    def test_curve_requires_baseline(self):
        with pytest.raises(ValidationError, match="T=1"):
            speedup_curve([2, 4], [50.0, 25.0])

    def test_curve_alignment(self):
        with pytest.raises(ValidationError):
            speedup_curve([1, 2], [1.0])

    def test_hyperlinear_detection(self):
        assert is_hyperlinear([1, 4], [100.0, 20.0])  # 5x on 4 threads
        assert not is_hyperlinear([1, 4], [100.0, 30.0])


class TestAmdahl:
    def test_prediction(self):
        assert amdahl_predict(0.0, 8) == 8.0
        assert amdahl_predict(1.0, 8) == 1.0
        assert amdahl_predict(0.5, 2) == pytest.approx(1.0 / 0.75)

    def test_prediction_validation(self):
        with pytest.raises(ValidationError):
            amdahl_predict(1.5, 4)

    def test_fit_recovers_fraction(self):
        f = 0.2
        threads = [1, 2, 4, 8, 16]
        times = [100.0 * (f + (1 - f) / t) for t in threads]
        assert amdahl_fit(threads, times) == pytest.approx(f, abs=1e-9)

    def test_fit_perfect_scaling_gives_zero(self):
        threads = [1, 2, 4]
        times = [100.0 / t for t in threads]
        assert amdahl_fit(threads, times) == pytest.approx(0.0, abs=1e-12)

    def test_fit_clips_hyperlinear_to_zero(self):
        assert amdahl_fit([1, 4], [100.0, 10.0]) == 0.0

    def test_fit_needs_parallel_point(self):
        with pytest.raises(ValidationError):
            amdahl_fit([1], [100.0])
