"""Degree-distribution analysis (Figure 3 machinery)."""

import numpy as np
import pytest

from repro.analysis import degree_distribution, powerlaw_slope
from repro.exceptions import ValidationError
from repro.graphs import load_dataset, star


class TestDegreeDistribution:
    def test_star_stats(self):
        dist = degree_distribution(star(11))
        assert dist.max_degree == 10
        assert dist.min_degree == 1
        assert dist.median_degree == 1.0
        assert dist.histogram[1] == 10
        assert dist.histogram[10] == 1

    def test_nonzero_points(self):
        dist = degree_distribution(star(11))
        ks, counts = dist.nonzero_points()
        assert ks.tolist() == [1, 10]
        assert counts.tolist() == [10, 1]

    def test_below_one_percent_fraction(self):
        g = load_dataset("WordNet", scale=5000)
        dist = degree_distribution(g)
        assert 0.0 <= dist.below_one_percent_of_max <= 1.0
        assert dist.below_one_percent_of_max > 0.5  # power-law pile-up

    def test_histogram_sums_to_n(self, powerlaw_graph):
        dist = degree_distribution(powerlaw_graph)
        assert dist.histogram.sum() == powerlaw_graph.num_vertices


class TestPowerlawSlope:
    def test_scale_free_graph_in_band(self):
        g = load_dataset("WordNet", scale=5000)
        slope = powerlaw_slope(degree_distribution(g))
        assert -3.5 < slope < -1.2

    def test_regular_graph_not_power_law(self):
        from repro.graphs import grid_2d

        dist = degree_distribution(grid_2d(30, 30))
        # grid has only 3 distinct degrees clustered together — either
        # the fit fails (too few bins) or the slope is shallow
        try:
            slope = powerlaw_slope(dist)
        except ValidationError:
            return
        assert slope > -1.5 or slope < -10  # definitely not γ ∈ [2, 3]

    def test_too_few_points(self):
        with pytest.raises(ValidationError):
            powerlaw_slope(degree_distribution(star(5)))
