"""ASCII table and plot rendering."""

import pytest

from repro.analysis import ascii_plot, format_number, format_table


class TestFormatNumber:
    def test_ints_grouped(self):
        assert format_number(1234567) == "1,234,567"

    def test_none_dash(self):
        assert format_number(None) == "-"

    def test_small_float_scientific(self):
        assert "e" in format_number(1.5e-7)

    def test_large_float_scientific(self):
        assert "e" in format_number(2.5e9)

    def test_mid_float_plain(self):
        assert format_number(3.14159) == "3.14"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_string_passthrough(self):
        assert format_number("dynamic") == "dynamic"

    def test_bool(self):
        assert format_number(True) == "True"


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ("name", "value"), [("a", 1), ("long-name", 22)], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # all rows same width
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("a", "b"), [(1,)])

    def test_empty_rows_ok(self):
        out = format_table(("a",), [])
        assert "a" in out


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot({"s1": [(1, 1.0), (2, 2.0)]}, width=20, height=5)
        assert "*" in out
        assert "s1" in out

    def test_log_scale_needs_positive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(1, 0.0), (2, 1.0)]}, log_y=True)

    def test_empty(self):
        assert ascii_plot({}) == "(empty plot)"

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot(
            {"a": [(1, 1.0)], "b": [(2, 2.0)]}, width=20, height=5
        )
        assert "* = a" in out
        assert "o = b" in out

    def test_log_y_renders(self):
        out = ascii_plot(
            {"s": [(1, 1.0), (16, 1e6)]}, width=30, height=8, log_y=True
        )
        assert "(log)" in out or "*" in out
