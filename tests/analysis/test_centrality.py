"""APSP-derived network metrics."""

import numpy as np
import pytest

from repro.analysis import (
    closeness_centrality,
    eccentricity,
    harmonic_centrality,
    summarize_network,
)
from repro.baselines import reference_apsp
from repro.exceptions import ValidationError
from repro.graphs import from_edges, path, star


@pytest.fixture(scope="module")
def star_dist():
    return reference_apsp(star(6))


@pytest.fixture(scope="module")
def path_dist():
    return reference_apsp(path(5))


class TestCloseness:
    def test_hub_highest_on_star(self, star_dist):
        c = closeness_centrality(star_dist)
        assert np.argmax(c) == 0
        assert c[0] == pytest.approx(1.0)  # hub reaches all at distance 1
        # leaves: (5/5) * (5 / (1 + 4*2)) = 5/9
        assert c[1] == pytest.approx(5.0 / 9.0)

    def test_matches_networkx(self, small_ba):
        import networkx as nx

        from repro.graphs import to_networkx

        c = closeness_centrality(reference_apsp(small_ba))
        ref = nx.closeness_centrality(to_networkx(small_ba))
        for v, value in ref.items():
            assert c[v] == pytest.approx(value)

    def test_disconnected_isolated_zero(self):
        g = from_edges([(0, 1)], num_vertices=3)
        c = closeness_centrality(reference_apsp(g))
        assert c[2] == 0.0

    def test_single_vertex(self):
        assert closeness_centrality(np.zeros((1, 1))).tolist() == [0.0]

    def test_bad_matrix(self):
        with pytest.raises(ValidationError):
            closeness_centrality(np.ones((2, 3)))
        with pytest.raises(ValidationError, match="diagonal"):
            closeness_centrality(np.ones((2, 2)))


class TestHarmonic:
    def test_star_values(self, star_dist):
        h = harmonic_centrality(star_dist)
        assert h[0] == pytest.approx(5.0)
        assert h[1] == pytest.approx(1.0 + 4 * 0.5)

    def test_unreachable_contributes_zero(self):
        g = from_edges([(0, 1)], num_vertices=3)
        h = harmonic_centrality(reference_apsp(g))
        assert h[2] == 0.0
        assert h[0] == 1.0


class TestEccentricity:
    def test_path_graph(self, path_dist):
        e = eccentricity(path_dist)
        assert e.tolist() == [4.0, 3.0, 2.0, 3.0, 4.0]

    def test_isolated_is_nan(self):
        g = from_edges([(0, 1)], num_vertices=3)
        e = eccentricity(reference_apsp(g))
        assert np.isnan(e[2])


class TestSummary:
    def test_path_graph_summary(self, path_dist):
        s = summarize_network(path_dist)
        assert s.num_vertices == 5
        assert s.diameter == 4.0
        assert s.radius == 2.0
        assert s.reachability == 1.0
        # average of all pairwise distances on a path of 5
        expected = np.mean(
            [abs(i - j) for i in range(5) for j in range(5) if i != j]
        )
        assert s.average_path_length == pytest.approx(expected)

    def test_fully_disconnected(self):
        dist = np.full((3, 3), np.inf)
        np.fill_diagonal(dist, 0.0)
        s = summarize_network(dist)
        assert s.reachable_pairs == 0
        assert np.isnan(s.average_path_length)
        assert s.global_efficiency == 0.0

    def test_matches_networkx_diameter(self, small_ba):
        import networkx as nx

        from repro.graphs import to_networkx

        s = summarize_network(reference_apsp(small_ba))
        assert s.diameter == nx.diameter(to_networkx(small_ba))
