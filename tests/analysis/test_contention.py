"""Lock-contention attribution."""

import pytest

from repro.analysis import attribute_contention
from repro.exceptions import ValidationError
from repro.graphs import degree_array, load_dataset
from repro.order import simulate_par_buckets
from repro.simx import MACHINE_I, MachineSpec, Op, run_lock_program


@pytest.fixture(scope="module")
def traced():
    progs = [
        [Op(work=1.0, lock_id=0)] * 10 + [Op(work=1.0, lock_id=3)] * 2
        for _ in range(4)
    ]
    return run_lock_program(progs, MACHINE_I, trace=True)


class TestAttribution:
    def test_counts_per_lock(self, traced):
        report = attribute_contention(traced)
        by_id = {s.lock_id: s for s in report.locks}
        assert by_id[0].acquisitions == 40
        assert by_id[3].acquisitions == 8

    def test_hot_lock_dominates(self, traced):
        report = attribute_contention(traced)
        top = report.top_waiters(1)[0]
        assert top.lock_id == 0
        assert report.wait_concentration(1) > 0.8

    def test_totals_consistent(self, traced):
        report = attribute_contention(traced)
        assert report.total_wait == pytest.approx(
            sum(s.total_wait for s in report.locks)
        )
        assert report.total_hold == pytest.approx(
            sum(s.total_hold for s in report.locks)
        )

    def test_render_mentions_top_lock(self, traced):
        text = attribute_contention(traced).render(k=2)
        assert "lock contention" in text
        assert "0" in text

    def test_untraced_rejected(self):
        progs = [[Op(work=1.0, lock_id=0)] for _ in range(2)]
        untraced = run_lock_program(progs, MACHINE_I, trace=False)
        with pytest.raises(ValidationError, match="trace=True"):
            attribute_contention(untraced)

    def test_no_locks_empty_report(self):
        r = run_lock_program([[Op(work=5.0)]], MACHINE_I, trace=True)
        report = attribute_contention(r)
        assert report.locks == []
        assert report.wait_concentration() == 0.0


class TestSection42Story:
    def test_parbuckets_wait_concentrates_on_low_buckets(self):
        """§4.2 measured: the lowest buckets absorb nearly all waiting."""
        deg = degree_array(load_dataset("WordNet", scale=5000))
        res = simulate_par_buckets(
            deg, MACHINE_I, num_threads=8, trace=True
        )
        report = attribute_contention(res.sim)
        assert report.wait_concentration(3) > 0.9
        # and the hottest lock is a low bucket
        assert report.top_waiters(1)[0].lock_id <= 2
