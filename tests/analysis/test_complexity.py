"""Empirical complexity-exponent regression."""

import pytest

from repro.analysis import fit_exponent
from repro.exceptions import ValidationError


class TestFitExponent:
    def test_recovers_known_exponent(self):
        sizes = [100, 200, 400, 800]
        works = [2.0 * n**2.4 for n in sizes]
        fit = fit_exponent(sizes, works)
        assert fit.exponent == pytest.approx(2.4, abs=1e-9)
        assert fit.coefficient == pytest.approx(2.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_exponent([10, 20, 40], [100.0, 400.0, 1600.0])
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.predict(80) == pytest.approx(6400.0, rel=1e-6)

    def test_noise_reduces_r_squared(self):
        sizes = [100, 200, 400, 800, 1600]
        works = [n**2.0 * (1.3 if i % 2 else 0.7) for i, n in enumerate(sizes)]
        fit = fit_exponent(sizes, works)
        assert fit.r_squared < 1.0

    def test_needs_three_points(self):
        with pytest.raises(ValidationError):
            fit_exponent([10, 20], [1.0, 2.0])

    def test_positive_inputs_required(self):
        with pytest.raises(ValidationError):
            fit_exponent([10, 20, 0], [1.0, 2.0, 3.0])
        with pytest.raises(ValidationError):
            fit_exponent([10, 20, 30], [1.0, -2.0, 3.0])

    def test_alignment(self):
        with pytest.raises(ValidationError):
            fit_exponent([10, 20, 30], [1.0, 2.0])
