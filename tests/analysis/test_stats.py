"""Run-statistics aggregation."""

import pytest

from repro.analysis import aggregate, measure_repeats
from repro.exceptions import ValidationError


class TestAggregate:
    def test_basic_stats(self):
        stats = aggregate([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.repeats == 3
        assert stats.std == pytest.approx(1.0)

    def test_single_sample_zero_std(self):
        stats = aggregate([5.0])
        assert stats.std == 0.0

    def test_relative_std(self):
        stats = aggregate([2.0, 2.0])
        assert stats.relative_std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            aggregate([])


class TestMeasureRepeats:
    def test_calls_exactly_n_times(self):
        calls = []

        def fn():
            calls.append(1)
            return float(len(calls))

        stats = measure_repeats(fn, repeats=10)  # the paper's 10 runs
        assert stats.repeats == 10
        assert len(calls) == 10
        assert stats.mean == 5.5

    def test_repeats_validated(self):
        with pytest.raises(ValidationError):
            measure_repeats(lambda: 1.0, repeats=0)
