"""Baseline APSP/SSSP algorithms vs each other and vs scipy."""

import numpy as np
import pytest

from repro.baselines import (
    bellman_ford_apsp,
    bellman_ford_sssp,
    floyd_warshall,
    reference_apsp,
    repeated_dijkstra,
    spfa_apsp,
    spfa_sssp,
)
from repro.exceptions import AlgorithmError
from tests.conftest import assert_same_apsp


class TestFloydWarshall:
    def test_toy(self, toy_graph):
        d = floyd_warshall(toy_graph)
        assert d[0].tolist() == [0.0, 1.0, 3.0, 4.0, 6.0]

    def test_matches_scipy(self, small_weighted):
        assert_same_apsp(
            floyd_warshall(small_weighted), reference_apsp(small_weighted)
        )

    def test_directed_unreachable(self, directed_weighted):
        assert_same_apsp(
            floyd_warshall(directed_weighted),
            reference_apsp(directed_weighted),
        )


class TestRepeatedDijkstra:
    def test_matches_scipy(self, small_weighted):
        d, counts = repeated_dijkstra(small_weighted)
        assert_same_apsp(d, reference_apsp(small_weighted))
        assert counts.pops > small_weighted.num_vertices


class TestBellmanFord:
    def test_sssp_matches_dijkstra(self, small_weighted):
        from repro.core import dijkstra_sssp

        bf = bellman_ford_sssp(small_weighted, 3)
        dj, _ = dijkstra_sssp(small_weighted, 3)
        assert np.allclose(bf, dj)

    def test_apsp_matches_scipy(self, toy_graph):
        assert_same_apsp(
            bellman_ford_apsp(toy_graph), reference_apsp(toy_graph)
        )

    def test_bad_source(self, toy_graph):
        with pytest.raises(AlgorithmError):
            bellman_ford_sssp(toy_graph, 99)

    def test_early_exit_on_path(self, path_graph):
        # a path needs exactly diameter rounds, not n-1 — just verify
        # correctness (the early exit is internal)
        d = bellman_ford_sssp(path_graph, 0)
        assert d.tolist() == list(map(float, range(10)))


class TestSPFA:
    def test_sssp_matches_dijkstra(self, small_weighted):
        from repro.core import dijkstra_sssp

        sp, counts = spfa_sssp(small_weighted, 7)
        dj, _ = dijkstra_sssp(small_weighted, 7)
        assert np.allclose(sp, dj)
        assert counts.pops > 0

    def test_apsp_matches_scipy(self, toy_graph):
        d, _ = spfa_apsp(toy_graph)
        assert_same_apsp(d, reference_apsp(toy_graph))

    def test_bad_source(self, toy_graph):
        with pytest.raises(AlgorithmError):
            spfa_sssp(toy_graph, -2)


class TestScipyReference:
    def test_methods_agree(self, small_weighted):
        d = reference_apsp(small_weighted, method="D")
        fw = reference_apsp(small_weighted, method="FW")
        assert np.allclose(d, fw)

    def test_assert_matches_reference_raises_on_bad(self, toy_graph):
        from repro.baselines import assert_matches_reference
        from repro.exceptions import ValidationError

        good = reference_apsp(toy_graph)
        assert_matches_reference(good, toy_graph)
        bad = good.copy()
        bad[0, 1] += 1.0
        with pytest.raises(ValidationError, match="mismatch"):
            assert_matches_reference(bad, toy_graph)

    def test_reachability_mismatch_detected(self, toy_graph):
        from repro.baselines import assert_matches_reference
        from repro.exceptions import ValidationError

        bad = reference_apsp(toy_graph)
        bad[0, 1] = np.inf
        with pytest.raises(ValidationError, match="reachability"):
            assert_matches_reference(bad, toy_graph)
