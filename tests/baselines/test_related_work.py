"""Related-work baselines (§6): blocked FW and partition-and-correct."""

import numpy as np
import pytest

from repro.baselines import (
    blocked_floyd_warshall,
    floyd_warshall,
    partitioned_apsp,
    reference_apsp,
)
from repro.exceptions import AlgorithmError
from repro.graphs import from_edges
from tests.conftest import assert_same_apsp


class TestBlockedFloydWarshall:
    @pytest.mark.parametrize("block_size", [1, 3, 16, 64, 1000])
    def test_matches_plain_fw(self, small_weighted, block_size):
        blocked = blocked_floyd_warshall(
            small_weighted, block_size=block_size
        )
        plain = floyd_warshall(small_weighted)
        fin = np.isfinite(plain)
        assert np.array_equal(np.isfinite(blocked), fin)
        assert np.allclose(blocked[fin], plain[fin])

    def test_matches_scipy_directed(self, directed_weighted):
        assert_same_apsp(
            blocked_floyd_warshall(directed_weighted, block_size=13),
            reference_apsp(directed_weighted),
        )

    def test_block_not_dividing_n(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], num_vertices=5)
        assert_same_apsp(
            blocked_floyd_warshall(g, block_size=2), reference_apsp(g)
        )

    def test_bad_block_size(self, toy_graph):
        with pytest.raises(AlgorithmError):
            blocked_floyd_warshall(toy_graph, block_size=0)

    def test_unreachable_pairs_kept(self):
        g = from_edges([(0, 1)], num_vertices=4)
        d = blocked_floyd_warshall(g, block_size=2)
        assert np.isinf(d[0, 3])


class TestPartitionedAPSP:
    @pytest.mark.parametrize("parts", [1, 2, 4, 9])
    def test_exact(self, small_weighted, parts):
        r = partitioned_apsp(small_weighted, num_parts=parts)
        assert_same_apsp(r.dist, reference_apsp(small_weighted))

    def test_directed_exact(self, directed_weighted):
        r = partitioned_apsp(directed_weighted, num_parts=3)
        assert_same_apsp(r.dist, reference_apsp(directed_weighted))

    def test_single_part_one_round(self, small_weighted):
        """With one part the local phase is already complete — the
        correcting loop only confirms the fixpoint."""
        r = partitioned_apsp(small_weighted, num_parts=1)
        assert r.rounds == 1
        assert r.cut_arcs == 0

    def test_more_parts_more_coordination(self, small_weighted):
        """The §6 story: partitioning forces boundary-correcting rounds
        — the coordination ParAPSP avoids."""
        r1 = partitioned_apsp(small_weighted, num_parts=1)
        r4 = partitioned_apsp(small_weighted, num_parts=4)
        assert r4.cut_arcs > 0
        assert r4.rounds > r1.rounds

    def test_parts_clamped_to_n(self, toy_graph):
        r = partitioned_apsp(toy_graph, num_parts=100)
        assert r.num_parts == 5
        assert_same_apsp(r.dist, reference_apsp(toy_graph))

    def test_invalid_parts(self, toy_graph):
        with pytest.raises(AlgorithmError):
            partitioned_apsp(toy_graph, num_parts=0)
