"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_present(self):
        parser = build_parser()
        for argv in (
            ["solve", "--dataset", "WordNet"],
            ["order", "--dataset", "WordNet"],
            ["bench"],
            ["datasets"],
            ["info"],
        ):
            assert parser.parse_args(argv).command == argv[0]

    def test_solve_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve"])

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "--dataset", "WordNet", "--algorithm", "magic"]
            )

    def test_block_size_accepts_int_and_auto(self):
        parser = build_parser()
        args = parser.parse_args(
            ["solve", "--dataset", "WordNet", "--block-size", "32"]
        )
        assert args.block_size == 32
        args = parser.parse_args(
            ["solve", "--dataset", "WordNet", "--block-size", "auto"]
        )
        assert args.block_size == "auto"

    @pytest.mark.parametrize("bad", ["0", "-4", "many"])
    def test_block_size_rejects_garbage(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "--dataset", "WordNet", "--block-size", bad]
            )


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "WordNet" in out
        assert "146,005" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "parapsp" in out
        assert "fig10" in out

    def test_solve_dataset_sim(self, capsys):
        code = main(
            [
                "solve",
                "--dataset",
                "WordNet",
                "--scale",
                "150",
                "--threads",
                "8",
                "--backend",
                "sim",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parapsp" in out
        assert "work units" in out

    def test_solve_writes_matrix(self, tmp_path, capsys):
        target = tmp_path / "d.npy"
        main(
            [
                "solve",
                "--dataset",
                "WordNet",
                "--scale",
                "100",
                "--out",
                str(target),
            ]
        )
        dist = np.load(target)
        assert dist.shape == (100, 100)
        assert np.all(np.diag(dist) == 0)

    def test_solve_edgelist(self, tmp_path, capsys):
        src = tmp_path / "g.txt"
        src.write_text("0 1\n1 2\n2 3\n")
        assert main(["solve", "--edgelist", str(src)]) == 0
        assert "n=4" in capsys.readouterr().out

    def test_solve_batched_emits_kernel_batch_metrics(
        self, tmp_path, capsys
    ):
        """ISSUE 2 acceptance: --block-size auto end-to-end with
        --metrics produces kernel.batch.* counters in the artifact."""
        from repro.obs import load_artifact
        from repro.obs.regress import check_kernel_consistency

        target = tmp_path / "BENCH_batched.json"
        code = main(
            [
                "solve",
                "--rmat",
                "6",
                "--seed",
                "3",
                "--block-size",
                "auto",
                "--metrics",
                str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "block size" in out
        artifact = load_artifact(str(target))
        counters = artifact["counters"]
        assert any(k.startswith("kernel.batch.") for k in counters)
        assert artifact["gauges"]["kernel.batch.block_size"] >= 1
        assert check_kernel_consistency(counters) == []

    def test_order_command(self, capsys):
        code = main(
            [
                "order",
                "--dataset",
                "WordNet",
                "--scale",
                "300",
                "--method",
                "multilists",
                "--threads",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "multilists" in out
        assert "exact=True" in out

    def test_analyze_command(self, capsys):
        assert main(
            ["analyze", "--dataset", "WordNet", "--scale", "150", "--top", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "diameter" in out
        assert "closeness" in out

    def test_paths_command(self, capsys):
        code = main(
            [
                "paths",
                "--dataset",
                "WordNet",
                "--scale",
                "150",
                "--source",
                "0",
                "--target",
                "10",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "->" in out

    def test_paths_unreachable(self, tmp_path, capsys):
        src = tmp_path / "g.txt"
        src.write_text("0 1\n2 3\n")
        code = main(
            [
                "paths",
                "--edgelist",
                str(src),
                "--source",
                "0",
                "--target",
                "3",
            ]
        )
        assert code == 1
        assert "unreachable" in capsys.readouterr().out

    def test_store_build_query_and_info(self, tmp_path, capsys):
        target = tmp_path / "g.dist"
        code = main(
            [
                "store", "--rmat", "6", "--out", str(target),
                "--shard-rows", "16", "--codec", "u16q",
                "--epsilon", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "codec     : u16q" in out
        assert "certified max abs error" in out
        assert "min" in out and "mean" in out and "max" in out

        assert main(["info", "--store", str(target)]) == 0
        out = capsys.readouterr().out
        assert "u16q" in out
        assert "repro.serve.store/2" in out

        assert main(
            ["query", "--store", str(target), "--u", "0", "--v", "5"]
        ) == 0
        assert "dist(0, 5)" in capsys.readouterr().out

        assert main(
            ["query", "--store", str(target), "--u", "0", "--v", "5",
             "--approx"]
        ) == 0
        out = capsys.readouterr().out
        assert "<= dist(0, 5) <=" in out
        assert "gap" in out

        # a generous error budget routes through the ALT short circuit
        assert main(
            ["query", "--store", str(target), "--u", "0", "--v", "5",
             "--max-error", "1000"]
        ) == 0
        assert "ALT" in capsys.readouterr().out

    def test_store_raw_reports_no_compression(self, tmp_path, capsys):
        target = tmp_path / "raw.dist"
        assert main(
            ["store", "--rmat", "5", "--out", str(target),
             "--shard-rows", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "codec     : raw" in out
        # n=32 → 32*32*8 bytes of shard payload
        assert "8192" in out

    def test_bench_single_experiment(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "-e",
                "table2",
                "--profile",
                "quick",
                "--save",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "table2.txt").exists()

    def test_monitor_command(self, tmp_path, capsys):
        from repro.serve import (
            JsonlSink,
            TelemetryCollector,
            generate_trace,
            replay_virtual,
        )
        from repro.serve.traffic import TrafficSpec

        log = tmp_path / "events.jsonl"
        sink = JsonlSink(str(log), params={"seed": 3})
        trace = generate_trace(
            TrafficSpec(num_requests=32, rate=2000.0, zipf_s=1.1, seed=3),
            128,
        )
        replay_virtual(
            trace, n=128, shard_rows=16, cache_shards=2, optimized=True,
            telemetry=TelemetryCollector(sink=sink),
        )
        sink.close()

        assert main(["monitor", str(log), "--check"]) == 0
        out = capsys.readouterr().out
        assert "valid" in out

        assert main(["monitor", str(log), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowest requests" in out
        assert "req-0000" in out

        assert main(["monitor", str(log), "--tail", "3"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema":"other/9"}\n{"not an event"}\n')
        assert main(["monitor", str(bad), "--check"]) == 1

    def test_serve_bench_flags_reach_bench(self, tmp_path, capsys):
        code = main(
            [
                "serve-bench",
                "--scale", "5",
                "--shard-rows", "8",
                "--cache-shards", "2",
                # raw's opt-vs-naive latency gate needs the CI scale;
                # the flag-plumbing check only needs a passing codec
                "--codec", "u16q",
                "--out", str(tmp_path / "BENCH_serve.json"),
                "--events", str(tmp_path / "events.jsonl"),
                "--request-trace", str(tmp_path / "req.json"),
            ]
        )
        assert code == 0
        assert (tmp_path / "BENCH_serve.json").exists()
        assert (tmp_path / "events.jsonl").exists()
        assert (tmp_path / "req.json").exists()
        assert main(
            ["monitor", str(tmp_path / "events.jsonl"), "--check"]
        ) == 0
