"""solve_apsp_cluster: exactness under any geometry and fault plan.

The contract under test: the cluster only decides the *virtual cost*
side of the result — the distance matrix must stay bitwise-identical
to ``solve_apsp(graph, use_flags=False)`` for every node count,
shard size, solver, straggler, and node kill.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import solve_apsp
from repro.dist import (
    CLUSTER_COMMODITY,
    CLUSTER_FAST,
    ClusterSpec,
    solve_apsp_cluster,
)
from repro.exceptions import FaultPlanError, SimulationError
from repro.faults import FaultPlan, FaultSpec, parse_fault_plan


@pytest.fixture(scope="module")
def reference_dist(small_weighted):
    return solve_apsp(small_weighted, use_flags=False).dist


class TestExactness:
    def test_fast_cluster_bitwise_equal(self, small_weighted,
                                        reference_dist):
        result = solve_apsp_cluster(small_weighted, CLUSTER_FAST)
        assert result.dist.tobytes() == reference_dist.tobytes()

    def test_commodity_cluster_same_answer_higher_cost(
        self, small_weighted, reference_dist
    ):
        fast = solve_apsp_cluster(small_weighted, CLUSTER_FAST)
        slow = solve_apsp_cluster(small_weighted, CLUSTER_COMMODITY)
        assert slow.dist.tobytes() == reference_dist.tobytes()
        # the commodity interconnect only changes the bill
        assert slow.makespan > fast.makespan
        assert slow.network_bytes == fast.network_bytes

    @settings(max_examples=20, deadline=None)
    @given(
        num_nodes=st.integers(min_value=1, max_value=6),
        threads=st.integers(min_value=1, max_value=8),
        shard_rows=st.integers(min_value=1, max_value=40),
    )
    def test_any_geometry_bitwise_equal(
        self, small_weighted, reference_dist, num_nodes, threads,
        shard_rows
    ):
        cluster = ClusterSpec(
            name="t", num_nodes=num_nodes, threads_per_node=threads
        )
        result = solve_apsp_cluster(
            small_weighted, cluster, shard_rows=shard_rows
        )
        assert result.dist.tobytes() == reference_dist.tobytes()
        assert result.num_shards == -(-small_weighted.num_vertices
                                      // shard_rows)

    def test_registry_solvers_agree(self, small_weighted,
                                    reference_dist):
        result = solve_apsp_cluster(
            small_weighted, CLUSTER_FAST, algorithm="delta-stepping"
        )
        # delta-stepping is exact; through the cluster pipeline it must
        # match the sweep family to the last ulp as well
        assert np.array_equal(result.dist, reference_dist)


class TestFaults:
    def test_node_kill_recovers_bitwise(self, small_weighted,
                                        reference_dist):
        plan = FaultPlan((FaultSpec(kind="kill", worker=1,
                                    after_claims=1),))
        clean = solve_apsp_cluster(small_weighted, CLUSTER_FAST)
        faulted = solve_apsp_cluster(
            small_weighted, CLUSTER_FAST, fault_plan=plan
        )
        assert faulted.dist.tobytes() == reference_dist.tobytes()
        assert faulted.lost_ranks == (1,)
        assert faulted.recovered_by  # someone re-solved the lost shards
        assert all(r != 1 for r in faulted.recovered_by.values())
        # recovery time lands on survivors' timelines; the *makespan*
        # may even drop (shards recovered by the assembly rank stop
        # paying network), so gate the recovery cost itself
        assert clean.total_work == faulted.total_work
        assert sum(r["recovery"] for r in faulted.per_rank) > 0
        assert all(r["recovery"] == 0.0 for r in clean.per_rank)

    def test_straggler_stalls_but_does_not_change_answers(
        self, small_weighted, reference_dist
    ):
        plan = parse_fault_plan("stall:worker=0,for=1e6")
        clean = solve_apsp_cluster(small_weighted, CLUSTER_FAST)
        faulted = solve_apsp_cluster(
            small_weighted, CLUSTER_FAST, fault_plan=plan
        )
        assert faulted.dist.tobytes() == reference_dist.tobytes()
        assert faulted.lost_ranks == ()
        assert faulted.makespan > clean.makespan
        assert faulted.per_rank[0]["stall"] == 1e6

    @settings(max_examples=15, deadline=None)
    @given(
        victim=st.integers(min_value=0, max_value=3),
        after=st.integers(min_value=1, max_value=4),
        stalled=st.integers(min_value=0, max_value=3),
    )
    def test_any_kill_stall_combo_bitwise_equal(
        self, small_weighted, reference_dist, victim, after, stalled
    ):
        plan = FaultPlan((
            FaultSpec(kind="kill", worker=victim, after_claims=after),
            FaultSpec(kind="stall", worker=stalled, seconds=123.0),
        ))
        result = solve_apsp_cluster(
            small_weighted, CLUSTER_FAST, fault_plan=plan
        )
        assert result.dist.tobytes() == reference_dist.tobytes()
        assert result.lost_ranks == (victim,)

    def test_killing_every_rank_is_rejected(self, small_weighted):
        plan = FaultPlan(tuple(
            FaultSpec(kind="kill", worker=w, after_claims=1)
            for w in range(CLUSTER_FAST.num_nodes)
        ))
        with pytest.raises(FaultPlanError, match="kills every rank"):
            solve_apsp_cluster(small_weighted, CLUSTER_FAST,
                               fault_plan=plan)

    def test_unsupported_fault_kind_rejected(self, small_weighted):
        plan = FaultPlan((FaultSpec(kind="raise", worker=0,
                                    iteration=0),))
        with pytest.raises(FaultPlanError, match="kill/stall"):
            solve_apsp_cluster(small_weighted, CLUSTER_FAST,
                               fault_plan=plan)


class TestCostModel:
    def test_network_bytes_are_remote_elements(self, small_weighted):
        result = solve_apsp_cluster(small_weighted, CLUSTER_FAST)
        n = small_weighted.num_vertices
        # every shard not owned by rank 0 ships n*8 bytes per row
        remote_rows = sum(
            min(result.shard_rows, n - s * result.shard_rows)
            for s in range(result.num_shards)
            if s % CLUSTER_FAST.num_nodes != 0
        )
        assert result.network_bytes == remote_rows * n * 8

    def test_single_node_ships_nothing(self, small_weighted):
        cluster = ClusterSpec(name="solo", num_nodes=1,
                              threads_per_node=4)
        result = solve_apsp_cluster(small_weighted, cluster)
        assert result.network_bytes == 0
        assert result.assembly_time == 0.0

    def test_makespan_includes_assembly(self, small_weighted):
        result = solve_apsp_cluster(small_weighted, CLUSTER_FAST)
        slowest = max(r["compute"] + r["recovery"] + r["stall"]
                      for r in result.per_rank)
        assert result.makespan == pytest.approx(
            slowest + result.assembly_time
        )

    def test_summary_is_json_ready(self, small_weighted):
        result = solve_apsp_cluster(small_weighted, CLUSTER_FAST)
        summary = result.to_summary()
        parsed = json.loads(json.dumps(summary))
        assert parsed["num_nodes"] == CLUSTER_FAST.num_nodes
        assert parsed["recovered_shards"] == 0


class TestValidation:
    def test_empty_graph_rejected(self):
        from repro.graphs import from_edges

        empty = from_edges([], num_vertices=0)
        with pytest.raises(SimulationError, match="non-empty"):
            solve_apsp_cluster(empty, CLUSTER_FAST)

    def test_bad_shard_rows_rejected(self, small_weighted):
        with pytest.raises(SimulationError, match="shard_rows"):
            solve_apsp_cluster(small_weighted, CLUSTER_FAST,
                               shard_rows=0)
