"""Distributed-memory ParAPSP simulation (§7 future-work extension)."""

import numpy as np
import pytest

from repro.baselines import reference_apsp
from repro.dist import (
    CLUSTER_COMMODITY,
    CLUSTER_FAST,
    ClusterSpec,
    simulate_distributed_apsp,
)
from repro.exceptions import SimulationError
from tests.conftest import assert_same_apsp


def cluster(nodes=2, threads=4, **kw):
    return ClusterSpec(
        name="test", num_nodes=nodes, threads_per_node=threads, **kw
    )


class TestClusterSpec:
    def test_worker_geometry(self):
        c = cluster(nodes=3, threads=4)
        assert c.total_workers == 12
        assert c.rank_of_worker(0) == 0
        assert c.rank_of_worker(4) == 1
        assert c.rank_of_worker(11) == 2

    def test_broadcast_delay_zero_single_node(self):
        assert cluster(nodes=1).row_broadcast_delay(1000) == 0.0

    def test_broadcast_delay_alpha_beta(self):
        c = cluster(nodes=2, latency=100.0, per_element_cost=2.0)
        assert c.row_broadcast_delay(50) == 100.0 + 100.0

    def test_broadcast_bytes(self):
        c = cluster(nodes=4)
        assert c.row_broadcast_bytes(100) == 8 * 100 * 3

    def test_validation(self):
        with pytest.raises(SimulationError):
            cluster(nodes=0)
        with pytest.raises(SimulationError):
            cluster(threads=0)
        with pytest.raises(SimulationError):
            cluster(threads=64)  # exceeds MACHINE_I cores
        with pytest.raises(SimulationError):
            cluster(latency=-1.0)

    def test_presets(self):
        assert CLUSTER_FAST.latency < CLUSTER_COMMODITY.latency


class TestSimulation:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_exact_at_any_node_count(self, small_weighted, nodes):
        r = simulate_distributed_apsp(small_weighted, cluster(nodes=nodes))
        assert_same_apsp(r.dist, reference_apsp(small_weighted))

    def test_more_nodes_reduce_makespan(self):
        # big enough that parallelism beats the delayed-reuse penalty
        from repro.graphs import load_dataset

        graph = load_dataset("WordNet", scale=600)
        times = {
            nodes: simulate_distributed_apsp(
                graph, cluster(nodes=nodes, threads=8)
            ).makespan
            for nodes in (1, 2, 4)
        }
        assert times[4] < times[2] < times[1]

    def test_delayed_reuse_costs_work(self, wordnet_tiny):
        """The structural trade-off: remote rows arrive late, so multi-
        node runs do more algorithmic work than single-node runs."""
        w1 = simulate_distributed_apsp(
            wordnet_tiny, cluster(nodes=1, threads=8)
        ).total_work
        w4 = simulate_distributed_apsp(
            wordnet_tiny, cluster(nodes=4, threads=8)
        ).total_work
        assert w4 >= w1

    def test_slower_network_costs_more_work(self, wordnet_tiny):
        fast = simulate_distributed_apsp(
            wordnet_tiny,
            cluster(nodes=4, threads=8, latency=1_000.0, per_element_cost=0.1),
        ).total_work
        slow = simulate_distributed_apsp(
            wordnet_tiny,
            cluster(nodes=4, threads=8, latency=200_000.0,
                    per_element_cost=50.0),
        ).total_work
        assert slow >= fast

    def test_network_bytes_accounted(self, small_weighted):
        n = small_weighted.num_vertices
        r = simulate_distributed_apsp(small_weighted, cluster(nodes=3))
        assert r.network_bytes == n * 8 * n * 2

    def test_single_node_no_traffic(self, small_weighted):
        r = simulate_distributed_apsp(small_weighted, cluster(nodes=1))
        assert r.network_bytes == 0

    def test_custom_order(self, small_weighted):
        rng = np.random.default_rng(0)
        order = rng.permutation(small_weighted.num_vertices)
        r = simulate_distributed_apsp(
            small_weighted, cluster(), order=order
        )
        assert_same_apsp(r.dist, reference_apsp(small_weighted))
