"""Sequential counting sort."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.sort import check_stable_argsort, counting_argsort, counting_sort


class TestCountingArgsort:
    def test_ascending(self):
        keys = np.array([3, 1, 2, 1])
        perm = counting_argsort(keys)
        assert keys[perm].tolist() == [1, 1, 2, 3]

    def test_descending(self):
        keys = np.array([3, 1, 2, 1])
        perm = counting_argsort(keys, descending=True)
        assert keys[perm].tolist() == [3, 2, 1, 1]

    def test_stability_ascending(self):
        keys = np.array([2, 1, 2, 1, 2])
        perm = counting_argsort(keys)
        assert perm.tolist() == [1, 3, 0, 2, 4]

    def test_stability_descending(self):
        keys = np.array([2, 1, 2, 1, 2])
        perm = counting_argsort(keys, descending=True)
        assert perm.tolist() == [0, 2, 4, 1, 3]

    def test_matches_numpy_stable_sort(self):
        keys = np.random.default_rng(0).integers(0, 100, size=500)
        assert np.array_equal(
            counting_argsort(keys), np.argsort(keys, kind="stable")
        )

    def test_max_key_predeclared(self):
        keys = np.array([1, 3])
        perm = counting_argsort(keys, max_key=10)
        assert keys[perm].tolist() == [1, 3]

    def test_max_key_violated(self):
        with pytest.raises(ReproError, match="exceeds"):
            counting_argsort(np.array([11]), max_key=10)

    def test_negative_keys_rejected(self):
        with pytest.raises(ReproError, match="non-negative"):
            counting_argsort(np.array([-1, 2]))

    def test_float_keys_rejected(self):
        with pytest.raises(ReproError, match="integer"):
            counting_argsort(np.array([1.5, 2.0]))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ReproError, match="one-dimensional"):
            counting_argsort(np.zeros((2, 2), dtype=np.int64))

    def test_empty(self):
        assert counting_argsort(np.array([], dtype=np.int64)).size == 0

    def test_single(self):
        assert counting_argsort(np.array([7])).tolist() == [0]

    def test_all_equal(self):
        perm = counting_argsort(np.full(10, 4))
        assert perm.tolist() == list(range(10))  # stable

    def test_checker_accepts_result(self):
        keys = np.random.default_rng(1).integers(0, 20, size=100)
        check_stable_argsort(counting_argsort(keys), keys)
        check_stable_argsort(
            counting_argsort(keys, descending=True), keys, descending=True
        )


class TestCountingSort:
    def test_sorted_values(self):
        keys = np.array([5, 0, 3])
        assert counting_sort(keys).tolist() == [0, 3, 5]
        assert counting_sort(keys, descending=True).tolist() == [5, 3, 0]
