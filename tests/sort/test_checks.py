"""Sort validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.sort import check_sorted, check_stable_argsort


class TestCheckSorted:
    def test_accepts_sorted(self):
        check_sorted(np.array([1, 2, 2, 3]))
        check_sorted(np.array([3, 2, 2, 1]), descending=True)
        check_sorted(np.array([5]))
        check_sorted(np.array([]))

    def test_rejects_unsorted(self):
        with pytest.raises(ValidationError, match="position 1"):
            check_sorted(np.array([1, 3, 2]))

    def test_rejects_wrong_direction(self):
        with pytest.raises(ValidationError):
            check_sorted(np.array([1, 2]), descending=True)


class TestCheckStableArgsort:
    def test_accepts_valid(self):
        keys = np.array([2, 1, 2])
        check_stable_argsort(np.array([1, 0, 2]), keys)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValidationError, match="permutation"):
            check_stable_argsort(np.array([0, 0, 1]), np.array([1, 2, 3]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match="out-of-range"):
            check_stable_argsort(np.array([0, 5]), np.array([1, 2]))

    def test_rejects_unsorted_result(self):
        with pytest.raises(ValidationError):
            check_stable_argsort(np.array([0, 1]), np.array([9, 1]))

    def test_rejects_unstable_ties(self):
        keys = np.array([4, 4])
        with pytest.raises(ValidationError, match="unstable"):
            check_stable_argsort(np.array([1, 0]), keys)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="shape"):
            check_stable_argsort(np.array([0]), np.array([1, 2]))
