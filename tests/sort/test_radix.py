"""Radix extension of the bounded-key sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ReproError
from repro.sort import check_stable_argsort, radix_argsort, radix_sort


class TestRadixArgsort:
    def test_matches_numpy_stable(self):
        keys = np.random.default_rng(0).integers(0, 10**12, size=1000)
        assert np.array_equal(
            radix_argsort(keys), np.argsort(keys, kind="stable")
        )

    def test_descending_stable(self):
        keys = np.array([5, 900, 5, 2, 900])
        perm = radix_argsort(keys, descending=True)
        check_stable_argsort(perm, keys, descending=True)
        assert perm.tolist() == [1, 4, 0, 2, 3]

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_parallel_passes_agree(self, threads):
        keys = np.random.default_rng(1).integers(0, 10**6, size=500)
        assert np.array_equal(
            radix_argsort(keys, num_threads=threads),
            np.argsort(keys, kind="stable"),
        )

    def test_huge_keys_beyond_fixed_range(self):
        """The whole point: keys far beyond any direct bucket count."""
        keys = np.array([2**62, 1, 2**40, 0, 2**62 - 1])
        assert radix_sort(keys).tolist() == sorted(keys.tolist())

    def test_single_digit_case(self):
        keys = np.array([3, 1, 2])
        assert radix_sort(keys).tolist() == [1, 2, 3]

    def test_empty_and_single(self):
        assert radix_argsort(np.array([], dtype=np.int64)).size == 0
        assert radix_argsort(np.array([42])).tolist() == [0]

    def test_all_equal(self):
        keys = np.full(50, 7)
        assert radix_argsort(keys).tolist() == list(range(50))
        assert radix_argsort(keys, descending=True).tolist() == list(range(50))

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            radix_argsort(np.array([-1, 2]))

    def test_float_rejected(self):
        with pytest.raises(ReproError):
            radix_argsort(np.array([1.5]))

    def test_2d_rejected(self):
        with pytest.raises(ReproError):
            radix_argsort(np.zeros((2, 2), dtype=np.int64))


class TestRadixProperties:
    @given(
        keys=hnp.arrays(
            dtype=np.int64,
            shape=st.integers(0, 150),
            elements=st.integers(0, 2**50),
        ),
        descending=st.booleans(),
        threads=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_stable_sorted(self, keys, descending, threads):
        perm = radix_argsort(
            keys, descending=descending, num_threads=threads,
            backend="serial",
        )
        check_stable_argsort(perm, keys, descending=descending)
