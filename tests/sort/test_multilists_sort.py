"""Parallel MultiLists sort vs the sequential reference."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.simx import MACHINE_I
from repro.sort import (
    check_stable_argsort,
    counting_argsort,
    multilists_argsort,
    multilists_sort,
    simulate_multilists_sort,
)


class TestEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("descending", [False, True])
    def test_matches_counting_sort_exactly(self, threads, descending):
        keys = np.random.default_rng(threads).integers(0, 64, size=777)
        seq = counting_argsort(keys, descending=descending)
        par = multilists_argsort(
            keys, descending=descending, num_threads=threads
        )
        assert np.array_equal(seq, par)

    def test_stability_preserved_in_parallel(self):
        keys = np.array([5] * 50 + [3] * 50)
        perm = multilists_argsort(keys, descending=True, num_threads=4)
        check_stable_argsort(perm, keys, descending=True)

    def test_sorted_values(self):
        keys = np.array([9, 1, 5])
        assert multilists_sort(keys).tolist() == [1, 5, 9]

    def test_serial_backend(self):
        keys = np.random.default_rng(9).integers(0, 32, size=100)
        a = multilists_argsort(keys, num_threads=4, backend="serial")
        b = counting_argsort(keys)
        assert np.array_equal(a, b)


class TestEdgeCases:
    def test_empty(self):
        assert multilists_argsort(np.array([], dtype=np.int64)).size == 0

    def test_more_threads_than_items(self):
        keys = np.array([2, 1])
        perm = multilists_argsort(keys, num_threads=16)
        assert keys[perm].tolist() == [1, 2]

    def test_negative_keys_rejected(self):
        with pytest.raises(ReproError):
            multilists_argsort(np.array([-1]))

    def test_max_key_violation(self):
        with pytest.raises(ReproError, match="exceeds"):
            multilists_argsort(np.array([99]), max_key=10)

    def test_single_key_value(self):
        keys = np.zeros(20, dtype=np.int64)
        assert multilists_argsort(keys, num_threads=3).tolist() == list(
            range(20)
        )


class TestSimulatedCost:
    def test_scales_with_threads(self):
        keys = np.random.default_rng(2).integers(0, 100, size=100_000)
        t1 = simulate_multilists_sort(keys, MACHINE_I, num_threads=1)
        t8 = simulate_multilists_sort(keys, MACHINE_I, num_threads=8)
        assert t8.makespan < t1.makespan / 4

    def test_accounting_invariant(self):
        keys = np.random.default_rng(3).integers(0, 50, size=1000)
        r = simulate_multilists_sort(keys, MACHINE_I, num_threads=4)
        assert np.all(r.busy + r.overhead <= r.makespan + 1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            simulate_multilists_sort(
                np.array([], dtype=np.int64), MACHINE_I, num_threads=2
            )
