"""Figure 7: ParAlg1 vs ParAlg2 elapsed time —
regenerates the experiment and asserts its shape."""

def test_fig7(benchmark, run_and_report):
    run_and_report(benchmark, "fig7")
