"""Figure 4: ParBuckets vs ParMax ordering time —
regenerates the experiment and asserts its shape."""

def test_fig4(benchmark, run_and_report):
    run_and_report(benchmark, "fig4")
