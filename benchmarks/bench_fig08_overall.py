"""Figure 8: overall elapsed time of the three algorithms —
regenerates the experiment and asserts its shape."""

def test_fig8(benchmark, run_and_report):
    run_and_report(benchmark, "fig8")
