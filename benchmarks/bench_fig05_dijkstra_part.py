"""Figure 5: Dijkstra-phase time under different orders —
regenerates the experiment and asserts its shape."""

def test_fig5(benchmark, run_and_report):
    run_and_report(benchmark, "fig5")
