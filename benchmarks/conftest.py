"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module pairs micro-benchmarks (pytest-benchmark
timings of the real kernels) with one *experiment* benchmark that
regenerates a paper table/figure, writes its report under
``benchmarks/results/`` and asserts the paper's qualitative shape.

Experiments run on the ``quick`` profile so the whole suite stays in
the minutes range; ``python -m repro bench --profile full`` regenerates
the EXPERIMENTS.md numbers.

Observability: each experiment run also emits a machine-readable
``BENCH_<exp_id>.json`` artifact (schema ``repro.obs.bench/*``) next to
the ``.txt`` report, carrying the op counters and phase timings the
:mod:`repro.obs.regress` comparator can gate on.

Degradation: when ``pytest-benchmark`` is not installed, a fallback
``benchmark`` fixture skips every benchmark test instead of erroring, so
a bare ``pytest benchmarks/`` stays green with only the base deps.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import get_profile, run_experiment
from repro.obs import MetricsRegistry, build_artifact, use_registry, write_artifact

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

try:
    import pytest_benchmark  # noqa: F401

    HAVE_PYTEST_BENCHMARK = True
except ImportError:
    HAVE_PYTEST_BENCHMARK = False


if not HAVE_PYTEST_BENCHMARK:

    @pytest.fixture
    def benchmark():
        """Stand-in for the pytest-benchmark fixture: skip, don't error."""
        pytest.skip("pytest-benchmark is not installed")


@pytest.fixture(scope="session")
def profile():
    return get_profile("quick")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def run_and_report(profile, results_dir):
    """Run one experiment exactly once under the benchmark timer, save
    its report + BENCH artifact and assert the paper's shape holds."""

    def _run(benchmark, exp_id: str) -> None:
        registry = MetricsRegistry()
        t0 = time.perf_counter()
        with use_registry(registry):
            result = benchmark.pedantic(
                run_experiment, args=(exp_id, profile), rounds=1, iterations=1
            )
        wall = time.perf_counter() - t0
        path = os.path.join(results_dir, f"{exp_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(result.render() + "\n")
        artifact = build_artifact(
            exp_id,
            params={"experiment": exp_id, "profile": profile.name},
            counters={"experiment.holds": int(result.holds)},
            timings={"wall.experiment": wall},
            registry=registry,
        )
        write_artifact(
            os.path.join(results_dir, f"BENCH_{exp_id}.json"), artifact
        )
        assert result.holds, (
            f"{exp_id}: paper shape did not hold — {result.observed}"
        )

    return _run
