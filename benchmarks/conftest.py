"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module pairs micro-benchmarks (pytest-benchmark
timings of the real kernels) with one *experiment* benchmark that
regenerates a paper table/figure, writes its report under
``benchmarks/results/`` and asserts the paper's qualitative shape.

Experiments run on the ``quick`` profile so the whole suite stays in
the minutes range; ``python -m repro bench --profile full`` regenerates
the EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import get_profile, run_experiment

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def profile():
    return get_profile("quick")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def run_and_report(profile, results_dir):
    """Run one experiment exactly once under the benchmark timer, save
    its report and assert the paper's shape holds."""

    def _run(benchmark, exp_id: str) -> None:
        result = benchmark.pedantic(
            run_experiment, args=(exp_id, profile), rounds=1, iterations=1
        )
        path = os.path.join(results_dir, f"{exp_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(result.render() + "\n")
        assert result.holds, (
            f"{exp_id}: paper shape did not hold — {result.observed}"
        )

    return _run
