"""Table 2: dataset inventory — regenerates the experiment and asserts its shape."""

def test_table2(benchmark, run_and_report):
    run_and_report(benchmark, "table2")
