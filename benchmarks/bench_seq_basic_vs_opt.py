"""ablation: sequential basic vs optimized APSP —
regenerates the experiment and asserts its shape."""

def test_seq_basic_vs_opt(benchmark, run_and_report):
    run_and_report(benchmark, "seq-basic-vs-opt")
