"""Table 1: selection vs ParBuckets ordering time —
regenerates the experiment and asserts its shape."""

def test_table1(benchmark, run_and_report):
    run_and_report(benchmark, "table1")
