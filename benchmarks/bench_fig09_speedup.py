"""Figure 9: speedup of the three algorithms —
regenerates the experiment and asserts its shape."""

def test_fig9(benchmark, run_and_report):
    run_and_report(benchmark, "fig9")
