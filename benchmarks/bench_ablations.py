"""Ablation benches (DESIGN.md §4): queue discipline, ParMax threshold,
MultiLists parRatio, dynamic chunk size, degree definition."""


def test_queue_discipline(benchmark, run_and_report):
    run_and_report(benchmark, "queue-discipline")


def test_parmax_threshold(benchmark, run_and_report):
    run_and_report(benchmark, "parmax-threshold")


def test_multilists_parratio(benchmark, run_and_report):
    run_and_report(benchmark, "multilists-parratio")


def test_chunk_size(benchmark, run_and_report):
    run_and_report(benchmark, "chunk-size")


def test_degree_kind(benchmark, run_and_report):
    run_and_report(benchmark, "degree-kind")
