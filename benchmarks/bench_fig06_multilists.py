"""Figure 6: ParMax vs MultiLists ordering time —
regenerates the experiment and asserts its shape."""

def test_fig6(benchmark, run_and_report):
    run_and_report(benchmark, "fig6")
