"""Figure 3: WordNet degree distribution —
regenerates the experiment and asserts its shape."""

def test_fig3(benchmark, run_and_report):
    run_and_report(benchmark, "fig3")
