"""Micro-benchmarks of the real (wall-clock) kernels.

These time the actual Python/numpy implementations — the sweeps, the
ordering procedures, the sorts and the baselines — as opposed to the
experiment benches, which report virtual time from the simulated
machine.
"""

import numpy as np
import pytest

from repro.baselines import floyd_warshall, repeated_dijkstra
from repro.core import (
    modified_dijkstra_sssp,
    new_state,
    resolve_kernel,
    run_sweep,
    solve_apsp,
)
from repro.graphs import degree_array, load_dataset
from repro.order import (
    exact_bucket_order,
    multilists_order,
    par_buckets_order,
    par_max_order,
    selection_order,
)
from repro.sort import counting_argsort, multilists_argsort
from repro.types import OpCounts


@pytest.fixture(scope="module")
def graph():
    return load_dataset("WordNet", scale=400)


@pytest.fixture(scope="module")
def degrees(graph):
    return degree_array(graph)


@pytest.fixture(scope="module")
def big_degrees():
    return degree_array(load_dataset("WordNet", scale=20000))


def test_modified_dijkstra_single_sweep(benchmark, graph):
    state = new_state(graph.num_vertices)

    def sweep():
        state.reset()
        return modified_dijkstra_sssp(graph, 0, state)

    benchmark(sweep)


def test_seq_basic_apsp(benchmark, graph):
    benchmark.pedantic(
        lambda: solve_apsp(graph, algorithm="seq-basic"),
        rounds=1,
        iterations=1,
    )


def test_seq_opt_apsp(benchmark, graph):
    benchmark.pedantic(
        lambda: solve_apsp(graph, algorithm="seq-opt"),
        rounds=1,
        iterations=1,
    )


def test_floyd_warshall_baseline(benchmark, graph):
    benchmark.pedantic(lambda: floyd_warshall(graph), rounds=1, iterations=1)


def test_repeated_dijkstra_baseline(benchmark, graph):
    benchmark.pedantic(
        lambda: repeated_dijkstra(graph), rounds=1, iterations=1
    )


def test_selection_ordering(benchmark, degrees):
    benchmark(lambda: selection_order(degrees))


def test_exact_bucket_ordering(benchmark, big_degrees):
    benchmark(lambda: exact_bucket_order(big_degrees))


def test_parbuckets_ordering_real(benchmark, big_degrees):
    benchmark(
        lambda: par_buckets_order(big_degrees, num_threads=4, backend="threads")
    )


def test_parmax_ordering_real(benchmark, big_degrees):
    benchmark(
        lambda: par_max_order(big_degrees, num_threads=4, backend="threads")
    )


def test_multilists_ordering_real(benchmark, big_degrees):
    benchmark(
        lambda: multilists_order(big_degrees, num_threads=4, backend="threads")
    )


def test_unbatched_sweep(benchmark, graph):
    n = graph.num_vertices
    benchmark.pedantic(
        lambda: run_sweep(graph, np.arange(n)), rounds=1, iterations=1
    )


def test_batched_sweep_blocked_kernel(benchmark, graph):
    n = graph.num_vertices
    benchmark.pedantic(
        lambda: run_sweep(graph, np.arange(n), block_size=64),
        rounds=1,
        iterations=1,
    )


def test_batched_sweep_flagless_whole_block(benchmark, graph):
    """The headline regime: independent sweeps, full block occupancy."""
    n = graph.num_vertices
    benchmark.pedantic(
        lambda: run_sweep(
            graph, np.arange(n), use_flags=False, block_size=n
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("block", [16, 64, 256])
def test_merge_block_kernel(benchmark, block):
    kern = resolve_kernel("blocked")
    rng = np.random.default_rng(0)
    dist = rng.uniform(1.0, 100.0, size=(2 * block, 2048))
    rows = np.arange(block, dtype=np.int64)
    hubs = rows + block
    benchmark(lambda: kern.merge_block(dist, rows, hubs % 2048))


def _opcounts_workload():
    """4096 varied counters — one per source of a mid-size APSP run."""
    return [
        OpCounts(
            pops=i,
            edge_relaxations=2 * i,
            edge_improvements=i,
            row_merges=i % 5,
            merge_comparisons=400 * (i % 5),
            flag_hits=i % 3,
        )
        for i in range(4096)
    ]


def test_opcounts_sum_reduction(benchmark):
    """ISSUE 2 satellite: OpCounts.sum vs the per-object += fold."""
    counts = _opcounts_workload()
    benchmark(lambda: OpCounts.sum(counts))


def test_opcounts_iadd_fold_reference(benchmark):
    """The loop OpCounts.sum replaced, on the identical workload."""
    counts = _opcounts_workload()

    def fold():
        total = OpCounts()
        for c in counts:
            total += c
        return total

    benchmark(fold)


def test_counting_argsort(benchmark, big_degrees):
    benchmark(lambda: counting_argsort(big_degrees, descending=True))


def test_multilists_argsort(benchmark, big_degrees):
    benchmark(
        lambda: multilists_argsort(
            big_degrees, descending=True, num_threads=4
        )
    )
