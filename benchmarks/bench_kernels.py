"""Micro-benchmarks of the real (wall-clock) kernels.

These time the actual Python/numpy implementations — the sweeps, the
ordering procedures, the sorts and the baselines — as opposed to the
experiment benches, which report virtual time from the simulated
machine.
"""

import pytest

from repro.baselines import floyd_warshall, repeated_dijkstra
from repro.core import modified_dijkstra_sssp, new_state, solve_apsp
from repro.graphs import degree_array, load_dataset
from repro.order import (
    exact_bucket_order,
    multilists_order,
    par_buckets_order,
    par_max_order,
    selection_order,
)
from repro.sort import counting_argsort, multilists_argsort


@pytest.fixture(scope="module")
def graph():
    return load_dataset("WordNet", scale=400)


@pytest.fixture(scope="module")
def degrees(graph):
    return degree_array(graph)


@pytest.fixture(scope="module")
def big_degrees():
    return degree_array(load_dataset("WordNet", scale=20000))


def test_modified_dijkstra_single_sweep(benchmark, graph):
    state = new_state(graph.num_vertices)

    def sweep():
        state.reset()
        return modified_dijkstra_sssp(graph, 0, state)

    benchmark(sweep)


def test_seq_basic_apsp(benchmark, graph):
    benchmark.pedantic(
        lambda: solve_apsp(graph, algorithm="seq-basic"),
        rounds=1,
        iterations=1,
    )


def test_seq_opt_apsp(benchmark, graph):
    benchmark.pedantic(
        lambda: solve_apsp(graph, algorithm="seq-opt"),
        rounds=1,
        iterations=1,
    )


def test_floyd_warshall_baseline(benchmark, graph):
    benchmark.pedantic(lambda: floyd_warshall(graph), rounds=1, iterations=1)


def test_repeated_dijkstra_baseline(benchmark, graph):
    benchmark.pedantic(
        lambda: repeated_dijkstra(graph), rounds=1, iterations=1
    )


def test_selection_ordering(benchmark, degrees):
    benchmark(lambda: selection_order(degrees))


def test_exact_bucket_ordering(benchmark, big_degrees):
    benchmark(lambda: exact_bucket_order(big_degrees))


def test_parbuckets_ordering_real(benchmark, big_degrees):
    benchmark(
        lambda: par_buckets_order(big_degrees, num_threads=4, backend="threads")
    )


def test_parmax_ordering_real(benchmark, big_degrees):
    benchmark(
        lambda: par_max_order(big_degrees, num_threads=4, backend="threads")
    )


def test_multilists_ordering_real(benchmark, big_degrees):
    benchmark(
        lambda: multilists_order(big_degrees, num_threads=4, backend="threads")
    )


def test_counting_argsort(benchmark, big_degrees):
    benchmark(lambda: counting_argsort(big_degrees, descending=True))


def test_multilists_argsort(benchmark, big_degrees):
    benchmark(
        lambda: multilists_argsort(
            big_degrees, descending=True, num_threads=4
        )
    )
