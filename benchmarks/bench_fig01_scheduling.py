"""Figure 1: scheduling scheme effect on ParAlg2 —
regenerates the experiment and asserts its shape."""

def test_fig1(benchmark, run_and_report):
    run_and_report(benchmark, "fig1")
