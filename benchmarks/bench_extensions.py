"""Extension benches: the adaptive variant and the §7 distributed study."""


def test_adaptive_vs_opt(benchmark, run_and_report):
    run_and_report(benchmark, "adaptive-vs-opt")


def test_distributed_scaling(benchmark, run_and_report):
    run_and_report(benchmark, "distributed-scaling")


def test_related_work(benchmark, run_and_report):
    run_and_report(benchmark, "related-work")
