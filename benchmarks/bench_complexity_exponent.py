"""ablation: empirical O(n^2.4) complexity claim —
regenerates the experiment and asserts its shape."""

def test_complexity_exponent(benchmark, run_and_report):
    run_and_report(benchmark, "complexity-exponent")
