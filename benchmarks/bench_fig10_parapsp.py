"""Figure 10: ParAPSP on every dataset, both machines —
regenerates the experiment and asserts its shape."""

def test_fig10(benchmark, run_and_report):
    run_and_report(benchmark, "fig10")
