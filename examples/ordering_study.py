#!/usr/bin/env python
"""Tour of the ordering procedures (paper §4) and the general sort.

Walks the whole family on one power-law graph:

* selection (Algorithm 3's O(n²) loop) — exact, sequential, slow;
* ParBuckets (Algorithm 5) — approximate, parallel, lock-contended;
* ParMax (Algorithm 6) — exact, threshold-split locking;
* MultiLists (Algorithm 7) — exact, lock-free, ParAPSP's choice;

printing, per procedure, the real execution stats and the virtual time
on the simulated 16-core machine, plus the bucket-list illustration of
the paper's Figure 2 and the §4.3 general-purpose sort.

Run:  python examples/ordering_study.py
"""

import numpy as np

from repro import MACHINE_I
from repro.analysis import format_table
from repro.graphs import degree_array, load_dataset
from repro.order import (
    bucket_fill_counts,
    check_ordering,
    compute_order,
    simulate_order,
)
from repro.sort import counting_argsort, multilists_argsort

METHODS = ("selection", "parbuckets", "parmax", "multilists")


def main() -> None:
    graph = load_dataset("WordNet", scale=3000)
    degrees = degree_array(graph)
    print(f"graph: {graph!r}, degrees in [{degrees.min()}, {degrees.max()}]")

    # --- Figure 2: what the bucket list looks like -----------------------
    fills = bucket_fill_counts(degrees, num_bins=100)
    print("\nEq. (1) bucket occupancy (Figure 2's list of buckets):")
    print(f"  bucket   0 (lowest degrees) : {fills[0]:>6} vertices "
          "<- the lock hot spot of ParBuckets")
    for b in np.flatnonzero(fills)[1:6]:
        print(f"  bucket {b:>3}                  : {fills[b]:>6} vertices")
    print(f"  ... {np.count_nonzero(fills)} of {fills.size} buckets populated")

    # --- run every procedure for real + on the simulated machine ---------
    rows = []
    for method in METHODS:
        real = compute_order(method, degrees, num_threads=4, backend="threads")
        check_ordering(real, degrees)
        sim = simulate_order(method, degrees, MACHINE_I, num_threads=8)
        rows.append(
            (
                method,
                "yes" if real.exact else "approx",
                int(real.stats.get("lock_acquisitions", 0)),
                int(real.stats.get("lock_contended", 0)),
                sim.virtual_time,
            )
        )
    print()
    print(format_table(
        ("procedure", "exact?", "lock acquisitions (real, 4 threads)",
         "contended", "virtual time (sim, 8 threads)"),
        rows,
        title="ordering procedures on one power-law graph",
    ))

    # --- §4.3: the MultiLists machinery as a general-purpose sort --------
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 256, size=50_000)
    seq = counting_argsort(keys, descending=True)
    par = multilists_argsort(keys, descending=True, num_threads=4)
    assert np.array_equal(seq, par)
    print(
        "\ngeneral fixed-range sort: parallel MultiLists argsort over "
        f"{keys.size} byte keys matches sequential counting sort ✓"
    )


if __name__ == "__main__":
    main()
