#!/usr/bin/env python
"""Seeing §4.2 instead of reading it: Gantt charts + lock attribution.

Runs ParBuckets and MultiLists on the simulated 8-thread machine with
tracing enabled, renders each run as an ASCII Gantt chart (busy / lock
wait / idle per thread) and prints the per-lock wait attribution —
which shows the lowest degree buckets absorbing essentially all of
ParBuckets' waiting, while MultiLists has no locks to wait on.

Run:  python examples/contention_gantt.py
"""

from repro.analysis import attribute_contention
from repro.graphs import degree_array, load_dataset
from repro.order import simulate_multilists, simulate_par_buckets
from repro.simx import MACHINE_I, render_gantt


def main() -> None:
    graph = load_dataset("WordNet", scale=3000)
    degrees = degree_array(graph)
    threads = 8
    print(f"graph: {graph!r}, {threads} simulated threads\n")

    # --- ParBuckets: shared buckets, per-bucket locks ---------------------
    pb = simulate_par_buckets(
        degrees, MACHINE_I, num_threads=threads, trace=True
    )
    print("ParBuckets (Algorithm 5) — shared buckets behind locks")
    print(render_gantt(pb.sim, width=64))
    print()
    print(attribute_contention(pb.sim).render(k=4))
    print(
        f"\nmakespan: {pb.virtual_time:,.0f} work units, "
        f"{int(pb.stats['lock_contended']):,} contended acquisitions\n"
    )

    # --- MultiLists: thread-private buckets, no locks ---------------------
    ml = simulate_multilists(degrees, MACHINE_I, num_threads=threads)
    print("MultiLists (Algorithm 7) — private buckets, lock-free")
    print(
        f"makespan: {ml.virtual_time:,.0f} work units, "
        f"{ml.sim.total_acquisitions} lock acquisitions"
    )
    print(
        f"\nParBuckets / MultiLists = "
        f"{pb.virtual_time / ml.virtual_time:.1f}x — the whole §4 story "
        "in one ratio."
    )


if __name__ == "__main__":
    main()
