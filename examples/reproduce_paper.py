#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one go.

Thin wrapper around the benchmark harness: runs all registered
experiments (Tables 1–2, Figures 1 and 3–10, plus the ablations) on the
chosen profile and prints each report.  Equivalent to::

    python -m repro bench --profile quick

Run:  python examples/reproduce_paper.py [quick|full]
"""

import sys

from repro.bench import experiment_ids, run_many


def main() -> None:
    profile = sys.argv[1] if len(sys.argv) > 1 else "quick"
    print(
        f"running {len(experiment_ids())} experiments on the "
        f"'{profile}' profile — see DESIGN.md for the per-experiment "
        "index and EXPERIMENTS.md for paper-vs-measured notes\n"
    )
    results = run_many(profile=profile, verbose=True)
    failed = [eid for eid, r, _ in results if not r.holds]
    print("=" * 72)
    print(f"{len(results) - len(failed)}/{len(results)} experiment shapes "
          "hold" + (f"; deviations: {', '.join(failed)}" if failed else ""))


if __name__ == "__main__":
    main()
