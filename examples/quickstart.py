#!/usr/bin/env python
"""Quickstart: solve all-pairs shortest paths with ParAPSP.

Covers the 90% use case in ~40 lines:

* build a graph (from edges, a generator, or the dataset registry);
* solve APSP with the paper's algorithm on a real backend;
* replay the same solve on the simulated 16-core Machine-I to see the
  multi-thread behaviour this host cannot produce natively;
* sanity-check the result against scipy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Backend, load_dataset, solve_apsp
from repro.baselines import assert_matches_reference
from repro.graphs import from_edges


def main() -> None:
    # --- 1. build a graph ------------------------------------------------
    # tiny hand-made graph: (u, v, weight) triples
    toy = from_edges(
        [(0, 1, 1.0), (1, 2, 2.0), (0, 3, 4.0), (3, 2, 1.0), (2, 4, 3.0)],
        num_vertices=5,
    )
    result = solve_apsp(toy, algorithm="parapsp")
    print("toy graph distances from vertex 0:", result.dist[0].tolist())

    # --- 2. a realistic scale-free graph from the dataset registry -------
    graph = load_dataset("WordNet", scale=400)
    print(f"\nloaded {graph!r}")

    # real serial run (exact, wall-clock timed)
    serial = solve_apsp(graph, algorithm="parapsp", backend=Backend.SERIAL)
    print(
        f"serial solve: ordering {serial.phase_times.ordering * 1e3:.2f} ms, "
        f"dijkstra {serial.phase_times.dijkstra * 1e3:.1f} ms"
    )

    # --- 3. the same solve on the simulated 16-core Machine-I ------------
    t1 = solve_apsp(graph, algorithm="parapsp", num_threads=1, backend="sim")
    t16 = solve_apsp(graph, algorithm="parapsp", num_threads=16, backend="sim")
    print(
        f"simulated Machine-I: 1 thread = {t1.total_time:,.0f} work units, "
        f"16 threads = {t16.total_time:,.0f} "
        f"(speedup {t1.total_time / t16.total_time:.1f}x)"
    )

    # exactness: every algorithm/backend/thread-count yields the same matrix
    assert np.array_equal(serial.dist, t16.dist)

    # --- 4. validate against scipy ---------------------------------------
    assert_matches_reference(serial.dist, graph)
    print("\nresult matches scipy.sparse.csgraph.shortest_path ✓")

    finite = np.isfinite(serial.dist)
    np.fill_diagonal(finite, False)
    print(
        f"average shortest-path length: "
        f"{serial.dist[finite].mean():.3f} over {finite.sum()} reachable pairs"
    )


if __name__ == "__main__":
    main()
