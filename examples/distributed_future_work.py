#!/usr/bin/env python
"""Exploring the paper's §7 future work: distributed-memory ParAPSP.

The shared-memory algorithm's power comes from instantly-visible
finished rows.  On a cluster, a finished row must cross the network
before remote ranks can reuse it — so adding nodes buys parallelism at
the cost of *extra algorithmic work*.  This script quantifies that
trade-off on two simulated interconnects.

Run:  python examples/distributed_future_work.py
"""

from repro import load_dataset
from repro.analysis import format_table
from repro.dist import ClusterSpec, simulate_distributed_apsp

NETWORKS = {
    "fast interconnect": dict(latency=4_000.0, per_element_cost=0.6),
    "commodity network": dict(latency=40_000.0, per_element_cost=6.0),
}


def main() -> None:
    graph = load_dataset("WordNet", scale=600)
    print(f"graph: {graph!r}\n")

    rows = []
    baseline = None
    for net, costs in NETWORKS.items():
        for nodes in (1, 2, 4, 8):
            cluster = ClusterSpec(
                name=f"{net}/{nodes}",
                num_nodes=nodes,
                threads_per_node=8,
                **costs,
            )
            r = simulate_distributed_apsp(graph, cluster)
            if baseline is None:
                baseline = r.makespan
            rows.append(
                (
                    net,
                    nodes,
                    cluster.total_workers,
                    r.makespan,
                    round(baseline / r.makespan, 2),
                    round(r.total_work / 1e6, 2),
                    round(r.network_bytes / 1e6, 1),
                )
            )
    print(format_table(
        ("network", "nodes", "workers", "makespan", "speedup",
         "work (M units)", "traffic (MB)"),
        rows,
        title="distributed ParAPSP: speedup vs extra work (simulated)",
    ))

    print(
        "\ntakeaways: (1) nodes keep helping as long as the row-broadcast "
        "delay stays small\nagainst a sweep's duration; (2) a slow network "
        "inflates total work because remote\nrows arrive too late to be "
        "reused — the quantitative shape of the paper's §7 plan."
    )


if __name__ == "__main__":
    main()
