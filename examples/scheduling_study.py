#!/usr/bin/env python
"""The Figure 1 study as a script: why the schedule clause matters.

ParAlg2's whole point is issuing SSSP sources in descending-degree
order.  OpenMP's default *block* partitioning hands thread 0 the first
n/T sources and thread T-1 the last — so at any moment the machine is
working mostly on *low-priority* sources.  The cyclic schedules
(``static,1`` and ``dynamic,1``) interleave, and dynamic additionally
guarantees the global issue order equals the computed order.

This script sweeps all three schedules on the simulated Machine-I and
prints the elapsed-time table plus an ASCII rendition of Figure 1.

Run:  python examples/scheduling_study.py
"""

from repro import MACHINE_I, load_dataset, solve_apsp
from repro.analysis import ascii_plot, format_table

THREADS = (1, 2, 4, 8, 16)
SCHEDULES = ("block", "static-cyclic", "dynamic")


def main() -> None:
    graph = load_dataset("ca-HepPh", scale=500)
    print(f"graph: {graph!r} (stand-in for SNAP ca-HepPh)\n")

    rows = []
    series = {s: [] for s in SCHEDULES}
    for schedule in SCHEDULES:
        for t in THREADS:
            result = solve_apsp(
                graph,
                algorithm="paralg2",
                num_threads=t,
                backend="sim",
                schedule=schedule,
                machine=MACHINE_I,
            )
            rows.append((schedule, t, result.total_time))
            series[schedule].append((t, result.total_time))

    print(format_table(
        ("schedule", "threads", "elapsed (work units)"), rows,
        title="ParAlg2 under three OpenMP schedules (simulated Machine-I)",
    ))
    print()
    print(ascii_plot(series, xlabel="threads", ylabel="elapsed"))

    by = {(s, t): v for s, t, v in rows}
    t = THREADS[-1]
    print(
        f"\nat {t} threads: dynamic is "
        f"{by[('block', t)] / by[('dynamic', t)]:.1f}x faster than block "
        f"and {by[('static-cyclic', t)] / by[('dynamic', t)]:.2f}x vs "
        "static-cyclic — the paper's Figure 1 conclusion."
    )


if __name__ == "__main__":
    main()
