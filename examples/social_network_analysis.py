#!/usr/bin/env python
"""Complex-network analysis on top of the APSP matrix.

The paper's motivation (§1): shortest paths between all vertex pairs
are the raw material of complex-network analysis — centrality,
eccentricity, diameter, average path length.  This example runs ParAPSP
on a synthetic social network and derives exactly those metrics.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import solve_apsp
from repro.graphs import barabasi_albert, degree_array


def main() -> None:
    # a preferential-attachment "social network": early joiners become hubs
    n = 500
    graph = barabasi_albert(n, m=3, seed=42, name="social-net")
    degrees = degree_array(graph)
    print(f"network: {graph!r}, max degree {degrees.max()}")

    result = solve_apsp(graph, algorithm="parapsp", backend="serial")
    dist = result.dist

    # --- classic APSP-derived metrics -------------------------------------
    off_diag = ~np.eye(n, dtype=bool)
    finite = np.isfinite(dist) & off_diag
    if not finite.any():
        raise SystemExit("graph is fully disconnected?")

    avg_path = dist[finite].mean()
    # eccentricity of v: the farthest reachable vertex from v
    ecc = np.where(
        finite.any(axis=1), np.where(finite, dist, -np.inf).max(axis=1), np.nan
    )
    diameter = np.nanmax(ecc)
    radius = np.nanmin(ecc)

    # closeness centrality: reachable-count / total distance (Wasserman-Faust
    # normalisation for possibly-disconnected graphs)
    reach = finite.sum(axis=1)
    totals = np.where(finite, dist, 0.0).sum(axis=1)
    closeness = np.where(
        totals > 0, (reach / (n - 1)) * (reach / np.maximum(totals, 1e-12)), 0.0
    )

    print(f"average shortest-path length : {avg_path:.3f}")
    print(f"diameter / radius            : {diameter:.0f} / {radius:.0f}")
    print("small world check            : "
          f"{avg_path:.2f} ≈ O(log n) = {np.log(n):.2f}")

    top = np.argsort(-closeness)[:5]
    print("\ntop-5 by closeness centrality (hub degree in parentheses):")
    for rank, v in enumerate(top, 1):
        print(
            f"  {rank}. vertex {v:4d}  closeness={closeness[v]:.4f}  "
            f"(degree {degrees[v]})"
        )

    # hubs should dominate the centrality ranking in a scale-free network
    hubs = set(np.argsort(-degrees)[:20])
    overlap = len(hubs & set(top.tolist()))
    print(f"\n{overlap}/5 of the closeness top-5 are degree top-20 hubs — "
          "the structural fact the paper's optimized ordering exploits.")


if __name__ == "__main__":
    main()
