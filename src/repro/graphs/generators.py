"""Seeded random-graph generators.

The paper's datasets are real SNAP/KONECT graphs; offline we stand in for
them with seeded generative models that match the property the algorithms
exploit — the scale-free power-law degree distribution (paper §2.2, §4.2).

All generators take an integer ``seed`` and are fully deterministic for a
given (parameters, seed) pair, which the dataset registry and the
benchmark harness rely on.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..exceptions import GraphError
from ..types import VERTEX_DTYPE, WEIGHT_DTYPE
from .build import from_arc_arrays, from_edges
from .csr import CSRGraph

__all__ = [
    "barabasi_albert",
    "erdos_renyi",
    "powerlaw_configuration",
    "watts_strogatz",
    "random_weighted",
    "star",
    "path",
    "cycle",
    "complete",
    "grid_2d",
    "attach_random_weights",
    "attach_negative_weights",
    "negative_cycle_graph",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def barabasi_albert(
    n: int,
    m: int,
    *,
    seed: Optional[int] = None,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """Barabási–Albert preferential-attachment graph (scale-free).

    Each new vertex attaches to ``m`` existing vertices chosen with
    probability proportional to their current degree (implemented with
    the standard repeated-endpoints urn, which yields the exact BA
    process).  The result is connected and has the power-law degree
    tail the paper's optimized ordering exploits.
    """
    if m < 1 or n < m + 1:
        raise GraphError(f"barabasi_albert requires n > m >= 1; n={n}, m={m}")
    rng = _rng(seed)
    # urn of endpoints: every arc endpoint is one ball; sampling uniform
    # balls == sampling vertices proportional to degree
    targets = list(range(m))
    urn: list[int] = []
    edges = []
    for source in range(m, n):
        for t in targets:
            edges.append((source, t))
        urn.extend(targets)
        urn.extend([source] * m)
        # sample m distinct targets from the urn for the next vertex
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(urn[int(rng.integers(len(urn)))])
        targets = list(chosen)
    return from_edges(
        edges, num_vertices=n, directed=directed, name=name or f"ba-{n}-{m}"
    )


def erdos_renyi(
    n: int,
    p: float,
    *,
    seed: Optional[int] = None,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """Erdős–Rényi G(n, p) via geometric edge skipping (O(m) expected)."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = _rng(seed)
    us, vs = [], []
    if p > 0.0:
        # iterate over the strictly-upper-triangular (or full off-diagonal
        # for directed) index space, skipping ahead geometrically
        total = n * (n - 1) if directed else n * (n - 1) // 2
        log1mp = math.log1p(-p) if p < 1.0 else -math.inf
        k = -1
        while True:
            if p < 1.0:
                r = rng.random()
                skip = int(math.floor(math.log1p(-r) / log1mp))
                k += 1 + skip
            else:
                k += 1
            if k >= total:
                break
            if directed:
                u, rem = divmod(k, n - 1)
                v = rem if rem < u else rem + 1
            else:
                # invert the triangular index: k -> (u, v) with u < v
                u = int(
                    (2 * n - 1 - math.sqrt((2 * n - 1) ** 2 - 8 * k)) // 2
                )
                # adjust for floating error at triangle boundaries
                while k >= (u + 1) * n - (u + 1) * (u + 2) // 2:
                    u += 1
                while u > 0 and k < u * n - u * (u + 1) // 2:
                    u -= 1
                v = k - (u * n - u * (u + 1) // 2) + u + 1
            us.append(u)
            vs.append(v)
    return from_arc_arrays(
        np.asarray(us, dtype=VERTEX_DTYPE),
        np.asarray(vs, dtype=VERTEX_DTYPE),
        None,
        num_vertices=n,
        directed=directed,
        name=name or f"er-{n}-{p:g}",
    )


def powerlaw_configuration(
    n: int,
    exponent: float = 2.5,
    *,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    planted_hubs: tuple = (),
    seed: Optional[int] = None,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """Configuration-model graph with a power-law degree sequence.

    Degrees are drawn from ``P(k) ∝ k^-exponent`` on
    ``[min_degree, max_degree]``, stubs are paired uniformly at random,
    and self loops / parallel edges are dropped (the standard "erased"
    configuration model).  This gives direct control over the degree
    exponent, which drives the lock-contention effects in §4.

    ``planted_hubs`` is a tuple of fractions of ``max_degree``; for each
    fraction one vertex's degree is pinned to ``round(f × max_degree)``.
    Real scale-free graphs carry hubs far above what an n-vertex sample
    of the tail distribution would produce — planting restores the
    hub-to-median degree ratio when generating scaled-down stand-ins.
    """
    if exponent <= 1.0:
        raise GraphError(f"power-law exponent must exceed 1, got {exponent}")
    if min_degree < 1:
        raise GraphError("min_degree must be >= 1")
    if len(planted_hubs) >= n:
        raise GraphError("more planted hubs than vertices")
    rng = _rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(round(math.sqrt(n))))
    if max_degree >= n:
        max_degree = n - 1
    ks = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    probs = ks ** (-exponent)
    probs /= probs.sum()
    degrees = rng.choice(ks.astype(np.int64), size=n, p=probs)
    if planted_hubs:
        hub_ids = rng.choice(n, size=len(planted_hubs), replace=False)
        for vid, frac in zip(hub_ids, planted_hubs):
            if not 0.0 < frac <= 1.0:
                raise GraphError(
                    f"planted hub fraction must be in (0, 1], got {frac}"
                )
            degrees[vid] = max(min_degree, int(round(frac * max_degree)))
    if degrees.sum() % 2 == 1:  # stub count must be even
        degrees[int(rng.integers(n))] += 1
    stubs = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), degrees)
    rng.shuffle(stubs)
    half = stubs.size // 2
    src, dst = stubs[:half], stubs[half : 2 * half]
    keep = src != dst
    return from_arc_arrays(
        src[keep],
        dst[keep],
        None,
        num_vertices=n,
        directed=directed,
        name=name or f"plc-{n}-{exponent:g}",
    )


def watts_strogatz(
    n: int,
    k: int,
    p: float,
    *,
    seed: Optional[int] = None,
    name: str = "",
) -> CSRGraph:
    """Watts–Strogatz small-world ring with rewiring probability ``p``."""
    if k % 2 or k < 2 or k >= n:
        raise GraphError(f"watts_strogatz needs even k with 2 <= k < n; k={k}")
    rng = _rng(seed)
    edges = set()
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            if rng.random() < p:
                w = int(rng.integers(n))
                tries = 0
                while (w == u or (min(u, w), max(u, w)) in edges) and tries < 32:
                    w = int(rng.integers(n))
                    tries += 1
                if w != u and (min(u, w), max(u, w)) not in edges:
                    v = w
            if v != u:
                edges.add((min(u, v), max(u, v)))
    return from_edges(
        sorted(edges), num_vertices=n, directed=False, name=name or f"ws-{n}-{k}-{p:g}"
    )


def random_weighted(
    n: int,
    p: float,
    *,
    weight_range: tuple[float, float] = (0.5, 10.0),
    seed: Optional[int] = None,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """ER graph with uniform random positive weights (property tests)."""
    g = erdos_renyi(n, p, seed=seed, directed=directed, name=name)
    return attach_random_weights(g, weight_range=weight_range, seed=seed)


def attach_random_weights(
    graph: CSRGraph,
    *,
    weight_range: tuple[float, float] = (0.5, 10.0),
    seed: Optional[int] = None,
) -> CSRGraph:
    """Replace a graph's weights with seeded uniform random weights.

    For undirected graphs the two arcs of each edge get the same weight
    (keyed on the unordered endpoint pair) so symmetry is preserved.
    """
    lo, hi = weight_range
    if not (0 < lo <= hi):
        raise GraphError(f"weight range must satisfy 0 < lo <= hi, got {weight_range}")
    rng = _rng(seed)
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), np.diff(graph.indptr))
    dst = graph.indices
    if graph.directed:
        weights = rng.uniform(lo, hi, size=graph.num_arcs)
    else:
        # deterministic per-undirected-edge weight: draw per canonical
        # (min, max) pair, then broadcast to both arcs
        a = np.minimum(src, dst)
        b = np.maximum(src, dst)
        key = a * n + b
        uniq, inverse = np.unique(key, return_inverse=True)
        per_edge = rng.uniform(lo, hi, size=uniq.size)
        weights = per_edge[inverse]
    return CSRGraph(
        graph.indptr.copy(),
        graph.indices.copy(),
        weights.astype(WEIGHT_DTYPE),
        directed=graph.directed,
        name=graph.name and f"{graph.name}:weighted",
    )


def attach_negative_weights(
    graph: CSRGraph,
    *,
    potential_range: int = 5,
    seed: Optional[int] = None,
) -> CSRGraph:
    """Reweight a positive-weight *directed* graph so some arcs go
    negative while provably introducing no negative cycle.

    Draws an integer potential ``p[v]`` per vertex and sets
    ``w'(u, v) = w(u, v) + p[u] - p[v]``.  Along any cycle the potential
    terms telescope to zero, so every cycle keeps its original (positive)
    weight — the graph has negative arcs but no negative cycle, which is
    exactly the regime Johnson's algorithm must handle.  Integer
    potentials on integer-valued weights keep path sums exact in float64.
    """
    if not graph.directed:
        raise GraphError(
            "attach_negative_weights requires a directed graph: an "
            "undirected negative edge is itself a negative 2-cycle"
        )
    if potential_range < 1:
        raise GraphError("potential_range must be >= 1")
    rng = _rng(seed)
    n = graph.num_vertices
    p = rng.integers(0, potential_range + 1, size=n).astype(WEIGHT_DTYPE)
    src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), np.diff(graph.indptr))
    weights = graph.weights + p[src] - p[graph.indices]
    return CSRGraph(
        graph.indptr.copy(),
        graph.indices.copy(),
        weights,
        directed=True,
        name=graph.name and f"{graph.name}:neg",
        allow_negative=True,
    )


def negative_cycle_graph(*, name: str = "neg-cycle") -> CSRGraph:
    """Tiny directed graph containing a negative cycle (0→1→2→0).

    Fixture for negative-cycle detection tests: the 3-cycle sums to
    ``1 + 1 - 3 = -1`` and vertex 3 hangs off it so detection must work
    even with vertices outside the cycle.
    """
    indptr = np.array([0, 1, 2, 4, 4], dtype=VERTEX_DTYPE)
    indices = np.array([1, 2, 0, 3], dtype=VERTEX_DTYPE)
    weights = np.array([1.0, 1.0, -3.0, 2.0], dtype=WEIGHT_DTYPE)
    return CSRGraph(
        indptr, indices, weights,
        directed=True, name=name, allow_negative=True,
    )


# ----------------------------------------------------------------------
# deterministic toy topologies (unit tests, examples)
# ----------------------------------------------------------------------

def star(n: int, *, name: str = "") -> CSRGraph:
    """Star graph: hub 0 connected to vertices 1..n-1."""
    if n < 2:
        raise GraphError("star needs at least 2 vertices")
    edges = [(0, v) for v in range(1, n)]
    return from_edges(edges, num_vertices=n, name=name or f"star-{n}")


def path(n: int, *, name: str = "") -> CSRGraph:
    """Path graph 0-1-...-(n-1)."""
    if n < 1:
        raise GraphError("path needs at least 1 vertex")
    edges = [(v, v + 1) for v in range(n - 1)]
    return from_edges(edges, num_vertices=n, name=name or f"path-{n}")


def cycle(n: int, *, name: str = "") -> CSRGraph:
    """Cycle graph of n vertices."""
    if n < 3:
        raise GraphError("cycle needs at least 3 vertices")
    edges = [(v, (v + 1) % n) for v in range(n)]
    return from_edges(edges, num_vertices=n, name=name or f"cycle-{n}")


def complete(n: int, *, name: str = "") -> CSRGraph:
    """Complete graph K_n."""
    if n < 1:
        raise GraphError("complete needs at least 1 vertex")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return from_edges(edges, num_vertices=n, name=name or f"k-{n}")


def grid_2d(rows: int, cols: int, *, name: str = "") -> CSRGraph:
    """rows×cols 4-neighbour grid (a decidedly non-scale-free baseline)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return from_edges(
        edges, num_vertices=rows * cols, name=name or f"grid-{rows}x{cols}"
    )
