"""Constructors that build :class:`~repro.graphs.csr.CSRGraph` objects.

All builders are pure functions; nothing here mutates its inputs.  Edge
lists may contain duplicates and self loops — policy flags decide what
happens to them, defaulting to the conventions of the paper's datasets
(simple graphs: duplicates merged keeping the minimum weight, self loops
dropped, undirected edges symmetrised).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import GraphError
from ..types import VERTEX_DTYPE, WEIGHT_DTYPE
from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_arc_arrays",
    "from_dense",
    "from_networkx",
    "to_networkx",
    "to_dense",
    "to_scipy_csr",
]

EdgeLike = Union[Tuple[int, int], Tuple[int, int, float], Sequence[float]]


def from_edges(
    edges: Iterable[EdgeLike],
    *,
    num_vertices: Optional[int] = None,
    directed: bool = False,
    default_weight: float = 1.0,
    drop_self_loops: bool = True,
    dedup: str = "min",
    name: str = "",
) -> CSRGraph:
    """Build a graph from ``(u, v)`` or ``(u, v, w)`` tuples.

    Parameters
    ----------
    num_vertices:
        Vertex count; inferred as ``max id + 1`` when omitted.
    directed:
        When ``False`` each input edge is stored as two arcs.
    dedup:
        Duplicate-arc policy: ``"min"`` keeps the lightest parallel arc,
        ``"first"`` keeps the first occurrence, ``"error"`` raises.
    """
    if dedup not in ("min", "first", "error"):
        raise GraphError(f"unknown dedup policy {dedup!r}")
    us, vs, ws = [], [], []
    for edge in edges:
        if len(edge) == 2:
            u, v = edge  # type: ignore[misc]
            w = default_weight
        elif len(edge) == 3:
            u, v, w = edge  # type: ignore[misc]
        else:
            raise GraphError(f"edge {edge!r} is not a 2- or 3-tuple")
        u, v, w = int(u), int(v), float(w)
        if u < 0 or v < 0:
            raise GraphError(f"negative vertex id in edge ({u}, {v})")
        if u == v:
            if drop_self_loops:
                continue
            raise GraphError(
                f"self loop at vertex {u}; pass drop_self_loops=True to "
                "silently drop self loops"
            )
        us.append(u)
        vs.append(v)
        ws.append(w)
    src = np.asarray(us, dtype=VERTEX_DTYPE)
    dst = np.asarray(vs, dtype=VERTEX_DTYPE)
    wts = np.asarray(ws, dtype=WEIGHT_DTYPE)
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    return from_arc_arrays(
        src,
        dst,
        wts,
        num_vertices=num_vertices,
        directed=directed,
        dedup=dedup,
        name=name,
    )


def from_arc_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray] = None,
    *,
    num_vertices: int,
    directed: bool = False,
    dedup: str = "min",
    name: str = "",
) -> CSRGraph:
    """Build a graph from parallel source/destination/weight arrays."""
    src = np.asarray(src, dtype=VERTEX_DTYPE)
    dst = np.asarray(dst, dtype=VERTEX_DTYPE)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphError("src and dst must be equal-length 1-D arrays")
    if weights is None:
        weights = np.ones(src.size, dtype=WEIGHT_DTYPE)
    else:
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
        if weights.shape != src.shape:
            raise GraphError("weights must align with src/dst")
    if src.size and (
        min(src.min(), dst.min()) < 0
        or max(src.max(), dst.max()) >= num_vertices
    ):
        raise GraphError(
            f"arc endpoints outside [0, {num_vertices})"
        )
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        weights = np.concatenate([weights, weights])
    # sort arcs by (src, dst) so duplicates become adjacent and the CSR
    # rows come out sorted — sorted rows make equality checks and the
    # vectorised kernels cache-friendly.
    order = np.lexsort((dst, src))
    src, dst, weights = src[order], dst[order], weights[order]
    if src.size:
        same = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
        if np.any(same):
            if dedup == "error":
                k = int(np.flatnonzero(same)[0])
                raise GraphError(
                    f"duplicate arc ({src[k]}, {dst[k]}) with dedup='error'"
                )
            keep = np.concatenate([[True], ~same])
            if dedup == "min":
                # group-minimum over runs of identical (src, dst)
                group = np.cumsum(keep) - 1
                mins = np.full(group[-1] + 1, np.inf)
                np.minimum.at(mins, group, weights)
                src, dst = src[keep], dst[keep]
                weights = mins.astype(WEIGHT_DTYPE)
            else:  # "first"
                src, dst, weights = src[keep], dst[keep], weights[keep]
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, dst, weights, directed=directed, name=name)


def from_dense(
    matrix: np.ndarray,
    *,
    directed: Optional[bool] = None,
    name: str = "",
) -> CSRGraph:
    """Build a graph from a dense weight matrix.

    Entries that are ``0``, ``inf`` or ``nan`` mean "no arc".  The
    diagonal is ignored.  ``directed`` defaults to whether the matrix is
    asymmetric.
    """
    matrix = np.asarray(matrix, dtype=WEIGHT_DTYPE)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"weight matrix must be square, got {matrix.shape}")
    n = matrix.shape[0]
    present = np.isfinite(matrix) & (matrix != 0)
    np.fill_diagonal(present, False)
    if directed is None:
        sym = np.array_equal(present, present.T) and np.allclose(
            np.where(present, matrix, 0.0),
            np.where(present.T, matrix.T, 0.0),
        )
        directed = not sym
    src, dst = np.nonzero(present)
    weights = matrix[src, dst]
    if not directed:
        # keep each undirected edge once; from_arc_arrays re-symmetrises
        keep = src < dst
        src, dst, weights = src[keep], dst[keep], weights[keep]
    return from_arc_arrays(
        src.astype(VERTEX_DTYPE),
        dst.astype(VERTEX_DTYPE),
        weights,
        num_vertices=n,
        directed=directed,
        name=name,
    )


def from_networkx(nx_graph, *, weight: str = "weight", name: str = "") -> CSRGraph:
    """Convert a networkx (Di)Graph with integer-labellable nodes."""
    import networkx as nx  # local import: networkx is a test-only dep

    directed = nx_graph.is_directed()
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [
        (index[u], index[v], float(data.get(weight, 1.0)))
        for u, v, data in nx_graph.edges(data=True)
    ]
    return from_edges(
        edges,
        num_vertices=len(nodes),
        directed=directed,
        name=name or str(getattr(nx_graph, "name", "")),
    )


def to_networkx(graph: CSRGraph):
    """Convert to a networkx graph (test/validation helper)."""
    import networkx as nx

    out = nx.DiGraph() if graph.directed else nx.Graph()
    out.add_nodes_from(range(graph.num_vertices))
    for u, v, w in graph.iter_arcs():
        out.add_edge(u, v, weight=w)
    return out


def to_dense(graph: CSRGraph) -> np.ndarray:
    """Dense weight matrix with ``inf`` off-diagonal absences, 0 diagonal."""
    n = graph.num_vertices
    dense = np.full((n, n), np.inf, dtype=WEIGHT_DTYPE)
    src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), np.diff(graph.indptr))
    # parallel arcs were deduplicated at construction; plain assignment ok
    dense[src, graph.indices] = graph.weights
    np.fill_diagonal(dense, 0.0)
    return dense


def to_scipy_csr(graph: CSRGraph):
    """The graph as a ``scipy.sparse.csr_matrix`` (validation helper)."""
    import scipy.sparse as sp

    n = graph.num_vertices
    return sp.csr_matrix(
        (graph.weights, graph.indices, graph.indptr), shape=(n, n)
    )
