"""Edge-list IO in the SNAP text format the paper's datasets ship in.

Format: one ``u v`` (or ``u v w``) pair per line, ``#``-prefixed comment
lines, arbitrary whitespace separators.  Vertex ids in SNAP files are
sparse; :func:`read_edgelist` compacts them to ``0..n-1`` by default and
returns the id mapping so results can be translated back.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Optional, TextIO, Tuple, Union

import numpy as np

from ..exceptions import GraphFormatError
from ..types import VERTEX_DTYPE, WEIGHT_DTYPE
from .build import from_arc_arrays
from .csr import CSRGraph

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "parse_edgelist_text",
    "save_graph_npz",
    "load_graph_npz",
]

PathOrFile = Union[str, os.PathLike, TextIO]


def _open_for_read(source: PathOrFile) -> Tuple[TextIO, bool]:
    if hasattr(source, "read"):
        return source, False  # type: ignore[return-value]
    return open(os.fspath(source), "r", encoding="utf-8"), True


def parse_edgelist_text(
    text: str,
    *,
    directed: bool = False,
    compact_ids: bool = True,
    name: str = "",
) -> Tuple[CSRGraph, Dict[int, int]]:
    """Parse edge-list text; see :func:`read_edgelist`."""
    return read_edgelist(
        io.StringIO(text),
        directed=directed,
        compact_ids=compact_ids,
        name=name,
    )


def read_edgelist(
    source: PathOrFile,
    *,
    directed: bool = False,
    compact_ids: bool = True,
    name: str = "",
) -> Tuple[CSRGraph, Dict[int, int]]:
    """Read a SNAP-style edge list.

    Returns
    -------
    (graph, id_map):
        ``id_map`` maps original file ids to compact graph ids.  When
        ``compact_ids=False`` it is the identity over the ids seen, and
        vertex count is ``max id + 1``.
    """
    stream, close = _open_for_read(source)
    us, vs, ws = [], [], []
    has_weights: Optional[bool] = None
    try:
        for lineno, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue  # SNAP uses '#', KONECT uses '%'
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"line {lineno}: expected 'u v' or 'u v w', got {line!r}"
                )
            if has_weights is None:
                has_weights = len(parts) == 3
            elif has_weights != (len(parts) == 3):
                raise GraphFormatError(
                    f"line {lineno}: mixed weighted/unweighted rows"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2]) if has_weights else 1.0
            except ValueError as exc:
                raise GraphFormatError(f"line {lineno}: {exc}") from exc
            if u == v:
                continue  # SNAP datasets treat self loops as noise
            us.append(u)
            vs.append(v)
            ws.append(w)
    finally:
        if close:
            stream.close()

    src = np.asarray(us, dtype=VERTEX_DTYPE)
    dst = np.asarray(vs, dtype=VERTEX_DTYPE)
    wts = np.asarray(ws, dtype=WEIGHT_DTYPE)
    if compact_ids:
        uniq = np.unique(np.concatenate([src, dst])) if src.size else np.empty(
            0, dtype=VERTEX_DTYPE
        )
        id_map = {int(orig): i for i, orig in enumerate(uniq)}
        if src.size:
            src = np.searchsorted(uniq, src).astype(VERTEX_DTYPE)
            dst = np.searchsorted(uniq, dst).astype(VERTEX_DTYPE)
        n = uniq.size
    else:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        seen = set(map(int, src)) | set(map(int, dst))
        id_map = {v: v for v in seen}
    graph = from_arc_arrays(
        src, dst, wts, num_vertices=n, directed=directed, name=name
    )
    return graph, id_map


def write_edgelist(
    graph: CSRGraph,
    target: PathOrFile,
    *,
    write_weights: bool = False,
    header: bool = True,
) -> None:
    """Write a graph back out in SNAP text format.

    Undirected graphs are written with one line per edge (``u < v``) so
    a read/write round trip reproduces the same CSR graph.
    """
    if hasattr(target, "write"):
        stream, close = target, False  # type: ignore[assignment]
    else:
        stream, close = open(os.fspath(target), "w", encoding="utf-8"), True
    try:
        if header:
            kind = "directed" if graph.directed else "undirected"
            stream.write(
                f"# {graph.name or 'graph'} ({kind}): "
                f"{graph.num_vertices} vertices, {graph.num_edges} edges\n"
            )
        for u, v, w in graph.iter_arcs():
            if not graph.directed and u > v:
                continue
            if write_weights:
                # .17g round-trips any float64 exactly
                stream.write(f"{u}\t{v}\t{w:.17g}\n")
            else:
                stream.write(f"{u}\t{v}\n")
    finally:
        if close:
            stream.close()


def save_graph_npz(graph: CSRGraph, target: Union[str, os.PathLike]) -> None:
    """Save a graph as a compressed ``.npz`` (binary, loads in O(m)).

    The text edge-list format is for interchange with SNAP tooling;
    this is the fast path for checkpointing generated stand-ins.
    """
    np.savez_compressed(
        os.fspath(target),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
        directed=np.asarray([graph.directed]),
        name=np.asarray([graph.name]),
    )


def load_graph_npz(source: Union[str, os.PathLike]) -> CSRGraph:
    """Load a graph saved by :func:`save_graph_npz`."""
    with np.load(os.fspath(source), allow_pickle=False) as data:
        try:
            return CSRGraph(
                data["indptr"],
                data["indices"],
                data["weights"],
                directed=bool(data["directed"][0]),
                name=str(data["name"][0]),
            )
        except KeyError as exc:
            raise GraphFormatError(
                f"{source}: not a repro graph archive (missing {exc})"
            ) from exc
