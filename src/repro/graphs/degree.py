"""Degree utilities shared by the ordering procedures and the analysis.

The paper's ordering procedures (§2.2, §4) are all keyed on a per-vertex
``degree[]`` array whose values lie in ``[0, n)`` — the "fixed range"
property that makes bucket/counting sort applicable.  For directed
graphs the paper does not specify which degree to use; we default to
out-degree (the degree that bounds the relax loop of Algorithm 1) and
expose the choice.
"""

from __future__ import annotations

import enum

import numpy as np

from ..exceptions import GraphError
from ..types import VERTEX_DTYPE
from .csr import CSRGraph

__all__ = ["DegreeKind", "degree_array", "degree_bounds", "degree_histogram"]


class DegreeKind(enum.Enum):
    """Which degree an ordering should be keyed on (directed graphs)."""

    OUT = "out"
    IN = "in"
    TOTAL = "total"

    @classmethod
    def coerce(cls, value: "DegreeKind | str") -> "DegreeKind":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise GraphError(
                f"unknown degree kind {value!r}; expected out/in/total"
            ) from None


def degree_array(
    graph: CSRGraph, kind: "DegreeKind | str" = DegreeKind.OUT
) -> np.ndarray:
    """Per-vertex degrees as ``int64[n]``.

    For undirected graphs all three kinds coincide (every edge is stored
    as two arcs), so the kind is accepted but irrelevant.
    """
    kind = DegreeKind.coerce(kind)
    if not graph.directed or kind is DegreeKind.OUT:
        return graph.out_degrees()
    if kind is DegreeKind.IN:
        return graph.in_degrees()
    return graph.out_degrees() + graph.in_degrees()


def degree_bounds(degrees: np.ndarray) -> tuple[int, int]:
    """``(min, max)`` of a degree array; ``(0, 0)`` for empty input."""
    if degrees.size == 0:
        return (0, 0)
    return (int(degrees.min()), int(degrees.max()))


def degree_histogram(degrees: np.ndarray) -> np.ndarray:
    """``hist[k]`` = number of vertices of degree ``k`` (Figure 3 data)."""
    if degrees.size == 0:
        return np.zeros(1, dtype=VERTEX_DTYPE)
    if degrees.min() < 0:
        raise GraphError("degrees must be non-negative")
    return np.bincount(degrees).astype(VERTEX_DTYPE)
