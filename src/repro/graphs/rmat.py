"""R-MAT (recursive matrix) graph generator — the Graph500 kernel.

The HPC-standard synthetic scale-free generator: each edge lands in one
quadrant of the adjacency matrix with probabilities (a, b, c, d),
recursively, giving power-law degrees with community-like structure.
Included because it is the generator most HPC shared-memory graph
papers (and the Graph500 benchmark) standardise on — a natural extra
workload for the ordering procedures beyond BA / configuration models.

Defaults are the Graph500 parameters (a, b, c) = (0.57, 0.19, 0.19).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import GraphError
from ..types import VERTEX_DTYPE
from .build import from_arc_arrays
from .csr import CSRGraph

__all__ = ["rmat"]


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices and about
    ``edge_factor · 2**scale`` edges (duplicates/self-loops erased).

    Parameters follow the Graph500 specification; ``d = 1 - a - b - c``
    must be non-negative.
    """
    if scale < 1 or scale > 24:
        raise GraphError(f"scale must be in [1, 24], got {scale}")
    if edge_factor < 1:
        raise GraphError("edge_factor must be >= 1")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c) > 1:
        raise GraphError(
            f"quadrant probabilities must be a valid distribution; "
            f"got a={a}, b={b}, c={c} (d={d:.3f})"
        )
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n

    src = np.zeros(m, dtype=VERTEX_DTYPE)
    dst = np.zeros(m, dtype=VERTEX_DTYPE)
    # vectorised recursive descent: one random draw per (edge, level)
    for level in range(scale):
        r = rng.random(m)
        # quadrant choice: a | b | c | d
        right = (r >= a) & (r < a + b)  # column bit set
        down = (r >= a + b) & (r < a + b + c)  # row bit set
        both = r >= a + b + c
        bit = 1 << (scale - 1 - level)
        src += bit * (down | both)
        dst += bit * (right | both)
    # Graph500 permutes vertex labels so degree doesn't correlate with id
    perm = rng.permutation(n).astype(VERTEX_DTYPE)
    src, dst = perm[src], perm[dst]
    keep = src != dst
    return from_arc_arrays(
        src[keep],
        dst[keep],
        None,
        num_vertices=n,
        directed=directed,
        name=name or f"rmat-{scale}-{edge_factor}",
    )
