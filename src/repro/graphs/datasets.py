"""Synthetic stand-ins for the paper's real-world datasets.

The paper evaluates on SNAP / KONECT graphs (Table 2 plus ca-HepPh for
Figure 1 and soc-Pokec / soc-LiveJournal1 for the large-scale ordering
test in §4.3).  Those files are not available offline, and at full scale
the APSP result matrix would not fit in this container anyway (the paper
itself needs 160 GB for sx-superuser).

Each registry entry therefore records the *published* statistics of the
real graph (for Table 2 reproduction) together with a seeded generative
recipe that produces a scaled-down graph with the same directedness and a
matching degree-distribution shape — the properties all of the paper's
effects flow from.  Generation is deterministic per (name, scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from ..exceptions import DatasetError
from . import generators as gen
from .csr import CSRGraph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "table2_names",
    "load_dataset",
    "dataset_info",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One entry of the dataset registry.

    ``real_vertices`` / ``real_edges`` are the published full-scale counts
    (Table 2 / §3.2 / §4.3 of the paper); ``default_scale`` is the vertex
    count the synthetic stand-in uses when no explicit scale is given.
    """

    name: str
    kind: str  # "Directed" / "Undirected", as printed in Table 2
    real_vertices: int
    real_edges: int
    default_scale: int
    #: builds the synthetic graph: (n, seed) -> CSRGraph
    recipe: Callable[[int, int], CSRGraph]
    source: str = ""
    in_table2: bool = False

    @property
    def directed(self) -> bool:
        return self.kind == "Directed"

    @property
    def real_avg_degree(self) -> float:
        """Average degree of the full-scale graph (arcs per vertex)."""
        mult = 1 if self.directed else 2
        return mult * self.real_edges / self.real_vertices


def _ba_recipe(avg_degree: float, directed: bool) -> Callable[[int, int], CSRGraph]:
    """Barabási–Albert recipe matched to a target average degree.

    BA with parameter m has average degree ≈ 2m (undirected); we pick m
    so the stand-in's mean degree tracks the real graph's.  Note BA's
    minimum degree is m, so BA stand-ins lack the degree-1 tail — use
    :func:`_plc_recipe` for datasets whose low-degree pile-up matters.
    """
    m = max(1, int(round(avg_degree / 2)))

    def build(n: int, seed: int) -> CSRGraph:
        return gen.barabasi_albert(n, min(m, n - 1), seed=seed, directed=directed)

    return build


#: hub spectrum planted into every power-law stand-in: one vertex at the
#: degree ceiling, then a geometric cascade below it — the hub-dominance
#: profile of real scale-free graphs that a small-n tail sample misses
_HUB_SPECTRUM = (1.0, 0.7, 0.5, 0.36, 0.26, 0.18, 0.13, 0.09, 0.065, 0.045)


#: hub degrees in real scale-free graphs grow sublinearly in n; this
#: exponent anchors the stand-ins' hub ceiling when rescaling a dataset
#: away from its default scale (calibrated so e.g. WordNet's ~1000-max
#: degree at n=146k and a ~600-max at n=1200 sit on the same curve)
_HUB_GROWTH_EXPONENT = 0.32


def _plc_recipe(
    exponent: float,
    min_degree: int,
    directed: bool,
    max_degree_frac: float = 0.2,
    ref_scale: int = 1000,
) -> Callable[[int, int], CSRGraph]:
    """Power-law configuration recipe with planted hubs.

    At the dataset's reference scale the hub ceiling is
    ``max_degree_frac × ref_scale``; away from it the ceiling follows
    the sublinear :data:`_HUB_GROWTH_EXPONENT` curve.  Real scale-free
    graphs have hubs orders of magnitude above the median degree;
    planting a hub cascade preserves the two effects the paper leans
    on — approximate 101-bin bucketing is genuinely approximate, and
    ParMax's 1 %-of-max threshold really separates the hubs from the
    power-law tail — without letting the hub ceiling outgrow its share
    of the graph when experiments scale n up.
    """

    def build(n: int, seed: int) -> CSRGraph:
        ceiling = max_degree_frac * ref_scale * (n / ref_scale) ** _HUB_GROWTH_EXPONENT
        max_degree = max(min_degree + 2, min(n - 1, int(ceiling)))
        return gen.powerlaw_configuration(
            n,
            exponent,
            min_degree=min_degree,
            max_degree=max_degree,
            planted_hubs=_HUB_SPECTRUM,
            seed=seed,
            directed=directed,
        )

    return build


# ----------------------------------------------------------------------
# Registry.  Real counts are quoted from the paper (Table 2, §3.2 for
# ca-HepPh, §4.3 for soc-Pokec / soc-LiveJournal1).
# ----------------------------------------------------------------------
DATASETS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    if spec.name in DATASETS:
        raise DatasetError(f"duplicate dataset name {spec.name!r}")
    DATASETS[spec.name] = spec


_register(
    DatasetSpec(
        name="ego-Twitter",
        kind="Directed",
        real_vertices=81_306,
        real_edges=1_768_149,
        default_scale=900,
        # dense ego networks: elevated minimum degree, heavy hubs
        recipe=_plc_recipe(
            2.0,
            min_degree=6,
            directed=True,
            max_degree_frac=0.25,
            ref_scale=900,
        ),
        source="SNAP",
        in_table2=True,
    )
)
_register(
    DatasetSpec(
        name="Livemocha",
        kind="Undirected",
        real_vertices=104_103,
        real_edges=2_193_083,
        default_scale=1000,
        recipe=_plc_recipe(
            2.0,
            min_degree=8,
            directed=False,
            max_degree_frac=0.25,
            ref_scale=1000,
        ),
        source="KONECT",
        in_table2=True,
    )
)
_register(
    DatasetSpec(
        name="Flickr",
        kind="Undirected",
        real_vertices=105_938,
        real_edges=2_316_948,
        default_scale=1000,
        recipe=_plc_recipe(
            2.0,
            min_degree=8,
            directed=False,
            max_degree_frac=0.3,
            ref_scale=1000,
        ),
        source="KONECT",
        in_table2=True,
    )
)
_register(
    DatasetSpec(
        name="WordNet",
        kind="Undirected",
        real_vertices=146_005,
        real_edges=656_999,
        default_scale=1200,
        # sparse (avg degree 9.0) with a heavy power-law tail (Figure 3)
        recipe=_plc_recipe(
            2.4,
            min_degree=2,
            directed=False,
            max_degree_frac=0.5,
            ref_scale=1200,
        ),
        source="KONECT",
        in_table2=True,
    )
)
_register(
    DatasetSpec(
        name="sx-superuser",
        kind="Directed",
        real_vertices=194_085,
        real_edges=1_443_339,
        default_scale=1400,
        # real avg degree ≈ 7.4 (1.44M arcs / 194k vertices)
        recipe=_plc_recipe(
            1.9,
            min_degree=2,
            directed=True,
            max_degree_frac=0.25,
            ref_scale=1400,
        ),
        source="SNAP",
        in_table2=True,
    )
)
_register(
    DatasetSpec(
        name="ca-HepPh",
        kind="Undirected",
        real_vertices=12_008,
        real_edges=118_521,
        default_scale=700,
        recipe=_plc_recipe(
            2.1,
            min_degree=4,
            directed=False,
            max_degree_frac=0.25,
            ref_scale=700,
        ),
        source="SNAP (Figure 1 scheduling study)",
    )
)
_register(
    DatasetSpec(
        name="soc-Pokec",
        kind="Directed",
        real_vertices=1_632_803,
        real_edges=30_622_564,
        default_scale=20_000,
        recipe=_plc_recipe(
            2.3,
            min_degree=2,
            directed=True,
            max_degree_frac=0.1,
            ref_scale=20_000,
        ),
        source="SNAP (§4.3 large ordering test)",
    )
)
_register(
    DatasetSpec(
        name="soc-LiveJournal1",
        kind="Directed",
        real_vertices=4_847_571,
        real_edges=68_993_773,
        default_scale=50_000,
        recipe=_plc_recipe(
            2.3,
            min_degree=2,
            directed=True,
            max_degree_frac=0.08,
            ref_scale=50_000,
        ),
        source="SNAP (§4.3 large ordering test)",
    )
)

#: canonical lower-case lookup, tolerant of underscores vs hyphens
_ALIASES = {
    name.lower().replace("-", "_"): name for name in DATASETS
}


def dataset_names() -> Tuple[str, ...]:
    """All registered dataset names, registry order."""
    return tuple(DATASETS)


def table2_names() -> Tuple[str, ...]:
    """The five datasets of the paper's Table 2, in table order."""
    return tuple(s.name for s in DATASETS.values() if s.in_table2)


def _resolve(name: str) -> DatasetSpec:
    key = name.lower().replace("-", "_")
    if key not in _ALIASES:
        known = ", ".join(DATASETS)
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")
    return DATASETS[_ALIASES[key]]


def dataset_info(name: str) -> DatasetSpec:
    """Registry entry for ``name`` (case/hyphen tolerant)."""
    return _resolve(name)


@lru_cache(maxsize=32)
def _cached_build(name: str, scale: int, seed: int) -> CSRGraph:
    spec = DATASETS[name]
    graph = spec.recipe(scale, seed)
    return CSRGraph(
        graph.indptr,
        graph.indices,
        graph.weights,
        directed=graph.directed,
        name=f"{spec.name}@{scale}",
    )


def load_dataset(
    name: str,
    *,
    scale: Optional[int] = None,
    seed: int = 20180813,  # ICPP'18 started 2018-08-13
) -> CSRGraph:
    """Build the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    scale:
        Number of vertices of the scaled-down graph; defaults to the
        registry's ``default_scale``.  Pass a larger value to stress the
        ordering procedures (the §4.3 soc-Pokec experiment).
    seed:
        RNG seed; the default is fixed so every harness run sees the
        exact same graphs.
    """
    spec = _resolve(name)
    n = spec.default_scale if scale is None else int(scale)
    if n < 4:
        raise DatasetError(f"scale must be >= 4, got {n}")
    return _cached_build(spec.name, n, seed)
