"""Structural validation helpers for CSR graphs.

These checks are used by tests and by the dataset registry's self-checks;
they are deliberately separate from construction so hot paths never pay
for them.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from .csr import CSRGraph

__all__ = [
    "check_structure",
    "check_symmetry",
    "check_sorted_rows",
    "check_no_self_loops",
    "is_connected",
    "connected_components",
]


def check_structure(graph: CSRGraph, *, allow_negative: bool = False) -> None:
    """Re-run the CSR invariants (indptr monotone, ids in range).

    ``allow_negative=True`` relaxes the weight check to finite-only, the
    invariant Johnson-style negative-weight graphs satisfy.
    """
    indptr, indices = graph.indptr, graph.indices
    n = graph.num_vertices
    if indptr[0] != 0 or indptr[-1] != indices.size:
        raise GraphError("indptr endpoints inconsistent with indices")
    if np.any(np.diff(indptr) < 0):
        raise GraphError("indptr not monotone")
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise GraphError("indices out of range")
    if graph.weights.shape != indices.shape:
        raise GraphError("weights misaligned")
    if allow_negative:
        if indices.size and not np.all(np.isfinite(graph.weights)):
            raise GraphError("non-finite weights present")
    elif indices.size and not np.all(graph.weights > 0):
        raise GraphError("non-positive weights present")


def check_sorted_rows(graph: CSRGraph) -> None:
    """Every adjacency row must be sorted and duplicate-free."""
    for v in range(graph.num_vertices):
        row = graph.neighbors(v)
        if row.size > 1 and np.any(np.diff(row) <= 0):
            raise GraphError(f"adjacency row of vertex {v} not strictly sorted")


def check_no_self_loops(graph: CSRGraph) -> None:
    for v in range(graph.num_vertices):
        if v in graph.neighbors(v):
            raise GraphError(f"self loop at vertex {v}")


def check_symmetry(graph: CSRGraph) -> None:
    """Undirected graphs must store both arcs with equal weights."""
    if graph.directed:
        return
    arcs = {}
    for u, v, w in graph.iter_arcs():
        arcs[(u, v)] = w
    for (u, v), w in arcs.items():
        back = arcs.get((v, u))
        if back is None:
            raise GraphError(f"missing reverse arc for ({u}, {v})")
        if back != w:
            raise GraphError(
                f"asymmetric weights on edge ({u}, {v}): {w} vs {back}"
            )


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (weak components for directed graphs)."""
    n = graph.num_vertices
    labels = -np.ones(n, dtype=np.int64)
    # weak connectivity needs both directions; build reverse adjacency
    # lazily only for directed graphs
    rev = graph.reverse() if graph.directed else None
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            u = stack.pop()
            nbrs = graph.neighbors(u)
            if rev is not None:
                nbrs = np.concatenate([nbrs, rev.neighbors(u)])
            for v in nbrs:
                if labels[v] < 0:
                    labels[v] = current
                    stack.append(int(v))
        current += 1
    return labels


def is_connected(graph: CSRGraph) -> bool:
    """True when the graph is (weakly) connected."""
    if graph.num_vertices == 0:
        return True
    return bool(connected_components(graph).max() == 0)
