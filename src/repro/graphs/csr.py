"""Compressed sparse row (CSR) graph container.

The whole library operates on one immutable graph representation: CSR
adjacency with parallel weight storage.  CSR gives O(1) access to a
vertex's out-neighbour slice as a numpy view, which is what both the
modified Dijkstra's inner loop and the vectorised kernels need.

The container deliberately does *not* subclass or wrap networkx — the
paper's algorithms stream over raw index arrays, and keeping the data as
three numpy arrays makes the multiprocessing backend's shared-memory
story trivial (arrays are sent once, via pickle of the buffers).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from ..exceptions import GraphError
from ..types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable directed or undirected graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64[n+1]`` — ``indices[indptr[v]:indptr[v+1]]`` are the
        out-neighbours of vertex ``v``.
    indices:
        ``int64[m]`` — neighbour vertex ids, one entry per directed arc.
        For an undirected graph every edge appears twice (both arcs).
    weights:
        ``float64[m]`` — positive arc weights aligned with ``indices``.
        With ``allow_negative=True`` any *finite* weights are accepted
        (zero and negative included); only solvers whose
        :class:`repro.core.SolverSpec` declares ``negative_weights=True``
        (Johnson) can run on such a graph.
    directed:
        Whether the graph semantics are directed.  Undirected graphs must
        store both arcs of every edge; this is validated lazily by
        :func:`repro.graphs.validate.check_symmetry`.
    name:
        Optional human-readable label (dataset registry name).
    allow_negative:
        Opt into negative/zero arc weights.  Off by default so the
        Dijkstra-family solvers keep their construction-time guarantee.
    """

    __slots__ = (
        "indptr", "indices", "weights", "directed", "name",
        "_has_negative",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        *,
        directed: bool = False,
        name: str = "",
        allow_negative: bool = False,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=VERTEX_DTYPE)
        indices = np.ascontiguousarray(indices, dtype=VERTEX_DTYPE)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise GraphError(f"indptr[0] must be 0, got {indptr[0]}")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphError(
                "indices contains vertex ids outside [0, n); "
                f"n={n}, min={indices.min()}, max={indices.max()}"
            )
        if weights is None:
            weights = np.ones(indices.size, dtype=WEIGHT_DTYPE)
        else:
            weights = np.ascontiguousarray(weights, dtype=WEIGHT_DTYPE)
            if weights.shape != indices.shape:
                raise GraphError(
                    f"weights shape {weights.shape} does not match "
                    f"indices shape {indices.shape}"
                )
            if allow_negative:
                if indices.size and not np.all(np.isfinite(weights)):
                    raise GraphError(
                        "edge weights must be finite (allow_negative "
                        "permits negative and zero weights, not NaN/inf)"
                    )
            elif indices.size and not np.all(weights > 0):
                raise GraphError(
                    "edge weights must be strictly positive (Dijkstra-"
                    "family algorithms require non-negative weights; "
                    "zero-weight self-reinforcing cycles are excluded); "
                    "pass allow_negative=True for Johnson-style graphs"
                )
        self._has_negative = bool(indices.size) and bool(
            np.any(weights < 0)
        )
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.directed = bool(directed)
        self.name = str(name)
        # freeze the buffers: the algorithms rely on the graph never
        # mutating under a running sweep (and the SIM backend replays it)
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self.weights.setflags(write=False)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def has_negative_weights(self) -> bool:
        """True when any arc weight is strictly negative (cached)."""
        return self._has_negative

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (2×edges for undirected)."""
        return self.indices.size

    @property
    def num_edges(self) -> int:
        """Logical edge count: arcs for directed, arcs/2 for undirected."""
        if self.directed:
            return self.num_arcs
        return self.num_arcs // 2

    # ------------------------------------------------------------------
    # adjacency access
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbour ids of ``v`` as a read-only numpy view."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Arc weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for every vertex (``int64[n]``)."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees (equals out-degrees when undirected)."""
        return np.bincount(
            self.indices, minlength=self.num_vertices
        ).astype(VERTEX_DTYPE)

    def iter_arcs(self) -> Iterator[Tuple[int, int, float]]:
        """Yield every stored arc as ``(u, v, w)``."""
        indptr, indices, weights = self.indptr, self.indices, self.weights
        for u in range(self.num_vertices):
            for k in range(indptr[u], indptr[u + 1]):
                yield u, int(indices[k]), float(weights[k])

    def arc_array(self) -> np.ndarray:
        """All arcs as an ``(m, 2)`` int array of ``(u, v)`` pairs."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE),
            np.diff(self.indptr),
        )
        return np.column_stack([src, self.indices])

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """Graph with every arc reversed (undirected graphs round-trip)."""
        n = self.num_vertices
        counts = np.bincount(self.indices, minlength=n)
        indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(self.num_arcs, dtype=VERTEX_DTYPE)
        weights = np.empty(self.num_arcs, dtype=WEIGHT_DTYPE)
        cursor = indptr[:-1].copy()
        src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), np.diff(self.indptr))
        for k in range(self.num_arcs):
            dst = self.indices[k]
            pos = cursor[dst]
            indices[pos] = src[k]
            weights[pos] = self.weights[k]
            cursor[dst] += 1
        return CSRGraph(
            indptr,
            indices,
            weights,
            directed=self.directed,
            name=self.name and f"{self.name}:reversed",
            allow_negative=True,  # weights come from a validated graph
        )

    def with_unit_weights(self) -> "CSRGraph":
        """Copy of the graph with all weights set to 1.0."""
        return CSRGraph(
            self.indptr.copy(),
            self.indices.copy(),
            None,
            directed=self.directed,
            name=self.name,
        )

    def subgraph(self, vertices: Iterable[int]) -> "CSRGraph":
        """Induced subgraph on ``vertices`` with relabelled ids 0..k-1."""
        keep = np.asarray(sorted(set(int(v) for v in vertices)), dtype=VERTEX_DTYPE)
        if keep.size and (keep[0] < 0 or keep[-1] >= self.num_vertices):
            raise GraphError("subgraph vertex ids out of range")
        remap = -np.ones(self.num_vertices, dtype=VERTEX_DTYPE)
        remap[keep] = np.arange(keep.size, dtype=VERTEX_DTYPE)
        rows = []
        for new_u, old_u in enumerate(keep):
            nbrs = self.neighbors(int(old_u))
            wts = self.neighbor_weights(int(old_u))
            mask = remap[nbrs] >= 0
            rows.append((remap[nbrs[mask]], wts[mask]))
        indptr = np.zeros(keep.size + 1, dtype=VERTEX_DTYPE)
        for i, (nbrs, _) in enumerate(rows):
            indptr[i + 1] = indptr[i] + nbrs.size
        indices = (
            np.concatenate([r[0] for r in rows])
            if rows
            else np.empty(0, dtype=VERTEX_DTYPE)
        )
        weights = (
            np.concatenate([r[1] for r in rows])
            if rows
            else np.empty(0, dtype=WEIGHT_DTYPE)
        )
        return CSRGraph(
            indptr,
            indices,
            weights,
            directed=self.directed,
            name=self.name and f"{self.name}:sub{keep.size}",
            allow_negative=True,  # weights come from a validated graph
        )

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CSRGraph{label} {kind} n={self.num_vertices} "
            f"m={self.num_edges}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self) -> int:  # identity hash: contents are big arrays
        return id(self)
