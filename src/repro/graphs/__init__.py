"""Graph substrate: CSR container, builders, generators, datasets, IO."""

from .csr import CSRGraph
from .build import (
    from_arc_arrays,
    from_dense,
    from_edges,
    from_networkx,
    to_dense,
    to_networkx,
    to_scipy_csr,
)
from .degree import DegreeKind, degree_array, degree_bounds, degree_histogram
from .generators import (
    attach_negative_weights,
    attach_random_weights,
    barabasi_albert,
    complete,
    cycle,
    erdos_renyi,
    grid_2d,
    negative_cycle_graph,
    path,
    powerlaw_configuration,
    random_weighted,
    star,
    watts_strogatz,
)
from .rmat import rmat
from .io import (
    load_graph_npz,
    parse_edgelist_text,
    read_edgelist,
    save_graph_npz,
    write_edgelist,
)
from .datasets import (
    DATASETS,
    DatasetSpec,
    dataset_info,
    dataset_names,
    load_dataset,
    table2_names,
)

__all__ = [
    "CSRGraph",
    "from_arc_arrays",
    "from_dense",
    "from_edges",
    "from_networkx",
    "to_dense",
    "to_networkx",
    "to_scipy_csr",
    "DegreeKind",
    "degree_array",
    "degree_bounds",
    "degree_histogram",
    "attach_negative_weights",
    "attach_random_weights",
    "barabasi_albert",
    "complete",
    "cycle",
    "erdos_renyi",
    "grid_2d",
    "negative_cycle_graph",
    "path",
    "powerlaw_configuration",
    "random_weighted",
    "star",
    "watts_strogatz",
    "rmat",
    "load_graph_npz",
    "parse_edgelist_text",
    "save_graph_npz",
    "read_edgelist",
    "write_edgelist",
    "DATASETS",
    "DatasetSpec",
    "dataset_info",
    "dataset_names",
    "load_dataset",
    "table2_names",
]
