"""Request-scoped serving telemetry: trace IDs, events, JSONL sinks.

The serving stack built in PRs 5–7 is observable only in aggregate
(counters and replay latency lists).  This module adds the
**per-request** layer: every query gets a deterministic trace id, its
lifecycle (admit / degrade / shed, cache hit / miss / coalesce-wait,
shard load with codec + nbytes, ALT short-circuit, batch gather, and
the final answer with its certified error bar) is emitted as typed
:class:`TelemetryEvent` records into a bounded ring buffer
(:class:`TelemetryCollector`), optionally mirrored — with deterministic
per-trace sampling — to a JSONL sink, and any single request's event
tree converts to the existing :mod:`repro.trace` Chrome format via
:func:`export_request_trace` so one slow query opens in Perfetto.

Determinism is load-bearing: under :func:`repro.serve.replay.replay_virtual`
event timestamps come from the virtual clock and trace ids from
:func:`make_trace_id` (a CRC of the request's sequence number and
coordinates), so two runs of the same seeded traffic produce
**byte-identical** JSONL logs — CI gates on exactly that.  Under the
real threaded path (:class:`~repro.serve.admission.ServeFrontend` with a
collector attached) timestamps are wall-clock ``perf_counter`` readings
and only per-request *structure* is stable.

Like :mod:`repro.obs.metrics`, the hot path pays one thread-local load
and an ``is None`` test when telemetry is off: engine/store/admission
code calls the module-level :func:`emit`, which no-ops unless a
:func:`request_scope` is active on the current thread.
"""

from __future__ import annotations

import json
import math
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    TextIO,
    Tuple,
    Union,
)

from ..exceptions import ServeError
from ..trace.model import Trace, trace_from_request_events

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "EVENT_KINDS",
    "TelemetryEvent",
    "RequestContext",
    "TelemetryCollector",
    "JsonlSink",
    "make_trace_id",
    "read_event_log",
    "request_scope",
    "current_context",
    "emit",
    "export_request_trace",
]

#: bump when the JSONL event layout changes incompatibly
TELEMETRY_SCHEMA_VERSION = "repro.serve.telemetry/1"

#: every event kind the serving stack emits, in rough lifecycle order
EVENT_KINDS = (
    "request",        # arrival: klass + coordinates
    "admit",          # admission controller let it through
    "degrade",        # admission full -> approximate answer path
    "shed",           # admission full -> rejected outright
    "cache_hit",      # shard already resident
    "cache_miss",     # shard absent -> a load is on this request's path
    "coalesce_wait",  # waited on another request's in-flight load
    "shard_load",     # the load itself (codec, nbytes, shard)
    "short_circuit",  # ALT bounds answered without shard I/O
    "batch_gather",   # micro-batched gather this request rode in
    "answer",         # final status + latency (+ lo/hi error bar)
    "store_swap",     # engine adopted a new store generation (updates)
)

#: event kind → unified repro.trace category for Perfetto export:
#: time doing the work / time queued behind someone else / bookkeeping
_KIND_TO_CATEGORY = {
    "shard_load": "compute",
    "batch_gather": "compute",
    "answer": "compute",
    "coalesce_wait": "lock-wait",
}


def _category(kind: str) -> str:
    return _KIND_TO_CATEGORY.get(kind, "overhead")


def make_trace_id(seq: int, kind: str, u: int, v: int = -1) -> str:
    """Deterministic trace id for request ``seq`` of a workload.

    ``req-<seq>-<crc32 of the coordinates>``: stable across runs,
    machines and python versions, unique per sequence number, and the
    hash suffix makes ids self-checking against misattributed events.
    """
    digest = zlib.crc32(f"{kind}:{u}:{v}:{seq}".encode()) & 0xFFFFFFFF
    return f"req-{seq:06d}-{digest:08x}"


@dataclass(frozen=True)
class TelemetryEvent:
    """One typed lifecycle event of one request."""

    trace_id: str
    kind: str
    t: float
    dur: float = 0.0
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ServeError(
                f"unknown telemetry event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )
        if not math.isfinite(self.t):
            raise ServeError(f"event timestamp must be finite, got {self.t}")
        if not math.isfinite(self.dur) or self.dur < 0:
            raise ServeError(
                f"event duration must be finite and >= 0, got {self.dur}"
            )

    def to_record(self) -> Dict[str, Any]:
        """Plain-dict view, attrs JSON-sanitised, keys stable."""
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "t": self.t,
            "dur": self.dur,
        }
        if self.attrs:
            record["attrs"] = {
                key: _sanitize(value)
                for key, value in sorted(self.attrs.items())
            }
        return record


def _sanitize(value: Any) -> Any:
    """Make an attr JSON-serialisable and byte-stable.

    numpy scalars become python natives; non-finite floats become the
    strings ``"inf"`` / ``"-inf"`` / ``"nan"`` (strict JSON parsers
    reject the bare literals).
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float) or hasattr(value, "item"):
        value = float(value)
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    return str(value)


@dataclass(frozen=True)
class RequestContext:
    """Identity of the request the current events belong to."""

    trace_id: str
    klass: str
    u: int
    v: int = -1
    k: int = -1


class TelemetryCollector:
    """Bounded ring of events + optional sampled JSONL sink.

    The ring always holds the most recent ``capacity`` events whatever
    the sink's sampling says (the ring answers "what just happened",
    the sink builds the durable log).  Sampling is **per trace id** via
    :meth:`sampled` — a deterministic hash test, so a given request is
    all-in or all-out and two identical runs produce identical logs at
    any sampling rate.
    """

    def __init__(
        self,
        *,
        capacity: int = 4096,
        sink: Optional["JsonlSink"] = None,
        sample: float = 1.0,
    ) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) \
                or capacity < 1:
            raise ServeError(
                f"telemetry capacity must be an int >= 1, got {capacity!r}"
            )
        if not isinstance(sample, (int, float)) or isinstance(sample, bool) \
                or not 0.0 < float(sample) <= 1.0:
            raise ServeError(
                f"telemetry sample must be in (0, 1], got {sample!r}"
            )
        self.capacity = capacity
        self.sample = float(sample)
        self.sink = sink
        self._lock = threading.Lock()
        self._events: List[TelemetryEvent] = []
        self._start = 0  # ring head index into _events

    @classmethod
    def from_config(cls, config, sink: Optional["JsonlSink"] = None
                    ) -> "TelemetryCollector":
        """Build from a :class:`repro.config.TelemetryConfig`."""
        return cls(capacity=config.capacity, sample=config.sample,
                   sink=sink)

    def sampled(self, trace_id: str) -> bool:
        """Deterministic per-trace sink admission test."""
        if self.sample >= 1.0:
            return True
        digest = zlib.crc32(trace_id.encode()) & 0xFFFFFFFF
        return digest / 2.0**32 < self.sample

    def emit(
        self,
        trace_id: str,
        kind: str,
        t: float,
        dur: float = 0.0,
        **attrs: Any,
    ) -> None:
        """Record one event (O(1), thread-safe)."""
        event = TelemetryEvent(
            trace_id=trace_id, kind=kind, t=float(t), dur=float(dur),
            attrs=attrs,
        )
        with self._lock:
            self._events.append(event)
            if len(self._events) > 2 * self.capacity:
                # amortised ring compaction: keep the newest `capacity`
                self._events = self._events[-self.capacity:]
                self._start = 0
            elif len(self._events) - self._start > self.capacity:
                self._start = len(self._events) - self.capacity
            if self.sink is not None and self.sampled(trace_id):
                self.sink.write(event)

    def events(self, trace_id: Optional[str] = None) -> List[TelemetryEvent]:
        """Ring contents in emit order, optionally for one request."""
        with self._lock:
            snapshot = self._events[self._start:]
        if trace_id is None:
            return snapshot
        return [e for e in snapshot if e.trace_id == trace_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events) - self._start

    def export_request_trace(self, trace_id: str) -> Trace:
        """One request's event tree as a :mod:`repro.trace` Trace."""
        return export_request_trace(self.events(trace_id), trace_id)


class JsonlSink:
    """Append-only JSONL event log (``repro.serve.telemetry/1``).

    Line 1 is a header carrying the schema version and workload params
    (no timestamps or hostnames — logs must be byte-identical across
    machines for the CI determinism gate); every further line is one
    event dumped with sorted keys and compact separators.
    """

    def __init__(
        self,
        path: Union[str, "TextIO", Any],
        *,
        params: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if hasattr(path, "write"):
            self._fh: TextIO = path
            self._owns = False
            self.path = getattr(path, "name", "<stream>")
        else:
            self._fh = open(path, "w", encoding="utf-8")
            self._owns = True
            self.path = str(path)
        self.lines_written = 0
        header = {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "params": {
                key: _sanitize(value)
                for key, value in sorted((params or {}).items())
            },
        }
        self._write_obj(header)

    def _write_obj(self, obj: Mapping[str, Any]) -> None:
        self._fh.write(
            json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.lines_written += 1

    def write(self, event: TelemetryEvent) -> None:
        self._write_obj(event.to_record())

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_event_log(path: Union[str, Any]) -> Tuple[Dict[str, Any],
                                                   List[Dict[str, Any]]]:
    """Parse a JSONL event log into ``(header, event_records)``.

    Raises :class:`ServeError` on an empty file, a bad header schema,
    or an unparseable line — the strict counterpart of the lenient
    per-line diagnostics in :func:`repro.serve.monitor.check_event_log`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ServeError(f"event log {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ServeError(f"event log {path} header is not JSON: {exc}")
    if not isinstance(header, dict) \
            or header.get("schema") != TELEMETRY_SCHEMA_VERSION:
        raise ServeError(
            f"event log {path} has schema "
            f"{header.get('schema') if isinstance(header, dict) else None!r};"
            f" expected {TELEMETRY_SCHEMA_VERSION!r}"
        )
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"event log {path} line {lineno} is not JSON: {exc}"
            )
        if not isinstance(record, dict):
            raise ServeError(
                f"event log {path} line {lineno} is not an object"
            )
        events.append(record)
    return header, events


# -- thread-local request scope ------------------------------------------
#
# The wall-clock serving path (ServeFrontend -> QueryEngine -> DistStore)
# cannot thread a collector argument through every call without changing
# public signatures, so — mirroring repro.obs.metrics' module-global
# no-op pattern, but per *thread* because requests run concurrently —
# the frontend opens a request_scope() and the engine/store call the
# module-level emit(), which resolves the active (collector, context)
# from a threading.local.

_scope = threading.local()


@contextmanager
def request_scope(collector: TelemetryCollector,
                  ctx: RequestContext) -> Iterator[RequestContext]:
    """Bind ``ctx`` as the current thread's active request."""
    previous = getattr(_scope, "active", None)
    _scope.active = (collector, ctx)
    try:
        yield ctx
    finally:
        _scope.active = previous


def current_context() -> Optional[RequestContext]:
    """The active request's context on this thread, if any."""
    active = getattr(_scope, "active", None)
    return None if active is None else active[1]


def emit(kind: str, dur: float = 0.0, **attrs: Any) -> None:
    """Emit an event for the current thread's request; no-op otherwise.

    Timestamps are raw ``perf_counter`` readings — only meaningful
    relative to other events of the same run; the Chrome exporter
    rebases them to the request's first event.
    """
    active = getattr(_scope, "active", None)
    if active is None:
        return
    collector, ctx = active
    collector.emit(ctx.trace_id, kind, time.perf_counter(), dur, **attrs)


# -- Perfetto export ------------------------------------------------------

def export_request_trace(
    events: Iterable[Union[TelemetryEvent, Mapping[str, Any]]],
    trace_id: str,
    *,
    clock: str = "virtual",
) -> Trace:
    """Convert one request's events to a unified :class:`Trace`.

    Accepts live :class:`TelemetryEvent` objects or the plain records
    read back from a JSONL log; events of other requests are filtered
    out, so the whole ring (or log) can be passed directly.  The result
    passes :func:`repro.trace.validate_chrome` after
    :func:`repro.trace.to_chrome`.
    """
    records: List[Dict[str, Any]] = []
    for event in events:
        if isinstance(event, TelemetryEvent):
            record = event.to_record()
        else:
            record = dict(event)
        if record.get("trace_id") != trace_id:
            continue
        kind = str(record.get("kind", ""))
        name = kind
        attrs = record.get("attrs") or {}
        if kind == "shard_load" and "shard" in attrs:
            name = f"shard_load:{attrs['shard']}"
        records.append({
            "name": name,
            "category": _category(kind),
            "start": float(record.get("t", 0.0)),
            "duration": float(record.get("dur", 0.0)),
        })
    if not records:
        raise ServeError(
            f"no telemetry events recorded for trace_id {trace_id!r}"
        )
    return trace_from_request_events(records, trace_id=trace_id,
                                     clock=clock)
