"""Latency SLOs and error-budget burn rates over histogram windows.

An :class:`SLOSpec` states the objective ("99% of point queries answer
within 2 ms, measured over 50 ms windows"); :func:`evaluate_slo` folds
a stream of ``(arrival, latency, trace_id)`` samples into per-window
:class:`~repro.obs.hist.LatencyHistogram` snapshots and reports the
**burn rate** — violations as a multiple of the window's error budget
(burn 1.0 = exactly spending the budget, > 1.0 = on course to miss the
objective).

The evaluation is deliberately clock-agnostic: windows are keyed by the
sample's *arrival time*, which both
:func:`~repro.serve.replay.replay_virtual` (virtual clock) and
:func:`~repro.serve.replay.replay_threaded` (wall clock) report from
the same seeded traffic trace — so the identical code path scores both
replays, and under the virtual clock the whole report is
byte-deterministic and CI gates its burn rate upward-only.

Violations are counted through :meth:`LatencyHistogram.count_le`, i.e.
the threshold is measured to the histogram's certified relative error —
consistent with how the quantiles in the same bench section are
reported, and deterministic whatever order samples arrived in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from ..exceptions import ServeError
from ..obs.hist import LatencyHistogram

__all__ = ["SLOSpec", "SLOReport", "evaluate_slo"]


@dataclass(frozen=True)
class SLOSpec:
    """One latency objective: P(latency <= threshold) >= objective."""

    name: str = "point"
    threshold: float = 0.002   # seconds
    objective: float = 0.99    # fraction of requests inside threshold
    window: float = 0.05       # error-budget window, seconds of arrival

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("SLO name must be non-empty")
        if not (isinstance(self.threshold, (int, float))
                and math.isfinite(self.threshold) and self.threshold > 0):
            raise ServeError(
                f"SLO threshold must be a finite number > 0, "
                f"got {self.threshold!r}"
            )
        if not (isinstance(self.objective, (int, float))
                and 0.0 < float(self.objective) < 1.0):
            raise ServeError(
                f"SLO objective must be strictly inside (0, 1), "
                f"got {self.objective!r}"
            )
        if not (isinstance(self.window, (int, float))
                and math.isfinite(self.window) and self.window > 0):
            raise ServeError(
                f"SLO window must be a finite number > 0, "
                f"got {self.window!r}"
            )

    @property
    def budget(self) -> float:
        """Allowed violation fraction per window (the error budget)."""
        return 1.0 - float(self.objective)


@dataclass(frozen=True)
class SLOReport:
    """Outcome of evaluating one :class:`SLOSpec` over a replay."""

    spec: SLOSpec
    total: int
    violations: int
    compliance: float             # fraction of samples inside threshold
    burn_rate: float              # overall violations / budget
    worst_window_burn_rate: float
    num_windows: int

    @property
    def healthy(self) -> bool:
        """Inside budget overall (burn <= 1)."""
        return self.burn_rate <= 1.0

    def to_flat(self, prefix: str) -> Dict[str, float]:
        """Flat numeric dict for a BENCH artifact section.

        Everything except the burn rates is gated exactly by
        ``repro.obs.regress``; keys ending in ``burn_rate`` gate
        upward-only (burning budget faster is the regression).
        """
        return {
            f"{prefix}.threshold_ms": self.spec.threshold * 1e3,
            f"{prefix}.objective": float(self.spec.objective),
            f"{prefix}.window_ms": self.spec.window * 1e3,
            f"{prefix}.total": float(self.total),
            f"{prefix}.violations": float(self.violations),
            f"{prefix}.compliance": self.compliance,
            f"{prefix}.num_windows": float(self.num_windows),
            f"{prefix}.burn_rate": self.burn_rate,
            f"{prefix}.worst_window_burn_rate": self.worst_window_burn_rate,
        }

    def format(self) -> str:
        state = "OK" if self.healthy else "BURNING"
        return (
            f"slo[{self.spec.name}] <= {self.spec.threshold * 1e3:g} ms "
            f"for {self.spec.objective:.0%}: {state} "
            f"compliance={self.compliance:.4f} burn={self.burn_rate:.2f} "
            f"worst-window={self.worst_window_burn_rate:.2f} "
            f"({self.violations}/{self.total} violations, "
            f"{self.num_windows} windows)"
        )


def windowed_histograms(
    spec: SLOSpec,
    samples: Iterable[Tuple[float, float, Optional[str]]],
    **hist_kwargs: Any,
) -> Dict[int, LatencyHistogram]:
    """Per-window histograms, keyed by ``floor(arrival / window)``."""
    windows: Dict[int, LatencyHistogram] = {}
    for arrival, latency, trace_id in samples:
        key = int(math.floor(float(arrival) / spec.window))
        hist = windows.get(key)
        if hist is None:
            hist = windows[key] = LatencyHistogram(**hist_kwargs)
        hist.record(latency, trace_id)
    return windows


def evaluate_slo(
    spec: SLOSpec,
    samples: Iterable[Tuple[float, float, Optional[str]]],
    **hist_kwargs: Any,
) -> SLOReport:
    """Score ``samples`` (``(arrival, latency, trace_id)``) against ``spec``.

    An empty sample stream is vacuously compliant (no traffic burns no
    budget).  Burn rates divide by the budget, so an objective of 0.99
    with 2% violations reports burn 2.0.
    """
    windows = windowed_histograms(spec, samples, **hist_kwargs)
    total = 0
    violations = 0
    worst = 0.0
    for hist in windows.values():
        window_total = hist.count
        window_ok = hist.count_le(spec.threshold)
        window_bad = window_total - window_ok
        total += window_total
        violations += window_bad
        if window_total:
            burn = (window_bad / window_total) / spec.budget
            worst = max(worst, burn)
    compliance = 1.0 if total == 0 else (total - violations) / total
    burn_rate = 0.0 if total == 0 else \
        ((violations / total) / spec.budget)
    return SLOReport(
        spec=spec,
        total=total,
        violations=violations,
        compliance=compliance,
        burn_rate=burn_rate,
        worst_window_burn_rate=worst,
        num_windows=len(windows),
    )


def merged_histogram(
    windows: Dict[int, LatencyHistogram]
) -> LatencyHistogram:
    """Fold per-window histograms into one (exercises mergeability)."""
    if not windows:
        return LatencyHistogram()
    keys = sorted(windows)
    first = windows[keys[0]]
    merged = LatencyHistogram(
        v_min=first.v_min, gamma=first.gamma,
        num_buckets=first.num_buckets,
    )
    for key in keys:
        merged = merged.merge(windows[key])
    return merged
