"""Tail, summarize and validate serving telemetry event logs.

The operational counterpart of :mod:`repro.serve.telemetry`: given a
JSONL event log (``repro.serve.telemetry/1``, written by
:class:`~repro.serve.telemetry.JsonlSink`), this module

* **checks** it — schema header, per-line field validation, known event
  kinds, per-trace monotone timestamps — returning a list of problem
  strings (empty = valid), which is what the CI determinism gate runs
  via ``repro-apsp monitor LOG --check``;
* **summarizes** it — per-kind and per-status counts, an answer-latency
  :class:`~repro.obs.hist.LatencyHistogram` with p50/p99, and the
  top-K slowest requests *by trace id* so "why was this query slow?"
  has a concrete id to feed
  :func:`repro.serve.telemetry.export_request_trace`;
* **tails** it — the last N events, one per line, for eyeballing.

``python -m repro.serve.monitor LOG [--check] [--tail N] [--top K]``
and ``repro-apsp monitor`` are the same entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.hist import LatencyHistogram
from .telemetry import EVENT_KINDS, TELEMETRY_SCHEMA_VERSION

__all__ = [
    "check_event_log",
    "summarize_event_log",
    "tail_events",
    "format_summary",
    "main",
]


def _read_lines(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as fh:
        return [line for line in fh.read().splitlines() if line.strip()]


def check_event_log(path: str) -> List[str]:
    """Validate an event log; returns problem strings (empty = OK)."""
    problems: List[str] = []
    try:
        lines = _read_lines(path)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not lines:
        return [f"{path}: empty event log (missing header line)"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"{path}:1: header is not JSON: {exc}"]
    if not isinstance(header, dict):
        return [f"{path}:1: header is not a JSON object"]
    if header.get("schema") != TELEMETRY_SCHEMA_VERSION:
        problems.append(
            f"{path}:1: schema {header.get('schema')!r} != "
            f"{TELEMETRY_SCHEMA_VERSION!r}"
        )
    last_t: Dict[str, float] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        where = f"{path}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{where}: not JSON: {exc}")
            continue
        if not isinstance(record, dict):
            problems.append(f"{where}: event is not a JSON object")
            continue
        trace_id = record.get("trace_id")
        kind = record.get("kind")
        if not isinstance(trace_id, str) or not trace_id:
            problems.append(f"{where}: missing/empty trace_id")
            continue
        if kind not in EVENT_KINDS:
            problems.append(f"{where}: unknown event kind {kind!r}")
        t = record.get("t")
        dur = record.get("dur", 0.0)
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            problems.append(f"{where}: non-numeric timestamp {t!r}")
            continue
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                or dur < 0:
            problems.append(f"{where}: bad duration {dur!r}")
        previous = last_t.get(trace_id)
        if previous is not None and float(t) < previous:
            problems.append(
                f"{where}: timestamp {t} goes backwards for "
                f"trace {trace_id} (was {previous})"
            )
        last_t[trace_id] = float(t)
        attrs = record.get("attrs")
        if attrs is not None and not isinstance(attrs, dict):
            problems.append(f"{where}: attrs is not an object")
    return problems


def summarize_event_log(
    path: str, *, top: int = 5
) -> Dict[str, Any]:
    """Aggregate an event log into a plain summary dict.

    ``answer`` events carry the request's final latency in their
    ``dur`` field; they feed the latency histogram (exemplars = trace
    ids) and the ``slowest`` top-K list.
    """
    from .telemetry import read_event_log

    header, events = read_event_log(path)
    kind_counts: Dict[str, int] = {}
    status_counts: Dict[str, int] = {}
    hist = LatencyHistogram()
    answers: List[Tuple[float, str]] = []
    traces = set()
    for record in events:
        kind = str(record.get("kind", "?"))
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        traces.add(record.get("trace_id"))
        attrs = record.get("attrs") or {}
        if kind == "answer":
            status = str(attrs.get("status", "ok"))
            status_counts[status] = status_counts.get(status, 0) + 1
            latency = float(record.get("dur", 0.0))
            trace_id = str(record.get("trace_id"))
            hist.record(latency, trace_id)
            answers.append((latency, trace_id))
    answers.sort(key=lambda pair: (-pair[0], pair[1]))
    return {
        "path": path,
        "schema": header.get("schema"),
        "params": header.get("params", {}),
        "num_events": len(events),
        "num_traces": len(traces),
        "kinds": dict(sorted(kind_counts.items())),
        "statuses": dict(sorted(status_counts.items())),
        "latency": {
            "count": hist.count,
            "p50_ms": hist.quantile(50) * 1e3,
            "p90_ms": hist.quantile(90) * 1e3,
            "p99_ms": hist.quantile(99) * 1e3,
            "rel_error": hist.rel_error,
        },
        "slowest": [
            {"trace_id": trace_id, "latency_ms": latency * 1e3}
            for latency, trace_id in answers[:max(top, 0)]
        ],
    }


def tail_events(path: str, count: int = 10) -> List[Dict[str, Any]]:
    """The last ``count`` event records of the log, in order."""
    from .telemetry import read_event_log

    _, events = read_event_log(path)
    if count <= 0:
        return []
    return events[-count:]


def _format_event(record: Mapping[str, Any]) -> str:
    attrs = record.get("attrs") or {}
    extra = " ".join(
        f"{key}={value}" for key, value in sorted(attrs.items())
    )
    base = (
        f"{float(record.get('t', 0.0)):>12.6f} "
        f"{str(record.get('kind', '?')):<14} "
        f"{str(record.get('trace_id', '?'))}"
    )
    dur = float(record.get("dur", 0.0))
    if dur:
        base += f" dur={dur:.6f}"
    return base + (f" {extra}" if extra else "")


def format_summary(summary: Mapping[str, Any]) -> str:
    lines = [
        f"event log: {summary['path']}",
        f"schema:    {summary['schema']}",
        f"events:    {summary['num_events']} across "
        f"{summary['num_traces']} traces",
    ]
    kinds = summary.get("kinds", {})
    if kinds:
        lines.append("kinds:     " + " ".join(
            f"{kind}={count}" for kind, count in kinds.items()
        ))
    statuses = summary.get("statuses", {})
    if statuses:
        lines.append("statuses:  " + " ".join(
            f"{status}={count}" for status, count in statuses.items()
        ))
    latency = summary.get("latency", {})
    if latency.get("count"):
        lines.append(
            f"latency:   n={latency['count']} "
            f"p50={latency['p50_ms']:.4f}ms "
            f"p90={latency['p90_ms']:.4f}ms "
            f"p99={latency['p99_ms']:.4f}ms "
            f"(±{latency['rel_error']:.1%} certified)"
        )
    slowest = summary.get("slowest", [])
    if slowest:
        lines.append("slowest requests:")
        for entry in slowest:
            lines.append(
                f"  {entry['latency_ms']:>10.4f} ms  {entry['trace_id']}"
            )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-apsp monitor",
        description="tail / summarize / validate a serving telemetry "
                    "JSONL event log",
    )
    parser.add_argument("log", help="path to the JSONL event log")
    parser.add_argument(
        "--check", action="store_true",
        help="validate the log and exit non-zero on any problem",
    )
    parser.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="print the last N events instead of the summary",
    )
    parser.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="number of slowest exemplar trace ids in the summary",
    )
    args = parser.parse_args(argv)
    if args.check:
        problems = check_event_log(args.log)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(f"FAIL: {len(problems)} problem(s) in {args.log}")
            return 1
        print(f"OK: {args.log} is a valid {TELEMETRY_SCHEMA_VERSION} log")
        return 0
    if args.tail:
        for record in tail_events(args.log, args.tail):
            print(_format_event(record))
        return 0
    print(format_summary(summarize_event_log(args.log, top=args.top)))
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
