"""Consistent-hash shard routing across virtual serve nodes.

One machine stops being enough twice: the distance matrix outgrows one
disk, and hot Zipf traffic outgrows one machine's I/O budget.  This
module is the routing tier that fixes both while keeping every answer
bitwise-identical to the single-node :class:`~repro.serve.engine.QueryEngine`:

* :class:`ShardRouter` — a classic consistent-hash ring (Karger et al.):
  each node owns ``vnodes`` pseudo-random points on a 64-bit ring, and a
  shard's **preference list** is the first ``replication`` distinct live
  nodes clockwise from the shard's own hash.  Adding or failing one node
  moves only ~1/N of the shards; replicas give failover targets.
* **Failover** — :meth:`ShardRouter.route` walks the preference list
  past failed nodes; if every replica is down it deterministically falls
  back to any live node (the store is shared, so correctness is never at
  stake — only placement/cache locality).
* **Rebalance** — :meth:`ShardRouter.rebalance` relocates up to
  ``max_moves`` of the hottest shards from overloaded nodes onto the
  least-loaded ones via explicit per-shard override pins.  Bounded,
  deterministic, and purely a placement change: answers stay exact.
* :class:`RoutedEngine` — the multi-node face of ``QueryEngine``: one
  engine (cache + stats) per virtual node, each query routed by its
  source shard through the ring, per-node in-flight budgets enforced
  with semaphores.  Drop-in everywhere a ``QueryEngine`` is accepted
  (``ServeFrontend``, ``replay_threaded``).

Hash choice: ``blake2b(digest_size=8)`` — stable across processes and
platforms (unlike ``hash()``), cheap, and already in hashlib.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ServeError
from .engine import QueryEngine
from .store import DistStore

__all__ = ["ShardRouter", "RoutedEngine"]


def _ring_hash(key: str) -> int:
    """Stable 64-bit point on the ring for a string key."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Places shards on ``num_nodes`` virtual nodes via consistent hashing.

    ``replication`` copies of each shard live on the first distinct
    nodes clockwise from the shard's ring point; ``vnodes`` virtual
    points per node smooth the load distribution; ``hash_seed`` yields
    independent ring layouts for experiments.  Nodes can be failed and
    restored at runtime, and a bounded :meth:`rebalance` pins hot shards
    onto cold nodes without touching the ring itself.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        replication: int = 1,
        vnodes: int = 64,
        hash_seed: int = 0,
    ) -> None:
        if not isinstance(num_nodes, int) or isinstance(num_nodes, bool) \
                or num_nodes < 1:
            raise ServeError(
                f"num_nodes must be an int >= 1, got {num_nodes!r}"
            )
        if not isinstance(replication, int) or isinstance(replication, bool) \
                or replication < 1:
            raise ServeError(
                f"replication must be an int >= 1, got {replication!r}"
            )
        if replication > num_nodes:
            raise ServeError(
                f"replication {replication} exceeds num_nodes {num_nodes}"
            )
        if not isinstance(vnodes, int) or isinstance(vnodes, bool) \
                or vnodes < 1:
            raise ServeError(f"vnodes must be an int >= 1, got {vnodes!r}")
        self.num_nodes = num_nodes
        self.replication = replication
        self.vnodes = vnodes
        self.hash_seed = hash_seed
        points: List[Tuple[int, int]] = []
        for node in range(num_nodes):
            for v in range(vnodes):
                points.append(
                    (_ring_hash(f"{hash_seed}:node{node}:vp{v}"), node)
                )
        points.sort()
        self._ring_keys = [p[0] for p in points]
        self._ring_nodes = [p[1] for p in points]
        self._down: set = set()
        #: rebalance pins: shard -> full preference tuple override
        self._overrides: Dict[int, Tuple[int, ...]] = {}

    # -- placement ------------------------------------------------------

    def preference(self, shard: int) -> Tuple[int, ...]:
        """The shard's replica set: first ``replication`` distinct nodes
        clockwise from its ring point (ignores node health; pins from a
        :meth:`rebalance` take precedence)."""
        pinned = self._overrides.get(shard)
        if pinned is not None:
            return pinned
        start = bisect.bisect_left(
            self._ring_keys, _ring_hash(f"{self.hash_seed}:shard{shard}")
        )
        owners: List[int] = []
        n_points = len(self._ring_keys)
        for step in range(n_points):
            node = self._ring_nodes[(start + step) % n_points]
            if node not in owners:
                owners.append(node)
                if len(owners) == self.replication:
                    break
        return tuple(owners)

    def route(self, shard: int) -> Tuple[int, bool]:
        """``(node, failover)`` for a shard: the first **live** owner in
        its preference list; ``failover=True`` when that is not the
        primary.  With every replica down, falls back deterministically
        to the live node owning the next clockwise ring point."""
        owners = self.preference(shard)
        for i, node in enumerate(owners):
            if node not in self._down:
                return node, i != 0
        live = sorted(set(range(self.num_nodes)) - self._down)
        if not live:
            raise ServeError("all serve nodes are down")
        # deterministic spill: walk the ring past the owners
        start = bisect.bisect_left(
            self._ring_keys, _ring_hash(f"{self.hash_seed}:shard{shard}")
        )
        n_points = len(self._ring_keys)
        for step in range(n_points):
            node = self._ring_nodes[(start + step) % n_points]
            if node not in self._down:
                return node, True
        return live[0], True  # unreachable: some live node has vnodes

    def placement(self, num_shards: int) -> Dict[int, List[int]]:
        """``node -> sorted primary shards`` for ``num_shards`` shards
        (health-aware, i.e. after failover)."""
        out: Dict[int, List[int]] = {n: [] for n in range(self.num_nodes)}
        for shard in range(num_shards):
            node, _ = self.route(shard)
            out[node].append(shard)
        return out

    # -- health ---------------------------------------------------------

    def fail_node(self, node: int) -> None:
        """Mark a node down; its shards fail over to the next replicas."""
        self._check_node(node)
        if len(self._down) + 1 >= self.num_nodes and \
                node not in self._down:
            if self.num_nodes - len(self._down) == 1:
                raise ServeError(
                    f"cannot fail node {node}: it is the last live node"
                )
        self._down.add(node)

    def restore_node(self, node: int) -> None:
        self._check_node(node)
        self._down.discard(node)

    def live_nodes(self) -> List[int]:
        return sorted(set(range(self.num_nodes)) - self._down)

    def _check_node(self, node: int) -> None:
        if not isinstance(node, int) or isinstance(node, bool) \
                or not 0 <= node < self.num_nodes:
            raise ServeError(
                f"node must be an int in [0, {self.num_nodes}), got {node!r}"
            )

    # -- rebalance ------------------------------------------------------

    def rebalance(
        self,
        shard_loads: Mapping[int, float],
        *,
        max_moves: int = 4,
    ) -> List[Tuple[int, int, int]]:
        """Move up to ``max_moves`` hot shards to cold nodes; returns the
        ``(shard, from_node, to_node)`` moves actually made.

        Greedy and bounded: each step takes the hottest shard on the
        currently most-loaded live node and pins it (and its replica
        tail) onto the least-loaded live node, but only while that
        strictly narrows the max−min load spread.  Placement-only —
        every node serves from the same store, so answers are unchanged.
        """
        if not isinstance(max_moves, int) or isinstance(max_moves, bool) \
                or max_moves < 0:
            raise ServeError(
                f"max_moves must be an int >= 0, got {max_moves!r}"
            )
        live = self.live_nodes()
        if len(live) < 2:
            return []
        node_load: Dict[int, float] = {n: 0.0 for n in live}
        shard_node: Dict[int, int] = {}
        for shard, load in shard_loads.items():
            node, _ = self.route(int(shard))
            node_load[node] += float(load)
            shard_node[int(shard)] = node
        moves: List[Tuple[int, int, int]] = []
        for _ in range(max_moves):
            # ties broken by node id so the plan is deterministic
            hot = max(node_load, key=lambda n: (node_load[n], -n))
            cold = min(node_load, key=lambda n: (node_load[n], n))
            if hot == cold:
                break
            candidates = [
                (shard_loads[s], s) for s, n in shard_node.items()
                if n == hot and float(shard_loads[s]) > 0
            ]
            if not candidates:
                break
            load, shard = max(candidates, key=lambda t: (t[0], -t[1]))
            load = float(load)
            spread = node_load[hot] - node_load[cold]
            if load >= spread:  # moving it would not strictly help
                break
            old = self.preference(shard)
            tail = [n for n in old if n != cold][: self.replication - 1]
            self._overrides[shard] = (cold, *tail)
            shard_node[shard] = cold
            node_load[hot] -= load
            node_load[cold] += load
            moves.append((shard, hot, cold))
        return moves

    def clear_overrides(self) -> None:
        """Forget all rebalance pins (back to the pure ring placement)."""
        self._overrides.clear()

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_nodes": self.num_nodes,
            "replication": self.replication,
            "vnodes": self.vnodes,
            "hash_seed": self.hash_seed,
            "down": sorted(self._down),
            "overrides": {
                str(s): list(p) for s, p in sorted(self._overrides.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardRouter":
        router = cls(
            int(data["num_nodes"]),
            replication=int(data.get("replication", 1)),
            vnodes=int(data.get("vnodes", 64)),
            hash_seed=int(data.get("hash_seed", 0)),
        )
        for node in data.get("down", []):
            router._down.add(int(node))
        for shard, pref in data.get("overrides", {}).items():
            router._overrides[int(shard)] = tuple(int(n) for n in pref)
        return router

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardRouter(num_nodes={self.num_nodes}, "
            f"replication={self.replication}, vnodes={self.vnodes}, "
            f"down={sorted(self._down)}, pins={len(self._overrides)})"
        )


class RoutedEngine:
    """A :class:`QueryEngine` facade spanning N virtual serve nodes.

    Each node gets its own ``QueryEngine`` (private LRU cache and
    stats) over the shared :class:`DistStore`; every query routes by
    its source shard through the :class:`ShardRouter`, counted against
    that node's in-flight budget.  Because all nodes decode the same
    store, answers are bitwise-identical to a single engine — the ring
    only decides *which cache warms up* and *whose budget pays*.

    Implements the full ``QueryEngine`` query surface (``dist``,
    ``dist_from``, ``top_k``, ``dist_batch``, ``dist_bounds``,
    ``dist_approx``, ``refresh``, ``stats``/``hit_rate``), so
    :class:`~repro.serve.admission.ServeFrontend` and
    :func:`~repro.serve.replay.replay_threaded` accept one unchanged.
    """

    def __init__(
        self,
        store: DistStore,
        router: ShardRouter,
        *,
        cache_shards: int = 4,
        verify_loads: bool = True,
        epsilon: Optional[float] = None,
        node_budget: int = 32,
    ) -> None:
        if not isinstance(router, ShardRouter):
            raise ServeError(
                f"router must be a ShardRouter, got {type(router).__name__}"
            )
        if not isinstance(node_budget, int) or isinstance(node_budget, bool) \
                or node_budget < 1:
            raise ServeError(
                f"node_budget must be an int >= 1, got {node_budget!r}"
            )
        self.store = store
        self.router = router
        self.node_budget = node_budget
        self.engines: List[QueryEngine] = [
            QueryEngine(
                store,
                cache_shards=cache_shards,
                verify_loads=verify_loads,
                epsilon=epsilon,
            )
            for _ in range(router.num_nodes)
        ]
        self._budgets = [
            threading.Semaphore(node_budget) for _ in range(router.num_nodes)
        ]
        self._lock = threading.Lock()
        self.routing_stats: Dict[str, int] = {
            "routed": 0,
            "failovers": 0,
            "budget_waits": 0,
        }

    # -- routing core ---------------------------------------------------

    @property
    def epsilon(self) -> Optional[float]:
        return self.engines[0].epsilon

    def node_of(self, u: int) -> int:
        """The live node currently serving vertex ``u``'s shard."""
        node, _ = self.router.route(self.store.shard_of(u))
        return node

    def _engine_for(self, u: int) -> QueryEngine:
        shard = self.store.shard_of(u)
        node, failover = self.router.route(shard)
        with self._lock:
            self.routing_stats["routed"] += 1
            if failover:
                self.routing_stats["failovers"] += 1
        return self.engines[node], node

    def _run(self, u: int, fn_name: str, *args: Any, **kwargs: Any) -> Any:
        engine, node = self._engine_for(u)
        sem = self._budgets[node]
        if not sem.acquire(blocking=False):
            with self._lock:
                self.routing_stats["budget_waits"] += 1
            sem.acquire()
        try:
            return getattr(engine, fn_name)(*args, **kwargs)
        finally:
            sem.release()

    # -- QueryEngine surface --------------------------------------------

    def dist(self, u: int, v: int) -> float:
        return self._run(u, "dist", u, v)

    def dist_from(self, u: int) -> np.ndarray:
        return self._run(u, "dist_from", u)

    def top_k(self, u: int, k: int) -> List[Tuple[int, float]]:
        return self._run(u, "top_k", u, k)

    def dist_batch(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Routed batch: the batch splits by serving node, each sub-batch
        answered by that node's engine (preserving its per-shard
        gathers), results re-assembled in request order."""
        if not pairs:
            return np.empty(0, dtype=np.float64)
        groups: Dict[int, List[int]] = {}
        for i, (u, _) in enumerate(pairs):
            node, failover = self.router.route(self.store.shard_of(u))
            groups.setdefault(node, []).append(i)
            with self._lock:
                self.routing_stats["routed"] += 1
                if failover:
                    self.routing_stats["failovers"] += 1
        out = np.empty(len(pairs), dtype=np.float64)
        for node in sorted(groups):
            idx = groups[node]
            sub = [pairs[i] for i in idx]
            sem = self._budgets[node]
            if not sem.acquire(blocking=False):
                with self._lock:
                    self.routing_stats["budget_waits"] += 1
                sem.acquire()
            try:
                out[idx] = self.engines[node].dist_batch(sub)
            finally:
                sem.release()
        return out

    def dist_bounds(self, u: int, v: int) -> Tuple[float, float]:
        return self._run(u, "dist_bounds", u, v)

    def dist_approx(self, u: int, v: int) -> Tuple[float, float]:
        return self._run(u, "dist_approx", u, v)

    def refresh(self) -> int:
        """Adopt the store's current generation on every node."""
        generation = 0
        for engine in self.engines:
            generation = engine.refresh()
        self.store = self.engines[0].store
        return generation

    # -- health / introspection -----------------------------------------

    def fail_node(self, node: int) -> None:
        """Fail a node and drop its now-cold cache (it would be stale
        load accounting once traffic fails over)."""
        self.router.fail_node(node)

    def restore_node(self, node: int) -> None:
        self.router.restore_node(node)

    @property
    def stats(self) -> Dict[str, int]:
        """Aggregated engine stats across nodes, plus routing counters."""
        totals: Dict[str, int] = {}
        for engine in self.engines:
            for key, value in engine.stats.items():
                totals[key] = totals.get(key, 0) + value
        totals.update(self.routing_stats)
        return totals

    def hit_rate(self) -> float:
        totals = self.stats
        fetched = totals["hits"] + totals["misses"]
        return totals["hits"] / fetched if fetched else 1.0

    def node_stats(self) -> List[Dict[str, int]]:
        return [dict(engine.stats) for engine in self.engines]
