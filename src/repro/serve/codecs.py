"""Pluggable shard codecs: raw f8, f4, u16 quantization, delta+zlib.

A :class:`DistStore` shard is logically a ``(rows, n)`` float64 block;
how it lives on disk is a **codec** decision recorded in the manifest
(schema ``repro.serve.store/2``).  The codec contract:

* ``encode(block)`` → ``(payload, params, max_abs_error)`` — the bytes
  written to disk, the per-shard parameters needed to invert them, and
  a **certified** bound on ``|decode(encode(x)) - x|`` over the finite
  entries of this shard (``inf`` = unreachable is always preserved
  exactly).  The bound is *measured*, not estimated: encode decodes its
  own output with the exact arithmetic :meth:`decode` will use, so the
  recorded number is an upper bound by construction.
* ``decode(payload, rows, n, params)`` → a fresh writable float64
  ``(rows, n)`` array.
* Encoding is **deterministic**: the same block always produces the
  same payload, which is what lets the manifest crc32 (computed over
  the *encoded* bytes) gate corruption and byte-exact repair per codec.

Codecs:

=========  ========================================================
name       on-disk representation
=========  ========================================================
``raw``    little-endian f8, byte-identical to schema ``/1`` stores
``f4``     little-endian f4 (lossless when values fit 24-bit
           mantissas — e.g. hop-count distances — else ~1e-7 rel.)
``u16q``   per-shard affine u16 quantization: ``offset + q·scale``
           with ``q ∈ [0, 65534]`` and 65535 reserved for ``inf``
``u16qd``  ``u16q`` quantization, columns permuted along the degree
           ordering, delta-encoded mod 2^16, then zlib — lossless
           over the quantized values, so the error bound is u16q's
=========  ========================================================

``u16qd`` payload bytes depend on the zlib build, so it is exercised
by round-trip tests and the accuracy-vs-latency curve but not pinned
by the cross-machine CI fingerprint gate.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import StoreError

__all__ = ["ShardCodec", "CODECS", "get_codec", "codec_names"]

_F8 = np.dtype("<f8")
_F4 = np.dtype("<f4")
_U16 = np.dtype("<u2")

#: u16q sentinel for unreachable (``inf``) entries
_U16_INF = 65535
#: largest quantized finite value — 65535 is reserved for ``inf``
_U16_MAX = 65534


class ShardCodec:
    """One shard encoding; subclasses fill in the three hooks below."""

    #: manifest codec name
    name: str = ""
    #: True if :func:`get_codec` should be handed the store's degree
    #: ordering (``order=...``) when instantiating this codec
    needs_degree_order: bool = False

    def encode(
        self, block: np.ndarray
    ) -> Tuple[bytes, Dict[str, Any], float]:
        """``(payload, per-shard params, certified max abs error)``."""
        raise NotImplementedError

    def decode(
        self,
        payload: bytes,
        rows: int,
        n: int,
        params: Mapping[str, Any],
    ) -> np.ndarray:
        """Fresh writable float64 ``(rows, n)`` block from payload."""
        raise NotImplementedError


def _as_block(block: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(block, dtype=_F8)


class RawCodec(ShardCodec):
    """Verbatim little-endian f8 — byte-identical to ``/1`` stores."""

    name = "raw"

    def encode(self, block):
        return _as_block(block).tobytes(), {}, 0.0

    def decode(self, payload, rows, n, params):
        return np.frombuffer(payload, dtype=_F8).reshape(rows, n).copy()


class F4Codec(ShardCodec):
    """Little-endian f4: halves bytes; exact for 24-bit-mantissa values."""

    name = "f4"

    def encode(self, block):
        block = _as_block(block)
        f4 = block.astype(_F4)
        decoded = f4.astype(np.float64)
        finite = np.isfinite(block)
        err = 0.0
        if finite.any():
            err = float(np.max(np.abs(decoded[finite] - block[finite])))
        return f4.tobytes(), {}, err

    def decode(self, payload, rows, n, params):
        return (
            np.frombuffer(payload, dtype=_F4)
            .reshape(rows, n)
            .astype(np.float64)
        )


def _quantize(block: np.ndarray) -> Tuple[np.ndarray, Dict[str, Any], float]:
    """Shared u16 affine quantization: ``(q, params, max_abs_error)``."""
    finite = np.isfinite(block)
    if finite.any():
        offset = float(block[finite].min())
        span = float(block[finite].max()) - offset
    else:
        offset, span = 0.0, 0.0
    scale = span / _U16_MAX if span > 0.0 else 1.0
    q = np.full(block.shape, _U16_INF, dtype=_U16)
    codes = np.clip(np.rint((block[finite] - offset) / scale), 0, _U16_MAX)
    q[finite] = codes.astype(_U16)
    # measure the bound with the exact arithmetic decode will use
    decoded = offset + q[finite].astype(np.float64) * scale
    err = 0.0
    if finite.any():
        err = float(np.max(np.abs(decoded - block[finite])))
    return q, {"offset": offset, "scale": scale}, err


def _dequantize(
    q: np.ndarray, params: Mapping[str, Any]
) -> np.ndarray:
    out = params["offset"] + q.astype(np.float64) * params["scale"]
    out[q == _U16_INF] = np.inf
    return out


class U16QCodec(ShardCodec):
    """Per-shard affine u16 quantization with a certified error bound."""

    name = "u16q"

    def encode(self, block):
        q, params, err = _quantize(_as_block(block))
        return q.tobytes(), params, err

    def decode(self, payload, rows, n, params):
        q = np.frombuffer(payload, dtype=_U16).reshape(rows, n)
        return _dequantize(q, params)


class U16QDeltaCodec(ShardCodec):
    """``u16q`` + delta along the degree ordering + zlib.

    Columns are permuted so vertices of similar degree sit next to each
    other (hub distances correlate), deltas are taken mod 2^16 along
    each row, and the result is deflated.  Delta+zlib is lossless over
    the quantized codes, so the certified error bound is exactly
    u16q's.  Payload sizes vary per shard and per zlib build — the
    manifest's per-shard ``nbytes`` is authoritative.
    """

    name = "u16qd"
    needs_degree_order = True

    def __init__(self, order: Optional[Sequence[int]] = None) -> None:
        self._order = (
            None if order is None else np.asarray(order, dtype=np.int64)
        )

    def _perm(self, n: int) -> np.ndarray:
        if self._order is None:
            return np.arange(n, dtype=np.int64)
        if len(self._order) != n:
            raise StoreError(
                f"u16qd degree order has {len(self._order)} entries for "
                f"n={n} columns"
            )
        return self._order

    def encode(self, block):
        block = _as_block(block)
        q, params, err = _quantize(block)
        qp = q[:, self._perm(block.shape[1])]
        delta = qp.copy()
        delta[:, 1:] = qp[:, 1:] - qp[:, :-1]  # u16 wraparound = mod 2^16
        payload = zlib.compress(delta.tobytes(), 6)
        return payload, params, err

    def decode(self, payload, rows, n, params):
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise ValueError(f"u16qd payload does not inflate: {exc}") from exc
        delta = np.frombuffer(raw, dtype=_U16).reshape(rows, n)
        qp = (np.cumsum(delta.astype(np.uint64), axis=1) & 0xFFFF).astype(_U16)
        perm = self._perm(n)
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n, dtype=np.int64)
        return _dequantize(qp[:, inv], params)


#: registry, in preference order for the accuracy-vs-latency curve
CODECS: Dict[str, type] = {
    "raw": RawCodec,
    "f4": F4Codec,
    "u16q": U16QCodec,
    "u16qd": U16QDeltaCodec,
}


def codec_names() -> Tuple[str, ...]:
    return tuple(CODECS)


def get_codec(name: str, **params: Any) -> ShardCodec:
    """Instantiate a codec by manifest name (+ store-level params)."""
    cls = CODECS.get(name)
    if cls is None:
        raise StoreError(
            f"unknown shard codec {name!r}; known: {', '.join(CODECS)}"
        )
    if cls.needs_degree_order:
        return cls(order=params.get("order"))
    if params:
        raise StoreError(
            f"codec {name!r} takes no parameters, got {sorted(params)}"
        )
    return cls()
