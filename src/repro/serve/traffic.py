"""Seeded synthetic query traffic: Zipfian popularity, open-loop arrivals.

Real graph-query traffic is heavily skewed — a few hub vertices draw
most lookups — and arrives open-loop (clients do not wait for each
other).  Both properties matter to the serving layer: skew is what
makes an LRU shard cache and landmark degradation work at all, and
open-loop arrivals are what make saturation a real failure mode rather
than a self-limiting one.

A :class:`TrafficSpec` is frozen and fully seeded, so a trace is a pure
function of the spec and the store size ``n``: CI replays the *pinned*
trace and gates latency/hit-rate numbers against a committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import ServeError

__all__ = ["Request", "TrafficSpec", "generate_trace"]


@dataclass(frozen=True)
class Request:
    """One query in a trace; ``v``/``k`` meaningful per ``kind``."""

    arrival: float
    kind: str  # "point" | "row" | "topk"
    u: int
    v: int = -1
    k: int = -1


@dataclass(frozen=True)
class TrafficSpec:
    """Deterministic description of a synthetic query workload.

    ``zipf_s`` is the Zipf exponent of vertex popularity (0 = uniform;
    ~1 = web-like skew).  ``rate`` is the open-loop arrival rate in
    requests per virtual second (exponential interarrivals).
    ``row_frac``/``topk_frac`` carve heavier query classes out of the
    mix; the remainder are point queries.
    """

    num_requests: int = 512
    rate: float = 1000.0
    zipf_s: float = 1.1
    seed: int = 0
    row_frac: float = 0.02
    topk_frac: float = 0.05
    topk_k: int = 10
    #: fraction of requests redirected into one narrow hot band of
    #: ``hot_width`` consecutive source ids — models a *hot shard*
    #: (viral vertex cluster) on top of the global Zipf skew.  The
    #: default 0.0 draws no extra random numbers, so pre-existing
    #: seeded traces stay byte-identical.
    hot_frac: float = 0.0
    hot_width: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.hot_frac <= 1:
            raise ServeError(
                f"hot_frac must be in [0, 1], got {self.hot_frac!r}"
            )
        if not isinstance(self.hot_width, int) \
                or isinstance(self.hot_width, bool) or self.hot_width < 0:
            raise ServeError(
                f"hot_width must be an int >= 0, got {self.hot_width!r}"
            )
        if self.hot_frac > 0 and self.hot_width < 1:
            raise ServeError(
                "hot_frac > 0 needs hot_width >= 1 (the hot band size)"
            )
        if not isinstance(self.num_requests, int) \
                or isinstance(self.num_requests, bool) \
                or self.num_requests < 1:
            raise ServeError(
                f"num_requests must be an int >= 1, got "
                f"{self.num_requests!r}"
            )
        if not self.rate > 0:
            raise ServeError(f"rate must be > 0, got {self.rate!r}")
        if self.zipf_s < 0:
            raise ServeError(f"zipf_s must be >= 0, got {self.zipf_s!r}")
        if not 0 <= self.row_frac <= 1 or not 0 <= self.topk_frac <= 1 \
                or self.row_frac + self.topk_frac > 1:
            raise ServeError(
                "row_frac/topk_frac must be fractions summing to <= 1"
            )
        if not isinstance(self.topk_k, int) or isinstance(self.topk_k, bool) \
                or self.topk_k < 1:
            raise ServeError(f"topk_k must be an int >= 1, got {self.topk_k!r}")


def _zipf_popularity(n: int, s: float, rng: np.random.Generator) -> np.ndarray:
    """Per-vertex probabilities: Zipf over ranks, ranks shuffled onto ids.

    The shuffle decouples popularity from vertex id — without it the
    hottest vertices would all sit in shard 0 and the cache numbers
    would be an artefact of row ordering rather than of skew.
    """
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    probs = weights / weights.sum()
    perm = rng.permutation(n)
    out = np.empty(n, dtype=np.float64)
    out[perm] = probs
    return out


def generate_trace(spec: TrafficSpec, n: int) -> List[Request]:
    """Materialise the request list for a store of ``n`` vertices."""
    if n < 2:
        raise ServeError(f"traffic needs a store with n >= 2, got n={n}")
    rng = np.random.default_rng(spec.seed)
    probs = _zipf_popularity(n, spec.zipf_s, rng)
    arrivals = np.cumsum(
        rng.exponential(1.0 / spec.rate, size=spec.num_requests)
    )
    us = rng.choice(n, size=spec.num_requests, p=probs)
    vs = rng.choice(n, size=spec.num_requests, p=probs)
    kinds = rng.random(spec.num_requests)
    if spec.hot_frac > 0:
        # hot-shard skew: redirect a slice of sources into one narrow
        # band of ids.  Drawn AFTER every pre-existing stream so traces
        # with hot_frac == 0 keep their exact historical bytes.
        width = min(spec.hot_width, n)
        hot_start = int(rng.integers(0, n - width + 1))
        hot_mask = rng.random(spec.num_requests) < spec.hot_frac
        hot_ids = hot_start + rng.integers(
            0, width, size=spec.num_requests
        )
        us = np.where(hot_mask, hot_ids, us)
    # self-queries are legal but uninteresting; nudge to a neighbour id
    vs = np.where(vs == us, (vs + 1) % n, vs)
    out: List[Request] = []
    for i in range(spec.num_requests):
        if kinds[i] < spec.row_frac:
            out.append(Request(float(arrivals[i]), "row", int(us[i])))
        elif kinds[i] < spec.row_frac + spec.topk_frac:
            out.append(
                Request(float(arrivals[i]), "topk", int(us[i]), k=spec.topk_k)
            )
        else:
            out.append(
                Request(float(arrivals[i]), "point", int(us[i]), v=int(vs[i]))
            )
    return out
