"""Incremental APSP edge updates with copy-on-write serving.

Production graphs mutate constantly, but a :class:`DistStore` is built
frozen — any edge change used to mean a full O(n²) rebuild.  This
module applies a *batch* of edge insertions / deletions / reweights to
a live store, re-solving only the distance shards the batch can
actually affect:

1. **Landmark prescreen** — the pinned raw-f8 landmark rows give
   certified ALT bounds ``lo(s, x) <= d(s, x) <= hi(s, x)`` with zero
   shard I/O.  A source row ``s`` is *provably clean* when, for every
   inserted / decreased edge ``(u, v, w_new)``, relaxing the new arc
   cannot improve anything (``lo(s,u) + w_new >= hi(s,v)`` and the
   mirror), and for every deleted / increased edge ``(u, v, w_old)``
   the old arc was on no shortest path (``lo(s,u) + w_old > hi(s,v)``
   strictly, and the mirror).  Shards whose every row passes are
   certified clean without touching the solver.
2. **Exact endpoint refinement** — a row ``s`` changes iff ``d(s, e)``
   changes for some touched endpoint ``e`` (undirected graphs), so one
   Dijkstra per endpoint on the old and new graph pins down the exact
   dirty-row set.  The exact set must be a subset of the prescreen
   candidates; a violation raises rather than shipping a wrong store.
3. **Copy-on-write re-solve** — dirty shards are re-solved on the new
   graph through the same :func:`~repro.core.runner.solve_apsp_shards`
   + codec-encode + checksum pipeline as a fresh build, written to
   *new* generation-suffixed files beside the old ones, verified on
   disk, and only then does one atomic manifest swap (`os.replace`)
   publish the new **generation**.  Readers holding the old manifest
   keep resolving old file names; a
   :meth:`~repro.serve.engine.QueryEngine.refresh` adopts the new
   generation without ever mixing rows from two generations.

Landmark rows (and hence the ALT index) are rebuilt whenever the
top-degree landmark set changes or any landmark's own shard is dirty,
so degraded answers stay certified after the swap.

The headline invariant — gated by the ``update-smoke`` bench and a
hypothesis property test — is **byte-identity**: after
``apply_edge_updates``, every shard payload and the landmark file are
bitwise identical to a from-scratch :func:`~repro.serve.store.
solve_to_store` of the mutated graph, at a measured cost far below the
rebuild.
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import StoreCorruptionError, StoreError
from ..obs import metrics as _obs
from . import telemetry as _tel
from .codecs import get_codec
from .store import (
    _MANIFEST,
    DistStore,
    _crc32,
    _degree_order,
    _landmark_vertices,
)

__all__ = [
    "EdgeUpdate",
    "UpdateResult",
    "apply_edge_updates",
    "apply_updates_to_graph",
    "parse_edge_updates",
]


def _update_shard_file(index: int, generation: int) -> str:
    return f"shard_{index:05d}.g{generation:04d}.bin"


def _update_landmark_file(generation: int) -> str:
    return f"landmarks.g{generation:04d}.bin"


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge mutation: set ``(u, v)`` to ``weight``, or delete it.

    ``weight=None`` deletes the edge (which must exist); a finite
    positive weight inserts the edge or reweights it if present.
    Undirected, so ``(u, v)`` and ``(v, u)`` name the same edge.
    """

    u: int
    v: int
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("u", "v"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or isinstance(
                value, bool
            ) or int(value) < 0:
                raise StoreError(
                    f"edge update {name} must be an int >= 0, "
                    f"got {value!r}"
                )
            object.__setattr__(self, name, int(value))
        if self.u == self.v:
            raise StoreError(
                f"edge update ({self.u}, {self.v}) is a self loop"
            )
        w = self.weight
        if w is not None:
            if not isinstance(w, (int, float)) or isinstance(w, bool) \
                    or not 0.0 < float(w) < float("inf"):
                raise StoreError(
                    f"edge update weight must be a finite number > 0 or "
                    f"None (delete), got {w!r}"
                )
            object.__setattr__(self, "weight", float(w))

    @property
    def key(self) -> Tuple[int, int]:
        """Canonical undirected edge key ``(min, max)``."""
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)

    def to_dict(self) -> Dict[str, Any]:
        return {"u": self.u, "v": self.v, "weight": self.weight}


def parse_edge_updates(text: str) -> List[EdgeUpdate]:
    """Parse the compact DSL ``"set=u,v,w;del=u,v;..."``.

    ``set`` inserts or reweights an edge, ``del`` removes one; items
    are ``;``-separated.  Mirrors the fault/corruption DSLs so the CLI
    can take ``repro-apsp update --updates "set=3,9,0.25;del=1,4"``.
    """
    updates: List[EdgeUpdate] = []
    for item in text.split(";"):
        item = item.strip()
        if not item:
            continue
        op, sep, args = item.partition("=")
        op = op.strip()
        if not sep or op not in ("set", "del"):
            raise StoreError(
                f"bad edge update {item!r}; expected set=u,v,w or del=u,v"
            )
        parts = [p.strip() for p in args.split(",")]
        try:
            if op == "set":
                if len(parts) != 3:
                    raise ValueError
                updates.append(
                    EdgeUpdate(int(parts[0]), int(parts[1]), float(parts[2]))
                )
            else:
                if len(parts) != 2:
                    raise ValueError
                updates.append(EdgeUpdate(int(parts[0]), int(parts[1]), None))
        except ValueError:
            raise StoreError(
                f"bad edge update {item!r}; expected set=u,v,w or del=u,v"
            ) from None
    return updates


def _edge_weights(graph) -> Dict[Tuple[int, int], float]:
    """Canonical ``(min, max) -> weight`` map of an undirected graph."""
    arcs = graph.arc_array()
    mask = arcs[:, 0] < arcs[:, 1]
    return {
        (int(u), int(v)): float(w)
        for (u, v), w in zip(arcs[mask], graph.weights[mask])
    }


def apply_updates_to_graph(graph, updates: Iterable[EdgeUpdate]):
    """The mutated :class:`~repro.graphs.CSRGraph` a batch describes.

    Pure function of (graph, batch): deleting an absent edge or
    repeating an edge within one batch raises — a batch must be
    unambiguous about the graph it produces.
    """
    from ..graphs.build import from_edges

    if graph.directed:
        raise StoreError(
            "edge updates require an undirected graph (the landmark "
            "certificates and endpoint refinement rely on d(u,v) = "
            "d(v,u))"
        )
    updates = list(updates)
    n = graph.num_vertices
    seen = set()
    for upd in updates:
        if not isinstance(upd, EdgeUpdate):
            raise StoreError(
                f"updates must be EdgeUpdate, got {type(upd).__name__}"
            )
        if upd.u >= n or upd.v >= n:
            raise StoreError(
                f"edge update ({upd.u}, {upd.v}) out of range for "
                f"graph of n={n}"
            )
        if upd.key in seen:
            raise StoreError(
                f"edge ({upd.key[0]}, {upd.key[1]}) appears twice in "
                "one update batch"
            )
        seen.add(upd.key)
    edges = _edge_weights(graph)
    for upd in updates:
        if upd.weight is None:
            if upd.key not in edges:
                raise StoreError(
                    f"cannot delete absent edge ({upd.key[0]}, "
                    f"{upd.key[1]})"
                )
            del edges[upd.key]
        else:
            edges[upd.key] = upd.weight
    return from_edges(
        ((u, v, w) for (u, v), w in sorted(edges.items())),
        num_vertices=n,
        directed=False,
        name=graph.name,
    )


@dataclass(frozen=True)
class UpdateResult:
    """What one :func:`apply_edge_updates` call did, and what it cost.

    ``cost_rows`` is the deterministic row-unit cost of the update —
    dirty rows re-solved, plus landmark rows re-solved outside dirty
    shards, plus two SSSP runs per touched endpoint (old + new graph),
    each counted as one row.  ``rebuild_rows`` is what a from-scratch
    build pays (``n``); their ratio is the headline the update-smoke
    bench gates below 0.5.
    """

    generation: int
    num_updates: int
    endpoints: Tuple[int, ...]
    candidate_shards: Tuple[int, ...]
    dirty_shards: Tuple[int, ...]
    certified_clean_shards: int
    landmarks_rebuilt: bool
    rows_resolved: int
    landmark_rows_resolved: int
    rebuild_rows: int
    pruned_files: Tuple[str, ...] = ()
    store: Optional[DistStore] = field(
        default=None, repr=False, compare=False
    )

    @property
    def cost_rows(self) -> int:
        return (
            self.rows_resolved
            + self.landmark_rows_resolved
            + 2 * len(self.endpoints)
        )

    @property
    def cost_ratio(self) -> float:
        return self.cost_rows / self.rebuild_rows if self.rebuild_rows else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "generation": self.generation,
            "num_updates": self.num_updates,
            "endpoints": list(self.endpoints),
            "candidate_shards": list(self.candidate_shards),
            "dirty_shards": list(self.dirty_shards),
            "certified_clean_shards": self.certified_clean_shards,
            "landmarks_rebuilt": self.landmarks_rebuilt,
            "rows_resolved": self.rows_resolved,
            "landmark_rows_resolved": self.landmark_rows_resolved,
            "cost_rows": self.cost_rows,
            "rebuild_rows": self.rebuild_rows,
            "cost_ratio": self.cost_ratio,
            "pruned_files": list(self.pruned_files),
        }


# -- dirty-row analysis -------------------------------------------------


def _classify(store_edges, updates):
    """Split a batch into relax-tighter and relax-looser edge lists.

    Returns ``(decreases, increases, endpoints)`` where each entry is
    ``(u, v, w)`` with ``w`` the weight relevant to the certificate:
    the *new* weight for an insert/decrease (can the new arc improve
    anything?), the *old* weight for a delete/increase (was the old arc
    on any shortest path?).  No-op reweights drop out entirely.
    """
    decreases: List[Tuple[int, int, float]] = []
    increases: List[Tuple[int, int, float]] = []
    endpoints: set = set()
    for upd in updates:
        u, v = upd.key
        w_old = store_edges.get(upd.key)
        w_new = upd.weight
        if w_new is None:
            increases.append((u, v, w_old))
        elif w_old is None:
            decreases.append((u, v, w_new))
        elif w_new < w_old:
            decreases.append((u, v, w_new))
        elif w_new > w_old:
            increases.append((u, v, w_old))
        else:
            continue  # no-op reweight: provably nothing to do
        endpoints.update((u, v))
    return decreases, increases, sorted(endpoints)


def _alt_bounds(lm_rows: np.ndarray, x: int) -> Tuple[np.ndarray, np.ndarray]:
    """Certified ``(lo, hi)`` arrays over every source row, for one x.

    ``lo[s] <= d(s, x) <= hi[s]`` from the pinned landmark rows — the
    vectorised form of :meth:`QueryEngine.dist_bounds`.
    """
    col = lm_rows[:, x][:, None]
    with np.errstate(invalid="ignore"):
        hi = np.min(lm_rows + col, axis=0)
        diff = np.abs(lm_rows - col)
    # both endpoints unreachable from a landmark -> inf - inf = nan;
    # that landmark certifies nothing, so it contributes lo = 0
    lo = np.max(np.where(np.isnan(diff), 0.0, diff), axis=0)
    return lo, hi


#: relative slack applied to every certificate comparison.  The ALT
#: bounds are bounds in *exact* arithmetic, but each is assembled with
#: one float add/sub whose rounding can land an ulp past the true
#: distance — when the edge is exactly tight from a row (equality),
#: that ulp is enough to satisfy the strict inequality and mis-certify
#: a dirty row.  1e-12 is thousands of ulp of headroom over any
#: accumulated path-sum error and costs only a sliver of certification
#: power; shrinking what we certify is a performance loss, never a
#: soundness loss.
_CERT_REL_SLACK = 1e-12


def _cert_slack(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row comparison slack; 0 where either side is inf (those
    comparisons are decided by sign, not rounding)."""
    finite = np.isfinite(a) & np.isfinite(b)
    return np.where(finite, _CERT_REL_SLACK * (np.abs(a) + np.abs(b)), 0.0)


def _prescreen_rows(
    lm_rows: np.ndarray, n: int, decreases, increases
) -> np.ndarray:
    """Boolean mask of rows the landmark bounds could NOT prove clean."""
    maybe_dirty = np.zeros(n, dtype=bool)
    bounds: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def at(x: int) -> Tuple[np.ndarray, np.ndarray]:
        if x not in bounds:
            bounds[x] = _alt_bounds(lm_rows, x)
        return bounds[x]

    with np.errstate(invalid="ignore"):
        for u, v, w in decreases:
            lo_u, hi_u = at(u)
            lo_v, hi_v = at(v)
            # new arc improves nothing from s when d(s,u) + w >= d(s,v)
            # (and the mirror); certify with lo + w >= hi, padded so
            # float rounding in the bounds cannot fake the inequality
            a, b = lo_u + w, lo_v + w
            clean = (a >= hi_v + _cert_slack(a, hi_v)) \
                & (b >= hi_u + _cert_slack(b, hi_u))
            maybe_dirty |= ~clean
        for u, v, w in increases:
            lo_u, hi_u = at(u)
            lo_v, hi_v = at(v)
            # old arc was on no shortest path from s when
            # d(s,u) + w > d(s,v) strictly (and the mirror); same
            # rounding pad — a tight edge (exact equality) must never
            # pass the strict test on an ulp of float noise
            a, b = lo_u + w, lo_v + w
            clean = (a > hi_v + _cert_slack(a, hi_v)) \
                & (b > hi_u + _cert_slack(b, hi_u))
            # lo = inf certifies d(s, u) = inf (a landmark reaches
            # exactly one of s, u): any path through the arc visits
            # both endpoints, so a row disconnected from either is
            # untouched — this rescues rows where the strict
            # inequality degenerates to inf > inf
            clean |= np.isinf(lo_u) | np.isinf(lo_v)
            maybe_dirty |= ~clean
    return maybe_dirty


def _exact_dirty_rows(
    graph_old, graph_new, endpoints, *, store=None
) -> np.ndarray:
    """Boolean mask of rows whose distances actually change.

    Row ``s`` changes iff ``d(s, e)`` changes for some touched endpoint
    ``e`` (undirected): any altered shortest path crosses a touched
    endpoint, and conversely.  One Dijkstra per endpoint per graph pins
    this down; the comparison is bitwise because the solver's float
    fixpoint is canonical (min over paths of the running-sum float).

    When ``store`` is given, the old-graph run doubles as a wrong-graph
    guard: the endpoint's freshly solved row must agree with the row
    the store serves (within the codec's certified error).
    """
    from ..core.dijkstra import dijkstra_sssp

    n = graph_old.num_vertices
    changed = np.zeros(n, dtype=bool)
    for e in endpoints:
        d_old, _ = dijkstra_sssp(graph_old, e)
        if store is not None:
            _check_row_matches_store(store, e, d_old)
        d_new, _ = dijkstra_sssp(graph_new, e)
        changed |= d_old != d_new
    return changed


def _check_row_matches_store(store: DistStore, e: int, d_old: np.ndarray):
    """Raise when the graph passed to the update is not the store's."""
    index = store.shard_of(e)
    start, _ = store.shard_span(index)
    served = store.load_shard(index)[e - start]
    tol = 2.0 * store.max_abs_error
    finite = np.isfinite(d_old)
    mismatch = np.isfinite(served) != finite
    with np.errstate(invalid="ignore"):
        mismatch |= finite & (np.abs(served - d_old) > tol)
    if np.any(mismatch):
        raise StoreError(
            f"row {e} solved from the given graph disagrees with the "
            f"store beyond the codec error bound ({tol}); is this the "
            "graph the store was built from?"
        )


def _rows_to_shards(mask: np.ndarray, shard_rows: int, num_shards: int):
    pad = num_shards * shard_rows - mask.size
    if pad:
        mask = np.concatenate([mask, np.zeros(pad, dtype=bool)])
    by_shard = mask.reshape(num_shards, shard_rows).any(axis=1)
    return [int(i) for i in np.flatnonzero(by_shard)]


# -- the update itself --------------------------------------------------


def apply_edge_updates(
    store: DistStore,
    graph,
    updates: Iterable[EdgeUpdate],
    *,
    config=None,
    pre_swap_hook: Optional[Callable[[DistStore, Dict[str, Any]], None]] = None,
) -> UpdateResult:
    """Apply a batch of edge updates to a live store, copy-on-write.

    ``graph`` must be the graph the store currently serves (checked
    against the store's own rows); the mutated graph is derived from
    the batch.  Only provably affected shards are re-solved; new shard
    files are written *beside* the old generation's, verified on disk,
    and published by one atomic manifest swap carrying a bumped
    ``generation`` — readers are never blocked and never see a torn
    store.  Returns an :class:`UpdateResult` whose ``store`` field is
    the freshly opened new generation.

    ``config`` is an optional :class:`repro.config.UpdateConfig`;
    ``pre_swap_hook(old_store, new_manifest)`` runs after the new files
    are written but before they are verified and the manifest swapped —
    the injection point for corruption drills across an in-flight
    update (a drill that damages a pending file aborts the update with
    the old generation intact).
    """
    from ..config import SolverConfig, UpdateConfig

    if config is None:
        cfg_u = UpdateConfig()
    elif isinstance(config, UpdateConfig):
        cfg_u = config
    else:
        raise StoreError(
            f"config must be an UpdateConfig, got {type(config).__name__}"
        )
    if graph.num_vertices != store.n:
        raise StoreError(
            f"update graph has {graph.num_vertices} vertices, store was "
            f"built for n={store.n}"
        )
    updates = list(updates)
    new_graph = apply_updates_to_graph(graph, updates)  # validates batch

    if cfg_u.verify_before:
        # an update must never be layered on top of silent corruption:
        # a pre-existing bad shard would be copied forward as "clean"
        store.verify()

    cfg = SolverConfig.from_dict(store.manifest["config"])
    if cfg.algorithm.use_flags:
        cfg = cfg.with_overrides(use_flags=False)
    n = store.n
    shard_rows = store.shard_rows
    new_gen = store.generation + 1

    store_edges = _edge_weights(graph)  # pre-update weights
    decreases, increases, endpoints = _classify(store_edges, updates)

    # -- 1. landmark prescreen (certified clean rows) -------------------
    old_lm_rows = store.landmark_rows() if store.landmark_ids else None
    if cfg_u.prescreen and old_lm_rows is not None and len(old_lm_rows):
        candidate_mask = _prescreen_rows(
            old_lm_rows, n, decreases, increases
        )
    else:
        candidate_mask = np.ones(n, dtype=bool)
    candidate_shards = _rows_to_shards(
        candidate_mask, shard_rows, store.num_shards
    )

    # -- 2. exact endpoint refinement -----------------------------------
    dirty_mask = _exact_dirty_rows(graph, new_graph, endpoints, store=store)
    if np.any(dirty_mask & ~candidate_mask):
        leaked = np.flatnonzero(dirty_mask & ~candidate_mask)[:8]
        raise StoreError(
            "internal invariant violated: endpoint refinement found "
            f"changed rows {leaked.tolist()} that the landmark "
            "certificate declared clean; refusing to ship a store that "
            "could be wrong"
        )
    dirty_shards = set(
        _rows_to_shards(dirty_mask, shard_rows, store.num_shards)
    )

    # -- 3. codec bookkeeping -------------------------------------------
    new_manifest = copy.deepcopy(store.manifest)
    codec_params = dict(store.manifest.get("codec_params", {}))
    codec_probe = get_codec(store.codec_name)
    if codec_probe.needs_degree_order:
        new_order = [
            int(v) for v in _degree_order(new_graph, cfg.algorithm.degree_kind)
        ]
        if new_order != list(codec_params.get("order", [])):
            # the codec's byte layout depends on the degree order, so a
            # changed order invalidates every shard's encoding
            codec_params["order"] = new_order
            dirty_shards = set(range(store.num_shards))
    codec_obj = get_codec(store.codec_name, **codec_params)
    dirty_shards = sorted(dirty_shards)

    # -- 4. landmark invalidation rule ----------------------------------
    old_ids = list(store.landmark_ids)
    new_ids = _landmark_vertices(
        new_graph, len(old_ids), cfg.algorithm.degree_kind
    )
    dirty_set = set(dirty_shards)
    landmarks_rebuilt = bool(old_ids) and (
        new_ids != old_ids
        or any(vertex // shard_rows in dirty_set for vertex in new_ids)
    )

    # -- 5. copy-on-write re-solve of dirty shards ----------------------
    from ..core.runner import solve_apsp_shards

    lm_pos = {v: i for i, v in enumerate(new_ids)}
    new_lm_rows = (
        np.empty((len(new_ids), n), dtype=np.float64)
        if landmarks_rebuilt
        else None
    )
    rows_resolved = 0
    written: List[Path] = []
    pending: List[Tuple[Path, int, int]] = []  # (path, crc, nbytes)

    def solve_shard(index: int) -> np.ndarray:
        start, rows = store.shard_span(index)
        gen = solve_apsp_shards(
            new_graph,
            shard_rows=shard_rows,
            start_row=start,
            stop_row=start + rows,
            config=cfg,
        )
        _, block = next(gen)
        gen.close()
        return block

    try:
        with _obs.span("serve.store.update"):
            for index in dirty_shards:
                start, rows = store.shard_span(index)
                block = solve_shard(index)
                rows_resolved += rows
                if new_lm_rows is not None:
                    for v in range(start, start + rows):
                        if v in lm_pos:
                            new_lm_rows[lm_pos[v]] = block[v - start]
                payload, params, err = codec_obj.encode(block)
                fname = _update_shard_file(index, new_gen)
                fpath = store.path / fname
                fpath.write_bytes(payload)
                written.append(fpath)
                pending.append((fpath, _crc32(payload), len(payload)))
                new_manifest["shards"][index] = {
                    "file": fname,
                    "start": start,
                    "rows": rows,
                    "crc32": _crc32(payload),
                    "nbytes": len(payload),
                    "params": params,
                    "max_abs_error": err,
                }

            # landmark rows living in clean shards: reuse the exact old
            # pinned row when the landmark survived, otherwise re-solve
            # that one shard (counted separately in the cost)
            landmark_rows_resolved = 0
            if new_lm_rows is not None:
                old_pos = {v: i for i, v in enumerate(old_ids)}
                need_shard: Dict[int, List[int]] = {}
                for v in new_ids:
                    shard = v // shard_rows
                    if shard in dirty_set:
                        continue  # captured in the loop above
                    if v in old_pos:
                        new_lm_rows[lm_pos[v]] = old_lm_rows[old_pos[v]]
                    else:
                        need_shard.setdefault(shard, []).append(v)
                for shard, vertices in sorted(need_shard.items()):
                    start, rows = store.shard_span(shard)
                    block = solve_shard(shard)
                    landmark_rows_resolved += rows
                    for v in vertices:
                        new_lm_rows[lm_pos[v]] = block[v - start]
                lm_raw = np.ascontiguousarray(new_lm_rows).tobytes()
                lm_fname = _update_landmark_file(new_gen)
                lm_fpath = store.path / lm_fname
                lm_fpath.write_bytes(lm_raw)
                written.append(lm_fpath)
                pending.append((lm_fpath, _crc32(lm_raw), len(lm_raw)))
                new_manifest["landmarks"] = {
                    "ids": new_ids,
                    "file": lm_fname,
                    "crc32": _crc32(lm_raw),
                }

            new_manifest["generation"] = new_gen
            new_manifest["codec_params"] = codec_params
            new_manifest["max_abs_error"] = max(
                (
                    float(entry.get("max_abs_error", 0.0))
                    for entry in new_manifest["shards"]
                ),
                default=0.0,
            )
            new_manifest["graph"] = {
                "name": getattr(new_graph, "name", "") or ""
            }

            if pre_swap_hook is not None:
                pre_swap_hook(store, new_manifest)

            # verify every pending file on disk BEFORE the swap: an
            # in-flight corruption aborts with the old generation intact
            for fpath, crc, nbytes in pending:
                raw = fpath.read_bytes()
                if len(raw) != nbytes or _crc32(raw) != crc:
                    raise StoreCorruptionError(
                        f"pending update file {fpath.name} was damaged "
                        "before the manifest swap; aborting the update "
                        "(the live generation is untouched)",
                        shards=(fpath.name,),
                    )

            # -- 6. atomic publish --------------------------------------
            tmp = store.path / f".{_MANIFEST}.g{new_gen}.tmp"
            tmp.write_text(json.dumps(new_manifest, indent=2) + "\n")
            os.replace(tmp, store.path / _MANIFEST)
    except BaseException:
        for fpath in written:
            try:
                fpath.unlink()
            except OSError:
                pass
        raise

    pruned: List[str] = []
    if cfg_u.prune:
        keep = {entry["file"] for entry in new_manifest["shards"]}
        keep.add(new_manifest["landmarks"]["file"])
        keep.add(_MANIFEST)
        old_files = {entry["file"] for entry in store.manifest["shards"]}
        old_files.add(store.manifest["landmarks"]["file"])
        for name in sorted(old_files - keep):
            try:
                (store.path / name).unlink()
                pruned.append(name)
            except OSError:
                pass

    _obs.counter_add("serve.store.updates", 1)
    _obs.counter_add("serve.store.shards_updated", len(dirty_shards))
    _tel.emit(
        "store_swap",
        generation=new_gen,
        dirty_shards=len(dirty_shards),
        landmarks_rebuilt=landmarks_rebuilt,
    )
    return UpdateResult(
        generation=new_gen,
        num_updates=len(updates),
        endpoints=tuple(endpoints),
        candidate_shards=tuple(candidate_shards),
        dirty_shards=tuple(dirty_shards),
        certified_clean_shards=store.num_shards - len(candidate_shards),
        landmarks_rebuilt=landmarks_rebuilt,
        rows_resolved=rows_resolved,
        landmark_rows_resolved=landmark_rows_resolved,
        rebuild_rows=n,
        pruned_files=tuple(pruned),
        store=DistStore.open(store.path),
    )
