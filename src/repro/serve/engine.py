"""Query engine: LRU shard cache, coalescing, gathers, ALT bounds.

The serving hot path never touches the solver — it is pure data
movement over a :class:`~repro.serve.store.DistStore`:

* an **LRU shard cache** keeps the ``cache_shards`` most recently used
  shards in RAM (hits/misses/evictions counted, both locally and as
  ``serve.cache.*`` obs counters);
* **request coalescing** — concurrent queries for the same uncached
  shard elect one loader; the rest wait on its event instead of issuing
  duplicate disk reads (``serve.cache.coalesced``);
* **micro-batching** — :meth:`QueryEngine.dist_batch` groups point
  queries by source shard and answers each group with one vectorized
  gather (``serve.batch.gathers`` per group vs ``serve.batch.queries``
  per query).

The store's pinned landmark rows power an **ALT-style index**
(Goldberg–Harrelson A*-landmarks-triangle-inequality, applied to point
lookups): for symmetric graphs

* ``hi = min_l d(l,u) + d(l,v)`` — triangle-inequality upper bound,
* ``lo = max_l |d(l,u) - d(l,v)|`` — the matching lower bound,

both O(L) with **zero shard I/O**, and both exact-arithmetic over the
raw-f8 landmark rows regardless of the shard codec.
:meth:`dist_bounds` returns the certified pair ``(lo, hi)``;
:meth:`dist_approx` is its counted degraded-mode twin; and when the
engine is built with ``epsilon`` (or the store recommends one),
:meth:`dist` **short-circuits** — answers ``(lo + hi) / 2`` without
touching any shard whenever ``hi - lo <= epsilon``, which is exact when
the gap is zero (e.g. either endpoint is a landmark).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ServeError
from ..obs import metrics as _obs
from ..types import INF
from . import telemetry as _tel
from .store import DistStore

__all__ = ["QueryEngine"]


class QueryEngine:
    """Point / row / top-k queries over a :class:`DistStore`."""

    def __init__(
        self,
        store: DistStore,
        *,
        cache_shards: Optional[int] = None,
        verify_loads: Optional[bool] = None,
        epsilon: Optional[float] = None,
        serve_config=None,
    ) -> None:
        if serve_config is not None:
            # unified ServeConfig path: one validated bundle, explicit
            # kwargs override it (DeprecationWarning on real conflict)
            from ..config import resolve_serve_config

            overrides = {
                k: v
                for k, v in (
                    ("cache_shards", cache_shards),
                    ("verify_loads", verify_loads),
                    ("epsilon", epsilon),
                )
                if v is not None
            }
            cfg = resolve_serve_config(
                serve_config, caller="QueryEngine", overrides=overrides
            )
            cache_shards = cfg.engine.cache_shards
            verify_loads = cfg.engine.verify_loads
            epsilon = cfg.store.epsilon
        if cache_shards is None:
            cache_shards = 4
        if verify_loads is None:
            verify_loads = True
        if cache_shards < 1:
            raise ServeError(
                f"cache_shards must be >= 1, got {cache_shards!r}"
            )
        if epsilon is None:
            epsilon = store.epsilon  # the store's recommended gap
        if epsilon is not None and not (
            isinstance(epsilon, (int, float))
            and not isinstance(epsilon, bool)
            and float(epsilon) >= 0
            and float(epsilon) != float("inf")
        ):
            raise ServeError(
                f"epsilon must be a finite number >= 0 or None, "
                f"got {epsilon!r}"
            )
        self.store = store
        self.cache_shards = cache_shards
        self.verify_loads = verify_loads
        self.epsilon = None if epsilon is None else float(epsilon)
        # cache keys are (generation, shard): after a refresh() adopts
        # an updated store, rows of the old and new generation can never
        # collide under one key, so no query ever mixes generations
        self._cache: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self._loading: Dict[Tuple[int, int], threading.Event] = {}
        #: (generation, rows) of the lazily pinned landmark rows
        self._landmarks: "Tuple[int, np.ndarray] | None" = None
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "coalesced": 0,
            "shard_loads": 0,
            "bytes_loaded": 0,
            "batch_queries": 0,
            "batch_gathers": 0,
            "approx": 0,
            "short_circuits": 0,
        }

    # -- cache ----------------------------------------------------------

    def _get_shard(self, store: DistStore, index: int) -> np.ndarray:
        """Cached shard fetch with single-flight coalescing.

        ``store`` is the caller's per-query snapshot of ``self.store``
        (taken once at query entry), so a concurrent :meth:`refresh`
        never switches generations in the middle of a query.
        """
        key = (store.generation, index)
        while True:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.stats["hits"] += 1
                    _obs.counter_add("serve.cache.hits", 1)
                    _tel.emit("cache_hit", shard=index)
                    return cached
                event = self._loading.get(key)
                if event is None:
                    event = threading.Event()
                    self._loading[key] = event
                    leader = True
                else:
                    leader = False
            if not leader:
                # someone else is already reading this shard from disk;
                # wait for them, then retry the cache (the shard may be
                # evicted again before we wake — hence the loop)
                with self._lock:
                    self.stats["coalesced"] += 1
                _obs.counter_add("serve.cache.coalesced", 1)
                waited = time.perf_counter()
                event.wait()
                _tel.emit("coalesce_wait",
                          time.perf_counter() - waited, shard=index)
                continue
            try:
                arr = store.load_shard(index, verify=self.verify_loads)
            finally:
                # on load failure the waiters must not hang; they will
                # retry, elect a new leader and surface the same error
                with self._lock:
                    self._loading.pop(key, None)
                event.set()
            _tel.emit("cache_miss", shard=index)
            with self._lock:
                self.stats["misses"] += 1
                self.stats["shard_loads"] += 1
                self.stats["bytes_loaded"] += store.shard_nbytes(index)
                _obs.counter_add("serve.cache.misses", 1)
                self._cache[key] = arr
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_shards:
                    self._cache.popitem(last=False)
                    self.stats["evictions"] += 1
                    _obs.counter_add("serve.cache.evictions", 1)
            return arr

    def refresh(self) -> int:
        """Adopt the store's current on-disk generation; returns it.

        Re-reads the manifest (one atomic file) and swaps the store
        object under the lock.  In-flight queries keep their old
        snapshot; later queries see the new generation.  Cached shards
        of older generations are dropped so the LRU capacity serves
        live traffic.  Emits a ``store_swap`` telemetry event when the
        generation actually moved.
        """
        new_store = DistStore.open(self.store.path)
        with self._lock:
            old_gen = self.store.generation
            self.store = new_store
            self._landmarks = None
            for key in [
                k for k in self._cache if k[0] != new_store.generation
            ]:
                del self._cache[key]
        if new_store.generation != old_gen:
            _obs.counter_add("serve.engine.store_swaps", 1)
            _tel.emit("store_swap", generation=new_store.generation,
                      previous=old_gen)
        return new_store.generation

    # -- queries --------------------------------------------------------

    def _check_vertex(self, vertex: int, name: str) -> None:
        if not isinstance(vertex, (int, np.integer)) \
                or isinstance(vertex, bool):
            raise ServeError(f"{name} must be an int, got {vertex!r}")
        if not 0 <= vertex < self.store.n:
            raise ServeError(
                f"{name}={vertex} out of range for store of n={self.store.n}"
            )

    def dist(self, u: int, v: int) -> float:
        """``d(u, v)`` (``inf`` if unreachable).

        Exact up to the store codec's certified ``max_abs_error``.
        With ``epsilon`` set, first consults the ALT bounds: when
        ``hi - lo <= epsilon`` the midpoint is returned with **no shard
        load** (error ≤ ``epsilon / 2``; exact when the gap is zero).
        """
        self._check_vertex(u, "u")
        self._check_vertex(v, "v")
        store = self.store  # one generation snapshot for the whole query
        with _obs.span("serve.query.point"):
            if self.epsilon is not None and len(store.landmark_ids) > 0:
                lo, hi = self._bounds(u, v, store=store)
                # lo == hi covers the both-inf case, where hi - lo is nan
                if lo == hi or hi - lo <= self.epsilon:
                    with self._lock:
                        self.stats["short_circuits"] += 1
                    _obs.counter_add("serve.query.short_circuits", 1)
                    _tel.emit("short_circuit", lo=lo, hi=hi,
                              epsilon=self.epsilon)
                    return (lo + hi) / 2.0
            index = store.shard_of(u)
            start, _ = store.shard_span(index)
            return float(self._get_shard(store, index)[u - start, v])

    def dist_from(self, u: int) -> np.ndarray:
        """Exact distance row ``d(u, ·)`` as a private copy."""
        self._check_vertex(u, "u")
        store = self.store
        with _obs.span("serve.query.row"):
            index = store.shard_of(u)
            start, _ = store.shard_span(index)
            return self._get_shard(store, index)[u - start].copy()

    def top_k(self, u: int, k: int) -> List[Tuple[int, float]]:
        """The ``k`` nearest reachable vertices to ``u`` (excluding ``u``).

        Returns ``(vertex, distance)`` pairs sorted by distance, ties
        broken by vertex id; fewer than ``k`` if the component is small.
        Always answers from the full decoded row — never short-circuits
        — but note that under a lossy codec (``u16q``) distances within
        ``2 · max_abs_error`` of each other can legitimately swap order.
        """
        self._check_vertex(u, "u")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ServeError(f"k must be an int >= 1, got {k!r}")
        store = self.store
        with _obs.span("serve.query.topk"):
            index = store.shard_of(u)
            start, _ = store.shard_span(index)
            row = self._get_shard(store, index)[u - start]
            reachable = np.flatnonzero((row < INF) & (np.arange(len(row)) != u))
            vals = row[reachable]
            if len(reachable) > k:
                # keep EVERY candidate at the k-th distance, not an
                # arbitrary argpartition pick, so a tie group straddling
                # the boundary resolves by vertex id in the lexsort
                kth = np.partition(vals, k - 1)[k - 1]
                keep = vals <= kth
                reachable, vals = reachable[keep], vals[keep]
            order = np.lexsort((reachable, vals))[:k]
            return [(int(reachable[i]), float(vals[i])) for i in order]

    def dist_batch(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Answer many point queries with one gather per source shard.

        Deliberately never short-circuits: a batch already amortizes its
        shard loads across the group, so the per-query ALT check would
        cost more than it saves.
        """
        for u, v in pairs:
            self._check_vertex(u, "u")
            self._check_vertex(v, "v")
        out = np.empty(len(pairs), dtype=np.float64)
        if not pairs:
            return out
        store = self.store  # one snapshot: the whole batch answers from
        with _obs.span("serve.query.batch"):  # a single generation
            us = np.fromiter((p[0] for p in pairs), dtype=np.int64,
                             count=len(pairs))
            vs = np.fromiter((p[1] for p in pairs), dtype=np.int64,
                             count=len(pairs))
            shard_ids = us // store.shard_rows
            self.stats["batch_queries"] += len(pairs)
            _obs.counter_add("serve.batch.queries", len(pairs))
            for index in np.unique(shard_ids):
                mask = shard_ids == index
                start, _ = store.shard_span(int(index))
                arr = self._get_shard(store, int(index))
                out[mask] = arr[us[mask] - start, vs[mask]]
                self.stats["batch_gathers"] += 1
                _obs.counter_add("serve.batch.gathers", 1)
                _tel.emit("batch_gather", shard=int(index),
                          group=int(np.count_nonzero(mask)))
        return out

    # -- ALT bounds / degraded mode -------------------------------------

    @property
    def num_landmarks(self) -> int:
        return len(self.store.landmark_ids)

    def _landmark_rows(self, store: DistStore) -> np.ndarray:
        """Lazily load the pinned landmark rows of one generation."""
        cached = self._landmarks
        if cached is not None and cached[0] == store.generation:
            return cached[1]
        with self._lock:
            cached = self._landmarks
            if cached is not None and cached[0] == store.generation:
                return cached[1]
            rows = store.landmark_rows(verify=self.verify_loads)
            self._landmarks = (store.generation, rows)
        return rows

    def _bounds(
        self, u: int, v: int, *, store: "DistStore | None" = None
    ) -> Tuple[float, float]:
        """Uncounted ``(lo, hi)`` — shared by dist() and dist_approx()."""
        rows = self._landmark_rows(store if store is not None else self.store)
        du, dv = rows[:, u], rows[:, v]
        # both endpoints unreachable from a landmark ⇒ inf - inf = nan;
        # that landmark certifies nothing, so it contributes lo = 0
        with np.errstate(invalid="ignore"):
            hi = float(np.min(du + dv))
            diff = np.abs(du - dv)
        lo = float(np.max(np.where(np.isnan(diff), 0.0, diff)))
        return lo, hi

    def dist_bounds(self, u: int, v: int) -> Tuple[float, float]:
        """Certified ALT bounds ``lo <= d(u, v) <= hi`` — no shard I/O.

        Over the store's pinned landmark rows (always raw f8):
        ``hi = min_l d(l,u) + d(l,v)`` and ``lo = max_l |d(l,u) -
        d(l,v)|``, both triangle-inequality consequences for symmetric
        (undirected) graphs.  The gap is exactly zero whenever ``u`` or
        ``v`` *is* a landmark (``d(l,l) = 0`` makes both bounds collapse
        to the same float), and ``lo == hi == inf`` certifies
        unreachability.  Cost is O(num_landmarks); never loads a shard.
        """
        self._check_vertex(u, "u")
        self._check_vertex(v, "v")
        store = self.store
        if len(store.landmark_ids) == 0:
            raise ServeError(
                "store has no pinned landmarks; approximate answers "
                "are unavailable (build with num_landmarks > 0)"
            )
        with _obs.span("serve.query.bounds"):
            return self._bounds(u, v, store=store)

    def dist_approx(self, u: int, v: int) -> Tuple[float, float]:
        """Degraded-mode answer: the counted form of :meth:`dist_bounds`.

        Returns the certified ``(lo, hi)`` error bar — the admission
        layer serves ``hi`` as the value under saturation and attaches
        both bounds to the response instead of a bare approx flag.
        """
        bounds = self.dist_bounds(u, v)
        with self._lock:
            self.stats["approx"] += 1
        _obs.counter_add("serve.query.approx", 1)
        return bounds

    # -- introspection --------------------------------------------------

    def hit_rate(self) -> float:
        """Cache hit rate over all shard fetches so far (1.0 if none)."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 1.0

    def cached_shards(self) -> List[int]:
        """Resident shard indices (of the currently adopted generation)."""
        with self._lock:
            return [index for _, index in self._cache]
