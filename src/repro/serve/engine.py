"""Query engine: LRU shard cache, request coalescing, batched gathers.

The serving hot path never touches the solver — it is pure data
movement over a :class:`~repro.serve.store.DistStore`:

* an **LRU shard cache** keeps the ``cache_shards`` most recently used
  shards in RAM (hits/misses/evictions counted, both locally and as
  ``serve.cache.*`` obs counters);
* **request coalescing** — concurrent queries for the same uncached
  shard elect one loader; the rest wait on its event instead of issuing
  duplicate disk reads (``serve.cache.coalesced``);
* **micro-batching** — :meth:`QueryEngine.dist_batch` groups point
  queries by source shard and answers each group with one vectorized
  gather (``serve.batch.gathers`` per group vs ``serve.batch.queries``
  per query).

Degraded answers (:meth:`dist_approx`) come from the store's pinned
landmark rows: ``min_l d(l,u) + d(l,v)`` is an upper bound on
``d(u,v)`` for symmetric graphs by the triangle inequality, costs O(L)
with no shard I/O, and is always flagged as approximate by the
admission layer (:mod:`repro.serve.admission`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import ServeError
from ..obs import metrics as _obs
from ..types import INF
from .store import DistStore

__all__ = ["QueryEngine"]


class QueryEngine:
    """Point / row / top-k queries over a :class:`DistStore`."""

    def __init__(
        self,
        store: DistStore,
        *,
        cache_shards: int = 4,
        verify_loads: bool = True,
    ) -> None:
        if cache_shards < 1:
            raise ServeError(
                f"cache_shards must be >= 1, got {cache_shards!r}"
            )
        self.store = store
        self.cache_shards = cache_shards
        self.verify_loads = verify_loads
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self._loading: Dict[int, threading.Event] = {}
        self._landmarks: "np.ndarray | None" = None
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "coalesced": 0,
            "shard_loads": 0,
            "batch_queries": 0,
            "batch_gathers": 0,
            "approx_answers": 0,
        }

    # -- cache ----------------------------------------------------------

    def _get_shard(self, index: int) -> np.ndarray:
        """Cached shard fetch with single-flight coalescing."""
        while True:
            with self._lock:
                cached = self._cache.get(index)
                if cached is not None:
                    self._cache.move_to_end(index)
                    self.stats["hits"] += 1
                    _obs.counter_add("serve.cache.hits", 1)
                    return cached
                event = self._loading.get(index)
                if event is None:
                    event = threading.Event()
                    self._loading[index] = event
                    leader = True
                else:
                    leader = False
            if not leader:
                # someone else is already reading this shard from disk;
                # wait for them, then retry the cache (the shard may be
                # evicted again before we wake — hence the loop)
                with self._lock:
                    self.stats["coalesced"] += 1
                _obs.counter_add("serve.cache.coalesced", 1)
                event.wait()
                continue
            try:
                arr = self.store.load_shard(index, verify=self.verify_loads)
            finally:
                # on load failure the waiters must not hang; they will
                # retry, elect a new leader and surface the same error
                with self._lock:
                    self._loading.pop(index, None)
                event.set()
            with self._lock:
                self.stats["misses"] += 1
                self.stats["shard_loads"] += 1
                _obs.counter_add("serve.cache.misses", 1)
                self._cache[index] = arr
                self._cache.move_to_end(index)
                while len(self._cache) > self.cache_shards:
                    self._cache.popitem(last=False)
                    self.stats["evictions"] += 1
                    _obs.counter_add("serve.cache.evictions", 1)
            return arr

    # -- queries --------------------------------------------------------

    def _check_vertex(self, vertex: int, name: str) -> None:
        if not isinstance(vertex, (int, np.integer)) \
                or isinstance(vertex, bool):
            raise ServeError(f"{name} must be an int, got {vertex!r}")
        if not 0 <= vertex < self.store.n:
            raise ServeError(
                f"{name}={vertex} out of range for store of n={self.store.n}"
            )

    def dist(self, u: int, v: int) -> float:
        """Exact ``d(u, v)`` (``inf`` if unreachable)."""
        self._check_vertex(u, "u")
        self._check_vertex(v, "v")
        with _obs.span("serve.query.point"):
            index = self.store.shard_of(u)
            start, _ = self.store.shard_span(index)
            return float(self._get_shard(index)[u - start, v])

    def dist_from(self, u: int) -> np.ndarray:
        """Exact distance row ``d(u, ·)`` as a private copy."""
        self._check_vertex(u, "u")
        with _obs.span("serve.query.row"):
            index = self.store.shard_of(u)
            start, _ = self.store.shard_span(index)
            return self._get_shard(index)[u - start].copy()

    def top_k(self, u: int, k: int) -> List[Tuple[int, float]]:
        """The ``k`` nearest reachable vertices to ``u`` (excluding ``u``).

        Returns ``(vertex, distance)`` pairs sorted by distance, ties
        broken by vertex id; fewer than ``k`` if the component is small.
        """
        self._check_vertex(u, "u")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ServeError(f"k must be an int >= 1, got {k!r}")
        with _obs.span("serve.query.topk"):
            index = self.store.shard_of(u)
            start, _ = self.store.shard_span(index)
            row = self._get_shard(index)[u - start]
            reachable = np.flatnonzero((row < INF) & (np.arange(len(row)) != u))
            if len(reachable) > k:
                part = reachable[np.argpartition(row[reachable], k - 1)[:k]]
            else:
                part = reachable
            order = np.lexsort((part, row[part]))
            return [(int(part[i]), float(row[part[i]])) for i in order]

    def dist_batch(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Answer many point queries with one gather per source shard."""
        for u, v in pairs:
            self._check_vertex(u, "u")
            self._check_vertex(v, "v")
        out = np.empty(len(pairs), dtype=np.float64)
        if not pairs:
            return out
        with _obs.span("serve.query.batch"):
            us = np.fromiter((p[0] for p in pairs), dtype=np.int64,
                             count=len(pairs))
            vs = np.fromiter((p[1] for p in pairs), dtype=np.int64,
                             count=len(pairs))
            shard_ids = us // self.store.shard_rows
            self.stats["batch_queries"] += len(pairs)
            _obs.counter_add("serve.batch.queries", len(pairs))
            for index in np.unique(shard_ids):
                mask = shard_ids == index
                start, _ = self.store.shard_span(int(index))
                arr = self._get_shard(int(index))
                out[mask] = arr[us[mask] - start, vs[mask]]
                self.stats["batch_gathers"] += 1
                _obs.counter_add("serve.batch.gathers", 1)
        return out

    # -- degraded mode --------------------------------------------------

    @property
    def num_landmarks(self) -> int:
        return len(self.store.landmark_ids)

    def dist_approx(self, u: int, v: int) -> float:
        """Landmark upper bound on ``d(u, v)`` — no shard I/O.

        ``min_l d(l,u) + d(l,v)`` over the store's pinned landmarks.
        For symmetric (undirected) graphs this is a triangle-inequality
        upper bound; exact whenever a shortest path passes through a
        landmark (which Zipf-popular hubs often are).  The admission
        layer only serves this under saturation and always flags it.
        """
        self._check_vertex(u, "u")
        self._check_vertex(v, "v")
        if self.num_landmarks == 0:
            raise ServeError(
                "store has no pinned landmarks; approximate answers "
                "are unavailable (build with num_landmarks > 0)"
            )
        with _obs.span("serve.query.approx"):
            if self._landmarks is None:
                self._landmarks = self.store.landmark_rows(
                    verify=self.verify_loads
                )
            bound = float(np.min(self._landmarks[:, u] + self._landmarks[:, v]))
        self.stats["approx_answers"] += 1
        _obs.counter_add("serve.query.approx", 1)
        return bound

    # -- introspection --------------------------------------------------

    def hit_rate(self) -> float:
        """Cache hit rate over all shard fetches so far (1.0 if none)."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 1.0

    def cached_shards(self) -> List[int]:
        with self._lock:
            return list(self._cache)
