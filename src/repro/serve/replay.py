"""Trace replay: deterministic virtual time and real threads.

Two replays of the same :mod:`repro.serve.traffic` trace:

* :func:`replay_virtual` — a discrete-event model on the
  :class:`repro.simx.engine.ThreadClockQueue` core: ``num_servers``
  virtual servers, an LRU shard cache, in-flight coalescing, point
  micro-batching and the per-class admission policy, all advancing a
  virtual clock through a :class:`ServeCostModel`.  Fully deterministic
  — this is what CI gates (`latency percentiles don't depend on the
  machine CI happens to run on`_, same reasoning as ``repro.simx``).
* :func:`replay_threaded` — the same trace pushed through the *real*
  :class:`~repro.serve.admission.ServeFrontend` on a thread pool.
  Exercises the true locking/coalescing code and yields wall-clock
  latencies; never gated (wall time is noise in CI), but the bench
  cross-checks that both replays agree on exact-answer values.

.. _latency percentiles don't depend on the machine CI happens to run on:
   replacing time with arithmetic is the whole point of the simulator.

The virtual cache model deliberately mirrors :class:`QueryEngine`
semantics (LRU by shard id, single-flight loads) but tracks only shard
*ids* and load-completion times, never data — replaying a million
requests costs a millisecond per thousand, not gigabytes.

Both replays carry the request-scoped telemetry of
:mod:`repro.serve.telemetry`: every request gets a deterministic trace
id (:func:`~repro.serve.telemetry.make_trace_id` of its sequence
number), the virtual replay emits its full lifecycle at virtual
timestamps into an optional collector (byte-identical across runs —
the CI determinism gate), and :class:`ReplayResult` keeps arrivals and
trace ids next to latencies so SLO evaluation and exemplar-carrying
histograms work identically over either replay.
"""

from __future__ import annotations

import dataclasses
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ServeError
from ..obs.hist import LatencyHistogram
from ..simx.engine import ThreadClockQueue
from .admission import AdmissionPolicy, ServeFrontend
from .engine import QueryEngine
from .telemetry import TelemetryCollector, make_trace_id
from .traffic import Request

__all__ = ["ServeCostModel", "ReplayResult", "replay_virtual",
           "replay_threaded"]


@dataclass(frozen=True)
class ServeCostModel:
    """Virtual service costs, in virtual seconds.

    ``load_base + load_per_mb × shard_MB`` models a shard read (seek
    plus streaming); everything else is CPU-side work.  Values are
    stylised — the bench's claims are *relative* (optimised vs naive,
    codec vs codec, on identical costs), so only the orderings matter:
    load ≫ hit on any real storage stack, and per-MB streaming
    dominating the fixed seek for shards of tens of KB and up (which is
    what lets compressed codecs convert byte savings into latency).
    """

    load_base: float = 2e-4
    load_per_mb: float = 0.064
    hit_cost: float = 2e-5
    point_cost: float = 5e-6
    gather_cost: float = 2e-5
    row_cost: float = 2e-4
    topk_cost: float = 3e-4
    approx_cost: float = 1e-5

    def load_cost(self, shard_bytes: int) -> float:
        return self.load_base + self.load_per_mb * (shard_bytes / 2**20)


@dataclass
class ReplayResult:
    """Latencies (seconds, per class) and event counters of one replay.

    ``arrivals`` and ``trace_ids`` run parallel to ``latencies`` (same
    class keys, same per-class order), so each recorded sample knows
    *when* its request arrived (SLO windowing) and *which* request it
    was (histogram exemplars, ``repro-apsp monitor``'s slowest list).
    """

    latencies: Dict[str, List[float]] = field(
        default_factory=lambda: {"point": [], "row": [], "topk": []}
    )
    arrivals: Dict[str, List[float]] = field(
        default_factory=lambda: {"point": [], "row": [], "topk": []}
    )
    trace_ids: Dict[str, List[Optional[str]]] = field(
        default_factory=lambda: {"point": [], "row": [], "topk": []}
    )
    counters: Dict[str, int] = field(
        default_factory=lambda: {
            "admitted": 0, "degraded": 0, "shed": 0,
            "shard_loads": 0, "cache_hits": 0, "coalesced": 0,
            "batches": 0, "gathers": 0,
            "short_circuits": 0, "approx": 0, "bytes_loaded": 0,
            # multi-node routing (all zero in single-node replays)
            "failovers": 0, "node_losses": 0, "node_saturated": 0,
        }
    )
    #: cached ascending latency array, invalidated by count change
    _sorted: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _sorted_count: int = field(default=-1, repr=False, compare=False)

    def record(
        self,
        klass: str,
        latency: float,
        *,
        arrival: float = 0.0,
        trace_id: Optional[str] = None,
    ) -> None:
        """Record one answered request of ``klass``."""
        self.latencies[klass].append(latency)
        self.arrivals[klass].append(arrival)
        self.trace_ids[klass].append(trace_id)

    def all_latencies(self) -> np.ndarray:
        merged: List[float] = []
        for values in self.latencies.values():
            merged.extend(values)
        return np.asarray(merged, dtype=np.float64)

    def mean_latency(self) -> float:
        lat = self._sorted_latencies()
        return float(lat.mean()) if len(lat) else 0.0

    def _sorted_latencies(self) -> np.ndarray:
        """Sort once, reuse until more samples are recorded."""
        total = sum(len(values) for values in self.latencies.values())
        if self._sorted is None or self._sorted_count != total:
            merged = self.all_latencies()
            merged.sort()
            self._sorted = merged
            self._sorted_count = total
        return self._sorted

    def percentile_latency(self, q: float) -> float:
        """Exact q-th percentile (numpy's linear interpolation).

        O(1) after the first call at a given sample count — the sorted
        array is cached, instead of re-sorting the full latency list on
        every percentile the bench asks for.
        """
        lat = self._sorted_latencies()
        if not len(lat):
            return 0.0
        k = (len(lat) - 1) * (float(q) / 100.0)
        lo = math.floor(k)
        hi = math.ceil(k)
        if lo == hi:
            return float(lat[lo])
        return float(lat[lo] + (lat[hi] - lat[lo]) * (k - lo))

    def hit_rate(self) -> float:
        total = self.counters["cache_hits"] + self.counters["shard_loads"]
        return self.counters["cache_hits"] / total if total else 1.0

    def slo_samples(
        self, klass: Optional[str] = None
    ) -> Iterator[Tuple[float, float, Optional[str]]]:
        """``(arrival, latency, trace_id)`` triples for :func:`evaluate_slo`."""
        keys = (klass,) if klass is not None else tuple(self.latencies)
        for key in keys:
            yield from zip(
                self.arrivals[key], self.latencies[key], self.trace_ids[key]
            )

    def latency_histogram(
        self, klass: Optional[str] = None, **hist_kwargs
    ) -> LatencyHistogram:
        """Fold recorded latencies into a :class:`LatencyHistogram`.

        Exemplars carry the recorded trace ids, so the histogram's tail
        buckets name concrete requests to pull Perfetto traces for.
        """
        hist = LatencyHistogram(**hist_kwargs)
        for _, latency, trace_id in self.slo_samples(klass):
            hist.record(latency, trace_id)
        return hist


class _VirtualCache:
    """LRU over shard ids with load-completion times (no data).

    ``fetch(shard, at)`` returns ``(ready_time, is_hit, coalesced)``:
    a miss schedules a load finishing at ``at + load``; a hit whose
    load is still in flight at ``at`` *coalesces* — the caller waits
    for the in-flight load instead of issuing its own, exactly like
    :meth:`QueryEngine._get_shard`'s single-flight event.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._ready: "OrderedDict[int, float]" = OrderedDict()

    def fetch(self, shard: int, at: float,
              load: float) -> Tuple[float, bool, bool]:
        ready = self._ready.get(shard)
        if ready is not None:
            self._ready.move_to_end(shard)
            if ready > at:
                return ready, True, True
            return at, True, False
        ready = at + load
        self._ready[shard] = ready
        while len(self._ready) > self.capacity:
            self._ready.popitem(last=False)
        return ready, False, False


def _resolve_replay_config(
    caller: str,
    serve_config,
    *,
    policy: Optional[AdmissionPolicy],
    cost: Optional[ServeCostModel],
    **flat: Any,
):
    """One dispatch path for the replay entry points.

    ``policy``/``cost`` objects and flat knob kwargs are translated to
    :class:`~repro.config.ServeConfig` overrides and merged through
    :func:`~repro.config.resolve_serve_config` — same conflict rules
    as every other serving entry point (explicit kwargs win, with a
    ``DeprecationWarning`` on a genuine conflict).
    """
    from ..config import resolve_serve_config

    overrides: Dict[str, Any] = {
        k: v for k, v in flat.items() if v is not None
    }
    if policy is not None:
        if not isinstance(policy, AdmissionPolicy):
            raise ServeError(
                f"policy must be an AdmissionPolicy, "
                f"got {type(policy).__name__}"
            )
        overrides.update(
            max_point=policy.max_point,
            max_row=policy.max_row,
            max_topk=policy.max_topk,
        )
    if cost is not None:
        if not isinstance(cost, ServeCostModel):
            raise ServeError(
                f"cost must be a ServeCostModel, got {type(cost).__name__}"
            )
        overrides.update(dataclasses.asdict(cost))
    return resolve_serve_config(
        serve_config, caller=caller, overrides=overrides
    )


def replay_virtual(
    requests: Sequence[Request],
    *,
    n: int,
    shard_rows: int,
    policy: Optional[AdmissionPolicy] = None,
    cost: Optional[ServeCostModel] = None,
    cache_shards: Optional[int] = None,
    num_servers: Optional[int] = None,
    optimized: bool = True,
    batch_window: Optional[float] = None,
    batch_max: Optional[int] = None,
    shard_nbytes: Optional[Sequence[int]] = None,
    short_circuits: Optional[Sequence[int]] = None,
    telemetry: Optional[TelemetryCollector] = None,
    codec: str = "raw",
    serve_config=None,
    router=None,
    node_budget: Optional[int] = None,
    servers_per_node: Optional[int] = None,
    node_down: Sequence[Tuple[float, int]] = (),
) -> ReplayResult:
    """Deterministically replay a trace in virtual time.

    ``optimized=False`` is the *naive per-query path*: no cache, no
    coalescing, no batching — every query loads its shard.  The bench
    gate is precisely ``optimized`` beating this on shard loads and
    mean latency over the same trace and cost model.

    ``shard_nbytes`` gives per-shard encoded sizes (index = shard id,
    e.g. from :meth:`DistStore.shard_nbytes`), so compressed codecs pay
    proportionally smaller load costs; default is uniform raw f8.
    ``short_circuits`` lists the *request indices* whose point queries
    the engine would answer from ALT landmark bounds alone
    (``hi - lo <= epsilon``); those admitted queries finish in
    ``approx_cost`` with no shard fetch, mirroring
    :meth:`QueryEngine.dist`.

    With ``telemetry`` attached, every request's lifecycle is emitted
    at **virtual** timestamps under its deterministic trace id —
    request, admit/degrade/shed, cache hit/miss + shard load (with
    ``codec`` and encoded nbytes), coalesce-wait, short-circuit, batch
    gather, and the final answer (whose ``dur`` is the latency) — so
    the JSONL log of a seeded trace is byte-identical across runs and
    machines.
    """
    if n < 1 or shard_rows < 1:
        raise ServeError("replay needs n >= 1 and shard_rows >= 1")
    cfg = _resolve_replay_config(
        "replay_virtual",
        serve_config,
        policy=policy,
        cost=cost,
        cache_shards=cache_shards,
        num_servers=num_servers,
        batch_window=batch_window,
        batch_max=batch_max,
        node_budget=node_budget,
        servers_per_node=servers_per_node,
    )
    policy = cfg.admission.to_policy()
    cost = cfg.cost.to_model()
    cache_shards = cfg.engine.cache_shards
    num_servers = cfg.engine.num_servers
    batch_window = cfg.engine.batch_window
    batch_max = cfg.engine.batch_max
    result = ReplayResult()
    num_shards = (n + shard_rows - 1) // shard_rows
    if shard_nbytes is None:
        sizes = [
            min(shard_rows, n - s * shard_rows) * n * 8
            for s in range(num_shards)
        ]
    else:
        sizes = [int(b) for b in shard_nbytes]
        if len(sizes) != num_shards:
            raise ServeError(
                f"shard_nbytes has {len(sizes)} entries for "
                f"{num_shards} shards"
            )
    loads = [cost.load_cost(b) for b in sizes]
    sc_indices = frozenset(short_circuits or ())
    if router is not None:
        return _replay_routed(
            requests,
            router=router,
            shard_rows=shard_rows,
            policy=policy,
            cost=cost,
            cache_shards=cache_shards,
            servers_per_node=cfg.routing.servers_per_node,
            node_budget=cfg.routing.node_budget,
            node_down=node_down,
            sizes=sizes,
            loads=loads,
            sc_indices=sc_indices,
            optimized=optimized,
            telemetry=telemetry,
            codec=codec,
            result=result,
        )
    if node_down:
        raise ServeError("node_down events need a router= to fail")
    servers = ThreadClockQueue(num_servers)
    cache = _VirtualCache(cache_shards)

    def note(tid: str, kind: str, t: float, dur: float = 0.0,
             **attrs) -> None:
        if telemetry is not None:
            telemetry.emit(tid, kind, t, dur, **attrs)

    # finish times of in-flight requests per class, boxed in one-element
    # lists so an open batch can hold a slot (inf = still buffered,
    # counting against the budget) and fill it in at flush time
    inflight: Dict[str, List[List[float]]] = {
        "point": [], "row": [], "topk": [],
    }

    def inflight_depth(klass: str, now: float) -> int:
        alive = [box for box in inflight[klass] if box[0] > now]
        inflight[klass] = alive
        return len(alive)

    def fetch(shard: int, at: float, tid: str) -> float:
        """Time at which the shard's bytes are available from ``at``."""
        if not optimized:
            result.counters["shard_loads"] += 1
            result.counters["bytes_loaded"] += sizes[shard]
            note(tid, "cache_miss", at, shard=shard)
            note(tid, "shard_load", at, loads[shard], shard=shard,
                 nbytes=sizes[shard], codec=codec)
            return at + loads[shard]
        ready, hit, coalesced = cache.fetch(shard, at, loads[shard])
        if hit:
            result.counters["cache_hits"] += 1
            note(tid, "cache_hit", at, shard=shard)
            if coalesced:
                result.counters["coalesced"] += 1
                note(tid, "coalesce_wait", at, ready - at, shard=shard)
        else:
            result.counters["shard_loads"] += 1
            result.counters["bytes_loaded"] += sizes[shard]
            note(tid, "cache_miss", at, shard=shard)
            note(tid, "shard_load", at, loads[shard], shard=shard,
                 nbytes=sizes[shard], codec=codec)
        return ready

    batch: List[Tuple[Request, str]] = []
    batch_slots: List[List[float]] = []  # the buffered queries' boxes

    def flush_batch() -> None:
        if not batch:
            return
        flush_t = batch[0][0].arrival + batch_window
        if len(batch) >= batch_max:
            flush_t = min(flush_t, batch[-1][0].arrival)
        clock, server = servers.pop_earliest()
        current = max(clock, flush_t)
        groups: Dict[int, List[Tuple[Request, str]]] = {}
        for req, tid in batch:
            groups.setdefault(req.u // shard_rows, []).append((req, tid))
        for shard, members in sorted(groups.items()):
            # I/O and gather telemetry attributed to the group's first
            # member — the request that would have triggered the load
            lead_tid = members[0][1]
            current = fetch(shard, current, lead_tid)
            gather = cost.gather_cost + cost.point_cost * len(members)
            note(lead_tid, "batch_gather", current, gather,
                 shard=shard, group=len(members))
            current += gather
            result.counters["gathers"] += 1
        servers.advance(server, current)
        result.counters["batches"] += 1
        for box, (req, tid) in zip(batch_slots, batch):
            box[0] = current
            latency = current - req.arrival
            note(tid, "answer", current, latency, status="ok",
                 klass="point")
            result.record("point", latency, arrival=req.arrival,
                          trace_id=tid)
        batch.clear()
        batch_slots.clear()

    for req_index, req in enumerate(requests):
        tid = make_trace_id(req_index, req.kind, req.u, req.v)
        if optimized and batch and (
            req.arrival > batch[0][0].arrival + batch_window
            or len(batch) >= batch_max
        ):
            flush_batch()
        note(tid, "request", req.arrival, klass=req.kind, u=req.u,
             v=req.v, k=req.k)
        depth = inflight_depth(req.kind, req.arrival)
        if depth >= policy.limit(req.kind):
            if req.kind == "point":
                result.counters["degraded"] += 1
                note(tid, "degrade", req.arrival, depth=depth)
                finish = req.arrival + cost.approx_cost
                note(tid, "answer", finish, cost.approx_cost,
                     status="degraded", klass="point")
                result.record("point", cost.approx_cost,
                              arrival=req.arrival, trace_id=tid)
            else:
                result.counters["shed"] += 1
                note(tid, "shed", req.arrival, depth=depth)
            continue
        result.counters["admitted"] += 1
        note(tid, "admit", req.arrival, depth=depth)
        if req.kind == "point" and optimized and req_index in sc_indices:
            # ALT short-circuit: answered from landmark bounds in O(L),
            # no shard fetch, no server occupancy worth modelling
            result.counters["short_circuits"] += 1
            note(tid, "short_circuit", req.arrival)
            finish = req.arrival + cost.approx_cost
            inflight["point"].append([finish])
            note(tid, "answer", finish, cost.approx_cost, status="ok",
                 klass="point")
            result.record("point", cost.approx_cost,
                          arrival=req.arrival, trace_id=tid)
            continue
        if req.kind == "point" and optimized:
            box = [float("inf")]
            inflight["point"].append(box)
            batch_slots.append(box)
            batch.append((req, tid))
            continue
        clock, server = servers.pop_earliest()
        start = max(clock, req.arrival)
        shard = req.u // shard_rows
        ready = fetch(shard, start, tid)
        if req.kind == "point":
            finish = ready + cost.point_cost
        elif req.kind == "row":
            finish = ready + cost.row_cost
        else:
            finish = ready + cost.topk_cost
        servers.advance(server, finish)
        inflight[req.kind].append([finish])
        latency = finish - req.arrival
        note(tid, "answer", finish, latency, status="ok", klass=req.kind)
        result.record(req.kind, latency, arrival=req.arrival,
                      trace_id=tid)
    flush_batch()
    return result


def _replay_routed(
    requests: Sequence[Request],
    *,
    router,
    shard_rows: int,
    policy: AdmissionPolicy,
    cost: ServeCostModel,
    cache_shards: int,
    servers_per_node: int,
    node_budget: int,
    node_down: Sequence[Tuple[float, int]],
    sizes: Sequence[int],
    loads: Sequence[float],
    sc_indices: frozenset,
    optimized: bool,
    telemetry: Optional[TelemetryCollector],
    codec: str,
    result: ReplayResult,
) -> ReplayResult:
    """The multi-node arm of :func:`replay_virtual`.

    Each virtual serve node gets ``servers_per_node`` servers and its
    own LRU shard cache; every request routes by source shard through
    the :class:`~repro.serve.router.ShardRouter` (``failovers`` counts
    requests landing on a non-primary replica).  ``node_down`` is a
    sorted-or-not sequence of ``(virtual_time, node)`` loss events:
    at each, the node is failed on the router and its cache dropped —
    traffic fails over to replicas with cold caches, which is exactly
    the latency signature real node loss has.  Admission is enforced
    twice, as in a real deployment: the global per-class budgets, then
    the per-node in-flight budget (saturated nodes degrade points and
    shed rows/topk, counted under ``node_saturated``).  Point queries
    are served individually — cross-node micro-batching would need a
    scatter/gather tier this model deliberately leaves out.
    """
    from .router import ShardRouter

    if not isinstance(router, ShardRouter):
        raise ServeError(
            f"router must be a ShardRouter, got {type(router).__name__}"
        )
    servers = [
        ThreadClockQueue(servers_per_node) for _ in range(router.num_nodes)
    ]
    caches = [
        _VirtualCache(cache_shards) for _ in range(router.num_nodes)
    ]
    losses = sorted(
        (float(t), int(node)) for t, node in node_down
    )
    next_loss = 0

    def note(tid: str, kind: str, t: float, dur: float = 0.0,
             **attrs) -> None:
        if telemetry is not None:
            telemetry.emit(tid, kind, t, dur, **attrs)

    inflight: Dict[str, List[List[float]]] = {
        "point": [], "row": [], "topk": [],
    }
    node_inflight: List[List[List[float]]] = [
        [] for _ in range(router.num_nodes)
    ]

    def depth_of(boxes: List[List[float]], now: float) -> int:
        alive = [box for box in boxes if box[0] > now]
        boxes[:] = alive
        return len(alive)

    def fetch(node: int, shard: int, at: float, tid: str) -> float:
        if not optimized:
            result.counters["shard_loads"] += 1
            result.counters["bytes_loaded"] += sizes[shard]
            note(tid, "cache_miss", at, shard=shard, node=node)
            note(tid, "shard_load", at, loads[shard], shard=shard,
                 nbytes=sizes[shard], codec=codec, node=node)
            return at + loads[shard]
        ready, hit, coalesced = caches[node].fetch(shard, at, loads[shard])
        if hit:
            result.counters["cache_hits"] += 1
            note(tid, "cache_hit", at, shard=shard, node=node)
            if coalesced:
                result.counters["coalesced"] += 1
                note(tid, "coalesce_wait", at, ready - at, shard=shard,
                     node=node)
        else:
            result.counters["shard_loads"] += 1
            result.counters["bytes_loaded"] += sizes[shard]
            note(tid, "cache_miss", at, shard=shard, node=node)
            note(tid, "shard_load", at, loads[shard], shard=shard,
                 nbytes=sizes[shard], codec=codec, node=node)
        return ready

    for req_index, req in enumerate(requests):
        while next_loss < len(losses) \
                and losses[next_loss][0] <= req.arrival:
            _, lost = losses[next_loss]
            next_loss += 1
            router.fail_node(lost)
            # the node's RAM goes with it: replicas start cold
            caches[lost] = _VirtualCache(cache_shards)
            node_inflight[lost] = []
            result.counters["node_losses"] += 1
            note(make_trace_id(req_index, "loss", lost, next_loss),
                 "node_loss", losses[next_loss - 1][0], node=lost)
        tid = make_trace_id(req_index, req.kind, req.u, req.v)
        note(tid, "request", req.arrival, klass=req.kind, u=req.u,
             v=req.v, k=req.k)
        depth = depth_of(inflight[req.kind], req.arrival)
        saturated = depth >= policy.limit(req.kind)
        node = -1
        if not saturated:
            shard = req.u // shard_rows
            node, failover = router.route(shard)
            if failover:
                result.counters["failovers"] += 1
                note(tid, "failover", req.arrival, shard=shard, node=node)
            node_depth = depth_of(node_inflight[node], req.arrival)
            if node_depth >= node_budget:
                saturated = True
                result.counters["node_saturated"] += 1
                note(tid, "node_saturated", req.arrival, node=node,
                     depth=node_depth)
        if saturated:
            if req.kind == "point":
                result.counters["degraded"] += 1
                note(tid, "degrade", req.arrival, depth=depth)
                finish = req.arrival + cost.approx_cost
                note(tid, "answer", finish, cost.approx_cost,
                     status="degraded", klass="point")
                result.record("point", cost.approx_cost,
                              arrival=req.arrival, trace_id=tid)
            else:
                result.counters["shed"] += 1
                note(tid, "shed", req.arrival, depth=depth)
            continue
        result.counters["admitted"] += 1
        note(tid, "admit", req.arrival, depth=depth, node=node)
        if req.kind == "point" and optimized and req_index in sc_indices:
            # ALT bounds are pinned on every node — no routing cost
            result.counters["short_circuits"] += 1
            note(tid, "short_circuit", req.arrival)
            finish = req.arrival + cost.approx_cost
            inflight["point"].append([finish])
            note(tid, "answer", finish, cost.approx_cost, status="ok",
                 klass="point")
            result.record("point", cost.approx_cost,
                          arrival=req.arrival, trace_id=tid)
            continue
        clock, server = servers[node].pop_earliest()
        start = max(clock, req.arrival)
        ready = fetch(node, shard, start, tid)
        if req.kind == "point":
            finish = ready + cost.point_cost
        elif req.kind == "row":
            finish = ready + cost.row_cost
        else:
            finish = ready + cost.topk_cost
        servers[node].advance(server, finish)
        inflight[req.kind].append([finish])
        node_inflight[node].append([finish])
        latency = finish - req.arrival
        note(tid, "answer", finish, latency, status="ok",
             klass=req.kind, node=node)
        result.record(req.kind, latency, arrival=req.arrival,
                      trace_id=tid)
    return result


def replay_threaded(
    requests: Sequence[Request],
    frontend: Optional[ServeFrontend] = None,
    *,
    num_threads: int = 4,
    store=None,
    serve_config=None,
) -> "Tuple[ReplayResult, List[object]]":
    """Push the trace through the real front end on a thread pool.

    Arrival pacing is compressed (no sleeps — CI time is precious);
    what this exercises is the genuine lock/coalescing/admission code
    under real concurrency.  Returns the replay result plus the raw
    :class:`~repro.serve.admission.QueryResponse` list in request
    order, so callers can cross-check exact answers against the
    virtual replay's ground truth.

    Arrivals are recorded from the *trace* (virtual time), so SLO
    evaluation over this result windows the same way as over the
    virtual replay — the identical scoring code path the SLO layer
    promises.
    """
    import time
    from concurrent.futures import ThreadPoolExecutor

    if num_threads < 1:
        raise ServeError(f"num_threads must be >= 1, got {num_threads!r}")
    if frontend is None:
        # construction path: build the whole stack from one ServeConfig
        # (RoutedEngine when the config asks for more than one node)
        if store is None:
            raise ServeError(
                "replay_threaded needs a frontend= or a store= "
                "(plus optional serve_config=) to build one from"
            )
        cfg = _resolve_replay_config(
            "replay_threaded", serve_config, policy=None, cost=None
        )
        if cfg.routing.num_nodes > 1:
            from .router import RoutedEngine, ShardRouter

            engine = RoutedEngine(
                store,
                ShardRouter(
                    cfg.routing.num_nodes,
                    replication=cfg.routing.replication,
                    vnodes=cfg.routing.vnodes,
                    hash_seed=cfg.routing.hash_seed,
                ),
                cache_shards=cfg.engine.cache_shards,
                verify_loads=cfg.engine.verify_loads,
                epsilon=cfg.store.epsilon,
                node_budget=cfg.routing.node_budget,
            )
        else:
            engine = QueryEngine(
                store,
                cache_shards=cfg.engine.cache_shards,
                verify_loads=cfg.engine.verify_loads,
                epsilon=cfg.store.epsilon,
            )
        frontend = ServeFrontend(engine, policy=cfg.admission.to_policy())
    result = ReplayResult()

    def serve(req: Request):
        t0 = time.perf_counter()
        if req.kind == "point":
            resp = frontend.point(req.u, req.v)
        elif req.kind == "row":
            resp = frontend.row(req.u)
        else:
            resp = frontend.topk(req.u, req.k)
        return req, resp, time.perf_counter() - t0

    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        outcomes = list(pool.map(serve, requests))
    responses: List[object] = []
    for req, resp, elapsed in outcomes:
        responses.append(resp)
        if resp.status == "shed":
            result.counters["shed"] += 1
            continue
        if resp.status == "degraded":
            result.counters["degraded"] += 1
        else:
            result.counters["admitted"] += 1
        result.record(req.kind, elapsed, arrival=req.arrival)
    engine = frontend.engine
    stats = engine.stats  # RoutedEngine aggregates across its nodes
    result.counters["shard_loads"] = stats["shard_loads"]
    result.counters["cache_hits"] = stats["hits"]
    result.counters["coalesced"] = stats["coalesced"]
    result.counters["short_circuits"] = stats["short_circuits"]
    result.counters["approx"] = stats["approx"]
    result.counters["bytes_loaded"] = stats["bytes_loaded"]
    if "failovers" in stats:
        result.counters["failovers"] = stats["failovers"]
    return result, responses
