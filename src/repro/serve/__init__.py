"""``repro.serve`` — query serving over solved APSP results.

The ROADMAP's north star is a system that *serves* shortest-path
queries under heavy traffic, not just one that computes them.  This
package is that layer, built out-of-core from day one (the Spark APSP
study puts sx-superuser's distance matrix at ≈160 GB — the result, not
the graph, is the scaling bottleneck):

* :mod:`repro.serve.store` — :class:`DistStore`, a sharded
  ``np.memmap``-style on-disk store with a JSON manifest
  (``repro.serve.store/2``; ``/1`` stores still open), per-shard crc32
  checksums over the encoded bytes, corruption detection and exact
  repair; built streaming via
  :func:`repro.core.runner.solve_apsp_shards` so n×n never lives in
  RAM (:func:`solve_to_store`).
* :mod:`repro.serve.codecs` — pluggable shard codecs (``raw`` f8,
  ``f4``, ``u16q`` quantization, ``u16qd`` delta+zlib) with a
  certified per-shard max-abs-error recorded in the manifest.
* :mod:`repro.serve.engine` — :class:`QueryEngine`: point / row /
  top-k queries through an LRU shard cache with single-flight request
  coalescing, micro-batched vectorized gathers, and an ALT-style
  landmark index (certified ``(lo, hi)`` bounds, ε short-circuit with
  zero shard I/O).
* :mod:`repro.serve.admission` — :class:`ServeFrontend`: bounded
  per-class in-flight budgets with graceful degradation (ALT error
  bars on the response, flagged ``approx=True``) instead of unbounded
  queues.
* :mod:`repro.serve.traffic` / :mod:`repro.serve.replay` — seeded
  Zipfian open-loop traffic and its deterministic virtual-time replay
  (plus a real-thread replay of the same trace).
* :mod:`repro.serve.telemetry` — request-scoped telemetry:
  deterministic trace ids, typed lifecycle events in a bounded ring
  with an optional sampled JSONL sink (``repro.serve.telemetry/1``),
  and per-request Perfetto export via
  :func:`~repro.serve.telemetry.export_request_trace`.
* :mod:`repro.serve.slo` — latency SLOs (:class:`SLOSpec`) scored as
  error-budget burn rates over windowed
  :class:`~repro.obs.hist.LatencyHistogram` snapshots, identically for
  the virtual and threaded replays.
* :mod:`repro.serve.monitor` — ``repro-apsp monitor``: tail /
  summarize / ``--check`` a JSONL event log, with the slowest requests
  named by trace id.
* :mod:`repro.serve.bench` — the ``serve-smoke`` workload: builds a
  store, replays the pinned trace naive vs optimised, and emits the
  ``serve`` section of a ``repro.obs.bench/6`` artifact gated in CI,
  including the per-codec accuracy-vs-latency numbers, the exact
  virtual latency histogram and the SLO burn rate.
"""

from .admission import (
    QUERY_CLASSES,
    AdmissionPolicy,
    QueryResponse,
    ServeFrontend,
)
from .codecs import CODECS, ShardCodec, codec_names, get_codec
from .engine import QueryEngine
from .replay import ReplayResult, ServeCostModel, replay_threaded, \
    replay_virtual
from .router import RoutedEngine, ShardRouter
from .slo import SLOReport, SLOSpec, evaluate_slo
from .store import STORE_SCHEMA_VERSION, DistStore, solve_to_store
from .telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    JsonlSink,
    RequestContext,
    TelemetryCollector,
    TelemetryEvent,
    export_request_trace,
    make_trace_id,
    read_event_log,
)
from .traffic import Request, TrafficSpec, generate_trace
from .update import (
    EdgeUpdate,
    UpdateResult,
    apply_edge_updates,
    apply_updates_to_graph,
    parse_edge_updates,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "DistStore",
    "solve_to_store",
    "ShardCodec",
    "CODECS",
    "codec_names",
    "get_codec",
    "QueryEngine",
    "ShardRouter",
    "RoutedEngine",
    "QUERY_CLASSES",
    "AdmissionPolicy",
    "QueryResponse",
    "ServeFrontend",
    "Request",
    "TrafficSpec",
    "generate_trace",
    "ServeCostModel",
    "ReplayResult",
    "replay_virtual",
    "replay_threaded",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryCollector",
    "TelemetryEvent",
    "RequestContext",
    "JsonlSink",
    "make_trace_id",
    "read_event_log",
    "export_request_trace",
    "SLOSpec",
    "SLOReport",
    "evaluate_slo",
    "EdgeUpdate",
    "UpdateResult",
    "apply_edge_updates",
    "apply_updates_to_graph",
    "parse_edge_updates",
]
