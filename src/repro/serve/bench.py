"""Deterministic query-serving bench → ``BENCH_serve.json``.

CI's ``serve-smoke`` job runs this module, then gates with
:mod:`repro.obs.regress` against the committed baseline
(``benchmarks/baselines/BENCH_serve.json``).  One run:

1. builds a :class:`~repro.serve.store.DistStore` from the same seeded
   R-MAT graph the perf smoke uses, streaming shard-by-shard (the n×n
   matrix never materialises), and fingerprints the store bytes — the
   build is flags-off and serial, so the crc is machine-independent
   and gates exactly;
2. replays the **pinned Zipfian trace** through the virtual-time model
   twice — optimised (LRU cache + coalescing + micro-batching) and
   naive (every query loads its shard) — and *requires* the optimised
   path to win on both shard loads and mean virtual latency before an
   artifact is even written;
3. replays a saturating burst (same trace at many times the rate under
   a tight admission budget) and requires graceful degradation:
   flagged approximate answers, zero unbounded queueing;
4. injects one :class:`~repro.faults.StoreCorruptionSpec`, requires
   detection (:class:`~repro.exceptions.StoreCorruptionError`) and
   byte-exact repair;
5. pushes the trace through the *real* threaded front end once as a
   smoke of the locking paths (wall numbers recorded, never gated).

Regenerate the baseline after an intentional serving change::

    PYTHONPATH=src python -m repro.serve.bench \
        --out benchmarks/baselines/BENCH_serve.json
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
import zlib
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..exceptions import BenchmarkError, StoreCorruptionError
from ..faults import StoreCorruptionSpec
from ..graphs.rmat import rmat
from ..obs.artifact import build_artifact, write_artifact
from ..obs.metrics import MetricsRegistry, use_registry
from .admission import AdmissionPolicy, ServeFrontend
from .engine import QueryEngine
from .replay import ServeCostModel, replay_threaded, replay_virtual
from .store import solve_to_store
from .traffic import TrafficSpec, generate_trace

__all__ = ["run_serve_smoke", "main"]

#: workload identity — bump when any knob below changes so a stale
#: baseline fails on params instead of on mysterious counters
WORKLOAD_REV = 1
DEFAULT_SCALE = 7
DEFAULT_EDGE_FACTOR = 8
DEFAULT_SEED = 5
DEFAULT_SHARD_ROWS = 16
DEFAULT_CACHE_SHARDS = 3
DEFAULT_LANDMARKS = 8
DEFAULT_SERVERS = 2

#: the pinned trace CI replays (seeded ⇒ identical on every host)
SMOKE_TRAFFIC = TrafficSpec(
    num_requests=512, rate=2000.0, zipf_s=1.1, seed=13,
    row_frac=0.02, topk_frac=0.05, topk_k=10,
)

#: the saturating burst: same popularity law, 20× the rate, replayed
#: under a tight point budget — must degrade gracefully, not queue
SATURATION_RATE = 40000.0
SATURATION_POLICY = AdmissionPolicy(max_point=8, max_row=2, max_topk=2)

#: the corruption drill: damage shard 1, expect detection + exact repair
SMOKE_CORRUPTION = StoreCorruptionSpec(shard=1, nbytes=8, seed=3)


def _store_fingerprint(store) -> int:
    """crc32 over the manifest's per-shard checksums — one number that
    changes if any stored byte changes, gated exactly in CI (stores are
    byte-deterministic by construction)."""
    joined = ",".join(
        f"{entry['crc32']:08x}" for entry in store.manifest["shards"]
    )
    joined += f",{store.manifest['landmarks']['crc32']:08x}"
    return zlib.crc32(joined.encode()) & 0xFFFFFFFF


def run_serve_smoke(
    *,
    scale: int = DEFAULT_SCALE,
    edge_factor: int = DEFAULT_EDGE_FACTOR,
    seed: int = DEFAULT_SEED,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    cache_shards: int = DEFAULT_CACHE_SHARDS,
    store_dir: Optional[str] = None,
) -> Tuple[Dict[str, object], MetricsRegistry]:
    """Run the serving smoke; returns ``(artifact, registry)``.

    Raises :class:`~repro.exceptions.BenchmarkError` if any of the
    bench's own invariants fail (optimised not beating naive, no
    degradation under saturation, corruption not detected or not
    exactly repaired) — CI then fails before regress even runs.
    """
    graph = rmat(
        scale,
        edge_factor=edge_factor,
        seed=seed,
        name=f"rmat-s{scale}-ef{edge_factor}",
    )
    n = graph.num_vertices
    tmp = None
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-smoke-")
        store_dir = tmp.name + "/store"
    try:
        registry = MetricsRegistry()
        t0 = time.perf_counter()
        with use_registry(registry):
            store = solve_to_store(
                graph,
                store_dir,
                shard_rows=shard_rows,
                num_landmarks=DEFAULT_LANDMARKS,
            )
        build_wall = time.perf_counter() - t0

        trace = generate_trace(SMOKE_TRAFFIC, n)
        policy = AdmissionPolicy()
        cost = ServeCostModel()
        opt = replay_virtual(
            trace, n=n, shard_rows=shard_rows, policy=policy, cost=cost,
            cache_shards=cache_shards, num_servers=DEFAULT_SERVERS,
            optimized=True,
        )
        naive = replay_virtual(
            trace, n=n, shard_rows=shard_rows, policy=policy, cost=cost,
            cache_shards=cache_shards, num_servers=DEFAULT_SERVERS,
            optimized=False,
        )
        if opt.counters["shard_loads"] >= naive.counters["shard_loads"]:
            raise BenchmarkError(
                "serve smoke: coalescing+batching did not reduce shard "
                f"loads ({opt.counters['shard_loads']} vs naive "
                f"{naive.counters['shard_loads']})"
            )
        if opt.mean_latency() >= naive.mean_latency():
            raise BenchmarkError(
                "serve smoke: optimised mean virtual latency "
                f"{opt.mean_latency():g}s is not below naive "
                f"{naive.mean_latency():g}s"
            )

        burst = generate_trace(
            TrafficSpec(
                num_requests=SMOKE_TRAFFIC.num_requests,
                rate=SATURATION_RATE,
                zipf_s=SMOKE_TRAFFIC.zipf_s,
                seed=SMOKE_TRAFFIC.seed,
                row_frac=SMOKE_TRAFFIC.row_frac,
                topk_frac=SMOKE_TRAFFIC.topk_frac,
                topk_k=SMOKE_TRAFFIC.topk_k,
            ),
            n,
        )
        sat = replay_virtual(
            burst, n=n, shard_rows=shard_rows, policy=SATURATION_POLICY,
            cost=cost, cache_shards=cache_shards,
            num_servers=DEFAULT_SERVERS, optimized=True,
        )
        if sat.counters["degraded"] == 0:
            raise BenchmarkError(
                "serve smoke: saturating burst produced no degraded "
                "(approximate) answers — admission control is not "
                "engaging"
            )
        answered = (
            sat.counters["admitted"] + sat.counters["degraded"]
            + sat.counters["shed"]
        )
        if answered != len(burst):
            raise BenchmarkError(
                f"serve smoke: {len(burst)} requests in, {answered} "
                "outcomes out — requests are queueing unboundedly"
            )

        # corruption drill: detection must fire, repair must be exact
        shard_file = Path(store.path) / store.manifest["shards"][
            SMOKE_CORRUPTION.shard]["file"]
        before = shard_file.read_bytes()
        SMOKE_CORRUPTION.apply(shard_file)
        try:
            store.verify()
        except StoreCorruptionError as exc:
            if SMOKE_CORRUPTION.shard not in exc.shards:
                raise BenchmarkError(
                    f"serve smoke: corruption reported {exc.shards}, "
                    f"expected shard {SMOKE_CORRUPTION.shard}"
                )
        else:
            raise BenchmarkError(
                "serve smoke: store corruption went undetected"
            )
        with use_registry(registry):
            repaired = store.repair(graph)
        if repaired != [SMOKE_CORRUPTION.shard]:
            raise BenchmarkError(
                f"serve smoke: repair touched {repaired}, expected "
                f"[{SMOKE_CORRUPTION.shard}]"
            )
        if shard_file.read_bytes() != before:
            raise BenchmarkError(
                "serve smoke: repaired shard is not byte-identical to "
                "the original"
            )

        # real-thread smoke of the locking paths; wall-only, not gated
        engine = QueryEngine(store, cache_shards=cache_shards)
        frontend = ServeFrontend(engine, policy=policy)
        t0 = time.perf_counter()
        threaded, responses = replay_threaded(trace, frontend,
                                              num_threads=4)
        threaded_wall = time.perf_counter() - t0
        exact_point = sum(
            1
            for req, resp in zip(trace, responses)
            if req.kind == "point" and resp.status == "ok"
            and resp.value == float(engine.dist(req.u, req.v))
        )
        ok_point = sum(
            1
            for req, resp in zip(trace, responses)
            if req.kind == "point" and resp.status == "ok"
        )
        if exact_point != ok_point:
            raise BenchmarkError(
                "serve smoke: threaded front end returned inexact "
                "answers without flagging them approximate"
            )

        serve: Dict[str, float] = {
            "serve.store.fingerprint": float(_store_fingerprint(store)),
            "serve.store.num_shards": float(store.num_shards),
            "serve.naive.shard_loads": float(naive.counters["shard_loads"]),
            "serve.naive.mean_ms": naive.mean_latency() * 1e3,
            "serve.naive.p99_ms": naive.percentile_latency(99) * 1e3,
            "serve.opt.shard_loads": float(opt.counters["shard_loads"]),
            "serve.opt.cache_hits": float(opt.counters["cache_hits"]),
            "serve.opt.coalesced": float(opt.counters["coalesced"]),
            "serve.opt.batches": float(opt.counters["batches"]),
            "serve.opt.gathers": float(opt.counters["gathers"]),
            "serve.opt.degraded": float(opt.counters["degraded"]),
            "serve.opt.shed": float(opt.counters["shed"]),
            "serve.opt.hit_rate": opt.hit_rate(),
            "serve.opt.mean_ms": opt.mean_latency() * 1e3,
            "serve.opt.p50_ms": opt.percentile_latency(50) * 1e3,
            "serve.opt.p99_ms": opt.percentile_latency(99) * 1e3,
            "serve.opt.mean_speedup":
                naive.mean_latency() / opt.mean_latency(),
            "serve.sat.degraded": float(sat.counters["degraded"]),
            "serve.sat.shed": float(sat.counters["shed"]),
            "serve.sat.admitted": float(sat.counters["admitted"]),
        }
        artifact = build_artifact(
            "serve-smoke",
            params={
                "workload_rev": WORKLOAD_REV,
                "graph": graph.name,
                "n": int(n),
                "m": int(graph.num_edges),
                "rmat_scale": scale,
                "rmat_edge_factor": edge_factor,
                "rmat_seed": seed,
                "shard_rows": shard_rows,
                "cache_shards": cache_shards,
                "num_landmarks": DEFAULT_LANDMARKS,
                "num_servers": DEFAULT_SERVERS,
                "traffic_requests": SMOKE_TRAFFIC.num_requests,
                "traffic_rate": SMOKE_TRAFFIC.rate,
                "traffic_zipf_s": SMOKE_TRAFFIC.zipf_s,
                "traffic_seed": SMOKE_TRAFFIC.seed,
                "saturation_rate": SATURATION_RATE,
            },
            timings={
                "wall.store_build": build_wall,
                "wall.threaded_replay": threaded_wall,
            },
            registry=registry,
            serve=serve,
        )
        return artifact, registry
    finally:
        if tmp is not None:
            tmp.cleanup()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.bench",
        description="run the deterministic query-serving bench and "
        "write its BENCH artifact",
    )
    parser.add_argument(
        "--out", default="BENCH_serve.json", help="artifact path to write"
    )
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument(
        "--edge-factor", type=int, default=DEFAULT_EDGE_FACTOR
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--shard-rows", type=int, default=DEFAULT_SHARD_ROWS
    )
    parser.add_argument(
        "--cache-shards", type=int, default=DEFAULT_CACHE_SHARDS
    )
    args = parser.parse_args(argv)
    artifact, _ = run_serve_smoke(
        scale=args.scale,
        edge_factor=args.edge_factor,
        seed=args.seed,
        shard_rows=args.shard_rows,
        cache_shards=args.cache_shards,
    )
    path = write_artifact(args.out, artifact)
    serve = artifact["serve"]
    print(f"wrote {path}")
    print(
        "  loads: naive={:d} opt={:d}  hit_rate={:.2f}  "
        "mean: naive={:.3f}ms opt={:.3f}ms ({:.1f}x)".format(
            int(serve["serve.naive.shard_loads"]),
            int(serve["serve.opt.shard_loads"]),
            serve["serve.opt.hit_rate"],
            serve["serve.naive.mean_ms"],
            serve["serve.opt.mean_ms"],
            serve["serve.opt.mean_speedup"],
        )
    )
    print(
        "  saturation: degraded={:d} shed={:d} admitted={:d}  "
        "p99={:.3f}ms".format(
            int(serve["serve.sat.degraded"]),
            int(serve["serve.sat.shed"]),
            int(serve["serve.sat.admitted"]),
            serve["serve.opt.p99_ms"],
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
