"""Deterministic query-serving bench → ``BENCH_serve*.json``.

CI's ``serve-smoke`` matrix runs this module once per codec, then
gates with :mod:`repro.obs.regress` against the committed per-codec
baseline (``benchmarks/baselines/BENCH_serve.json`` for ``raw``,
``BENCH_serve_<codec>.json`` otherwise).  One run:

1. builds a :class:`~repro.serve.store.DistStore` from the same seeded
   R-MAT graph the perf smoke uses, streaming shard-by-shard (the n×n
   matrix never materialises), fingerprints the store bytes — the
   build is flags-off and serial and codecs encode deterministically,
   so the crc is machine-independent and gates exactly — and measures
   the **observed** decode error of every shard against a fresh exact
   solve, requiring it within the manifest's certified bound;
2. replays the **pinned Zipfian trace** through the virtual-time model
   with the store's *real* per-shard byte sizes — optimised (LRU cache
   + coalescing + micro-batching), naive (every query loads its
   shard), a raw-f8-cost reference (what the same optimised replay
   would cost without compression), and an **ALT replay** where point
   queries whose certified landmark gap is within ε short-circuit with
   no shard load — and *requires* optimised to beat naive on shard
   loads and bytes moved (and on latency for ``raw``, where loads are
   expensive enough to dominate), compressed codecs to beat the
   raw-cost reference on latency, and the ALT replay to load strictly
   fewer shards;
3. replays a saturating burst (same trace at many times the rate under
   a tight admission budget) and requires graceful degradation:
   error-barred approximate answers, zero unbounded queueing;
4. injects one :class:`~repro.faults.StoreCorruptionSpec` into the
   encoded shard bytes, requires detection
   (:class:`~repro.exceptions.StoreCorruptionError`) and byte-exact
   repair through the codec;
5. pushes the trace through the *real* threaded front end once as a
   smoke of the locking paths (wall numbers recorded, never gated),
   cross-checking every exact answer against ground truth within the
   certified error bound.

The optimised replay runs with request-scoped telemetry attached
(:mod:`repro.serve.telemetry`): its virtual-time event stream feeds the
``serve_latency_hist`` section (a
:class:`~repro.obs.hist.LatencyHistogram` whose quantiles the bench
*asserts* are within the certified relative error of the exact
percentiles) and the ``serve_slo`` section (error-budget burn rates for
:data:`SMOKE_SLO`, gated upward-only).  ``--events`` writes the sampled
JSONL event log — byte-identical across runs of the seeded trace, which
CI checks with a second run and ``cmp`` — and ``--request-trace``
exports the slowest recorded request (the histogram's top exemplar) as
a Perfetto-loadable trace.  The threaded replay is scored against the
same SLO through the identical code path; its numbers land under
``wall.*`` and are never gated.

``--update`` runs the **update-smoke** instead
(:func:`run_update_smoke`): it builds the store from the *weighted*
variant of the same graph, applies the pinned edge-update batch
(:data:`SMOKE_UPDATE_BATCH`: one insert, one reweight, one delete)
through :func:`~repro.serve.update.apply_edge_updates`, and asserts
the headline invariants of incremental serving — the updated store is
**byte-identical** to a from-scratch build of the mutated graph, the
deterministic row-unit cost is below :data:`UPDATE_COST_GATE` of a
full rebuild, the landmark prescreen certifies shards clean, a
:class:`~repro.serve.engine.QueryEngine` holding the old generation
keeps answering from it until :meth:`refresh` adopts the new one, and
a corruption drill across an *in-flight* update aborts with the live
generation intact.  The ``update`` artifact section is gated in CI
against ``benchmarks/baselines/BENCH_update.json`` (every field exact;
``update.cost_ratio`` additionally gates upward-only).

Regenerate a baseline after an intentional serving change::

    PYTHONPATH=src python -m repro.serve.bench \
        --codec u16q --out benchmarks/baselines/BENCH_serve_u16q.json
    PYTHONPATH=src python -m repro.serve.bench \
        --update --out benchmarks/baselines/BENCH_update.json

``--dist`` runs the **dist-smoke** instead (:func:`run_dist_smoke`):
the multi-node leg of the bench on a 4-node virtual cluster.  Build
side, :func:`~repro.dist.solve_apsp_cluster` must produce distances
bitwise-identical to the single-machine solve both fault-free and
under the pinned node-granularity :class:`~repro.faults.FaultPlan`
(one rank killed mid-build, one straggling); serve side, a
:class:`~repro.serve.router.RoutedEngine` over a consistent-hash
:class:`~repro.serve.router.ShardRouter` must answer byte-identically
to a single-node :class:`~repro.serve.engine.QueryEngine` — including
with a failed node, replication ≥ 2 — and the hot-shard-skewed trace
(:data:`DIST_TRAFFIC`) replayed through the router must see its p99
*improve* after :meth:`~repro.serve.router.ShardRouter.rebalance`
moves the hot shards off the overloaded node.  The ``dist`` artifact
section is gated in CI against
``benchmarks/baselines/BENCH_dist.json`` (answer fingerprints and
failover/loss event counts exact; ``network_bytes``, makespans and
``*_ms`` percentiles upward-only).

``--curve accuracy_latency.json`` instead sweeps every codec and
writes the accuracy-vs-latency curve artifact
(``repro.serve.curve/1``) that CI uploads.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dist import CLUSTER_FAST, solve_apsp_cluster
from ..exceptions import BenchmarkError, StoreCorruptionError
from ..faults import FaultPlan, FaultSpec, StoreCorruptionSpec
from ..graphs import attach_random_weights
from ..graphs.rmat import rmat
from ..obs.artifact import build_artifact, write_artifact
from ..obs.metrics import MetricsRegistry, use_registry
from ..trace import to_chrome, validate_chrome, write_chrome
from .admission import AdmissionPolicy, ServeFrontend
from .codecs import codec_names
from .engine import QueryEngine
from .replay import ServeCostModel, replay_threaded, replay_virtual
from .slo import SLOSpec, evaluate_slo
from .router import RoutedEngine, ShardRouter
from .store import DistStore, solve_to_store
from .telemetry import JsonlSink, TelemetryCollector, export_request_trace
from .traffic import TrafficSpec, generate_trace
from .update import (
    apply_edge_updates,
    apply_updates_to_graph,
    parse_edge_updates,
)

__all__ = [
    "run_serve_smoke",
    "run_update_smoke",
    "run_dist_smoke",
    "run_codec_curve",
    "main",
]

#: workload identity — bump when any knob below changes so a stale
#: baseline fails on params instead of on mysterious counters
#: (rev 2: codec-aware replay costs, ALT ε short-circuiting;
#:  rev 3: opt percentiles read from the certified latency histogram,
#:  serve_latency_hist + serve_slo sections)
WORKLOAD_REV = 3
DEFAULT_SCALE = 7
DEFAULT_EDGE_FACTOR = 8
DEFAULT_SEED = 5
DEFAULT_SHARD_ROWS = 16
DEFAULT_CACHE_SHARDS = 3
DEFAULT_LANDMARKS = 8
DEFAULT_SERVERS = 2
#: short-circuit gap: 0.0 = answer from ALT bounds only when they
#: coincide, i.e. the short-circuit is *exact*
DEFAULT_EPSILON = 0.0

#: the pinned trace CI replays (seeded ⇒ identical on every host)
SMOKE_TRAFFIC = TrafficSpec(
    num_requests=512, rate=2000.0, zipf_s=1.1, seed=13,
    row_frac=0.02, topk_frac=0.05, topk_k=10,
)

#: the saturating burst: same popularity law, 20× the rate, replayed
#: under a tight point budget — must degrade gracefully, not queue
SATURATION_RATE = 40000.0
SATURATION_POLICY = AdmissionPolicy(max_point=8, max_row=2, max_topk=2)

#: the corruption drill: damage shard 1, expect detection + exact repair
SMOKE_CORRUPTION = StoreCorruptionSpec(shard=1, nbytes=8, seed=3)

#: the latency objective the smoke scores (gated upward-only on burn):
#: 90% of point queries inside 5 ms of virtual time, 50 ms windows —
#: pinned where the raw-codec replay genuinely burns budget (≈2×), so
#: both regressions (more burn) and codec improvements (less) register
SMOKE_SLO = SLOSpec(name="point", threshold=0.005, objective=0.9,
                    window=0.05)

#: event-ring capacity for the smoke's collectors — far above the
#: ~6 events/request the 512-request trace emits, so the ring never
#: evicts and ``--request-trace`` can export any exemplar
TELEMETRY_CAPACITY = 32768

#: the update-smoke runs on the *weighted* variant of the bench graph
#: (continuous weights keep the ALT certificates' strict inequalities
#: generic — no unit-weight ties), seeded so every host sees the same
#: weights
UPDATE_WEIGHT_SEED = 7

#: the pinned edge-update batch: one insert ((32, 35) is a non-edge
#: whose new weight undercuts the old d(32, 35), dirtying two rows in
#: shard 2 only), one upward reweight of the heavy (16, 27) edge and
#: one delete of the heaviest hub edge (64, 119) — both provably on no
#: shortest path, so the landmark prescreen certifies every other
#: shard clean without touching the solver
SMOKE_UPDATE_BATCH = "set=32,35,4.681;set=16,27,9.9;del=64,119"

#: the in-flight drill batch (applied on top of the first batch, then
#: aborted): decreasing (23, 55) well below its old weight guarantees
#: dirty shards, i.e. pending copy-on-write files to damage
DRILL_UPDATE_BATCH = "set=23,55,2.5"

#: hard ceiling on the update's deterministic row-unit cost relative
#: to a full rebuild — the point of incremental updates
UPDATE_COST_GATE = 0.5

#: the dist-smoke's virtual serving cluster / hash-ring geometry:
#: 4 nodes, every shard on 2 of them, so one node can die with exact
#: answers still served
DIST_NODES = 4
DIST_REPLICATION = 2
DIST_VNODES = 64
DIST_HASH_SEED = 0
DIST_NODE_BUDGET = 32
DIST_SERVERS_PER_NODE = 2
DIST_MAX_MOVES = 4
#: per-node replay cache, sized *below* the shards-per-node of the
#: skewed placement so the overloaded node visibly thrashes — the
#: latency signature the rebalance gate measures
DIST_CACHE_SHARDS = 2
#: pinned probe pairs for the routed-vs-single exactness cross-check
DIST_PROBE_SEED = 29
DIST_PROBE_PAIRS = 128

#: the skewed trace: same Zipf law as :data:`SMOKE_TRAFFIC` with a
#: hot band one shard wide taking most of the point traffic, at 3× the
#: rate so cache misses on the overloaded node queue behind each other
#: — the workload the rebalancer exists for
DIST_TRAFFIC = TrafficSpec(
    num_requests=512, rate=6000.0, zipf_s=1.1, seed=13,
    row_frac=0.02, topk_frac=0.05, topk_k=10,
    hot_frac=0.6, hot_width=16,
)

#: the node-granularity build fault plan: rank 1 dies after its second
#: shard claim (its remaining shards re-solve on the survivors), rank 2
#: straggles — recovery must stay bitwise-exact
DIST_FAULT_PLAN = FaultPlan(
    (
        FaultSpec(kind="kill", worker=1, after_claims=2),
        FaultSpec(kind="stall", worker=2, seconds=2.5e4),
    )
)


def _store_fingerprint(store) -> int:
    """crc32 over the manifest's per-shard checksums — one number that
    changes if any stored byte changes, gated exactly in CI (stores are
    byte-deterministic by construction)."""
    joined = ",".join(
        f"{entry['crc32']:08x}" for entry in store.manifest["shards"]
    )
    joined += f",{store.manifest['landmarks']['crc32']:08x}"
    return zlib.crc32(joined.encode()) & 0xFFFFFFFF


def _observed_error(store, ref: np.ndarray) -> float:
    """Max abs decode error over every shard vs the exact solve.

    Also requires the reachability structure to survive any codec
    exactly: an ``inf`` that decodes finite (or vice versa) is a
    correctness bug no ε excuses.
    """
    observed = 0.0
    for index in range(store.num_shards):
        start, rows = store.shard_span(index)
        block = store.load_shard(index)
        truth = ref[start:start + rows]
        finite = np.isfinite(truth)
        if (np.isfinite(block) != finite).any():
            raise BenchmarkError(
                f"serve smoke: codec {store.codec_name!r} does not "
                f"preserve reachability in shard {index}"
            )
        if finite.any():
            observed = max(
                observed,
                float(np.max(np.abs(block[finite] - truth[finite]))),
            )
    return observed


def run_serve_smoke(
    *,
    scale: int = DEFAULT_SCALE,
    edge_factor: int = DEFAULT_EDGE_FACTOR,
    seed: int = DEFAULT_SEED,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    cache_shards: int = DEFAULT_CACHE_SHARDS,
    codec: str = "raw",
    epsilon: float = DEFAULT_EPSILON,
    store_dir: Optional[str] = None,
    events_out: Optional[str] = None,
    events_sample: float = 1.0,
    request_trace_out: Optional[str] = None,
) -> Tuple[Dict[str, object], MetricsRegistry]:
    """Run the serving smoke for one codec; returns ``(artifact, registry)``.

    Raises :class:`~repro.exceptions.BenchmarkError` if any of the
    bench's own invariants fail (optimised not beating naive, observed
    error above the certified bound, compressed codec not beating the
    raw-cost reference, ALT short-circuits not reducing shard loads, no
    degradation under saturation, corruption not detected or not
    exactly repaired, a histogram quantile outside its certified error
    of the exact percentile) — CI then fails before regress even runs.

    ``events_out`` writes the optimised replay's telemetry as a JSONL
    event log (sampled per trace id at ``events_sample``, deterministic
    — two runs of the same workload produce byte-identical files);
    ``request_trace_out`` writes the Chrome/Perfetto trace of the
    slowest recorded request, named by the histogram's top exemplar.
    """
    graph = rmat(
        scale,
        edge_factor=edge_factor,
        seed=seed,
        name=f"rmat-s{scale}-ef{edge_factor}",
    )
    n = graph.num_vertices
    tmp = None
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-smoke-")
        store_dir = tmp.name + "/store"
    sink: Optional[JsonlSink] = None
    try:
        registry = MetricsRegistry()
        t0 = time.perf_counter()
        with use_registry(registry):
            store = solve_to_store(
                graph,
                store_dir,
                shard_rows=shard_rows,
                num_landmarks=DEFAULT_LANDMARKS,
                codec=codec,
                epsilon=epsilon,
            )
        build_wall = time.perf_counter() - t0

        # ground truth for the error audit and the threaded cross-check
        from ..core import solve_apsp

        ref = solve_apsp(graph, use_flags=False).dist
        certified = store.max_abs_error
        observed = _observed_error(store, ref)
        if observed > certified:
            raise BenchmarkError(
                f"serve smoke: codec {codec!r} observed decode error "
                f"{observed:g} exceeds its certified bound {certified:g}"
            )
        if codec in ("raw", "f4") and scale <= 10 and observed != 0.0:
            # unit-weight R-MAT distances are small integers — exact in
            # f4 too, so any error here means the codec is broken
            raise BenchmarkError(
                f"serve smoke: codec {codec!r} should be exact on the "
                f"hop-count smoke graph, observed error {observed:g}"
            )
        store_bytes = store.store_bytes()
        raw_store_bytes = n * n * 8
        if codec in ("u16q", "u16qd") and store_bytes * 2 > raw_store_bytes:
            raise BenchmarkError(
                f"serve smoke: codec {codec!r} store is {store_bytes} "
                f"bytes, not ≥2× below raw f8 {raw_store_bytes}"
            )

        sizes = [store.shard_nbytes(i) for i in range(store.num_shards)]
        trace = generate_trace(SMOKE_TRAFFIC, n)
        policy = AdmissionPolicy()
        cost = ServeCostModel()
        if events_out is not None:
            sink = JsonlSink(
                events_out,
                params={
                    "workload_rev": WORKLOAD_REV,
                    "codec": codec,
                    "epsilon": float(epsilon),
                    "rmat_scale": scale,
                    "rmat_seed": seed,
                    "shard_rows": shard_rows,
                    "cache_shards": cache_shards,
                    "traffic_requests": SMOKE_TRAFFIC.num_requests,
                    "traffic_seed": SMOKE_TRAFFIC.seed,
                    "sample": float(events_sample),
                },
            )
        collector = TelemetryCollector(
            capacity=TELEMETRY_CAPACITY, sink=sink, sample=events_sample,
        )
        opt = replay_virtual(
            trace, n=n, shard_rows=shard_rows, policy=policy, cost=cost,
            cache_shards=cache_shards, num_servers=DEFAULT_SERVERS,
            optimized=True, shard_nbytes=sizes,
            telemetry=collector, codec=codec,
        )
        naive = replay_virtual(
            trace, n=n, shard_rows=shard_rows, policy=policy, cost=cost,
            cache_shards=cache_shards, num_servers=DEFAULT_SERVERS,
            optimized=False, shard_nbytes=sizes,
        )
        # same optimised replay at raw-f8 shard sizes: the latency the
        # codec is claiming credit against
        raw_ref = replay_virtual(
            trace, n=n, shard_rows=shard_rows, policy=policy, cost=cost,
            cache_shards=cache_shards, num_servers=DEFAULT_SERVERS,
            optimized=True,
        )
        if opt.counters["shard_loads"] >= naive.counters["shard_loads"]:
            raise BenchmarkError(
                "serve smoke: coalescing+batching did not reduce shard "
                f"loads ({opt.counters['shard_loads']} vs naive "
                f"{naive.counters['shard_loads']})"
            )
        if opt.counters["bytes_loaded"] >= naive.counters["bytes_loaded"]:
            raise BenchmarkError(
                "serve smoke: optimised replay moved "
                f"{opt.counters['bytes_loaded']} bytes, not below naive "
                f"{naive.counters['bytes_loaded']}"
            )
        # the latency leg of opt-vs-naive only binds for raw: once a
        # codec makes loads cheap, the window-free naive path is
        # latency-competitive by construction and the optimised stack's
        # win is resource cost (the load/byte gates above) — while the
        # codec's own latency win is gated against raw_ref below
        if codec == "raw" and opt.mean_latency() >= naive.mean_latency():
            raise BenchmarkError(
                "serve smoke: optimised mean virtual latency "
                f"{opt.mean_latency():g}s is not below naive "
                f"{naive.mean_latency():g}s"
            )
        if codec != "raw" and opt.mean_latency() >= raw_ref.mean_latency():
            raise BenchmarkError(
                f"serve smoke: codec {codec!r} mean virtual latency "
                f"{opt.mean_latency():g}s does not beat the raw-f8 cost "
                f"reference {raw_ref.mean_latency():g}s"
            )

        # ALT replay: which point requests would short-circuit on the
        # certified landmark gap alone?  The probe touches no shards.
        probe = QueryEngine(store, cache_shards=1, epsilon=epsilon)
        sc_indices: List[int] = []
        for i, req in enumerate(trace):
            if req.kind != "point":
                continue
            lo, hi = probe.dist_bounds(req.u, req.v)
            if lo == hi or hi - lo <= epsilon:
                sc_indices.append(i)
        if probe.stats["shard_loads"] != 0:
            raise BenchmarkError(
                "serve smoke: ALT bound probe loaded shards"
            )
        if not sc_indices:
            raise BenchmarkError(
                "serve smoke: no point query short-circuits on the ALT "
                "gap — landmark bounds are not engaging"
            )
        alt = replay_virtual(
            trace, n=n, shard_rows=shard_rows, policy=policy, cost=cost,
            cache_shards=cache_shards, num_servers=DEFAULT_SERVERS,
            optimized=True, shard_nbytes=sizes, short_circuits=sc_indices,
        )
        if alt.counters["short_circuits"] == 0:
            raise BenchmarkError(
                "serve smoke: ALT replay recorded no short-circuits"
            )
        if alt.counters["shard_loads"] >= opt.counters["shard_loads"]:
            raise BenchmarkError(
                "serve smoke: ALT short-circuiting did not reduce shard "
                f"loads ({alt.counters['shard_loads']} vs "
                f"{opt.counters['shard_loads']})"
            )

        burst = generate_trace(
            TrafficSpec(
                num_requests=SMOKE_TRAFFIC.num_requests,
                rate=SATURATION_RATE,
                zipf_s=SMOKE_TRAFFIC.zipf_s,
                seed=SMOKE_TRAFFIC.seed,
                row_frac=SMOKE_TRAFFIC.row_frac,
                topk_frac=SMOKE_TRAFFIC.topk_frac,
                topk_k=SMOKE_TRAFFIC.topk_k,
            ),
            n,
        )
        sat = replay_virtual(
            burst, n=n, shard_rows=shard_rows, policy=SATURATION_POLICY,
            cost=cost, cache_shards=cache_shards,
            num_servers=DEFAULT_SERVERS, optimized=True, shard_nbytes=sizes,
        )
        if sat.counters["degraded"] == 0:
            raise BenchmarkError(
                "serve smoke: saturating burst produced no degraded "
                "(approximate) answers — admission control is not "
                "engaging"
            )
        answered = (
            sat.counters["admitted"] + sat.counters["degraded"]
            + sat.counters["shed"]
        )
        if answered != len(burst):
            raise BenchmarkError(
                f"serve smoke: {len(burst)} requests in, {answered} "
                "outcomes out — requests are queueing unboundedly"
            )

        # corruption drill: detection must fire, repair must be exact
        # over the *encoded* bytes, whatever the codec
        shard_file = SMOKE_CORRUPTION.resolve(store)
        before = shard_file.read_bytes()
        SMOKE_CORRUPTION.apply_to_store(store)
        try:
            store.verify()
        except StoreCorruptionError as exc:
            if SMOKE_CORRUPTION.shard not in exc.shards:
                raise BenchmarkError(
                    f"serve smoke: corruption reported {exc.shards}, "
                    f"expected shard {SMOKE_CORRUPTION.shard}"
                )
        else:
            raise BenchmarkError(
                "serve smoke: store corruption went undetected"
            )
        with use_registry(registry):
            repaired = store.repair(graph)
        if repaired != [SMOKE_CORRUPTION.shard]:
            raise BenchmarkError(
                f"serve smoke: repair touched {repaired}, expected "
                f"[{SMOKE_CORRUPTION.shard}]"
            )
        if shard_file.read_bytes() != before:
            raise BenchmarkError(
                "serve smoke: repaired shard is not byte-identical to "
                "the original"
            )

        # real-thread smoke of the locking paths; wall-only, not gated
        # (its telemetry collector exercises the real scope threading —
        # wall timestamps, so it never feeds the deterministic sink)
        engine = QueryEngine(store, cache_shards=cache_shards)
        thr_telemetry = TelemetryCollector(capacity=TELEMETRY_CAPACITY)
        frontend = ServeFrontend(engine, policy=policy,
                                 telemetry=thr_telemetry)
        t0 = time.perf_counter()
        threaded, responses = replay_threaded(trace, frontend,
                                              num_threads=4)
        threaded_wall = time.perf_counter() - t0
        # answers must be deterministic (repeatable through the engine)
        # and within the certified error contract vs ground truth
        err_budget = certified + (epsilon or 0.0) / 2.0
        for req, resp in zip(trace, responses):
            if req.kind != "point" or resp.status != "ok":
                continue
            if resp.value != float(engine.dist(req.u, req.v)):
                raise BenchmarkError(
                    "serve smoke: threaded front end is not "
                    "deterministic vs a repeated engine query"
                )
            true = float(ref[req.u, req.v])
            if np.isinf(true) != np.isinf(resp.value):
                raise BenchmarkError(
                    "serve smoke: threaded answer disagrees with ground "
                    f"truth on reachability of ({req.u}, {req.v})"
                )
            if np.isfinite(true) and abs(resp.value - true) > err_budget:
                raise BenchmarkError(
                    f"serve smoke: threaded answer for ({req.u}, "
                    f"{req.v}) is {resp.value:g}, ground truth {true:g} "
                    f"— outside the certified budget {err_budget:g}"
                )
        if engine.stats["short_circuits"] == 0:
            raise BenchmarkError(
                "serve smoke: the real engine never short-circuited on "
                "the ALT gap despite epsilon being set"
            )
        answers = [e for e in thr_telemetry.events() if e.kind == "answer"]
        if len(answers) != len(trace):
            raise BenchmarkError(
                "serve smoke: threaded telemetry recorded "
                f"{len(answers)} answer events for {len(trace)} requests"
            )

        # the certified latency histogram over the optimised replay:
        # every quantile the artifact reports must sit within the
        # histogram's own rel_error certificate of the exact percentile
        hist = opt.latency_histogram()
        if hist.count != sum(len(v) for v in opt.latencies.values()):
            raise BenchmarkError(
                "serve smoke: latency histogram lost samples "
                f"({hist.count} vs recorded latencies)"
            )
        for q in (50.0, 90.0, 99.0):
            exact = opt.percentile_latency(q)
            approx = hist.quantile(q)
            if abs(approx - exact) > hist.rel_error * exact + 1e-12:
                raise BenchmarkError(
                    f"serve smoke: histogram p{q:g} = {approx:g}s is "
                    f"outside the certified relative error "
                    f"{hist.rel_error:g} of the exact percentile "
                    f"{exact:g}s"
                )
        serve_hist = hist.flat("serve.opt.hist")
        serve_hist["serve.opt.hist.rel_error"] = hist.rel_error
        serve_hist["serve.opt.hist.p50_ms"] = hist.quantile(50) * 1e3
        serve_hist["serve.opt.hist.p90_ms"] = hist.quantile(90) * 1e3
        serve_hist["serve.opt.hist.p99_ms"] = hist.quantile(99) * 1e3

        # SLO burn over the virtual replay (deterministic, gated
        # upward-only) and over the threaded replay through the same
        # code path (wall-clock latencies, reported but never gated)
        slo_report = evaluate_slo(SMOKE_SLO, opt.slo_samples("point"))
        thr_slo = evaluate_slo(SMOKE_SLO, threaded.slo_samples("point"))

        if request_trace_out is not None:
            # the slowest recorded request, named by the histogram's
            # top exemplar, exported as a Perfetto-loadable trace
            top_bucket = max(hist.exemplars)
            exemplar_tid = hist.exemplars[top_bucket][1]
            req_trace = export_request_trace(
                collector.events(), exemplar_tid
            )
            problems = validate_chrome(to_chrome(req_trace))
            if problems:
                raise BenchmarkError(
                    "serve smoke: exported request trace is not valid "
                    "Chrome JSON: " + "; ".join(problems)
                )
            write_chrome(request_trace_out, req_trace)

        serve: Dict[str, float] = {
            "serve.store.fingerprint": float(_store_fingerprint(store)),
            "serve.store.num_shards": float(store.num_shards),
            "serve.store.store_bytes": float(store_bytes),
            "serve.store.raw_store_bytes": float(raw_store_bytes),
            "serve.store.compression_ratio": raw_store_bytes / store_bytes,
            "serve.error.certified_max_abs_error": certified,
            "serve.error.observed_max_abs_error": observed,
            "serve.naive.shard_loads": float(naive.counters["shard_loads"]),
            "serve.naive.bytes_loaded": float(naive.counters["bytes_loaded"]),
            "serve.naive.mean_ms": naive.mean_latency() * 1e3,
            "serve.naive.p99_ms": naive.percentile_latency(99) * 1e3,
            "serve.opt.shard_loads": float(opt.counters["shard_loads"]),
            "serve.opt.bytes_loaded": float(opt.counters["bytes_loaded"]),
            "serve.opt.cache_hits": float(opt.counters["cache_hits"]),
            "serve.opt.coalesced": float(opt.counters["coalesced"]),
            "serve.opt.batches": float(opt.counters["batches"]),
            "serve.opt.gathers": float(opt.counters["gathers"]),
            "serve.opt.degraded": float(opt.counters["degraded"]),
            "serve.opt.shed": float(opt.counters["shed"]),
            "serve.opt.hit_rate": opt.hit_rate(),
            "serve.opt.mean_ms": opt.mean_latency() * 1e3,
            # opt percentiles come from the certified histogram (the
            # bound vs the exact percentiles is asserted above); the
            # reference replays keep the exact sorted-array percentiles
            "serve.opt.p50_ms": hist.quantile(50) * 1e3,
            "serve.opt.p99_ms": hist.quantile(99) * 1e3,
            "serve.opt.mean_speedup":
                naive.mean_latency() / opt.mean_latency(),
            "serve.opt.raw_speedup":
                raw_ref.mean_latency() / opt.mean_latency(),
            "serve.raw_ref.mean_ms": raw_ref.mean_latency() * 1e3,
            "serve.raw_ref.p99_ms": raw_ref.percentile_latency(99) * 1e3,
            "serve.alt.short_circuits":
                float(alt.counters["short_circuits"]),
            "serve.alt.shard_loads": float(alt.counters["shard_loads"]),
            "serve.alt.bytes_loaded": float(alt.counters["bytes_loaded"]),
            "serve.alt.mean_ms": alt.mean_latency() * 1e3,
            "serve.alt.p99_ms": alt.percentile_latency(99) * 1e3,
            "serve.sat.degraded": float(sat.counters["degraded"]),
            "serve.sat.shed": float(sat.counters["shed"]),
            "serve.sat.admitted": float(sat.counters["admitted"]),
        }
        artifact = build_artifact(
            "serve-smoke",
            params={
                "workload_rev": WORKLOAD_REV,
                "graph": graph.name,
                "n": int(n),
                "m": int(graph.num_edges),
                "rmat_scale": scale,
                "rmat_edge_factor": edge_factor,
                "rmat_seed": seed,
                "shard_rows": shard_rows,
                "cache_shards": cache_shards,
                "codec": codec,
                "epsilon": float(epsilon),
                "num_landmarks": DEFAULT_LANDMARKS,
                "num_servers": DEFAULT_SERVERS,
                "traffic_requests": SMOKE_TRAFFIC.num_requests,
                "traffic_rate": SMOKE_TRAFFIC.rate,
                "traffic_zipf_s": SMOKE_TRAFFIC.zipf_s,
                "traffic_seed": SMOKE_TRAFFIC.seed,
                "saturation_rate": SATURATION_RATE,
            },
            timings={
                "wall.store_build": build_wall,
                "wall.threaded_replay": threaded_wall,
                # threaded SLO through the identical scoring path —
                # wall-clock latencies, so wall.* (reported, not gated)
                "wall.slo_burn_rate": thr_slo.burn_rate,
                "wall.slo_compliance": thr_slo.compliance,
            },
            registry=registry,
            serve=serve,
            serve_latency_hist=serve_hist,
            serve_slo=slo_report.to_flat("serve.slo.point"),
        )
        return artifact, registry
    finally:
        if sink is not None:
            sink.close()
        if tmp is not None:
            tmp.cleanup()


def run_update_smoke(
    *,
    scale: int = DEFAULT_SCALE,
    edge_factor: int = DEFAULT_EDGE_FACTOR,
    seed: int = DEFAULT_SEED,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    cache_shards: int = DEFAULT_CACHE_SHARDS,
    codec: str = "raw",
    store_dir: Optional[str] = None,
) -> Tuple[Dict[str, object], MetricsRegistry]:
    """Run the incremental-update smoke; returns ``(artifact, registry)``.

    Builds a store from the weighted bench graph, applies the pinned
    :data:`SMOKE_UPDATE_BATCH` through
    :func:`~repro.serve.update.apply_edge_updates` and asserts, with
    :class:`~repro.exceptions.BenchmarkError` on any failure:

    * **byte-identity** — the updated store's fingerprint (and byte
      size) equals a from-scratch :func:`solve_to_store` of the
      mutated graph;
    * **incrementality** — the deterministic row-unit cost is below
      :data:`UPDATE_COST_GATE` of a full rebuild, and the landmark
      prescreen certified at least one shard clean;
    * **correctness** — the updated store decodes within its certified
      error of an exact solve of the mutated graph;
    * **generation safety** — an engine opened before the update keeps
      answering from the old generation until
      :meth:`~repro.serve.engine.QueryEngine.refresh`, which adopts
      the new one and serves the post-update distances;
    * **in-flight durability** — a corruption drill that damages a
      pending copy-on-write file mid-update aborts the swap, leaving
      the live generation intact on disk and no orphaned files.

    The pinned batch's vertex ids are tuned to the default graph knobs;
    non-default ``scale``/``seed`` are for exploration only.
    """
    base = rmat(
        scale,
        edge_factor=edge_factor,
        seed=seed,
        name=f"rmat-s{scale}-ef{edge_factor}",
    )
    graph = attach_random_weights(base, seed=UPDATE_WEIGHT_SEED)
    n = graph.num_vertices
    tmp = None
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-update-smoke-")
        store_dir = tmp.name + "/store"
    try:
        registry = MetricsRegistry()
        with use_registry(registry):
            t0 = time.perf_counter()
            store = solve_to_store(
                graph,
                store_dir,
                shard_rows=shard_rows,
                num_landmarks=DEFAULT_LANDMARKS,
                codec=codec,
            )
            build_wall = time.perf_counter() - t0
            if store.generation != 0:
                raise BenchmarkError(
                    "update smoke: fresh build did not start at "
                    f"generation 0 (got {store.generation})"
                )
            old_fingerprint = _store_fingerprint(store)

            # an engine holding the pre-update generation: it must keep
            # serving it, unmixed, until it explicitly refreshes
            engine = QueryEngine(store, cache_shards=cache_shards)
            updates = parse_edge_updates(SMOKE_UPDATE_BATCH)
            probe_pairs = sorted(
                {upd.key for upd in updates}
                | {(u, u + 1) for u in range(0, n - 1, max(1, n // 8))}
            )
            old_answers = {
                (u, v): float(engine.dist(u, v)) for u, v in probe_pairs
            }

            t0 = time.perf_counter()
            result = apply_edge_updates(store, graph, updates)
            update_wall = time.perf_counter() - t0
            updated = result.store

        if result.generation != 1 or updated.generation != 1:
            raise BenchmarkError(
                "update smoke: expected generation 1 after one update, "
                f"got result {result.generation} / store "
                f"{updated.generation}"
            )
        if not result.dirty_shards:
            raise BenchmarkError(
                "update smoke: the pinned batch dirtied no shards — "
                "the copy-on-write path was never exercised"
            )
        if result.certified_clean_shards <= 0:
            raise BenchmarkError(
                "update smoke: the landmark prescreen certified no "
                "shard clean — the ALT certificates are not engaging"
            )
        if result.cost_ratio >= UPDATE_COST_GATE:
            raise BenchmarkError(
                f"update smoke: update cost {result.cost_rows} rows is "
                f"{result.cost_ratio:.3f}x a full rebuild "
                f"({result.rebuild_rows} rows), not below "
                f"{UPDATE_COST_GATE}"
            )

        # byte-identity: the updated store vs a from-scratch build of
        # the mutated graph — same fingerprint, same size
        new_graph = apply_updates_to_graph(graph, updates)
        with use_registry(registry):
            t0 = time.perf_counter()
            fresh = solve_to_store(
                new_graph,
                store_dir + "-rebuild",
                shard_rows=shard_rows,
                num_landmarks=DEFAULT_LANDMARKS,
                codec=codec,
            )
            rebuild_wall = time.perf_counter() - t0
        updated_fp = _store_fingerprint(updated)
        rebuild_fp = _store_fingerprint(fresh)
        if updated_fp != rebuild_fp:
            raise BenchmarkError(
                "update smoke: updated store fingerprint "
                f"{updated_fp:#010x} differs from a from-scratch build "
                f"of the mutated graph ({rebuild_fp:#010x}) — "
                "incremental updates must be byte-identical"
            )
        if updated.store_bytes() != fresh.store_bytes():
            raise BenchmarkError(
                "update smoke: updated store is "
                f"{updated.store_bytes()} bytes vs rebuild "
                f"{fresh.store_bytes()}"
            )

        # correctness of the published bytes vs an exact solve
        from ..core import solve_apsp

        new_ref = solve_apsp(new_graph, use_flags=False).dist
        observed = _observed_error(updated, new_ref)
        if observed > updated.max_abs_error:
            raise BenchmarkError(
                f"update smoke: updated store decodes with error "
                f"{observed:g}, above its certified bound "
                f"{updated.max_abs_error:g}"
            )

        # generation safety: the old engine still serves generation 0
        # answers, then refresh() adopts generation 1 atomically
        for (u, v), before in old_answers.items():
            if float(engine.dist(u, v)) != before:
                raise BenchmarkError(
                    f"update smoke: engine answer for ({u}, {v}) "
                    "changed without a refresh — generations are mixing"
                )
        with use_registry(registry):
            adopted = engine.refresh()
        if adopted != 1:
            raise BenchmarkError(
                f"update smoke: refresh adopted generation {adopted}, "
                "expected 1"
            )
        err_budget = updated.max_abs_error
        swapped = 0
        for u, v in probe_pairs:
            got = float(engine.dist(u, v))
            true = float(new_ref[u, v])
            if np.isinf(true) != np.isinf(got) or (
                np.isfinite(true) and abs(got - true) > err_budget
            ):
                raise BenchmarkError(
                    f"update smoke: refreshed engine answers {got:g} "
                    f"for ({u}, {v}), exact {true:g} — outside the "
                    f"certified bound {err_budget:g}"
                )
            if got != old_answers[(u, v)]:
                swapped += 1
        if swapped == 0:
            raise BenchmarkError(
                "update smoke: no probed answer changed across the "
                "update — the batch was a no-op for the probe set"
            )

        # in-flight corruption drill: damage a pending file after it is
        # written but before the manifest swap; the update must abort
        # with the live generation intact and no orphans left behind
        drill = parse_edge_updates(DRILL_UPDATE_BATCH)
        drill_gen = updated.generation + 1

        def damage_pending(old_store, new_manifest):
            suffix = f".g{drill_gen:04d}.bin"
            for entry in new_manifest["shards"]:
                if entry["file"].endswith(suffix):
                    path = old_store.path / entry["file"]
                    raw = bytearray(path.read_bytes())
                    raw[0] ^= 0xFF
                    path.write_bytes(bytes(raw))
                    return
            raise BenchmarkError(
                "update smoke: drill batch produced no pending shard "
                "files to damage"
            )

        try:
            apply_edge_updates(
                updated, new_graph, drill, pre_swap_hook=damage_pending
            )
        except StoreCorruptionError:
            pass
        else:
            raise BenchmarkError(
                "update smoke: in-flight corruption went undetected — "
                "the damaged pending file was published"
            )
        survivor = DistStore.open(updated.path)
        if survivor.generation != 1:
            raise BenchmarkError(
                "update smoke: aborted update left generation "
                f"{survivor.generation} on disk, expected 1"
            )
        survivor.verify()
        if _store_fingerprint(survivor) != updated_fp:
            raise BenchmarkError(
                "update smoke: aborted update changed the live "
                "store's bytes"
            )
        drill_suffix = f".g{drill_gen:04d}.bin"
        orphans = [
            p.name
            for p in survivor.path.iterdir()
            if p.name.endswith(drill_suffix)
        ]
        if orphans:
            raise BenchmarkError(
                f"update smoke: aborted update left orphans {orphans}"
            )

        update: Dict[str, float] = {
            "update.generation": float(result.generation),
            "update.num_updates": float(result.num_updates),
            "update.endpoints": float(len(result.endpoints)),
            "update.candidate_shards": float(len(result.candidate_shards)),
            "update.dirty_shards": float(len(result.dirty_shards)),
            "update.certified_clean_shards": float(
                result.certified_clean_shards
            ),
            "update.landmarks_rebuilt": float(result.landmarks_rebuilt),
            "update.rows_resolved": float(result.rows_resolved),
            "update.landmark_rows_resolved": float(
                result.landmark_rows_resolved
            ),
            "update.cost_rows": float(result.cost_rows),
            "update.rebuild_rows": float(result.rebuild_rows),
            "update.cost_ratio": result.cost_ratio,
            "update.fingerprint": float(updated_fp),
            "update.rebuild_fingerprint": float(rebuild_fp),
            "update.pre_update_fingerprint": float(old_fingerprint),
            "update.store_bytes": float(updated.store_bytes()),
            "update.observed_max_abs_error": observed,
            "update.probe_answers_changed": float(swapped),
            "update.drill_aborted": 1.0,
        }
        artifact = build_artifact(
            "update-smoke",
            params={
                "workload_rev": WORKLOAD_REV,
                "graph": graph.name,
                "n": int(n),
                "m": int(graph.num_edges),
                "rmat_scale": scale,
                "rmat_edge_factor": edge_factor,
                "rmat_seed": seed,
                "weight_seed": UPDATE_WEIGHT_SEED,
                "shard_rows": shard_rows,
                "cache_shards": cache_shards,
                "codec": codec,
                "num_landmarks": DEFAULT_LANDMARKS,
                "update_batch": SMOKE_UPDATE_BATCH,
                "drill_batch": DRILL_UPDATE_BATCH,
                "cost_gate": UPDATE_COST_GATE,
            },
            timings={
                "wall.store_build": build_wall,
                "wall.update": update_wall,
                "wall.rebuild": rebuild_wall,
            },
            registry=registry,
            update=update,
        )
        return artifact, registry
    finally:
        if tmp is not None:
            tmp.cleanup()


def _answer_fingerprint(values: Sequence[float]) -> int:
    """crc32 over the answers' f8 bytes — one number that changes if
    any routed answer diverges from the single-node store."""
    arr = np.asarray(list(values), dtype=np.float64)
    return zlib.crc32(arr.tobytes()) & 0xFFFFFFFF


def run_dist_smoke(
    *,
    scale: int = DEFAULT_SCALE,
    edge_factor: int = DEFAULT_EDGE_FACTOR,
    seed: int = DEFAULT_SEED,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    cache_shards: int = DEFAULT_CACHE_SHARDS,
    codec: str = "raw",
    store_dir: Optional[str] = None,
) -> Tuple[Dict[str, object], MetricsRegistry]:
    """Run the multi-node smoke; returns ``(artifact, registry)``.

    Asserts, with :class:`~repro.exceptions.BenchmarkError` on any
    failure:

    * **build exactness** — :func:`~repro.dist.solve_apsp_cluster` on
      :data:`~repro.dist.CLUSTER_FAST` is bitwise-identical to the
      single-machine solve, fault-free *and* under
      :data:`DIST_FAULT_PLAN` (a killed rank whose shards re-solve on
      the survivors, plus a straggler), with the faulted makespan
      strictly above the fault-free one;
    * **routing exactness** — a :class:`~repro.serve.router.RoutedEngine`
      answers the pinned probe set byte-identically to a single-node
      :class:`~repro.serve.engine.QueryEngine`, and keeps doing so
      after the hot shard's primary node is failed (replication covers
      it; the failover counter must move);
    * **rebalancing pays** — the hot-shard-skewed :data:`DIST_TRAFFIC`
      replayed through the router sees a strictly lower p99 after
      :meth:`~repro.serve.router.ShardRouter.rebalance` moves hot
      shards to cold nodes (at least one move must happen);
    * **loss is survivable** — the same trace with the hot node dying
      mid-replay records exactly one node loss, a nonzero failover
      count, and still answers every request.
    """
    graph = rmat(
        scale,
        edge_factor=edge_factor,
        seed=seed,
        name=f"rmat-s{scale}-ef{edge_factor}",
    )
    n = graph.num_vertices
    tmp = None
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-dist-smoke-")
        store_dir = tmp.name + "/store"
    try:
        registry = MetricsRegistry()
        from ..core import solve_apsp

        ref = solve_apsp(graph, use_flags=False).dist

        # 1. simulated cluster build: exact fault-free and faulted
        t0 = time.perf_counter()
        with use_registry(registry):
            build = solve_apsp_cluster(
                graph, CLUSTER_FAST, shard_rows=shard_rows
            )
        cluster_wall = time.perf_counter() - t0
        if not np.array_equal(build.dist, ref):
            raise BenchmarkError(
                "dist smoke: cluster build is not bitwise-identical to "
                "the single-machine solve"
            )
        with use_registry(registry):
            faulted = solve_apsp_cluster(
                graph,
                CLUSTER_FAST,
                shard_rows=shard_rows,
                fault_plan=DIST_FAULT_PLAN,
            )
        if not np.array_equal(faulted.dist, ref):
            raise BenchmarkError(
                "dist smoke: faulted cluster build diverged from the "
                "fault-free distances — recovery is not exact"
            )
        if not faulted.lost_ranks or not faulted.recovered_by:
            raise BenchmarkError(
                "dist smoke: the pinned fault plan killed no rank "
                f"(lost={faulted.lost_ranks}, "
                f"recovered={len(faulted.recovered_by)})"
            )
        if faulted.makespan <= build.makespan:
            raise BenchmarkError(
                "dist smoke: the faulted build was not slower than the "
                f"fault-free one ({faulted.makespan:g} vs "
                f"{build.makespan:g}) — recovery cost vanished"
            )

        # 2. the serving store + routed-vs-single exactness
        t0 = time.perf_counter()
        with use_registry(registry):
            store = solve_to_store(
                graph,
                store_dir,
                shard_rows=shard_rows,
                num_landmarks=DEFAULT_LANDMARKS,
                codec=codec,
            )
        store_wall = time.perf_counter() - t0
        router = ShardRouter(
            DIST_NODES,
            replication=DIST_REPLICATION,
            vnodes=DIST_VNODES,
            hash_seed=DIST_HASH_SEED,
        )
        routed = RoutedEngine(
            store,
            router,
            cache_shards=cache_shards,
            node_budget=DIST_NODE_BUDGET,
        )
        single = QueryEngine(store, cache_shards=cache_shards)
        rng = np.random.default_rng(DIST_PROBE_SEED)
        pairs = [
            (int(u), int(v))
            for u, v in rng.integers(0, n, size=(DIST_PROBE_PAIRS, 2))
        ]
        answers = []
        for u, v in pairs:
            got = float(routed.dist(u, v))
            want = float(single.dist(u, v))
            if got != want:
                raise BenchmarkError(
                    f"dist smoke: routed answer for ({u}, {v}) is "
                    f"{got!r}, single-node store says {want!r}"
                )
            answers.append(got)
        if not np.array_equal(
            routed.dist_batch(pairs), single.dist_batch(pairs)
        ):
            raise BenchmarkError(
                "dist smoke: routed dist_batch diverged from the "
                "single-node engine"
            )
        fingerprint = _answer_fingerprint(answers)

        # per-shard request loads of the pinned trace (what a serving
        # tier's per-shard counters would show) drive both the loss
        # drill's target and the rebalance
        trace = generate_trace(DIST_TRAFFIC, n)
        loads: Dict[int, float] = {s: 0.0 for s in range(store.num_shards)}
        for req in trace:
            loads[store.shard_of(req.u)] += 1.0
        hot_shard = max(loads, key=lambda s: (loads[s], -s))
        hot_node, _ = router.route(hot_shard)

        # kill the hot shard's primary; replication must keep every
        # answer byte-identical, via failovers
        routed.fail_node(hot_node)
        failover_answers = []
        for u, v in pairs:
            got = float(routed.dist(u, v))
            want = float(single.dist(u, v))
            if got != want:
                raise BenchmarkError(
                    f"dist smoke: answer for ({u}, {v}) changed after "
                    f"node {hot_node} failed ({got!r} vs {want!r})"
                )
            failover_answers.append(got)
        drill_failovers = int(routed.stats["failovers"])
        if drill_failovers == 0:
            raise BenchmarkError(
                "dist smoke: failing the hot node produced no "
                "failovers — the probe never touched it?"
            )
        if _answer_fingerprint(failover_answers) != fingerprint:
            raise BenchmarkError(
                "dist smoke: the answer fingerprint changed across a "
                "node failure"
            )
        routed.restore_node(hot_node)

        # 3. skewed replay vs rebalanced replay: the p99 gate
        sizes = [store.shard_nbytes(i) for i in range(store.num_shards)]
        policy = AdmissionPolicy()
        cost = ServeCostModel()

        def routed_replay(rtr, node_down=()):
            return replay_virtual(
                trace, n=n, shard_rows=shard_rows, policy=policy,
                cost=cost, cache_shards=DIST_CACHE_SHARDS, optimized=True,
                shard_nbytes=sizes, router=rtr,
                node_budget=DIST_NODE_BUDGET,
                servers_per_node=DIST_SERVERS_PER_NODE,
                node_down=node_down,
            )

        skew_router = ShardRouter(
            DIST_NODES,
            replication=DIST_REPLICATION,
            vnodes=DIST_VNODES,
            hash_seed=DIST_HASH_SEED,
        )
        skewed = routed_replay(skew_router)
        if skewed.counters["failovers"] != 0:
            raise BenchmarkError(
                "dist smoke: the healthy skewed replay recorded "
                f"{skewed.counters['failovers']} failovers"
            )
        re_router = ShardRouter.from_dict(skew_router.to_dict())
        moves = re_router.rebalance(loads, max_moves=DIST_MAX_MOVES)
        if not moves:
            raise BenchmarkError(
                "dist smoke: rebalance made no moves on the skewed "
                "load profile"
            )
        rebalanced = routed_replay(re_router)
        p99_skew = skewed.percentile_latency(99)
        p99_re = rebalanced.percentile_latency(99)
        if p99_re >= p99_skew:
            raise BenchmarkError(
                f"dist smoke: rebalancing did not improve the hot-shard "
                f"p99 ({p99_re:g}s vs skewed {p99_skew:g}s)"
            )

        # 4. node-loss drill: hot node dies mid-trace, traffic fails
        # over to replicas, every request still gets an outcome
        loss_router = ShardRouter(
            DIST_NODES,
            replication=DIST_REPLICATION,
            vnodes=DIST_VNODES,
            hash_seed=DIST_HASH_SEED,
        )
        mid = trace[len(trace) // 2].arrival
        loss = routed_replay(loss_router, node_down=((mid, hot_node),))
        if loss.counters["node_losses"] != 1:
            raise BenchmarkError(
                "dist smoke: the loss drill recorded "
                f"{loss.counters['node_losses']} node losses, expected 1"
            )
        if loss.counters["failovers"] == 0:
            raise BenchmarkError(
                "dist smoke: no request failed over after the hot node "
                "died mid-replay"
            )
        outcomes = (
            loss.counters["admitted"] + loss.counters["degraded"]
            + loss.counters["shed"]
        )
        if outcomes != len(trace):
            raise BenchmarkError(
                f"dist smoke: {len(trace)} requests in, {outcomes} "
                "outcomes out of the loss drill"
            )

        dist: Dict[str, float] = {
            "dist.build.makespan": build.makespan,
            "dist.build.network_bytes": float(build.network_bytes),
            "dist.build.total_work": build.total_work,
            "dist.build.num_shards": float(build.num_shards),
            "dist.fault.makespan": faulted.makespan,
            "dist.fault.network_bytes": float(faulted.network_bytes),
            "dist.fault.lost_ranks": float(len(faulted.lost_ranks)),
            "dist.fault.recovered_shards": float(len(faulted.recovered_by)),
            "dist.route.answer_fingerprint": float(fingerprint),
            "dist.route.drill_failovers": float(drill_failovers),
            "dist.store.fingerprint": float(_store_fingerprint(store)),
            "dist.skew.p99_ms": p99_skew * 1e3,
            "dist.skew.mean_ms": skewed.mean_latency() * 1e3,
            "dist.skew.shard_loads": float(skewed.counters["shard_loads"]),
            "dist.skew.node_saturated": float(
                skewed.counters["node_saturated"]
            ),
            "dist.rebalanced.moves": float(len(moves)),
            "dist.rebalanced.p99_ms": p99_re * 1e3,
            "dist.rebalanced.mean_ms": rebalanced.mean_latency() * 1e3,
            "dist.rebalanced.shard_loads": float(
                rebalanced.counters["shard_loads"]
            ),
            "dist.loss.p99_ms": loss.percentile_latency(99) * 1e3,
            "dist.loss.failovers": float(loss.counters["failovers"]),
            "dist.loss.node_losses": float(loss.counters["node_losses"]),
            "dist.loss.shard_loads": float(loss.counters["shard_loads"]),
        }
        artifact = build_artifact(
            "dist-smoke",
            params={
                "workload_rev": WORKLOAD_REV,
                "graph": graph.name,
                "n": int(n),
                "m": int(graph.num_edges),
                "rmat_scale": scale,
                "rmat_edge_factor": edge_factor,
                "rmat_seed": seed,
                "shard_rows": shard_rows,
                "cache_shards": cache_shards,
                "codec": codec,
                "num_landmarks": DEFAULT_LANDMARKS,
                "cluster": CLUSTER_FAST.name,
                "cluster_nodes": CLUSTER_FAST.num_nodes,
                "threads_per_node": CLUSTER_FAST.threads_per_node,
                "num_nodes": DIST_NODES,
                "replication": DIST_REPLICATION,
                "vnodes": DIST_VNODES,
                "hash_seed": DIST_HASH_SEED,
                "node_budget": DIST_NODE_BUDGET,
                "servers_per_node": DIST_SERVERS_PER_NODE,
                "max_moves": DIST_MAX_MOVES,
                "replay_cache_shards": DIST_CACHE_SHARDS,
                "traffic_requests": DIST_TRAFFIC.num_requests,
                "traffic_rate": DIST_TRAFFIC.rate,
                "traffic_zipf_s": DIST_TRAFFIC.zipf_s,
                "traffic_seed": DIST_TRAFFIC.seed,
                "traffic_hot_frac": DIST_TRAFFIC.hot_frac,
                "traffic_hot_width": DIST_TRAFFIC.hot_width,
            },
            timings={
                "wall.cluster_build": cluster_wall,
                "wall.store_build": store_wall,
            },
            registry=registry,
            dist=dist,
        )
        return artifact, registry
    finally:
        if tmp is not None:
            tmp.cleanup()


#: curve artifact schema (uploaded by CI, never gated)
CURVE_SCHEMA_VERSION = "repro.serve.curve/1"


def run_codec_curve(**kwargs) -> Dict[str, object]:
    """Sweep every codec through the smoke; the accuracy-vs-latency curve.

    Each point is one full :func:`run_serve_smoke` (so every per-codec
    invariant is asserted), reduced to the fields that make the
    tradeoff legible: store bytes, bytes loaded per replay, p50/p99,
    certified vs observed error.
    """
    points = []
    for codec in codec_names():
        artifact, _ = run_serve_smoke(codec=codec, **kwargs)
        serve = artifact["serve"]
        points.append(
            {
                "codec": codec,
                "store_bytes": serve["serve.store.store_bytes"],
                "compression_ratio": serve["serve.store.compression_ratio"],
                "bytes_loaded": serve["serve.opt.bytes_loaded"],
                "certified_max_abs_error":
                    serve["serve.error.certified_max_abs_error"],
                "observed_max_abs_error":
                    serve["serve.error.observed_max_abs_error"],
                "mean_ms": serve["serve.opt.mean_ms"],
                "p50_ms": serve["serve.opt.p50_ms"],
                "p99_ms": serve["serve.opt.p99_ms"],
                "raw_speedup": serve["serve.opt.raw_speedup"],
                "alt_mean_ms": serve["serve.alt.mean_ms"],
                "alt_shard_loads": serve["serve.alt.shard_loads"],
            }
        )
    return {
        "schema": CURVE_SCHEMA_VERSION,
        "name": "serve-codec-curve",
        "points": points,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.bench",
        description="run the deterministic query-serving bench and "
        "write its BENCH artifact",
    )
    parser.add_argument(
        "--out", default="BENCH_serve.json", help="artifact path to write"
    )
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument(
        "--edge-factor", type=int, default=DEFAULT_EDGE_FACTOR
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--shard-rows", type=int, default=None,
        help=f"rows per shard (default {DEFAULT_SHARD_ROWS})",
    )
    parser.add_argument(
        "--cache-shards", type=int, default=None,
        help=f"LRU capacity in shards (default {DEFAULT_CACHE_SHARDS})",
    )
    parser.add_argument(
        "--codec", choices=codec_names(), default=None,
        help="shard codec to build and replay with (default raw)",
    )
    parser.add_argument(
        "--epsilon", type=float, default=None,
        help="ALT short-circuit gap (0 = exact-gap only; "
        f"default {DEFAULT_EPSILON})",
    )
    parser.add_argument(
        "--config", metavar="PATH", default=None,
        help="serialized repro.config.ServeConfig; its store/engine "
        "fields become the bench defaults (explicit flags still win)",
    )
    parser.add_argument(
        "--save-config", metavar="PATH", default=None,
        help="write the effective ServeConfig of this bench as JSON",
    )
    parser.add_argument(
        "--curve", metavar="PATH", default=None,
        help="sweep every codec and write the accuracy-vs-latency "
        "curve JSON here instead of a single artifact",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="run the incremental-update smoke (pinned edge-update "
        "batch, byte-identity and cost gates) instead of the serving "
        "replay; write its artifact to --out",
    )
    parser.add_argument(
        "--dist", action="store_true",
        help="run the multi-node smoke (cluster build exactness, "
        "routed serving vs single store, hot-shard rebalance and "
        "node-loss drills) instead of the serving replay; write its "
        "artifact to --out",
    )
    parser.add_argument(
        "--events", metavar="PATH", default=None,
        help="write the optimised replay's telemetry event log "
        "(deterministic JSONL, repro.serve.telemetry/1) here",
    )
    parser.add_argument(
        "--events-sample", type=float, default=1.0, metavar="FRAC",
        help="per-trace sampling fraction for --events (default 1.0; "
        "deterministic — the same traces are kept on every run)",
    )
    parser.add_argument(
        "--request-trace", metavar="PATH", default=None,
        help="export the slowest request (the latency histogram's top "
        "exemplar) as a Chrome/Perfetto trace JSON here",
    )
    args = parser.parse_args(argv)
    cfg = None
    if args.config is not None:
        from ..config import load_serve_config

        cfg = load_serve_config(args.config)
    # explicit flags win over a --config file, which wins over the
    # bench's pinned defaults (same contract as repro-apsp solve)
    shard_rows = args.shard_rows if args.shard_rows is not None else (
        cfg.store.shard_rows if cfg is not None else DEFAULT_SHARD_ROWS
    )
    cache_shards = (
        args.cache_shards if args.cache_shards is not None
        else cfg.engine.cache_shards if cfg is not None
        else DEFAULT_CACHE_SHARDS
    )
    codec = args.codec if args.codec is not None else (
        cfg.store.codec if cfg is not None else "raw"
    )
    epsilon = args.epsilon if args.epsilon is not None else (
        cfg.store.epsilon
        if cfg is not None and cfg.store.epsilon is not None
        else DEFAULT_EPSILON
    )
    if args.save_config is not None:
        from ..config import ServeConfig

        base = cfg if cfg is not None else ServeConfig()
        effective = base.with_overrides(
            shard_rows=shard_rows, cache_shards=cache_shards,
            codec=codec, epsilon=epsilon,
        )
        with open(args.save_config, "w", encoding="utf-8") as fh:
            fh.write(effective.to_json(indent=2) + "\n")
        print(f"config saved: {args.save_config}")
    common = dict(
        scale=args.scale,
        edge_factor=args.edge_factor,
        seed=args.seed,
        shard_rows=shard_rows,
        cache_shards=cache_shards,
        epsilon=epsilon,
    )
    if args.update:
        artifact, _ = run_update_smoke(
            scale=args.scale,
            edge_factor=args.edge_factor,
            seed=args.seed,
            shard_rows=shard_rows,
            cache_shards=cache_shards,
            codec=codec,
        )
        path = write_artifact(args.out, artifact)
        upd = artifact["update"]
        print(f"wrote {path}")
        print(
            "  batch={!r}: dirty={:d}/{:d} shards (certified clean "
            "{:d}), rows={:d}+{:d}lm, gen={:d}".format(
                artifact["params"]["update_batch"],
                int(upd["update.dirty_shards"]),
                int(upd["update.candidate_shards"])
                + int(upd["update.certified_clean_shards"]),
                int(upd["update.certified_clean_shards"]),
                int(upd["update.rows_resolved"]),
                int(upd["update.landmark_rows_resolved"]),
                int(upd["update.generation"]),
            )
        )
        print(
            "  cost: {:d} row-units vs rebuild {:d} "
            "(ratio {:.3f} < gate {:g})  bytes identical to rebuild "
            "(fingerprint {:#010x})".format(
                int(upd["update.cost_rows"]),
                int(upd["update.rebuild_rows"]),
                upd["update.cost_ratio"],
                artifact["params"]["cost_gate"],
                int(upd["update.fingerprint"]),
            )
        )
        print("  in-flight corruption drill: aborted cleanly, old "
              "generation intact")
        return 0
    if args.dist:
        artifact, _ = run_dist_smoke(
            scale=args.scale,
            edge_factor=args.edge_factor,
            seed=args.seed,
            shard_rows=shard_rows,
            cache_shards=cache_shards,
            codec=codec,
        )
        path = write_artifact(args.out, artifact)
        dist = artifact["dist"]
        print(f"wrote {path}")
        print(
            "  build[{}]: makespan={:.0f} (faulted {:.0f}, "
            "{:d} rank(s) lost, {:d} shard(s) recovered)  "
            "network={:d}B".format(
                artifact["params"]["cluster"],
                dist["dist.build.makespan"],
                dist["dist.fault.makespan"],
                int(dist["dist.fault.lost_ranks"]),
                int(dist["dist.fault.recovered_shards"]),
                int(dist["dist.build.network_bytes"]),
            )
        )
        print(
            "  routing[{:d} nodes, rf={:d}]: answers exact "
            "(fingerprint {:#010x}), {:d} failovers with the hot "
            "node down".format(
                artifact["params"]["num_nodes"],
                artifact["params"]["replication"],
                int(dist["dist.route.answer_fingerprint"]),
                int(dist["dist.route.drill_failovers"]),
            )
        )
        print(
            "  hot-shard p99: skewed={:.3f}ms -> rebalanced={:.3f}ms "
            "({:d} move(s))  loss drill: {:d} failovers, "
            "p99={:.3f}ms".format(
                dist["dist.skew.p99_ms"],
                dist["dist.rebalanced.p99_ms"],
                int(dist["dist.rebalanced.moves"]),
                int(dist["dist.loss.failovers"]),
                dist["dist.loss.p99_ms"],
            )
        )
        return 0
    if args.curve is not None:
        curve = run_codec_curve(**common)
        with open(args.curve, "w", encoding="utf-8") as fh:
            json.dump(curve, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.curve}")
        print(
            "  {:<6} {:>12} {:>8} {:>14} {:>10} {:>10}".format(
                "codec", "store_bytes", "ratio", "certified_err",
                "mean_ms", "p99_ms",
            )
        )
        for pt in curve["points"]:
            print(
                "  {:<6} {:>12.0f} {:>7.1f}x {:>14.3g} {:>10.4f} "
                "{:>10.4f}".format(
                    pt["codec"], pt["store_bytes"],
                    pt["compression_ratio"],
                    pt["certified_max_abs_error"], pt["mean_ms"],
                    pt["p99_ms"],
                )
            )
        return 0
    artifact, _ = run_serve_smoke(
        codec=codec,
        events_out=args.events,
        events_sample=args.events_sample,
        request_trace_out=args.request_trace,
        **common,
    )
    path = write_artifact(args.out, artifact)
    serve = artifact["serve"]
    print(f"wrote {path}")
    print(
        "  loads: naive={:d} opt={:d} alt={:d}  hit_rate={:.2f}  "
        "mean: naive={:.3f}ms opt={:.3f}ms ({:.1f}x)".format(
            int(serve["serve.naive.shard_loads"]),
            int(serve["serve.opt.shard_loads"]),
            int(serve["serve.alt.shard_loads"]),
            serve["serve.opt.hit_rate"],
            serve["serve.naive.mean_ms"],
            serve["serve.opt.mean_ms"],
            serve["serve.opt.mean_speedup"],
        )
    )
    print(
        "  codec={}: store={:d}B ({:.1f}x vs raw)  err<={:g}  "
        "raw_speedup={:.2f}x  short_circuits={:d}".format(
            artifact["params"]["codec"],
            int(serve["serve.store.store_bytes"]),
            serve["serve.store.compression_ratio"],
            serve["serve.error.certified_max_abs_error"],
            serve["serve.opt.raw_speedup"],
            int(serve["serve.alt.short_circuits"]),
        )
    )
    print(
        "  saturation: degraded={:d} shed={:d} admitted={:d}  "
        "p99={:.3f}ms".format(
            int(serve["serve.sat.degraded"]),
            int(serve["serve.sat.shed"]),
            int(serve["serve.sat.admitted"]),
            serve["serve.opt.p99_ms"],
        )
    )
    slo = artifact["serve_slo"]
    print(
        "  slo[point<= {:g}ms @ {:.0%}]: burn={:.2f} worst-window={:.2f} "
        "({:d}/{:d} violations)".format(
            slo["serve.slo.point.threshold_ms"],
            slo["serve.slo.point.objective"],
            slo["serve.slo.point.burn_rate"],
            slo["serve.slo.point.worst_window_burn_rate"],
            int(slo["serve.slo.point.violations"]),
            int(slo["serve.slo.point.total"]),
        )
    )
    if args.events:
        print(f"  events: {args.events}")
    if args.request_trace:
        print(f"  request trace: {args.request_trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
