"""Admission control: bounded queues, backpressure, graceful degradation.

The front end enforces the ROADMAP's "heavy traffic" stance: a serving
process must never build an unbounded backlog.  Every request belongs
to a **class** (``point``, ``row``, ``topk``); each class has a bounded
in-flight budget.  When a class is saturated:

* ``point`` queries **degrade** — they are answered immediately from
  the pinned landmark rows (certified ALT bounds, no shard I/O): the
  response carries the error bar ``lo <= d(u,v) <= hi``, serves ``hi``
  as the value, and is flagged ``approx=True`` / ``status="degraded"``;
* ``row`` and ``topk`` queries (which are orders of magnitude heavier)
  are **shed** with ``status="shed"`` so the caller can retry — they
  have no cheap approximation.

All outcomes are counted (``serve.admission.{admitted,degraded,shed}``)
so the traffic bench can report the saturation point as data rather
than as a stuck process.

With a :class:`~repro.serve.telemetry.TelemetryCollector` attached, the
front end is also where each request's **trace id** is minted
(:func:`~repro.serve.telemetry.make_trace_id` over a monotone sequence
number): every handler runs inside a
:func:`~repro.serve.telemetry.request_scope`, so the engine's and
store's scope-aware emits land under the right request, and the front
end itself emits the admission verdict and the final answer (with its
certified error bar when degraded).
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional

from ..exceptions import ServeError
from ..obs import metrics as _obs
from .engine import QueryEngine
from .telemetry import (
    RequestContext,
    TelemetryCollector,
    make_trace_id,
    request_scope,
)

__all__ = ["QUERY_CLASSES", "AdmissionPolicy", "QueryResponse",
           "ServeFrontend"]

QUERY_CLASSES = ("point", "row", "topk")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-class in-flight budgets (requests, not bytes)."""

    max_point: int = 64
    max_row: int = 4
    max_topk: int = 8

    def __post_init__(self) -> None:
        for name in ("max_point", "max_row", "max_topk"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ServeError(
                    f"{name} must be an int >= 1, got {value!r}"
                )

    def limit(self, klass: str) -> int:
        return {"point": self.max_point, "row": self.max_row,
                "topk": self.max_topk}[klass]


@dataclass(frozen=True)
class QueryResponse:
    """One answered (or refused) request.

    ``status`` is ``"ok"`` (exact up to the store codec's certified
    error), ``"degraded"`` (ALT landmark bounds, only ever for
    ``point``) or ``"shed"`` (refused under saturation, ``value is
    None``).  ``approx`` is True exactly for degraded responses, so a
    caller can trust ``approx=False`` answers bit-for-bit; degraded
    responses carry the certified error bar ``lo <= d(u,v) <= hi``
    (``value`` is ``hi``, the safe upper bound) instead of a bare flag.
    """

    klass: str
    value: Any
    status: str = "ok"
    approx: bool = field(default=False)
    #: certified lower/upper bounds; set only on degraded responses
    lo: Optional[float] = None
    hi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.status not in ("ok", "degraded", "shed"):
            raise ServeError(f"unknown response status {self.status!r}")


class ServeFrontend:
    """Thread-safe admission wrapper around a :class:`QueryEngine`."""

    def __init__(
        self,
        engine: QueryEngine,
        *,
        policy: Optional[AdmissionPolicy] = None,
        telemetry: Optional[TelemetryCollector] = None,
        serve_config=None,
    ) -> None:
        if serve_config is not None:
            # unified ServeConfig path: admission budgets come from the
            # config's admission group; an explicit policy= overrides
            # it (DeprecationWarning on a genuine conflict)
            from ..config import resolve_serve_config

            overrides = {}
            if policy is not None:
                overrides = {
                    "max_point": policy.max_point,
                    "max_row": policy.max_row,
                    "max_topk": policy.max_topk,
                }
            cfg = resolve_serve_config(
                serve_config, caller="ServeFrontend", overrides=overrides
            )
            policy = cfg.admission.to_policy()
        self.engine = engine
        self.policy = policy or AdmissionPolicy()
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._seq = 0
        self._inflight: Dict[str, int] = {k: 0 for k in QUERY_CLASSES}
        self.counts: Dict[str, int] = {
            "admitted": 0, "degraded": 0, "shed": 0,
        }

    def inflight(self) -> Mapping[str, int]:
        with self._lock:
            return dict(self._inflight)

    @contextlib.contextmanager
    def _request(self, klass: str, u: int, v: int = -1,
                 k: int = -1) -> Iterator[Optional[RequestContext]]:
        """Mint a trace id and open the request scope (no-op if off)."""
        if self.telemetry is None:
            yield None
            return
        with self._lock:
            seq = self._seq
            self._seq += 1
        ctx = RequestContext(
            trace_id=make_trace_id(seq, klass, u, v),
            klass=klass, u=u, v=v, k=k,
        )
        self.telemetry.emit(
            ctx.trace_id, "request", time.perf_counter(),
            klass=klass, u=u, v=v, k=k,
        )
        with request_scope(self.telemetry, ctx):
            yield ctx

    def _note(self, ctx: Optional[RequestContext], kind: str,
              dur: float = 0.0, **attrs: Any) -> None:
        if ctx is not None and self.telemetry is not None:
            self.telemetry.emit(
                ctx.trace_id, kind, time.perf_counter(), dur, **attrs
            )

    def _admit(self, klass: str) -> bool:
        with self._lock:
            if self._inflight[klass] >= self.policy.limit(klass):
                return False
            self._inflight[klass] += 1
            self.counts["admitted"] += 1
        _obs.counter_add("serve.admission.admitted", 1)
        return True

    def _release(self, klass: str) -> None:
        with self._lock:
            self._inflight[klass] -= 1

    def point(self, u: int, v: int) -> QueryResponse:
        with self._request("point", u, v) as ctx:
            t0 = time.perf_counter()
            if not self._admit("point"):
                with self._lock:
                    self.counts["degraded"] += 1
                _obs.counter_add("serve.admission.degraded", 1)
                self._note(ctx, "degrade")
                lo, hi = self.engine.dist_approx(u, v)
                self._note(ctx, "answer", time.perf_counter() - t0,
                           status="degraded", klass="point", lo=lo, hi=hi)
                return QueryResponse(
                    klass="point",
                    value=hi,
                    status="degraded",
                    approx=True,
                    lo=lo,
                    hi=hi,
                )
            self._note(ctx, "admit")
            try:
                value = self.engine.dist(u, v)
                self._note(ctx, "answer", time.perf_counter() - t0,
                           status="ok", klass="point")
                return QueryResponse(klass="point", value=value)
            finally:
                self._release("point")

    def row(self, u: int) -> QueryResponse:
        with self._request("row", u) as ctx:
            t0 = time.perf_counter()
            if not self._admit("row"):
                with self._lock:
                    self.counts["shed"] += 1
                _obs.counter_add("serve.admission.shed", 1)
                self._note(ctx, "shed")
                return QueryResponse(klass="row", value=None, status="shed")
            self._note(ctx, "admit")
            try:
                value = self.engine.dist_from(u)
                self._note(ctx, "answer", time.perf_counter() - t0,
                           status="ok", klass="row")
                return QueryResponse(klass="row", value=value)
            finally:
                self._release("row")

    def topk(self, u: int, k: int) -> QueryResponse:
        with self._request("topk", u, k=k) as ctx:
            t0 = time.perf_counter()
            if not self._admit("topk"):
                with self._lock:
                    self.counts["shed"] += 1
                _obs.counter_add("serve.admission.shed", 1)
                self._note(ctx, "shed")
                return QueryResponse(klass="topk", value=None, status="shed")
            self._note(ctx, "admit")
            try:
                value = self.engine.top_k(u, k)
                self._note(ctx, "answer", time.perf_counter() - t0,
                           status="ok", klass="topk")
                return QueryResponse(klass="topk", value=value)
            finally:
                self._release("topk")
