"""Sharded on-disk distance store (``repro.serve.store/2``).

The APSP result for a production-sized graph does not fit in RAM (the
Spark APSP study measures sx-superuser at ≈160 GB), so the serving
layer never materialises n×n.  A :class:`DistStore` is a directory:

.. code-block:: text

    store/
      manifest.json     schema, shapes, codec, per-shard checksums,
                        per-shard error bounds, config
      shard_00000.bin   rows [0, shard_rows)       codec-encoded
      shard_00001.bin   rows [shard_rows, 2·shard_rows)
      ...
      landmarks.bin     pinned landmark rows (always raw f8 — the ALT
                        bounds in repro.serve.engine must stay exact)

built shard-by-shard from :func:`repro.core.runner.solve_apsp_shards`,
so peak resident memory during the build is O(shard_rows × n) — one
buffer — never O(n²).

Shard bytes go through a pluggable **codec**
(:mod:`repro.serve.codecs`): ``raw`` f8 (byte-identical to schema
``/1`` stores, which still open), ``f4``, ``u16q`` affine quantization
with a certified max-abs-error recorded per shard and store-wide in the
manifest, and ``u16qd`` (delta along the degree ordering + zlib).
Checksums are computed over the **encoded** bytes, so corruption
detection and :meth:`DistStore.repair` work identically for every
codec.

Stores are **byte-deterministic**: the build forces ``use_flags=False``
(every source an independent Dijkstra), which makes shard bytes
independent of ``shard_rows``, and codec encoding is deterministic by
contract — so a repaired shard must reproduce the manifest checksum or
the repair itself fails loudly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List

import numpy as np

from ..exceptions import ConfigError, StoreCorruptionError, StoreError
from ..obs import metrics as _obs
from . import telemetry as _tel
from .codecs import get_codec

__all__ = ["STORE_SCHEMA_VERSION", "DistStore", "solve_to_store"]

STORE_SCHEMA_VERSION = "repro.serve.store/2"
#: previous schema — raw f8, no codec/error fields; still readable
_STORE_SCHEMA_V1 = "repro.serve.store/1"

_MANIFEST = "manifest.json"
_LANDMARKS = "landmarks.bin"
_DTYPE = np.dtype("<f8")


def _crc32(data) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _shard_file(index: int) -> str:
    return f"shard_{index:05d}.bin"


class DistStore:
    """Read access to a sharded distance store directory.

    Open with :meth:`DistStore.open`; build with :func:`solve_to_store`.
    All loads go through :meth:`load_shard`, which checksums the
    encoded bytes it read (unless told not to) and decodes them through
    the manifest's codec, so serving never silently returns rotten
    distances.
    """

    def __init__(self, path: "str | os.PathLike", manifest: Dict[str, Any]):
        self.path = Path(path)
        self.manifest = manifest
        self.n: int = manifest["n"]
        self.shard_rows: int = manifest["shard_rows"]
        self.num_shards: int = manifest["num_shards"]
        self.landmark_ids: List[int] = list(manifest["landmarks"]["ids"])
        # schema /1 manifests predate codecs: raw f8, zero error
        self.codec_name: str = manifest.get("codec", "raw")
        self.codec = get_codec(
            self.codec_name, **manifest.get("codec_params", {})
        )
        self.max_abs_error: float = float(manifest.get("max_abs_error", 0.0))
        #: store-recommended short-circuit gap for the query engine
        #: (``None`` = disabled); see StoreConfig.epsilon
        self.epsilon = manifest.get("epsilon")

    @property
    def generation(self) -> int:
        """Monotonic update counter; 0 for a fresh build (and for any
        store written before generations existed)."""
        return int(self.manifest.get("generation", 0))

    # -- open / validate ------------------------------------------------

    @classmethod
    def open(cls, path: "str | os.PathLike") -> "DistStore":
        path = Path(path)
        manifest_path = path / _MANIFEST
        if not manifest_path.is_file():
            raise StoreError(f"no store manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreError(f"unreadable store manifest: {exc}") from exc
        schema = manifest.get("schema")
        if schema not in (STORE_SCHEMA_VERSION, _STORE_SCHEMA_V1):
            raise StoreError(
                f"store schema mismatch: found {schema!r}, this build "
                f"reads {STORE_SCHEMA_VERSION!r} (and legacy "
                f"{_STORE_SCHEMA_V1!r})"
            )
        for key in ("n", "shard_rows", "num_shards", "shards", "landmarks"):
            if key not in manifest:
                raise StoreError(f"store manifest missing {key!r}")
        if len(manifest["shards"]) != manifest["num_shards"]:
            raise StoreError(
                f"manifest lists {len(manifest['shards'])} shards but "
                f"declares num_shards={manifest['num_shards']}"
            )
        return cls(path, manifest)

    # -- geometry -------------------------------------------------------

    def shard_of(self, vertex: int) -> int:
        """Which shard holds ``dist_from(vertex)``."""
        if not 0 <= vertex < self.n:
            raise StoreError(
                f"vertex {vertex} out of range for store of n={self.n}"
            )
        return vertex // self.shard_rows

    def shard_span(self, index: int) -> "tuple[int, int]":
        """``(start_row, num_rows)`` of a shard."""
        if not 0 <= index < self.num_shards:
            raise StoreError(
                f"shard {index} out of range (store has {self.num_shards})"
            )
        entry = self.manifest["shards"][index]
        return entry["start"], entry["rows"]

    def shard_nbytes(self, index: int) -> int:
        """Encoded on-disk payload size of one shard."""
        _, rows = self.shard_span(index)
        entry = self.manifest["shards"][index]
        # /1 manifests carry no nbytes: raw f8 size is implied
        return entry.get("nbytes", rows * self.n * _DTYPE.itemsize)

    def store_bytes(self) -> int:
        """Total encoded shard payload bytes (landmarks excluded)."""
        return sum(
            self.shard_nbytes(index) for index in range(self.num_shards)
        )

    def shard_error(self, index: int) -> float:
        """Certified max abs error of one decoded shard."""
        entry = self.manifest["shards"][index]
        return float(entry.get("max_abs_error", 0.0))

    # -- loads ----------------------------------------------------------

    def load_shard(self, index: int, *, verify: bool = True) -> np.ndarray:
        """Read one shard into memory as a ``(rows, n)`` float64 array."""
        start, rows = self.shard_span(index)
        entry = self.manifest["shards"][index]
        fpath = self.path / entry["file"]
        expected = self.shard_nbytes(index)
        load_t0 = time.perf_counter()
        with _obs.span("serve.store.load"):
            try:
                raw = fpath.read_bytes()
            except OSError as exc:
                raise StoreError(
                    f"cannot read shard {index} ({fpath}): {exc}"
                ) from exc
            if len(raw) != expected:
                raise StoreCorruptionError(
                    f"shard {index} has {len(raw)} bytes, expected "
                    f"{expected}",
                    shards=(index,),
                )
            if verify and _crc32(raw) != entry["crc32"]:
                _obs.counter_add("serve.store.corruption_detected", 1)
                raise StoreCorruptionError(
                    f"shard {index} failed its checksum "
                    f"(rows [{start}, {start + rows}))",
                    shards=(index,),
                )
            try:
                arr = self.codec.decode(
                    raw, rows, self.n, entry.get("params", {})
                )
            except ValueError as exc:
                # an unverified load of damaged bytes can fail inside
                # the codec (e.g. deflate stream truncated) — that is
                # still corruption, not a programming error
                _obs.counter_add("serve.store.corruption_detected", 1)
                raise StoreCorruptionError(
                    f"shard {index} bytes do not decode as "
                    f"{self.codec_name!r}: {exc}",
                    shards=(index,),
                ) from exc
        _obs.counter_add("serve.store.shard_loads", 1)
        _tel.emit("shard_load", time.perf_counter() - load_t0,
                  shard=index, nbytes=expected, codec=self.codec_name)
        return arr

    def row(self, vertex: int, *, verify: bool = True) -> np.ndarray:
        """``dist_from(vertex)`` straight from disk (no cache)."""
        index = self.shard_of(vertex)
        start, _ = self.shard_span(index)
        return self.load_shard(index, verify=verify)[vertex - start]

    def landmark_rows(self, *, verify: bool = True) -> np.ndarray:
        """The pinned ``(L, n)`` landmark rows for degraded answers.

        Always raw f8 regardless of the shard codec: the ALT bounds
        built from these rows must be exact for the short-circuit
        guarantee to hold.
        """
        entry = self.manifest["landmarks"]
        L = len(entry["ids"])
        if L == 0:
            return np.empty((0, self.n), dtype=np.float64)
        fpath = self.path / entry["file"]
        raw = fpath.read_bytes()
        if len(raw) != L * self.n * _DTYPE.itemsize:
            raise StoreCorruptionError(
                f"landmark file has {len(raw)} bytes, expected "
                f"{L * self.n * _DTYPE.itemsize}",
                shards=("landmarks",),
            )
        if verify and _crc32(raw) != entry["crc32"]:
            _obs.counter_add("serve.store.corruption_detected", 1)
            raise StoreCorruptionError(
                "landmark rows failed their checksum", shards=("landmarks",)
            )
        return np.frombuffer(raw, dtype=_DTYPE).reshape(L, self.n).copy()

    # -- integrity ------------------------------------------------------

    def verify(self) -> None:
        """Checksum every shard and the landmark file.

        Raises :class:`StoreCorruptionError` carrying the full list of
        damaged shards (so a caller repairs them all in one pass) —
        returns ``None`` on a clean store.
        """
        bad: List[Any] = []
        for index, entry in enumerate(self.manifest["shards"]):
            fpath = self.path / entry["file"]
            try:
                raw = fpath.read_bytes()
            except OSError:
                bad.append(index)
                continue
            if len(raw) != self.shard_nbytes(index) \
                    or _crc32(raw) != entry["crc32"]:
                bad.append(index)
        lm = self.manifest["landmarks"]
        if lm["ids"]:
            fpath = self.path / lm["file"]
            try:
                raw = fpath.read_bytes()
            except OSError:
                raw = b""
            expected = len(lm["ids"]) * self.n * _DTYPE.itemsize
            # same length check load_shard/landmark_rows apply: a
            # truncated file must report corruption, not just a crc miss
            if len(raw) != expected or _crc32(raw) != lm["crc32"]:
                bad.append("landmarks")
        if bad:
            _obs.counter_add("serve.store.corruption_detected", len(bad))
            raise StoreCorruptionError(
                f"store verification failed for shards {bad}", shards=bad
            )

    def repair(self, graph) -> List[Any]:
        """Re-solve damaged shards from the graph; exact or loud.

        Because stores are byte-deterministic (built flags-off from the
        manifest's own config, then deterministically encoded), a
        correct repair must reproduce the original encoded checksum
        exactly; if it does not, the graph passed in is not the graph
        the store was built from and we raise rather than quietly
        install different distances.  Returns the list of shards
        repaired (empty for a clean store).
        """
        from ..config import SolverConfig
        from ..core.runner import solve_apsp_shards

        try:
            self.verify()
            return []
        except StoreCorruptionError as exc:
            bad = list(exc.shards)

        if graph.num_vertices != self.n:
            raise StoreError(
                f"repair graph has {graph.num_vertices} vertices, store "
                f"was built for n={self.n}"
            )
        cfg = SolverConfig.from_dict(self.manifest["config"])
        with _obs.span("serve.store.repair"):
            for index in [b for b in bad if b != "landmarks"]:
                start, rows = self.shard_span(index)
                entry = self.manifest["shards"][index]
                gen = solve_apsp_shards(
                    graph,
                    shard_rows=self.shard_rows,
                    start_row=start,
                    stop_row=start + rows,
                    config=cfg,
                )
                _, block = next(gen)
                gen.close()
                payload, _, _ = self.codec.encode(block)
                crc = _crc32(payload)
                if crc != entry["crc32"]:
                    raise StoreError(
                        f"repair of shard {index} produced checksum "
                        f"{crc:#010x}, manifest says "
                        f"{entry['crc32']:#010x}; is this the graph the "
                        "store was built from?"
                    )
                (self.path / entry["file"]).write_bytes(payload)
            if "landmarks" in bad:
                _write_landmarks(self, graph, cfg)
        _obs.counter_add("serve.store.shards_repaired", len(bad))
        self.verify()
        return bad


def _landmark_vertices(graph, count: int, degree_kind: str) -> List[int]:
    count = min(count, graph.num_vertices)
    return [int(v) for v in _degree_order(graph, degree_kind)[:count]]


def _degree_order(graph, degree_kind: str) -> np.ndarray:
    """Vertices by descending degree, ties toward the smaller id."""
    from ..graphs.degree import degree_array

    degrees = degree_array(graph, degree_kind)
    return np.argsort(-degrees, kind="stable")


def _write_landmarks(store: DistStore, graph, cfg) -> None:
    """(Re)build the pinned landmark rows from the graph."""
    from ..core.runner import solve_apsp_shards

    ids = store.manifest["landmarks"]["ids"]
    if not ids:
        return
    rows = np.empty((len(ids), store.n), dtype=np.float64)
    for i, vertex in enumerate(ids):
        start = (vertex // store.shard_rows) * store.shard_rows
        stop = min(start + store.shard_rows, store.n)
        gen = solve_apsp_shards(
            graph,
            shard_rows=store.shard_rows,
            start_row=start,
            stop_row=stop,
            config=cfg,
        )
        _, block = next(gen)
        gen.close()
        rows[i] = block[vertex - start]
    raw = np.ascontiguousarray(rows).tobytes()
    # verify BEFORE writing: a wrong-graph repair must leave whatever
    # is on disk untouched instead of installing bytes it then rejects
    if _crc32(raw) != store.manifest["landmarks"]["crc32"]:
        raise StoreError(
            "landmark repair produced different bytes; is this the "
            "graph the store was built from?"
        )
    (store.path / store.manifest["landmarks"]["file"]).write_bytes(raw)


def solve_to_store(
    graph,
    path: "str | os.PathLike",
    *,
    shard_rows=None,
    num_landmarks=None,
    codec=None,
    epsilon=None,
    store_config=None,
    serve_config=None,
    config=None,
    **kwargs,
) -> DistStore:
    """Solve APSP and stream the result into a new store directory.

    Thin pipeline over :func:`repro.core.runner.solve_apsp_shards`:
    each yielded shard is codec-encoded, checksummed and written before
    the next is solved, so the n×n matrix never exists in memory.
    ``use_flags`` is forced off for byte-determinism (see the module
    docstring); everything else of the solver config is honoured and
    recorded in the manifest, making the store reproducible from the
    manifest alone.

    Store-side knobs (``shard_rows``, ``num_landmarks``, ``codec``,
    ``epsilon``) can come either flat or bundled in a validated
    :class:`repro.config.StoreConfig` via ``store_config=``; flat
    kwargs override the bundle.  ``num_landmarks`` top-degree rows are
    pinned into ``landmarks.bin`` (always raw f8) for the serving
    layer's ALT bounds and degraded mode.
    """
    from ..config import StoreConfig

    overrides = {
        name: value
        for name, value in (
            ("shard_rows", shard_rows),
            ("num_landmarks", num_landmarks),
            ("codec", codec),
            ("epsilon", epsilon),
        )
        if value is not None
    }
    if serve_config is not None:
        # unified ServeConfig path: the store group is the bundle; flat
        # kwargs still win (DeprecationWarning on genuine conflict)
        from ..config import resolve_serve_config

        if store_config is not None:
            raise ConfigError(
                "pass either store_config= or serve_config=, not both",
                field="serve_config",
            )
        resolved = resolve_serve_config(
            serve_config, caller="solve_to_store", overrides=overrides
        )
        store_cfg = resolved.store
        overrides = {}
    elif store_config is None:
        store_cfg = StoreConfig()
    elif isinstance(store_config, StoreConfig):
        store_cfg = store_config
    else:
        raise ConfigError(
            f"store_config must be a StoreConfig, "
            f"got {type(store_config).__name__}",
            field="store_config",
        )
    if overrides:
        # dataclasses.replace re-runs StoreConfig validation
        store_cfg = dataclasses.replace(store_cfg, **overrides)

    path = Path(path)
    if path.exists() and any(path.iterdir()):
        raise StoreError(f"refusing to build a store in non-empty {path}")
    path.parent.mkdir(parents=True, exist_ok=True)
    # build into a hidden temp sibling and rename into place on success:
    # a crash mid-build leaves the target path absent (only a stray
    # dot-dir beside it), so a retry is never blocked by partial output
    build_dir = Path(
        tempfile.mkdtemp(prefix=f".{path.name}.build-", dir=path.parent)
    )
    try:
        manifest = _build_store_files(
            graph,
            build_dir,
            store_cfg=store_cfg,
            config=config,
            kwargs=kwargs,
        )
        if path.exists():
            path.rmdir()  # known empty from the check above
        os.replace(build_dir, path)
    except BaseException:
        shutil.rmtree(build_dir, ignore_errors=True)
        raise
    _obs.counter_add("serve.store.builds", 1)
    return DistStore(path, manifest)


def _build_store_files(graph, path, *, store_cfg, config, kwargs):
    """Solve + encode + write every store file into ``path``.

    Returns the manifest dict (also written to ``path``).  Factored out
    of :func:`solve_to_store` so the caller owns directory lifecycle
    (temp-sibling build, atomic rename).
    """
    from ..config import SolverConfig
    from ..core.runner import solve_apsp_shards

    if config is None:
        cfg = SolverConfig.from_kwargs(**kwargs)
    elif kwargs:
        cfg = config.with_overrides(**kwargs)
    else:
        cfg = config
    if cfg.algorithm.use_flags:
        cfg = cfg.with_overrides(use_flags=False)

    n = graph.num_vertices
    shard_rows = store_cfg.shard_rows
    landmark_ids = _landmark_vertices(
        graph, store_cfg.num_landmarks, cfg.algorithm.degree_kind
    )
    landmark_rows = np.empty((len(landmark_ids), n), dtype=np.float64)
    landmark_pos = {v: i for i, v in enumerate(landmark_ids)}

    codec_params: Dict[str, Any] = {}
    codec_obj = get_codec(store_cfg.codec)
    if codec_obj.needs_degree_order:
        codec_params["order"] = [
            int(v) for v in _degree_order(graph, cfg.algorithm.degree_kind)
        ]
        codec_obj = get_codec(store_cfg.codec, **codec_params)

    shards: List[Dict[str, Any]] = []
    max_abs_error = 0.0
    with _obs.span("serve.store.build"):
        for start, rows in solve_apsp_shards(
            graph, shard_rows=shard_rows, config=cfg
        ):
            k = rows.shape[0]
            for v in range(start, start + k):
                if v in landmark_pos:
                    landmark_rows[landmark_pos[v]] = rows[v - start]
            payload, params, err = codec_obj.encode(rows)
            max_abs_error = max(max_abs_error, err)
            fname = _shard_file(len(shards))
            (path / fname).write_bytes(payload)
            shards.append(
                {
                    "file": fname,
                    "start": start,
                    "rows": k,
                    "crc32": _crc32(payload),
                    "nbytes": len(payload),
                    "params": params,
                    "max_abs_error": err,
                }
            )
    lm_raw = np.ascontiguousarray(landmark_rows).tobytes()
    if landmark_ids:
        (path / _LANDMARKS).write_bytes(lm_raw)
    manifest = {
        "schema": STORE_SCHEMA_VERSION,
        "n": n,
        "shard_rows": min(shard_rows, max(1, n)),
        "num_shards": len(shards),
        "generation": 0,
        "dtype": _DTYPE.str,
        "codec": store_cfg.codec,
        "codec_params": codec_params,
        "max_abs_error": max_abs_error,
        "epsilon": store_cfg.epsilon,
        "shards": shards,
        "landmarks": {
            "ids": landmark_ids,
            "file": _LANDMARKS,
            "crc32": _crc32(lm_raw),
        },
        "graph": {"name": getattr(graph, "name", "") or ""},
        "config": cfg.to_dict(),
    }
    (path / _MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest
