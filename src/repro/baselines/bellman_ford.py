"""Bellman–Ford SSSP — the O(nm) classic the paper's §2 contrasts with
Dijkstra.  Included for completeness of the background algorithms; the
vectorised edge list makes each of the ≤ n-1 relaxation rounds one
numpy scatter."""

from __future__ import annotations

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..types import INF

__all__ = ["bellman_ford_sssp", "bellman_ford_apsp"]


def bellman_ford_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Single-source shortest distances by Bellman–Ford.

    Handles any positive-weight graph (our CSR construction already
    forbids non-positive weights, so no negative-cycle check is
    needed); rounds stop early once no distance improves.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} outside [0, {n})")
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    dst = graph.indices
    w = graph.weights
    dist = np.full(n, INF)
    dist[source] = 0.0
    for _round in range(max(0, n - 1)):
        cand = dist[src] + w
        # per-destination minimum of all candidate relaxations
        best = np.full(n, INF)
        np.minimum.at(best, dst, cand)
        new = np.minimum(dist, best)
        if not (new < dist).any():  # fixpoint reached, stop early
            break
        dist = new
    return dist


def bellman_ford_apsp(graph: CSRGraph) -> np.ndarray:
    """APSP by n Bellman–Ford runs (slow; small graphs only)."""
    n = graph.num_vertices
    return np.stack([bellman_ford_sssp(graph, s) for s in range(n)])
