"""Golden-reference APSP solvers from scipy / networkx.

Every algorithm in :mod:`repro.core` is validated against these in the
test suite; :func:`reference_apsp` is also what the examples use to
show end users how to double-check results on their own graphs.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..graphs.build import to_scipy_csr
from ..graphs.csr import CSRGraph

__all__ = ["reference_apsp", "assert_matches_reference"]


def reference_apsp(graph: CSRGraph, *, method: str = "D") -> np.ndarray:
    """APSP via ``scipy.sparse.csgraph.shortest_path``.

    ``method`` is scipy's: ``"D"`` Dijkstra, ``"BF"`` Bellman–Ford,
    ``"FW"`` Floyd–Warshall, ``"J"`` Johnson.
    """
    import scipy.sparse.csgraph as csgraph

    return csgraph.shortest_path(
        to_scipy_csr(graph), method=method, directed=graph.directed
    )


def assert_matches_reference(
    dist: np.ndarray,
    graph: CSRGraph,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> None:
    """Raise :class:`ValidationError` unless ``dist`` equals the scipy
    reference (inf patterns must match exactly)."""
    ref = reference_apsp(graph)
    ours_inf = ~np.isfinite(dist)
    ref_inf = ~np.isfinite(ref)
    if not np.array_equal(ours_inf, ref_inf):
        k = int(np.flatnonzero(ours_inf != ref_inf)[0])
        raise ValidationError(
            f"reachability mismatch at flat index {k}: "
            f"ours={'inf' if ours_inf.flat[k] else 'finite'}, "
            f"reference={'inf' if ref_inf.flat[k] else 'finite'}"
        )
    finite = ~ref_inf
    if not np.allclose(dist[finite], ref[finite], rtol=rtol, atol=atol):
        diff = np.abs(dist[finite] - ref[finite])
        raise ValidationError(
            f"distance mismatch: max abs error {diff.max():g}"
        )
