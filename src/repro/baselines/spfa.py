"""SPFA (queue-based Bellman–Ford) SSSP — the queue discipline the
modified Dijkstra inherits, without the flag machinery.  The apples-to-
apples "no reuse" reference for measuring what the paper's dynamic-
programming shortcut buys."""

from __future__ import annotations

from collections import deque

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..types import INF, OpCounts

__all__ = ["spfa_sssp", "spfa_apsp"]


def spfa_sssp(graph: CSRGraph, source: int) -> tuple[np.ndarray, OpCounts]:
    """Single-source shortest distances by SPFA."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} outside [0, {n})")
    dist = np.full(n, INF)
    dist[source] = 0.0
    counts = OpCounts()
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    in_queue = np.zeros(n, dtype=bool)
    q: deque = deque([source])
    in_queue[source] = True
    while q:
        t = q.popleft()
        in_queue[t] = False
        counts.pops += 1
        base = dist[t]
        for k in range(indptr[t], indptr[t + 1]):
            v = indices[k]
            counts.edge_relaxations += 1
            nd = base + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                counts.edge_improvements += 1
                if not in_queue[v]:
                    in_queue[v] = True
                    q.append(int(v))
    return dist, counts


def spfa_apsp(graph: CSRGraph) -> tuple[np.ndarray, OpCounts]:
    """APSP by n independent SPFA runs."""
    n = graph.num_vertices
    dist = np.empty((n, n))
    total = OpCounts()
    for s in range(n):
        row, counts = spfa_sssp(graph, s)
        dist[s] = row
        total += counts
    return dist, total
