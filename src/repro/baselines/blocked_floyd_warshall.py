"""Cache-blocked (tiled) Floyd–Warshall — the Katz & Kider approach.

Related work §6: Katz and Kider's GPU APSP partitions the distance
matrix into tiles and runs Floyd–Warshall block-wise (diagonal tile,
then its row/column, then the remainder), which is the classic
cache/shared-memory blocking of the O(n³) algorithm.  This CPU
implementation reproduces the *algorithmic* structure (the three-phase
tile schedule) so the harness can compare the O(n³) family against the
paper's O(n^2.4) family on equal footing.

The tile schedule (for each diagonal step ``k``):

1. **dependent phase 1** — the pivot tile ``(k, k)`` runs a full local
   Floyd–Warshall;
2. **phase 2** — tiles sharing the pivot's row or column update against
   the pivot tile;
3. **phase 3** — every remaining tile updates against its row/column
   partners from phase 2.  Phase-3 tiles are mutually independent — the
   parallelism the GPU exploits; here they are processed as vectorised
   numpy updates.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.build import to_dense
from ..graphs.csr import CSRGraph

__all__ = ["blocked_floyd_warshall"]


def blocked_floyd_warshall(
    graph: CSRGraph, *, block_size: int = 64
) -> np.ndarray:
    """APSP by tiled Floyd–Warshall.

    Produces exactly the same matrix as the straight algorithm for any
    ``block_size >= 1`` (asserted against it in the test suite).
    """
    if block_size < 1:
        raise AlgorithmError(f"block size must be >= 1, got {block_size}")
    dist = to_dense(graph)
    n = dist.shape[0]
    if n == 0:
        return dist
    num_blocks = (n + block_size - 1) // block_size

    def blk(b: int) -> slice:
        return slice(b * block_size, min((b + 1) * block_size, n))

    for k in range(num_blocks):
        kb = blk(k)
        # phase 1: the pivot tile, full local FW over its own indices
        pivot = dist[kb, kb]
        for kk in range(pivot.shape[0]):
            np.minimum(pivot, pivot[:, [kk]] + pivot[[kk], :], out=pivot)
        # phase 2: pivot row and pivot column tiles
        for j in range(num_blocks):
            if j == k:
                continue
            jb = blk(j)
            row_tile = dist[kb, jb]  # same rows as pivot
            for kk in range(pivot.shape[0]):
                np.minimum(
                    row_tile, pivot[:, [kk]] + row_tile[[kk], :], out=row_tile
                )
            col_tile = dist[jb, kb]  # same cols as pivot
            for kk in range(pivot.shape[0]):
                np.minimum(
                    col_tile, col_tile[:, [kk]] + pivot[[kk], :], out=col_tile
                )
        # phase 3: the remainder — independent of one another
        for i in range(num_blocks):
            if i == k:
                continue
            ib = blk(i)
            left = dist[ib, kb]  # column tile computed in phase 2
            for j in range(num_blocks):
                if j == k:
                    continue
                jb = blk(j)
                top = dist[kb, jb]  # row tile computed in phase 2
                # all pivot indices at once: min-plus product of the
                # (ib × kb) and (kb × jb) tiles
                cand = (left[:, :, None] + top[None, :, :]).min(axis=1)
                np.minimum(dist[ib, jb], cand, out=dist[ib, jb])
    return dist
