"""Baseline APSP/SSSP algorithms and golden references (paper §2)."""

from .bellman_ford import bellman_ford_apsp, bellman_ford_sssp
from .blocked_floyd_warshall import blocked_floyd_warshall
from .floyd_warshall import floyd_warshall
from .partitioned import PartitionedResult, partitioned_apsp
from .repeated_dijkstra import repeated_dijkstra
from .scipy_ref import assert_matches_reference, reference_apsp
from .spfa import spfa_apsp, spfa_sssp

__all__ = [
    "bellman_ford_apsp",
    "bellman_ford_sssp",
    "blocked_floyd_warshall",
    "floyd_warshall",
    "PartitionedResult",
    "partitioned_apsp",
    "repeated_dijkstra",
    "assert_matches_reference",
    "reference_apsp",
    "spfa_apsp",
    "spfa_sssp",
]
