"""Repeated classic Dijkstra — the naïve APSP the paper's §2.1 starts
from: one independent heap-Dijkstra per source, no information reuse."""

from __future__ import annotations

import numpy as np

from ..core.dijkstra import dijkstra_sssp
from ..graphs.csr import CSRGraph
from ..types import INF, OpCounts

__all__ = ["repeated_dijkstra"]


def repeated_dijkstra(graph: CSRGraph) -> tuple[np.ndarray, OpCounts]:
    """APSP by n independent Dijkstra runs.  Returns (D, total counts)."""
    n = graph.num_vertices
    dist = np.full((n, n), INF)
    total = OpCounts()
    for s in range(n):
        _, counts = dijkstra_sssp(graph, s, out=dist[s])
        total += counts
    return dist, total
