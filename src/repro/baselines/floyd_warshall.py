"""Floyd–Warshall APSP — the classic O(n³) baseline (paper §2).

Vectorised over rows: for each pivot ``k`` the update
``D = min(D, D[:, k, None] + D[k, None, :])`` is two numpy broadcasts,
so the Python loop runs only n times.  Exact for positive weights and
for graphs with unreachable pairs (inf arithmetic).
"""

from __future__ import annotations

import numpy as np

from ..graphs.build import to_dense
from ..graphs.csr import CSRGraph

__all__ = ["floyd_warshall"]


def floyd_warshall(graph: CSRGraph) -> np.ndarray:
    """All-pairs shortest distances by Floyd–Warshall."""
    dist = to_dense(graph)
    n = dist.shape[0]
    for k in range(n):
        # paths through pivot k; numpy handles inf + x = inf
        via = dist[:, k, None] + dist[None, k, :]
        np.minimum(dist, via, out=dist)
    return dist
