"""Partition-and-correct APSP — the Tang et al. / Abdelghany approach.

Related work §6: both cited systems decompose the graph into
sub-networks, solve locally, and run *iterative correcting* rounds
across partition boundaries until no distance changes.  The ICPP paper
contrasts ParAPSP against this family ("our proposed parallel algorithm
does not require extra partitioning steps"), so the harness carries a
faithful sequential model of it:

1. split the vertices into ``num_parts`` contiguous parts;
2. per part, solve SSSP from every owned source *within the part's
   induced subgraph* (the embarrassingly parallel local phase);
3. correcting rounds: relax every cut arc against the current global
   matrix and re-propagate improvements inside each part, until a
   global fixpoint.

The result is exact; the interesting output is ``rounds`` — how many
boundary-correcting sweeps the partition structure forces, which is the
coordination cost ParAPSP avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..parallel.schedule import block_assignment
from ..types import INF

__all__ = ["PartitionedResult", "partitioned_apsp"]


@dataclass
class PartitionedResult:
    dist: np.ndarray
    num_parts: int
    #: boundary-correcting rounds until the global fixpoint
    rounds: int
    #: arcs crossing partition boundaries
    cut_arcs: int


def _local_phase(
    graph: CSRGraph, part: np.ndarray, in_part: np.ndarray, dist: np.ndarray
) -> None:
    """SSSP from every source of ``part`` restricted to the part."""
    from collections import deque

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    for s in part:
        row = dist[s]
        row[s] = 0.0
        q = deque([int(s)])
        while q:
            t = q.popleft()
            base = row[t]
            for k in range(indptr[t], indptr[t + 1]):
                v = int(indices[k])
                if not in_part[v]:
                    continue
                nd = base + weights[k]
                if nd < row[v]:
                    row[v] = nd
                    q.append(v)


def partitioned_apsp(
    graph: CSRGraph, *, num_parts: int = 4
) -> PartitionedResult:
    """Exact APSP by local solves + iterative boundary correction."""
    n = graph.num_vertices
    if num_parts < 1:
        raise AlgorithmError(f"num_parts must be >= 1, got {num_parts}")
    num_parts = min(num_parts, max(1, n))
    dist = np.full((n, n), INF)
    if n == 0:
        return PartitionedResult(dist, num_parts, 0, 0)
    np.fill_diagonal(dist, 0.0)

    parts = block_assignment(n, num_parts)
    owner = np.empty(n, dtype=np.int64)
    for p, part in enumerate(parts):
        owner[part] = p

    # local phase
    for part in parts:
        if part.size == 0:
            continue
        in_part = np.zeros(n, dtype=bool)
        in_part[part] = True
        _local_phase(graph, part, in_part, dist)

    # cut arcs: endpoints in different parts
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    cut_mask = owner[src] != owner[graph.indices]

    # correcting rounds: one global relaxation sweep over every arc per
    # round (vectorised across all n source rows at once), repeated
    # until the fixpoint — the "computation step / communication step
    # processed interchangeably until no communication necessary" loop
    # of Tang et al.
    rounds = 0
    all_dst = graph.indices
    all_w = graph.weights
    while True:
        rounds += 1
        # candidate improvements through every arc, for every source row
        cand = dist[:, src] + all_w[None, :]
        best = np.full((n, n), INF)
        np.minimum.at(best.T, all_dst, cand.T)
        new = np.minimum(dist, best)
        if not (new < dist).any():
            break
        dist = new
        if rounds > n:  # safety net; fixpoint must arrive in ≤ n rounds
            raise AlgorithmError("correcting rounds failed to converge")
    return PartitionedResult(
        dist=dist,
        num_parts=num_parts,
        rounds=rounds,
        cut_arcs=int(cut_mask.sum()),
    )
