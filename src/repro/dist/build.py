"""Multi-node APSP build: partitioned sources, blocked assembly, faults.

:func:`simulate_distributed_apsp` answers a *scheduling* question (what
does remote row visibility cost?).  This module answers the *systems*
question the Spark-APSP study (arXiv 1902.04446) poses: partition the
source rows across ranks, solve each partition independently against
the replicated graph, and assemble the blocked distance matrix over the
network.  Concretely:

* shard ``s`` (a ``shard_rows`` block of consecutive source ids) is
  owned by rank ``s % num_nodes`` — round-robin, so the descending-
  degree head of the matrix doesn't land on one rank;
* each rank solves its shards through the **same registry/shard-hook
  pipeline** as :func:`repro.serve.solve_to_store`, with ``use_flags``
  forced off — every row is an independent sweep, so the assembled
  matrix is **bitwise identical** to the single-machine solve no matter
  how the shards are partitioned, recovered, or reordered;
* per-rank compute time comes from pricing each source's real
  :class:`~repro.types.OpCounts` through the cost model and playing the
  rank's source list on the ``simx`` machine (``threads_per_node``
  workers, memory-contention multiplier included);
* assembly ships every remotely-solved shard to rank 0 under the
  cluster's α–β model (one ``latency`` per shard plus
  ``per_element_cost`` per element), which is where ``network_bytes``
  and the assembly tail of the makespan come from;
* a :class:`~repro.faults.FaultPlan` is interpreted at **node
  granularity**: ``kill`` fells a rank after its m-th shard claim (its
  unfinished shards redistribute round-robin to the survivors, whose
  recovery re-solves are priced and appended to their timelines), and
  ``stall`` is a straggler — a flat virtual delay on one rank.  Because
  rows are independent, recovery is a bounded re-solve of exactly the
  lost shards and the distances come out bitwise-equal to the
  fault-free build (the test suite and the dist bench assert this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.costs import DEFAULT_COST_MODEL, DijkstraCostModel
from ..core.registry import get_solver
from ..exceptions import FaultPlanError, NegativeWeightError, SimulationError
from ..faults.plan import KILL, STALL, FaultPlan
from ..graphs.csr import CSRGraph
from ..simx.parfor import simulate_parallel_for
from ..types import INF, Schedule
from .cluster import ClusterSpec

__all__ = ["ClusterBuildResult", "solve_apsp_cluster"]


@dataclass
class ClusterBuildResult:
    """Outcome of one simulated multi-node APSP build."""

    dist: np.ndarray
    cluster: ClusterSpec
    shard_rows: int
    #: virtual end-to-end time: slowest rank (compute + recovery +
    #: straggler delay) plus the blocked assembly at rank 0
    makespan: float
    #: bytes shipped to the assembly rank (8 per remote element)
    network_bytes: int
    #: time of the assembly (network) phase alone
    assembly_time: float
    #: total priced algorithmic work across all ranks
    total_work: float
    #: per-rank summaries: sources solved, compute/recovery makespans
    per_rank: List[Dict[str, Any]] = field(default_factory=list)
    #: ranks felled by the fault plan
    lost_ranks: Tuple[int, ...] = ()
    #: shards whose owner died, mapped to the surviving rank that
    #: re-solved them
    recovered_by: Dict[int, int] = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        n = self.dist.shape[0]
        return (n + self.shard_rows - 1) // self.shard_rows

    def to_summary(self) -> Dict[str, Any]:
        """JSON-ready summary (CLI ``--json``, the dist bench)."""
        return {
            "cluster": self.cluster.name,
            "num_nodes": self.cluster.num_nodes,
            "threads_per_node": self.cluster.threads_per_node,
            "shard_rows": self.shard_rows,
            "num_shards": self.num_shards,
            "makespan": self.makespan,
            "assembly_time": self.assembly_time,
            "network_bytes": self.network_bytes,
            "total_work": self.total_work,
            "lost_ranks": list(self.lost_ranks),
            "recovered_shards": len(self.recovered_by),
            "per_rank": self.per_rank,
        }


class _RowState:
    """Adapter giving the shard hooks a row-mapped view of one block.

    Mirrors the private state object of
    :func:`repro.core.runner.solve_apsp_shards`: ``dist[source]`` maps
    to the block row ``source - base``, and a scratch flag array keeps
    the sweep signature happy (flags are forced off here anyway).
    """

    __slots__ = ("dist", "flag", "_n")

    class _RowMap:
        __slots__ = ("_buf", "_base")

        def __init__(self, buf: np.ndarray, base: int) -> None:
            self._buf = buf
            self._base = base

        def __getitem__(self, source: int) -> np.ndarray:
            return self._buf[source - self._base]

    def __init__(self, block: np.ndarray, base: int, n: int) -> None:
        self.dist = self._RowMap(block, base)
        self.flag = np.zeros(n, dtype=np.uint8)
        self._n = n

    @property
    def n(self) -> int:
        return self._n


def _node_fault_schedule(
    plan: Optional[FaultPlan],
    cluster: ClusterSpec,
    rank_shards: List[List[int]],
) -> Tuple[Dict[int, int], Dict[int, float]]:
    """Interpret a fault plan at node granularity.

    Returns ``(kill_after, stall_delay)``: rank → shard claims survived
    before dying, and rank → extra straggler delay.  Only ``kill`` and
    ``stall`` make sense for whole nodes; other kinds are rejected
    loudly rather than silently dropped.
    """
    kill_after: Dict[int, int] = {}
    stall_delay: Dict[int, float] = {}
    if plan is None:
        return kill_after, stall_delay
    bound = plan.bind(cluster.num_nodes)
    for spec in bound.faults:
        if spec.round != 0:
            continue  # the cluster build has no retry rounds
        if spec.kind == KILL:
            prev = kill_after.get(spec.worker)
            claims = spec.after_claims
            kill_after[spec.worker] = (
                claims if prev is None else min(prev, claims)
            )
        elif spec.kind == STALL:
            stall_delay[spec.worker] = (
                stall_delay.get(spec.worker, 0.0) + spec.seconds
            )
        else:
            raise FaultPlanError(
                f"node-granularity fault plans support kill/stall, "
                f"got {spec.kind!r}"
            )
    if len(kill_after) >= cluster.num_nodes:
        raise FaultPlanError(
            "fault plan kills every rank; nothing can recover the build"
        )
    return kill_after, stall_delay


def solve_apsp_cluster(
    graph: CSRGraph,
    cluster: ClusterSpec,
    *,
    shard_rows: Optional[int] = None,
    config=None,
    fault_plan: Optional[FaultPlan] = None,
    cost_model: DijkstraCostModel = DEFAULT_COST_MODEL,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    **kwargs,
) -> ClusterBuildResult:
    """Solve APSP as a simulated multi-node build (see module docstring).

    The distance matrix is exact and bitwise-identical to
    ``solve_apsp(graph, use_flags=False)`` regardless of the cluster
    geometry or injected faults; the cluster only decides the *virtual
    cost* side of the result.  Solver selection, validation and row
    production all go through the registry (``config=``/kwargs exactly
    as :func:`repro.core.runner.solve_apsp_shards`), so delta-stepping
    and Johnson rank-partition the same way the sweep family does.
    """
    from ..config import SolverConfig

    n = graph.num_vertices
    if n < 1:
        raise SimulationError("cluster build needs a non-empty graph")
    if shard_rows is None:
        # ~4 claim-sized shards per rank: enough granularity for the
        # round-robin and for kill recovery to be visibly bounded
        shard_rows = max(1, math.ceil(n / (cluster.num_nodes * 4)))
    if not isinstance(shard_rows, int) or isinstance(shard_rows, bool) \
            or shard_rows < 1:
        raise SimulationError(
            f"shard_rows must be an int >= 1, got {shard_rows!r}"
        )

    if config is None:
        cfg = SolverConfig.from_kwargs(**kwargs)
    elif kwargs:
        cfg = config.with_overrides(**kwargs)
    else:
        cfg = config
    # independence of rows is what makes partitioning and recovery
    # bitwise-exact; the per-rank solve is serial per worker anyway
    cfg = cfg.with_overrides(use_flags=False, backend="serial")

    spec = get_solver(cfg.algorithm.name)
    if not spec.store_buildable or spec.shard_hooks is None:
        raise SimulationError(
            f"solver {spec.name!r} does not support the shard-streaming "
            "solve the cluster build is made of"
        )
    if graph.has_negative_weights and not spec.negative_weights:
        raise NegativeWeightError(
            f"graph {graph.name or 'anonymous'!r} has negative arc "
            f"weights, which solver {spec.name!r} does not support"
        )
    hooks = spec.shard_hooks(graph, cfg)

    num_shards = (n + shard_rows - 1) // shard_rows
    rank_shards: List[List[int]] = [
        [] for _ in range(cluster.num_nodes)
    ]
    for s in range(num_shards):
        rank_shards[s % cluster.num_nodes].append(s)
    kill_after, stall_delay = _node_fault_schedule(
        fault_plan, cluster, rank_shards
    )

    # ---- solve every shard once (owners and recoverers produce the
    # same bytes, so compute is shared; timing is attributed below)
    dist = np.full((n, n), INF, dtype=np.float64)
    source_cost = np.zeros(n, dtype=np.float64)
    for s in range(num_shards):
        start = s * shard_rows
        stop = min(start + shard_rows, n)
        block = dist[start:stop]
        state = _RowState(block, start, n)
        for source in range(start, stop):
            counts = hooks.sweep_row(hooks.graph, source, state, cfg)
            if counts is not None:
                source_cost[source] = cost_model.sweep_cost(counts)
        if hooks.finalize is not None:
            hooks.finalize(start, block)

    # ---- timeline: who solved what, and when they were done
    completed: List[List[int]] = []
    lost_shards: List[int] = []
    lost_ranks: List[int] = []
    for rank, shards in enumerate(rank_shards):
        claims = kill_after.get(rank)
        if claims is None or claims - 1 >= len(shards):
            completed.append(list(shards))
            continue
        lost_ranks.append(rank)
        completed.append(shards[: claims - 1])
        lost_shards.extend(shards[claims - 1:])
    survivors = [
        r for r in range(cluster.num_nodes) if r not in lost_ranks
    ]
    recovered_by: Dict[int, int] = {}
    recovery: List[List[int]] = [[] for _ in range(cluster.num_nodes)]
    for i, s in enumerate(sorted(lost_shards)):
        target = survivors[i % len(survivors)]
        recovered_by[s] = target
        recovery[target].append(s)

    multiplier = cluster.node.memory_cost_multiplier(
        cluster.threads_per_node
    )

    def rank_makespan(shards: List[int]) -> float:
        costs = np.concatenate(
            [
                source_cost[s * shard_rows:min((s + 1) * shard_rows, n)]
                for s in shards
            ]
        ) if shards else np.empty(0)
        if not len(costs):
            return 0.0
        outcome = simulate_parallel_for(
            len(costs),
            costs,
            cluster.node,
            num_threads=min(cluster.threads_per_node, len(costs)),
            schedule=schedule,
            cost_multiplier=multiplier,
        )
        return float(outcome.result.makespan)

    per_rank: List[Dict[str, Any]] = []
    finish = np.zeros(cluster.num_nodes, dtype=np.float64)
    for rank in range(cluster.num_nodes):
        base = rank_makespan(completed[rank])
        # recovery work is conservatively serialized after the
        # survivor's own partition (failure detection + re-issue)
        extra = rank_makespan(recovery[rank])
        delay = stall_delay.get(rank, 0.0)
        finish[rank] = base + extra + delay
        per_rank.append(
            {
                "rank": rank,
                "shards": len(completed[rank]),
                "recovered": len(recovery[rank]),
                "compute": base,
                "recovery": extra,
                "stall": delay,
                "lost": rank in lost_ranks,
            }
        )

    # ---- blocked assembly at rank 0: every remotely-solved shard ships
    # its rows over the α–β network; rank 0 ingress serializes them
    solved_on: Dict[int, int] = {}
    for rank in range(cluster.num_nodes):
        for s in completed[rank]:
            solved_on[s] = rank
        for s in recovery[rank]:
            solved_on[s] = rank
    assembly_time = 0.0
    network_bytes = 0
    for s in range(num_shards):
        if solved_on[s] == 0:
            continue
        rows = min(shard_rows, n - s * shard_rows)
        elements = rows * n
        assembly_time += cluster.latency \
            + cluster.per_element_cost * elements
        network_bytes += 8 * elements
    makespan = float(finish.max()) + assembly_time

    return ClusterBuildResult(
        dist=dist,
        cluster=cluster,
        shard_rows=shard_rows,
        makespan=makespan,
        network_bytes=network_bytes,
        assembly_time=assembly_time,
        total_work=float(source_cost.sum()),
        per_rank=per_rank,
        lost_ranks=tuple(lost_ranks),
        recovered_by=recovered_by,
    )
