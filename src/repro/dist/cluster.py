"""Cluster model for the distributed-memory extension (paper §7).

The paper's future work: "extend the ParAPSP algorithm on
distributed-memory parallel environments so that we could find APSP
solutions for much larger graphs."  This package explores that design
in simulation: a cluster of shared-memory nodes (each one a
:class:`~repro.simx.MachineSpec`) connected by a network with
latency/bandwidth costs expressed in the same work-unit currency.

The communication pattern the algorithm needs is single-producer
broadcast: when a rank finishes a row of D, the row becomes usable by
*other* ranks only after one row-broadcast delay.  That delay is the
lever that makes distributed reuse strictly weaker than shared-memory
reuse — the quantitative question the simulation answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SimulationError
from ..simx.machine import MACHINE_I, MachineSpec

__all__ = ["ClusterSpec", "CLUSTER_FAST", "CLUSTER_COMMODITY"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of shared-memory nodes.

    Attributes
    ----------
    num_nodes:
        MPI ranks; each runs ``threads_per_node`` workers.
    threads_per_node:
        Shared-memory workers per rank (≤ the node's cores).
    node:
        The per-node machine model.
    latency:
        Per-message start-up cost in work units (the α of the α-β
        model).
    per_element_cost:
        Transfer cost per distance-row element (β·8 bytes in work
        units).
    """

    name: str
    num_nodes: int
    threads_per_node: int
    node: MachineSpec = MACHINE_I
    latency: float = 8_000.0
    per_element_cost: float = 1.2

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise SimulationError("cluster needs >= 1 node")
        if self.threads_per_node < 1:
            raise SimulationError("need >= 1 thread per node")
        if self.threads_per_node > self.node.num_cores:
            raise SimulationError(
                f"{self.threads_per_node} threads exceed the node's "
                f"{self.node.num_cores} cores"
            )
        if self.latency < 0 or self.per_element_cost < 0:
            raise SimulationError("communication costs must be >= 0")

    @property
    def total_workers(self) -> int:
        return self.num_nodes * self.threads_per_node

    def rank_of_worker(self, worker: int) -> int:
        return worker // self.threads_per_node

    def row_broadcast_delay(self, n: int) -> float:
        """Time until a finished n-element row is visible on remote
        ranks (tree broadcast: one α plus the pipelined transfer)."""
        if self.num_nodes == 1:
            return 0.0
        return self.latency + self.per_element_cost * n

    def row_broadcast_bytes(self, n: int) -> int:
        """Network bytes moved per finished row (float64 elements to
        every other rank)."""
        return 8 * n * (self.num_nodes - 1)


#: low-latency interconnect (InfiniBand-class)
CLUSTER_FAST = ClusterSpec(
    name="fast-interconnect",
    num_nodes=4,
    threads_per_node=16,
    latency=4_000.0,
    per_element_cost=0.6,
)

#: commodity ethernet-class network
CLUSTER_COMMODITY = ClusterSpec(
    name="commodity-network",
    num_nodes=4,
    threads_per_node=16,
    latency=40_000.0,
    per_element_cost=6.0,
)
