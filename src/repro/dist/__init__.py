"""Distributed-memory ParAPSP exploration (paper §7 future work)."""

from .cluster import CLUSTER_COMMODITY, CLUSTER_FAST, ClusterSpec
from .simulate import DistributedResult, simulate_distributed_apsp

__all__ = [
    "CLUSTER_COMMODITY",
    "CLUSTER_FAST",
    "ClusterSpec",
    "DistributedResult",
    "simulate_distributed_apsp",
]
