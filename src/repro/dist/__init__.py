"""Distributed-memory ParAPSP (paper §7 future work).

Two complementary models live here:

* :func:`simulate_distributed_apsp` — logical replication: every rank
  sees the whole matrix, remote rows arrive after a broadcast delay
  (the *reuse horizon* question);
* :func:`solve_apsp_cluster` — blocked partitioning per the Spark-APSP
  study: sources are sharded across ranks, solved through the registry
  pipeline, and assembled over the α–β network, with node-granularity
  fault plans and bounded exact recovery (the *systems* question).
"""

from .build import ClusterBuildResult, solve_apsp_cluster
from .cluster import CLUSTER_COMMODITY, CLUSTER_FAST, ClusterSpec
from .simulate import DistributedResult, simulate_distributed_apsp

__all__ = [
    "CLUSTER_COMMODITY",
    "CLUSTER_FAST",
    "ClusterSpec",
    "ClusterBuildResult",
    "DistributedResult",
    "simulate_distributed_apsp",
    "solve_apsp_cluster",
]
