"""Simulated distributed-memory ParAPSP (the paper's §7 future work).

Execution model: the cluster's ``num_nodes × threads_per_node`` workers
drain the descending-degree source list; every worker runs the real
modified Dijkstra against a *logically replicated* distance matrix.
Row visibility is rank-aware:

* a row finished on the worker's own rank is usable as soon as it
  completes (shared memory);
* a row finished on another rank is usable only after the row-broadcast
  delay of the cluster's network.

This captures exactly what changes when ParAPSP leaves one box: the
work and the schedule stay the same, the *reuse horizon* shrinks.
The simulation reports the makespan, the network volume, and the extra
work caused by the delayed reuse, so the shared-vs-distributed
trade-off can be read off directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.costs import DEFAULT_COST_MODEL, DijkstraCostModel
from ..core.modified_dijkstra import modified_dijkstra_sssp
from ..core.state import new_state
from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..graphs.degree import degree_array
from ..order import exact_bucket_order
from ..simx.parfor import ParForOutcome, simulate_parallel_for
from ..types import OpCounts, Schedule
from .cluster import ClusterSpec

__all__ = ["DistributedResult", "simulate_distributed_apsp"]


@dataclass
class DistributedResult:
    """Outcome of one simulated distributed APSP run."""

    dist: np.ndarray
    cluster: ClusterSpec
    makespan: float
    #: bytes moved over the network (row broadcasts)
    network_bytes: int
    #: total algorithmic work across all ranks (work units)
    total_work: float
    outcome: ParForOutcome

    @property
    def workers(self) -> int:
        return self.cluster.total_workers


def simulate_distributed_apsp(
    graph: CSRGraph,
    cluster: ClusterSpec,
    *,
    order: Optional[np.ndarray] = None,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    queue: str = "fifo",
    cost_model: DijkstraCostModel = DEFAULT_COST_MODEL,
) -> DistributedResult:
    """Play distributed ParAPSP on the simulated cluster.

    The distance matrix comes out exact (reuse affects only work); the
    virtual makespan reflects the cluster geometry and the network.
    """
    n = graph.num_vertices
    if order is None:
        order = exact_bucket_order(degree_array(graph)).order
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,):
        raise AlgorithmError(f"order must cover all {n} sources")

    state = new_state(n)
    per_source = [OpCounts() for _ in range(n)]
    completed_at = np.full(n, np.inf)
    rank_of_source = np.full(n, -1, dtype=np.int64)
    delay = cluster.row_broadcast_delay(n)
    # one node's memory effects; network effects modelled separately
    multiplier = cluster.node.memory_cost_multiplier(cluster.threads_per_node)

    def cost_fn(i: int, dispatch_time: float, worker: int) -> float:
        s = int(order[i])
        my_rank = cluster.rank_of_worker(worker)

        def gate(t: int) -> bool:
            ready = completed_at[t]
            if rank_of_source[t] != my_rank:
                ready = ready + delay
            return ready <= dispatch_time

        counts = modified_dijkstra_sssp(
            graph, s, state, queue=queue, flag_gate=gate
        )
        per_source[s] = counts
        duration = cost_model.sweep_cost(counts)
        completed_at[s] = dispatch_time + duration * multiplier
        rank_of_source[s] = my_rank
        return duration

    outcome = _simulate_multinode(n, cost_fn, cluster, schedule, multiplier)

    total_work = sum(cost_model.sweep_cost(c) for c in per_source)
    return DistributedResult(
        dist=state.dist,
        cluster=cluster,
        makespan=outcome.result.makespan,
        network_bytes=n * cluster.row_broadcast_bytes(n),
        total_work=float(total_work),
        outcome=outcome,
    )


def _simulate_multinode(
    n: int, cost_fn, cluster: ClusterSpec, schedule, multiplier
) -> ParForOutcome:
    """Run the parallel-for over the full worker grid.

    The node machine model is widened to the cluster's worker count so
    the generic simulator can schedule across ranks; per-worker rank
    attribution happens inside ``cost_fn`` via the worker id.
    """
    wide = cluster.node.with_overrides(
        name=f"{cluster.name}-grid", num_cores=cluster.total_workers
    )
    return simulate_parallel_for(
        n,
        cost_fn,
        wide,
        num_threads=cluster.total_workers,
        schedule=schedule,
        cost_multiplier=multiplier,
    )
