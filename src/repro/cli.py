"""Command-line interface: ``repro-apsp`` / ``python -m repro``.

Subcommands
-----------
``solve``    — run one APSP algorithm on a dataset or edge-list file.
``trace``    — unified execution trace: Perfetto JSON, report, Gantt.
``order``    — run one ordering procedure and report its statistics.
``analyze``  — APSP-derived network metrics (closeness, diameter, ...).
``paths``    — shortest path between two vertices (with the route).
``bench``    — regenerate paper tables/figures (the harness).
``store``    — build a sharded on-disk distance store (repro.serve).
``query``    — answer point/row/top-k queries from a distance store.
``dist``     — simulated multi-node cluster build (repro.dist).
``serve-bench`` — deterministic query-serving bench (BENCH artifact).
``monitor``  — tail / summarize / validate a telemetry event log.
``datasets`` — list the dataset registry.
``info``     — library and algorithm inventory.

``solve`` accepts ``--config cfg.json`` (a serialized
:class:`repro.config.SolverConfig`), making a run reproducible from one
artifact; explicit CLI flags override individual fields of the file.
``store``, ``query`` and ``serve-bench`` accept the serving analogue
(a serialized :class:`repro.config.ServeConfig`) the same way, and
``store`` / ``serve-bench`` can emit the resolved bundle with
``--save-config``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis.tables import format_table
from .bench import experiment_ids, get_profile, run_many, save_report
from .core.kernels import kernel_names
from .core.runner import algorithm_names, solve_apsp
from .graphs.datasets import dataset_info, dataset_names, load_dataset
from .graphs.degree import degree_array
from .graphs.io import read_edgelist
from .order import ORDERINGS, compute_order

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-apsp",
        description="ParAPSP: parallel all-pairs shortest paths "
        "(ICPP'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve APSP on a graph")
    src = solve.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", choices=dataset_names(), help="registry graph")
    src.add_argument("--edgelist", help="path to a SNAP-format edge list")
    src.add_argument(
        "--rmat",
        type=int,
        metavar="SCALE",
        help="synthetic R-MAT graph with 2**SCALE vertices (Graph500 "
        "parameters, seeded — deterministic)",
    )
    solve.add_argument("--scale", type=int, default=None)
    solve.add_argument(
        "--seed", type=int, default=42, help="seed for --rmat generation"
    )
    solve.add_argument(
        "--edge-factor", type=int, default=8, help="edges per vertex for --rmat"
    )
    solve.add_argument(
        "--algorithm", choices=algorithm_names(), default="parapsp"
    )
    solve.add_argument("--threads", type=int, default=1)
    solve.add_argument(
        "--backend",
        choices=("serial", "threads", "process", "sim"),
        default="serial",
    )
    solve.add_argument(
        "--schedule",
        choices=("block", "static-cyclic", "dynamic"),
        default=None,
    )
    solve.add_argument(
        "--block-size",
        type=_block_size_arg,
        default=None,
        metavar="B",
        help="batch sources in blocks of B through the blocked min-plus "
        "sweep engine; 'auto' tunes B, omit for the unbatched path",
    )
    solve.add_argument(
        "--kernel",
        choices=("auto",) + kernel_names(),
        default="auto",
        help="blocked-kernel implementation (only used with --block-size)",
    )
    solve.add_argument(
        "--delta",
        type=_delta_arg,
        default=None,
        metavar="WIDTH",
        help="Δ-stepping bucket width: a positive number or 'auto' to "
        "autotune (only valid with --algorithm delta-stepping)",
    )
    solve.add_argument("--directed", action="store_true")
    solve.add_argument("--out", help="write the distance matrix (.npy)")
    solve.add_argument(
        "--metrics",
        metavar="PATH",
        help="collect repro.obs metrics during the solve and write a "
        "schema-versioned BENCH artifact (JSON) to PATH",
    )
    solve.add_argument(
        "--fault-plan",
        metavar="PLAN",
        help="inject deterministic worker faults during the sweep: a "
        "JSON file/string or the compact DSL, e.g. "
        "\"kill:worker=1,after=2;stall:worker=0,for=0.1\" "
        "(see repro.faults)",
    )
    solve.add_argument(
        "--on-worker-death",
        choices=("retry", "raise"),
        default="retry",
        help="recovery policy when a worker dies: re-execute only the "
        "lost sources (retry, default with --fault-plan) or surface a "
        "BackendError (raise)",
    )
    solve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="bound each process-backend round; stragglers are "
        "terminated and handled by --on-worker-death",
    )
    solve.add_argument(
        "--config",
        metavar="CFG.JSON",
        help="load a serialized SolverConfig; explicit CLI flags "
        "override individual fields of the file",
    )
    solve.add_argument(
        "--save-config",
        metavar="CFG.JSON",
        help="write the fully-resolved SolverConfig of this run "
        "(reproduce later with --config)",
    )

    trace = sub.add_parser(
        "trace",
        help="unified execution trace (Chrome/Perfetto JSON, critical-path "
        "report, ASCII Gantt)",
    )
    tsrc = trace.add_mutually_exclusive_group(required=True)
    tsrc.add_argument("--dataset", choices=dataset_names(), help="registry graph")
    tsrc.add_argument("--edgelist", help="path to a SNAP-format edge list")
    tsrc.add_argument(
        "--rmat",
        type=int,
        metavar="SCALE",
        help="synthetic R-MAT graph with 2**SCALE vertices (seeded)",
    )
    trace.add_argument("--scale", type=int, default=None)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--edge-factor", type=int, default=8)
    trace.add_argument(
        "--algorithm", choices=algorithm_names(), default="parapsp"
    )
    trace.add_argument("--threads", type=int, default=4)
    trace.add_argument(
        "--backend",
        choices=("sim", "serial", "threads", "process"),
        default="sim",
        help="'sim' traces the virtual-time simulator exactly; real "
        "backends record wall-clock repro.obs spans via TraceRecorder",
    )
    trace.add_argument(
        "--schedule",
        choices=("block", "static-cyclic", "dynamic"),
        default=None,
    )
    trace.add_argument("--directed", action="store_true")
    trace.add_argument(
        "--out", help="write Chrome-trace JSON here (open in ui.perfetto.dev)"
    )
    trace.add_argument(
        "--report",
        action="store_true",
        help="print the critical-path / contention attribution report",
    )
    trace.add_argument(
        "--gantt",
        action="store_true",
        help="print an ASCII Gantt of the unified timeline",
    )
    trace.add_argument(
        "--top-k", type=int, default=5,
        help="lock hotspots / stragglers to list in the report",
    )

    order = sub.add_parser("order", help="run an ordering procedure")
    order.add_argument("--dataset", choices=dataset_names(), required=True)
    order.add_argument("--scale", type=int, default=None)
    order.add_argument("--method", choices=ORDERINGS, default="multilists")
    order.add_argument("--threads", type=int, default=1)

    analyze = sub.add_parser(
        "analyze", help="network metrics from the APSP matrix"
    )
    _add_graph_source(analyze)
    analyze.add_argument("--top", type=int, default=5,
                         help="how many top-centrality vertices to list")

    paths = sub.add_parser("paths", help="shortest path between two vertices")
    _add_graph_source(paths)
    paths.add_argument("--source", type=int, required=True)
    paths.add_argument("--target", type=int, required=True)

    bench = sub.add_parser("bench", help="regenerate paper tables/figures")
    bench.add_argument(
        "--experiment",
        "-e",
        action="append",
        choices=experiment_ids(),
        help="experiment id (repeatable); default: all",
    )
    bench.add_argument(
        "--profile", choices=("quick", "full"), default="full"
    )
    bench.add_argument("--save", help="directory for per-experiment reports")
    bench.add_argument(
        "--csv", help="directory for CSV exports + SUMMARY.md"
    )

    store = sub.add_parser(
        "store",
        help="build a sharded on-disk distance store (repro.serve)",
    )
    ssrc = store.add_mutually_exclusive_group(required=True)
    ssrc.add_argument("--dataset", choices=dataset_names())
    ssrc.add_argument("--edgelist", help="path to a SNAP-format edge list")
    ssrc.add_argument(
        "--rmat", type=int, metavar="SCALE",
        help="synthetic R-MAT graph with 2**SCALE vertices (seeded)",
    )
    store.add_argument("--scale", type=int, default=None)
    store.add_argument("--seed", type=int, default=42)
    store.add_argument("--edge-factor", type=int, default=8)
    store.add_argument("--directed", action="store_true")
    store.add_argument("--out", required=True, metavar="DIR",
                       help="store directory to create")
    store.add_argument(
        "--shard-rows", type=int, default=256,
        help="rows per shard — the build's peak-memory knob",
    )
    store.add_argument(
        "--landmarks", type=int, default=8,
        help="pinned landmark rows for ALT bounds / degraded answers",
    )
    store.add_argument(
        "--codec", default="raw",
        choices=("raw", "f4", "u16q", "u16qd"),
        help="shard codec: raw f8, f4, u16 quantized (certified error "
        "bound), or u16 quantized + degree-order delta + zlib",
    )
    store.add_argument(
        "--epsilon", type=float, default=None, metavar="EPS",
        help="recommended ALT short-circuit gap recorded in the "
        "manifest (0 = exact-gap only; omit to disable)",
    )
    store.add_argument(
        "--config", metavar="PATH", default=None,
        help="serialized repro.config.ServeConfig; its store group "
        "supplies the defaults (explicit flags still win)",
    )
    store.add_argument(
        "--save-config", metavar="PATH", default=None,
        help="write the resolved ServeConfig of this build as JSON",
    )

    update = sub.add_parser(
        "update",
        help="apply a batch of edge updates to a live distance store "
        "(copy-on-write, only dirty shards re-solved)",
    )
    update.add_argument("--store", required=True, metavar="DIR",
                        help="store directory to update in place")
    usrc = update.add_mutually_exclusive_group(required=True)
    usrc.add_argument("--dataset", choices=dataset_names())
    usrc.add_argument("--edgelist", help="path to a SNAP-format edge list")
    usrc.add_argument(
        "--rmat", type=int, metavar="SCALE",
        help="synthetic R-MAT graph with 2**SCALE vertices (seeded)",
    )
    update.add_argument("--scale", type=int, default=None)
    update.add_argument("--seed", type=int, default=42)
    update.add_argument("--edge-factor", type=int, default=8)
    update.add_argument("--directed", action="store_true")
    update.add_argument(
        "--updates", required=True, metavar="DSL",
        help="the batch: 'set=u,v,w;del=u,v;...' (set inserts or "
        "reweights, del removes)",
    )
    update.add_argument(
        "--no-prescreen", action="store_true",
        help="skip the landmark clean-shard certificates (the exact "
        "endpoint refinement alone still bounds the dirty set)",
    )
    update.add_argument(
        "--prune", action="store_true",
        help="delete superseded old-generation files after the swap "
        "(leave off while readers may hold the old manifest)",
    )
    update.add_argument(
        "--json", action="store_true",
        help="print the UpdateResult as JSON instead of a summary",
    )

    query = sub.add_parser(
        "query", help="answer queries from a distance store"
    )
    query.add_argument("--store", required=True, metavar="DIR",
                       help="store directory (see 'store' / repro.serve)")
    query.add_argument("--u", type=int, required=True, help="source vertex")
    query.add_argument("--v", type=int, default=None, help="target vertex")
    query.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="the K nearest vertices to --u instead of a point query",
    )
    query.add_argument(
        "--approx", action="store_true",
        help="answer from the pinned landmarks (certified ALT bounds, "
        "the degraded path)",
    )
    query.add_argument(
        "--max-error", type=float, default=None, metavar="EPS",
        help="allow point answers from ALT landmark bounds whenever "
        "their certified gap is <= EPS (no shard load); overrides the "
        "store's recorded epsilon",
    )
    query.add_argument(
        "--config", metavar="PATH", default=None,
        help="serialized repro.config.ServeConfig for the query "
        "engine (cache size, epsilon, ...); explicit flags still win",
    )

    dist = sub.add_parser(
        "dist",
        help="simulated multi-node cluster build (repro.dist): "
        "partition APSP sources across ranks, cost the network",
    )
    dsrc = dist.add_mutually_exclusive_group(required=True)
    dsrc.add_argument("--dataset", choices=dataset_names())
    dsrc.add_argument("--edgelist", help="path to a SNAP-format edge list")
    dsrc.add_argument(
        "--rmat", type=int, metavar="SCALE",
        help="synthetic R-MAT graph with 2**SCALE vertices (seeded)",
    )
    dist.add_argument("--scale", type=int, default=None)
    dist.add_argument("--seed", type=int, default=42)
    dist.add_argument("--edge-factor", type=int, default=8)
    dist.add_argument("--directed", action="store_true")
    dist.add_argument(
        "--cluster", choices=("fast", "commodity"), default=None,
        help="named cluster preset (latency/bandwidth calibration); "
        "default 'fast' unless --nodes builds a custom spec",
    )
    dist.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="custom cluster: number of nodes (overrides --cluster)",
    )
    dist.add_argument(
        "--threads-per-node", type=int, default=16, metavar="T",
        help="threads per node for a custom --nodes cluster",
    )
    dist.add_argument(
        "--shard-rows", type=int, default=None,
        help="rows per shard (default: ceil(n / num_nodes))",
    )
    dist.add_argument(
        "--algorithm", default=None, choices=algorithm_names(),
        help="per-rank solver from the registry (default parapsp)",
    )
    dist.add_argument(
        "--replication", type=int, default=None, metavar="R",
        help="also place the build's shards on a consistent-hash ring "
        "with R replicas and print the per-node placement",
    )
    dist.add_argument(
        "--fault-plan", metavar="DSL", default=None,
        help="node faults during the build, e.g. "
        "'kill:worker=1,after=2;stall:worker=0,for=0.1' — recovered "
        "distances stay bitwise-equal to the fault-free build",
    )
    dist.add_argument(
        "--json", action="store_true",
        help="print the ClusterBuildResult summary as JSON",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="deterministic query-serving bench → BENCH_serve.json",
    )
    serve_bench.add_argument(
        "--out", default="BENCH_serve.json", help="artifact path to write"
    )
    serve_bench.add_argument("--scale", type=int, default=None)
    serve_bench.add_argument("--shard-rows", type=int, default=None)
    serve_bench.add_argument("--cache-shards", type=int, default=None)
    serve_bench.add_argument(
        "--codec", default=None,
        choices=("raw", "f4", "u16q", "u16qd"),
        help="shard codec for the bench store",
    )
    serve_bench.add_argument(
        "--curve", metavar="PATH", default=None,
        help="sweep every codec; write the accuracy-vs-latency curve",
    )
    serve_bench.add_argument(
        "--events", metavar="PATH", default=None,
        help="write the optimised replay's telemetry event log "
        "(deterministic JSONL)",
    )
    serve_bench.add_argument(
        "--events-sample", type=float, default=None, metavar="FRAC",
        help="per-trace sampling fraction for --events",
    )
    serve_bench.add_argument(
        "--request-trace", metavar="PATH", default=None,
        help="export the slowest request as a Chrome/Perfetto trace",
    )
    serve_bench.add_argument(
        "--config", metavar="PATH", default=None,
        help="serialized repro.config.ServeConfig; its store/engine "
        "fields become the bench defaults (explicit flags still win)",
    )
    serve_bench.add_argument(
        "--save-config", metavar="PATH", default=None,
        help="write the effective ServeConfig of this bench as JSON",
    )

    monitor = sub.add_parser(
        "monitor",
        help="tail / summarize / validate a telemetry event log",
    )
    monitor.add_argument(
        "log", help="JSONL event log (repro.serve.telemetry/1)"
    )
    monitor.add_argument(
        "--check", action="store_true",
        help="validate the log; exit 1 listing problems if invalid",
    )
    monitor.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="print the last N events instead of the summary",
    )
    monitor.add_argument(
        "--top", type=int, default=None, metavar="K",
        help="how many slowest requests the summary names",
    )

    sub.add_parser("datasets", help="list the dataset registry")
    info = sub.add_parser(
        "info", help="algorithm and experiment inventory"
    )
    info.add_argument(
        "--store", metavar="DIR", default=None,
        help="dump a distance store's manifest (schema, codec, "
        "certified error, byte stats) instead",
    )
    return parser


def _delta_arg(value: str) -> "float | str":
    """``--delta`` accepts a positive number or the literal 'auto'."""
    if value == "auto":
        return value
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number or 'auto', got {value!r}"
        ) from None
    if not parsed > 0:
        raise argparse.ArgumentTypeError(
            f"delta must be > 0, got {parsed}"
        )
    return parsed


def _block_size_arg(value: str) -> "int | str":
    """``--block-size`` accepts a positive int or the literal 'auto'."""
    if value == "auto":
        return value
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"block size must be >= 1, got {parsed}"
        )
    return parsed


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", choices=dataset_names())
    src.add_argument("--edgelist", help="path to a SNAP-format edge list")
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--directed", action="store_true")


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale)
    graph, _ = read_edgelist(args.edgelist, directed=args.directed)
    return graph


def _solve_graph(args: argparse.Namespace):
    """Graph from --dataset / --edgelist / --rmat (solve & trace)."""
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale)
    if getattr(args, "rmat", None) is not None:
        from .graphs.rmat import rmat

        return rmat(
            args.rmat,
            edge_factor=args.edge_factor,
            seed=args.seed,
            name=f"rmat-s{args.rmat}-ef{args.edge_factor}",
        )
    graph, _ = read_edgelist(args.edgelist, directed=args.directed)
    return graph


def _cmd_solve(args: argparse.Namespace) -> int:
    import time

    from .obs import MetricsRegistry, use_registry

    graph = _solve_graph(args)
    registry = MetricsRegistry() if args.metrics else None
    fault_plan = None
    if args.fault_plan:
        from .exceptions import FaultPlanError
        from .faults import parse_fault_plan

        try:
            fault_plan = parse_fault_plan(args.fault_plan)
        except FaultPlanError as exc:
            raise SystemExit(f"repro-apsp solve: error: --fault-plan: {exc}")
    t0 = time.perf_counter()
    solve_kwargs = dict(
        algorithm=args.algorithm,
        num_threads=args.threads,
        backend=args.backend,
        schedule=args.schedule,
        block_size=args.block_size,
        kernel=args.kernel,
        delta=args.delta,
        fault_plan=fault_plan,
        on_worker_death=args.on_worker_death,
        timeout=args.timeout,
    )
    if args.config:
        from .config import load_config

        # keep only the flags the user actually set, so file fields are
        # not clobbered by CLI defaults (an explicit flag still wins)
        cli_defaults = dict(
            algorithm="parapsp", num_threads=1, backend="serial",
            schedule=None, block_size=None, kernel="auto", delta=None,
            fault_plan=None, on_worker_death="retry", timeout=None,
        )
        solve_kwargs = {
            key: value
            for key, value in solve_kwargs.items()
            if value != cli_defaults[key]
        }
        from .exceptions import ConfigError

        try:
            solve_kwargs["config"] = load_config(args.config)
        except ConfigError as exc:
            raise SystemExit(f"repro-apsp solve: error: --config: {exc}")
    if registry is not None:
        with use_registry(registry):
            result = solve_apsp(graph, **solve_kwargs)
    else:
        result = solve_apsp(graph, **solve_kwargs)
    wall = time.perf_counter() - t0
    if args.save_config:
        from .config import SolverConfig

        cfg = solve_kwargs.get("config")
        resolved = (
            cfg.with_overrides(
                **{
                    k: v
                    for k, v in solve_kwargs.items()
                    if k != "config"
                }
            )
            if cfg is not None
            else SolverConfig.from_kwargs(**solve_kwargs)
        )
        with open(args.save_config, "w", encoding="utf-8") as fh:
            fh.write(resolved.to_json(indent=2) + "\n")
        print(f"config saved : {args.save_config}")
    finite = np.isfinite(result.dist)
    off_diag = finite.sum() - graph.num_vertices
    unit = "work units" if args.backend == "sim" else "s"
    print(f"graph        : {graph!r}")
    print(f"algorithm    : {result.algorithm} ({result.backend}, "
          f"{result.num_threads} threads, schedule={result.schedule})")
    print(f"ordering     : {result.ordering_method} "
          f"[{result.phase_times.ordering:.6g} {unit}]")
    if "block_size" in result.extra:
        print(f"block size   : {int(result.extra['block_size'])} "
              f"(kernel={args.kernel})")
    print(f"dijkstra     : {result.phase_times.dijkstra:.6g} {unit}")
    print(f"total        : {result.total_time:.6g} {unit}")
    if fault_plan is not None:
        print(f"fault plan   : {len(fault_plan)} fault(s), "
              f"policy={args.on_worker_death} — distances are exact "
              f"(recovered work re-executed)")
    print(f"reachable    : {off_diag} of "
          f"{graph.num_vertices * (graph.num_vertices - 1)} ordered pairs")
    fin_vals = result.dist[finite & ~np.eye(len(graph), dtype=bool)]
    if fin_vals.size:
        print(f"distances    : mean {fin_vals.mean():.4g}, "
              f"max {fin_vals.max():.4g}")
    if args.out:
        np.save(args.out, result.dist)
        print(f"matrix saved : {args.out}")
    if args.metrics:
        from .obs import artifact_from_apsp_result, write_artifact

        artifact = artifact_from_apsp_result(
            f"solve-{graph.name or 'graph'}",
            graph,
            result,
            registry=registry,
            wall_seconds=wall,
        )
        path = write_artifact(args.metrics, artifact)
        print(f"metrics saved: {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .trace import (
        TraceRecorder,
        analyze_trace,
        trace_from_apsp_result,
        write_chrome,
    )

    graph = _solve_graph(args)
    solve_kwargs = dict(
        algorithm=args.algorithm,
        num_threads=args.threads,
        backend=args.backend,
        schedule=args.schedule,
    )
    if args.backend == "sim":
        result = solve_apsp(graph, trace=True, **solve_kwargs)
        trace = trace_from_apsp_result(result)
    else:
        from .obs import use_registry

        recorder = TraceRecorder()
        with use_registry(recorder):
            solve_apsp(graph, **solve_kwargs)
        trace = recorder.to_trace()
    print(f"graph  : {graph!r}")
    print(f"trace  : {trace.clock} clock, {trace.num_tracks} track(s), "
          f"{len(trace.spans)} span(s), makespan {trace.makespan:.6g}")
    if args.out:
        path = write_chrome(args.out, trace)
        print(f"chrome : {path} (open in ui.perfetto.dev)")
    if args.gantt:
        from .simx import render_gantt

        print()
        print(render_gantt(trace))
    if args.report or not (args.out or args.gantt):
        print()
        print(analyze_trace(trace, top_k=args.top_k).format())
    return 0


def _cmd_order(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    degrees = degree_array(graph)
    result = compute_order(
        args.method, degrees, num_threads=args.threads, backend="threads"
    )
    seq = degrees[result.order[: min(10, result.n)]]
    print(f"graph   : {graph!r}")
    print(f"method  : {result.method} (exact={result.exact}, "
          f"{result.num_threads} threads)")
    print(f"head degrees: {seq.tolist()}")
    for key, value in sorted(result.stats.items()):
        print(f"{key:18s}: {value:g}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.centrality import (
        closeness_centrality,
        summarize_network,
    )

    graph = _load_graph(args)
    result = solve_apsp(graph, algorithm="parapsp")
    summary = summarize_network(result.dist)
    print(f"graph                : {graph!r}")
    print(f"reachable pairs      : {summary.reachable_pairs} "
          f"({summary.reachability:.1%})")
    print(f"average path length  : {summary.average_path_length:.4g}")
    print(f"diameter / radius    : {summary.diameter:g} / {summary.radius:g}")
    print(f"global efficiency    : {summary.global_efficiency:.4g}")
    closeness = closeness_centrality(result.dist)
    top = np.argsort(-closeness)[: max(0, args.top)]
    if top.size:
        print(f"top-{top.size} closeness centrality:")
        for rank, v in enumerate(top, 1):
            print(f"  {rank}. vertex {int(v)} ({closeness[v]:.4f})")
    return 0


def _cmd_paths(args: argparse.Namespace) -> int:
    from .core.paths import apsp_with_paths

    graph = _load_graph(args)
    result = apsp_with_paths(graph)
    route = result.path(args.source, args.target)
    if route is None:
        print(f"{args.target} is unreachable from {args.source}")
        return 1
    print(f"distance : {result.dist[args.source, args.target]:g}")
    print(f"path     : {' -> '.join(map(str, route))}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    results = run_many(args.experiment, profile=profile, verbose=True)
    if args.save:
        paths = save_report(results, args.save)
        print(f"saved {len(paths)} report(s) under {args.save}")
    if args.csv:
        from .bench import export_all

        paths = export_all(results, args.csv)
        print(f"exported {len(paths)} CSV/summary file(s) under {args.csv}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import time

    from .exceptions import ReproError
    from .serve import solve_to_store

    graph = _solve_graph(args)
    store_kwargs = dict(
        shard_rows=args.shard_rows,
        num_landmarks=args.landmarks,
        codec=args.codec,
        epsilon=args.epsilon,
    )
    serve_cfg = None
    if args.config:
        from .config import load_serve_config
        from .exceptions import ConfigError

        try:
            serve_cfg = load_serve_config(args.config)
        except ConfigError as exc:
            raise SystemExit(f"repro-apsp store: error: --config: {exc}")
        # keep only the flags the user actually set, so file fields are
        # not clobbered by CLI defaults (an explicit flag still wins)
        cli_defaults = dict(
            shard_rows=256, num_landmarks=8, codec="raw", epsilon=None,
        )
        store_kwargs = {
            key: value
            for key, value in store_kwargs.items()
            if value != cli_defaults[key]
        }
    t0 = time.perf_counter()
    try:
        store = solve_to_store(
            graph, args.out, serve_config=serve_cfg, **store_kwargs
        )
    except ReproError as exc:
        raise SystemExit(f"repro-apsp store: error: {exc}")
    wall = time.perf_counter() - t0
    if args.save_config:
        from .config import ServeConfig

        base = serve_cfg if serve_cfg is not None else ServeConfig()
        resolved = base.with_overrides(
            **{k: v for k, v in store_kwargs.items() if v is not None}
        )
        with open(args.save_config, "w", encoding="utf-8") as fh:
            fh.write(resolved.to_json(indent=2) + "\n")
        print(f"config saved : {args.save_config}")
    sizes = [store.shard_nbytes(i) for i in range(store.num_shards)]
    total = sum(sizes)
    raw_equiv = store.n * store.n * 8
    print(f"graph     : {graph!r}")
    print(f"store     : {store.path} ({store.num_shards} shard(s) of "
          f"{store.shard_rows} row(s))")
    print(f"codec     : {store.codec_name} "
          f"(certified max abs error {store.max_abs_error:g})")
    print(f"bytes     : {total} ({total / 2**20:.2f} MiB) on disk; "
          f"raw f8 would be {raw_equiv} ({raw_equiv / total:.1f}x)")
    print(f"shards    : min {min(sizes)} / mean "
          f"{total / len(sizes):.0f} / max {max(sizes)} bytes")
    print(f"landmarks : {store.landmark_ids}")
    print(f"built in  : {wall:.3g} s (peak memory one shard, not n^2)")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json as _json
    import time

    from .config import UpdateConfig
    from .exceptions import ReproError
    from .serve import DistStore, apply_edge_updates, parse_edge_updates

    try:
        store = DistStore.open(args.store)
        graph = _solve_graph(args)
        updates = parse_edge_updates(args.updates)
        cfg = UpdateConfig(
            prescreen=not args.no_prescreen, prune=args.prune
        )
        t0 = time.perf_counter()
        result = apply_edge_updates(store, graph, updates, config=cfg)
    except ReproError as exc:
        raise SystemExit(f"repro-apsp update: error: {exc}")
    wall = time.perf_counter() - t0
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2))
        return 0
    total = result.store.num_shards if result.store else 0
    print(f"store      : {args.store} -> generation {result.generation}")
    print(f"updates    : {result.num_updates} edge(s), endpoints "
          f"{list(result.endpoints)}")
    print(f"prescreen  : {result.certified_clean_shards} of {total} "
          f"shard(s) certified clean by landmark bounds")
    print(f"dirty      : {len(result.dirty_shards)} shard(s) re-solved "
          f"{list(result.dirty_shards)}; landmarks "
          f"{'rebuilt' if result.landmarks_rebuilt else 'kept'}")
    print(f"cost       : {result.cost_rows} row-unit(s) vs "
          f"{result.rebuild_rows} for a full rebuild "
          f"({result.cost_ratio:.3f}x)")
    if result.pruned_files:
        print(f"pruned     : {len(result.pruned_files)} superseded file(s)")
    print(f"applied in : {wall:.3g} s (old generation stays readable "
          "until engines refresh())")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .exceptions import ReproError
    from .serve import DistStore, QueryEngine

    serve_cfg = None
    if args.config:
        from .config import load_serve_config
        from .exceptions import ConfigError

        try:
            serve_cfg = load_serve_config(args.config)
        except ConfigError as exc:
            raise SystemExit(f"repro-apsp query: error: --config: {exc}")
    try:
        store = DistStore.open(args.store)
        engine = QueryEngine(
            store, epsilon=args.max_error, serve_config=serve_cfg
        )
        if args.top_k is not None:
            nearest = engine.top_k(args.u, args.top_k)
            print(f"top-{args.top_k} nearest to {args.u}:")
            for rank, (vertex, dist) in enumerate(nearest, 1):
                print(f"  {rank}. vertex {vertex} (distance {dist:g})")
            return 0
        if args.v is None:
            row = engine.dist_from(args.u)
            finite = np.isfinite(row)
            finite[args.u] = False
            print(f"row {args.u}: {int(finite.sum())} reachable of "
                  f"{store.n - 1}")
            if finite.any():
                print(f"  mean {row[finite].mean():.4g}, "
                      f"max {row[finite].max():.4g}")
            return 0
        if args.approx:
            lo, hi = engine.dist_approx(args.u, args.v)
            print(f"{lo:g} <= dist({args.u}, {args.v}) <= {hi:g} "
                  f"(certified ALT landmark bounds, gap {hi - lo:g})")
            return 0
        value = engine.dist(args.u, args.v)
        suffix = ""
        if engine.stats["short_circuits"]:
            suffix = (f"  (ALT short-circuit, error <= "
                      f"{(engine.epsilon or 0.0) / 2:g}, no shard load)")
        print(f"dist({args.u}, {args.v}) = {value:g}{suffix}")
        return 0
    except ReproError as exc:
        raise SystemExit(f"repro-apsp query: error: {exc}")


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .exceptions import ReproError
    from .serve import bench as serve_bench

    argv = ["--out", args.out]
    if args.scale is not None:
        argv += ["--scale", str(args.scale)]
    if args.shard_rows is not None:
        argv += ["--shard-rows", str(args.shard_rows)]
    if args.cache_shards is not None:
        argv += ["--cache-shards", str(args.cache_shards)]
    if args.codec is not None:
        argv += ["--codec", args.codec]
    if args.curve is not None:
        argv += ["--curve", args.curve]
    if args.events is not None:
        argv += ["--events", args.events]
    if args.events_sample is not None:
        argv += ["--events-sample", str(args.events_sample)]
    if args.request_trace is not None:
        argv += ["--request-trace", args.request_trace]
    if args.config is not None:
        argv += ["--config", args.config]
    if args.save_config is not None:
        argv += ["--save-config", args.save_config]
    try:
        return serve_bench.main(argv)
    except ReproError as exc:
        raise SystemExit(f"repro-apsp serve-bench: error: {exc}")


def _cmd_dist(args: argparse.Namespace) -> int:
    import json as _json
    import time

    from .dist import (
        CLUSTER_COMMODITY,
        CLUSTER_FAST,
        ClusterSpec,
        solve_apsp_cluster,
    )
    from .exceptions import ReproError

    graph = _solve_graph(args)
    if args.nodes is not None:
        cluster = ClusterSpec(
            name=f"custom-{args.nodes}x{args.threads_per_node}",
            num_nodes=args.nodes,
            threads_per_node=args.threads_per_node,
        )
    elif args.cluster == "commodity":
        cluster = CLUSTER_COMMODITY
    else:
        cluster = CLUSTER_FAST
    fault_plan = None
    if args.fault_plan:
        from .exceptions import FaultPlanError
        from .faults import parse_fault_plan

        try:
            fault_plan = parse_fault_plan(args.fault_plan)
        except FaultPlanError as exc:
            raise SystemExit(f"repro-apsp dist: error: --fault-plan: {exc}")
    solver_kwargs = {}
    if args.algorithm is not None:
        solver_kwargs["algorithm"] = args.algorithm
    t0 = time.perf_counter()
    try:
        result = solve_apsp_cluster(
            graph,
            cluster,
            shard_rows=args.shard_rows,
            fault_plan=fault_plan,
            **solver_kwargs,
        )
    except ReproError as exc:
        raise SystemExit(f"repro-apsp dist: error: {exc}")
    wall = time.perf_counter() - t0
    placement = None
    if args.replication is not None:
        from .serve import ShardRouter

        router = ShardRouter(
            cluster.num_nodes, replication=args.replication
        )
        placement = {
            str(node): shards
            for node, shards in sorted(
                router.placement(result.num_shards).items()
            )
        }
    if args.json:
        summary = result.to_summary()
        if placement is not None:
            summary["placement"] = placement
        print(_json.dumps(summary, indent=2))
        return 0
    print(f"graph     : {graph!r}")
    print(f"cluster   : {cluster.name} ({cluster.num_nodes} node(s) x "
          f"{cluster.threads_per_node} thread(s))")
    print(f"shards    : {result.num_shards} of {result.shard_rows} row(s)")
    print(f"makespan  : {result.makespan:g} work units "
          f"(assembly {result.assembly_time:g})")
    print(f"network   : {result.network_bytes} bytes shuffled")
    if result.lost_ranks:
        print(f"faults    : lost rank(s) {list(result.lost_ranks)}; "
              f"{len(result.recovered_by)} shard(s) re-solved "
              "(bitwise-equal to the fault-free build)")
    if placement is not None:
        print(f"placement : replication {args.replication} over "
              f"{cluster.num_nodes} node(s)")
        for node, shards in placement.items():
            print(f"  node {node}: shards {shards}")
    print(f"solved in : {wall:.3g} s (simulated cluster, exact answers)")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from .exceptions import ReproError
    from .serve import monitor as serve_monitor

    argv = [args.log]
    if args.check:
        argv.append("--check")
    if args.tail is not None:
        argv += ["--tail", str(args.tail)]
    if args.top is not None:
        argv += ["--top", str(args.top)]
    try:
        return serve_monitor.main(argv)
    except ReproError as exc:
        raise SystemExit(f"repro-apsp monitor: error: {exc}")


def _cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        spec = dataset_info(name)
        rows.append(
            (
                spec.name,
                spec.kind,
                spec.real_vertices,
                spec.real_edges,
                spec.default_scale,
                spec.source,
            )
        )
    print(
        format_table(
            ("name", "type", "paper |V|", "paper |E|", "default scale",
             "source"),
            rows,
            title="dataset registry (synthetic stand-ins; see DESIGN.md)",
        )
    )
    return 0


def _cmd_store_info(path: str) -> int:
    """``info --store DIR``: dump manifest codec/error/byte fields."""
    from .exceptions import ReproError
    from .serve import DistStore

    try:
        store = DistStore.open(path)
    except ReproError as exc:
        raise SystemExit(f"repro-apsp info: error: {exc}")
    sizes = [store.shard_nbytes(i) for i in range(store.num_shards)]
    total = sum(sizes)
    raw_equiv = store.n * store.n * 8
    print(f"store    : {store.path}")
    print(f"schema   : {store.manifest['schema']}")
    print(f"n        : {store.n} ({store.num_shards} shard(s) of "
          f"{store.shard_rows} row(s))")
    params = store.manifest.get("codec_params", {})
    print(f"codec    : {store.codec_name}"
          + (f" (params: {', '.join(sorted(params))})" if params else ""))
    print(f"error    : certified max abs error {store.max_abs_error:g}")
    eps = store.epsilon
    print(f"epsilon  : {'disabled' if eps is None else format(eps, 'g')} "
          f"(ALT short-circuit gap)")
    print(f"bytes    : {total} on disk ({total / 2**20:.2f} MiB); raw f8 "
          f"equivalent {raw_equiv} ({raw_equiv / total:.1f}x)")
    print(f"shards   : min {min(sizes)} / mean {total / len(sizes):.0f} / "
          f"max {max(sizes)} bytes")
    print(f"landmarks: {store.landmark_ids}")
    cfg = store.manifest.get("config", {}).get("algorithm", {})
    print(f"solver   : {cfg.get('name', '?')} "
          f"(use_flags={cfg.get('use_flags')})")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    if getattr(args, "store", None):
        return _cmd_store_info(args.store)
    from .core.runner import ALGORITHMS

    def _caps(spec) -> str:
        """Compact capability-flag summary (see docs/solvers.md)."""
        short = {
            "negative_weights": "neg",
            "batchable": "batch",
            "simulatable": "sim",
            "store_buildable": "store",
            "uses_flags": "flags",
            "uses_delta": "delta",
        }
        on = [short[k] for k, v in spec.capabilities().items() if v]
        return ",".join(on) or "-"

    rows = [
        (spec.name, spec.ordering, spec.schedule.value, _caps(spec),
         spec.description)
        for spec in ALGORITHMS.values()
    ]
    print(format_table(
        ("algorithm", "ordering", "schedule", "capabilities", "description"),
        rows,
        title="algorithms (capabilities: see docs/solvers.md)",
    ))
    print()
    print("experiments:", ", ".join(experiment_ids()))
    from .dist import CLUSTER_COMMODITY, CLUSTER_FAST

    clusters = ", ".join(
        f"{c.name} ({c.num_nodes}x{c.threads_per_node})"
        for c in (CLUSTER_FAST, CLUSTER_COMMODITY)
    )
    print(f"clusters: {clusters} (repro.dist; see docs/distributed.md)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "trace": _cmd_trace,
        "order": _cmd_order,
        "analyze": _cmd_analyze,
        "paths": _cmd_paths,
        "bench": _cmd_bench,
        "store": _cmd_store,
        "update": _cmd_update,
        "query": _cmd_query,
        "dist": _cmd_dist,
        "serve-bench": _cmd_serve_bench,
        "monitor": _cmd_monitor,
        "datasets": _cmd_datasets,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
