"""Deterministic corruption of on-disk distance-store shards.

The worker-fault machinery in :mod:`repro.faults.plan` models things
going wrong *during* a parallel region; this module models the other
production failure the ROADMAP cares about — bytes rotting *at rest*
under a serving layer.  A :class:`StoreCorruptionSpec` is the same idea
as a :class:`~repro.faults.FaultSpec`: a frozen, seeded description of
exactly which bytes of which shard get damaged, so a test (or the CI
``serve-smoke`` job) can corrupt a store, assert that
:meth:`repro.serve.DistStore.verify` detects it, repair, and compare
bitwise against the original.

Determinism: byte offsets are drawn from ``np.random.default_rng(seed)``
over the shard payload, and each chosen byte is XOR-ed with ``0xFF`` —
which *always* changes the byte, so a spec with ``nbytes >= 1`` can
never be a silent no-op that would make a detection test vacuous.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping

import numpy as np

from ..exceptions import FaultPlanError

__all__ = ["StoreCorruptionSpec", "parse_store_corruption"]


@dataclass(frozen=True)
class StoreCorruptionSpec:
    """Flip ``nbytes`` seeded-random bytes of one store file.

    ``target="shard"`` (default) damages shard ``shard``;
    ``target="landmarks"`` damages the pinned landmark file instead
    (``shard`` is ignored for that target but must still validate).
    """

    shard: int
    nbytes: int = 1
    seed: int = 0
    target: str = "shard"

    def __post_init__(self) -> None:
        if not isinstance(self.shard, int) or isinstance(self.shard, bool) \
                or self.shard < 0:
            raise FaultPlanError(
                f"shard must be an int >= 0, got {self.shard!r}"
            )
        if not isinstance(self.nbytes, int) or isinstance(self.nbytes, bool) \
                or self.nbytes < 1:
            raise FaultPlanError(
                f"nbytes must be an int >= 1, got {self.nbytes!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultPlanError(f"seed must be an int, got {self.seed!r}")
        if self.target not in ("shard", "landmarks"):
            raise FaultPlanError(
                f"target must be 'shard' or 'landmarks', "
                f"got {self.target!r}"
            )

    def offsets(self, payload_size: int) -> np.ndarray:
        """The byte offsets this spec damages in a payload of that size."""
        if payload_size < 1:
            raise FaultPlanError("cannot corrupt an empty shard payload")
        rng = np.random.default_rng(self.seed)
        k = min(self.nbytes, payload_size)
        return np.sort(rng.choice(payload_size, size=k, replace=False))

    def apply(self, path: "str | os.PathLike") -> np.ndarray:
        """XOR-flip the chosen bytes of the file in place.

        Returns the damaged offsets so a test can report exactly what it
        did.  XOR with ``0xFF`` is an involution: applying the same spec
        twice restores the file — occasionally handy in tests, never
        relied on for repair (repair re-solves, see
        :meth:`repro.serve.DistStore.repair`).
        """
        size = os.path.getsize(path)
        offs = self.offsets(size)
        with open(path, "r+b") as fh:
            for off in offs:
                fh.seek(int(off))
                byte = fh.read(1)
                fh.seek(int(off))
                fh.write(bytes([byte[0] ^ 0xFF]))
        return offs

    def resolve(self, store) -> "Any":
        """The on-disk path of this spec's shard in a ``DistStore``.

        Resolves through the store *manifest* rather than guessing file
        names, so the drill stays valid if the shard layout or codec
        (and hence payload size) changes.
        """
        from pathlib import Path

        if self.target == "landmarks":
            entry = store.manifest["landmarks"]
            if not entry["ids"]:
                raise FaultPlanError(
                    "spec targets the landmark file but the store pins "
                    "no landmarks"
                )
            return Path(store.path) / entry["file"]
        num_shards = store.num_shards
        if self.shard >= num_shards:
            raise FaultPlanError(
                f"spec targets shard {self.shard} but the store has "
                f"only {num_shards}"
            )
        return Path(store.path) / store.manifest["shards"][self.shard]["file"]

    def apply_to_store(self, store) -> np.ndarray:
        """:meth:`apply` aimed at a ``DistStore`` shard by index.

        Offsets are drawn over the shard's *encoded* payload (whatever
        its codec), so the drill exercises exactly the bytes the
        checksums cover.
        """
        return self.apply(self.resolve(store))

    def to_dict(self) -> Dict[str, Any]:
        out = {"shard": self.shard, "nbytes": self.nbytes, "seed": self.seed}
        if self.target != "shard":  # older readers never see the default
            out["target"] = self.target
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreCorruptionSpec":
        unknown = set(data) - {"shard", "nbytes", "seed", "target"}
        if unknown:
            raise FaultPlanError(
                f"unknown StoreCorruptionSpec fields: {sorted(unknown)}"
            )
        if "shard" not in data:
            raise FaultPlanError("StoreCorruptionSpec requires 'shard'")
        return cls(**dict(data))


def parse_store_corruption(text: str) -> StoreCorruptionSpec:
    """Parse the compact DSL ``"shard=2,nbytes=4,seed=7"``.

    ``target=landmarks`` aims the flips at the pinned landmark file.
    Mirrors :func:`repro.faults.parse_fault_plan` so the CLI can take
    ``--corrupt shard=0`` with the same look and feel.
    """
    fields: Dict[str, Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise FaultPlanError(
                f"bad store-corruption field {part!r}; expected key=value"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        if key == "target":
            fields[key] = value.strip()
            continue
        if key not in ("shard", "nbytes", "seed"):
            raise FaultPlanError(f"unknown store-corruption key {key!r}")
        try:
            fields[key] = int(value)
        except ValueError:
            raise FaultPlanError(
                f"store-corruption value for {key!r} must be an int, "
                f"got {value!r}"
            ) from None
    if "shard" not in fields and fields.get("target") == "landmarks":
        fields["shard"] = 0  # unused for this target, but required
    return StoreCorruptionSpec.from_dict(fields)
